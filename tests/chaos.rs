//! Chaos soak: the NoC fault plane plus repeated tile kills, driven
//! end-to-end through the public `apiary` re-exports.
//!
//! Three properties are pinned here:
//!
//! 1. **Determinism** — the same seed reproduces the identical run:
//!    byte-equal NoC statistics, per-tile fault records, supervisor
//!    incident log and MTTR samples.
//! 2. **Availability** — with the supervisor on, goodput under a moderate
//!    fault rate stays within 90% of the fault-free baseline; with
//!    recovery off it does not.
//! 3. **Liveness** — no injected fault sequence may wedge the NoC: every
//!    run drains to quiescence within its cycle bound.

use std::collections::HashMap;

use apiary::accel::apps::echo::echo;
use apiary::accel::apps::idle::idle;
use apiary::cap::{CapRef, ServiceId};
use apiary::core::{AppId, FaultPolicy, SupervisorConfig, System, SystemConfig};
use apiary::monitor::wire;
use apiary::noc::{FaultPlane, FaultPlaneConfig, NodeId, TrafficClass};
use apiary::sim::{Cycle, SimRng};

const SVC: ServiceId = ServiceId(99);
const CLIENT: NodeId = NodeId(0);
const HOME: NodeId = NodeId(5);
const SPARES: [NodeId; 2] = [NodeId(10), NodeId(12)];
const WINDOW: u32 = 4;
const TIMEOUT: u64 = 250;
const KILL_CODE: u32 = 0xC4A0_5011;

/// Minimal closed-loop driver (the bench harness lives in `apiary-bench`,
/// which the root crate deliberately does not depend on).
struct Loop {
    cap: CapRef,
    next_tag: u64,
    sent: HashMap<u64, Cycle>,
    ok: u64,
    errors: u64,
    lost: u64,
    issued: u64,
}

impl Loop {
    fn new(cap: CapRef) -> Loop {
        Loop {
            cap,
            next_tag: 0,
            sent: HashMap::new(),
            ok: 0,
            errors: 0,
            lost: 0,
            issued: 0,
        }
    }

    fn pump(&mut self, sys: &mut System, issue: bool) {
        let now = sys.now();
        let before = self.sent.len();
        self.sent.retain(|_, s| now - *s < TIMEOUT);
        self.lost += (before - self.sent.len()) as u64;
        while let Some(d) = sys.tile_mut(CLIENT).monitor.recv() {
            if self.sent.remove(&d.msg.tag).is_some() {
                if d.msg.kind == wire::KIND_ERROR {
                    self.errors += 1;
                } else {
                    self.ok += 1;
                }
            }
        }
        while issue && self.sent.len() < WINDOW as usize {
            let tag = self.next_tag;
            let res = sys.tile_mut(CLIENT).monitor.send(
                self.cap,
                wire::KIND_REQUEST,
                tag,
                TrafficClass::Request,
                vec![0xA5; 32],
                now,
            );
            if res.is_err() {
                break;
            }
            self.next_tag += 1;
            self.issued += 1;
            self.sent.insert(tag, now);
        }
    }
}

struct Soak {
    ok: u64,
    errors: u64,
    lost: u64,
    drained: bool,
    kills: u64,
    /// Everything that must be bit-identical across same-seed runs.
    fingerprint: String,
}

/// Runs `duration` cycles of closed-loop load at a supervised echo service
/// while the fault plane (rate > 0) and a seeded tile-killer run.
fn soak(seed: u64, rate: f64, recovery: bool, duration: u64) -> Soak {
    let mut sys = System::new(SystemConfig {
        supervisor: SupervisorConfig {
            enabled: recovery,
            max_restarts: 2,
            restart_backoff: 128,
            spare_nodes: SPARES.to_vec(),
            checkpoint_interval: 0,
        },
        ..SystemConfig::default()
    });
    sys.install(CLIENT, Box::new(idle()), AppId(1), FaultPolicy::FailStop)
        .unwrap();
    sys.deploy_service(
        SVC,
        HOME,
        AppId(1),
        FaultPolicy::FailStop,
        4096,
        Box::new(|| Box::new(echo(1))),
    )
    .unwrap();
    let cap = sys.attach_client(CLIENT, SVC).unwrap();
    if rate > 0.0 {
        sys.noc_mut()
            .install_fault_plane(FaultPlane::new(FaultPlaneConfig::with_rate(seed, rate)));
    }

    let mut client = Loop::new(cap);
    let mut killer = SimRng::new(seed ^ 0xD15E_A5E5);
    let interval = duration / 4;
    let mut next_kill = if rate > 0.0 {
        interval + killer.gen_range(interval / 2)
    } else {
        u64::MAX
    };
    let mut kills = 0u64;

    for _ in 0..duration {
        sys.tick();
        client.pump(&mut sys, true);
        let now = sys.now().as_u64();
        if now >= next_kill {
            if let Some(home) = sys.service_home(SVC) {
                if sys.tile(home).monitor.state() == apiary::monitor::TileState::Running {
                    sys.inject_fault(home, KILL_CODE);
                    kills += 1;
                }
            }
            next_kill = now + interval + killer.gen_range(interval / 2);
        }
    }
    // Liveness: whatever the plane did, the system must drain.
    let drained = sys.run_until_idle(2_000_000);
    client.pump(&mut sys, false);

    let fault_records: Vec<_> = (0..sys.noc().mesh().nodes())
        .map(|i| sys.tile(NodeId(i as u16)).faults.clone())
        .collect();
    let fingerprint = format!(
        "noc={:?} faults={:?} incidents={:?} mttr={:?} ok={} err={} lost={} issued={}",
        sys.noc().stats(),
        fault_records,
        sys.incidents(),
        sys.mttr_samples(),
        client.ok,
        client.errors,
        client.lost,
        client.issued,
    );
    Soak {
        ok: client.ok,
        errors: client.errors,
        lost: client.lost,
        drained,
        kills,
        fingerprint,
    }
}

#[test]
fn same_seed_reproduces_the_exact_run() {
    let a = soak(0xC4A0, 0.002, true, 80_000);
    let b = soak(0xC4A0, 0.002, true, 80_000);
    assert_eq!(a.fingerprint, b.fingerprint);
    assert!(a.drained && b.drained);
    // The run actually exercised the chaos plane.
    assert!(a.ok > 0, "no goodput at all");
    assert!(a.kills > 0, "tile killer never fired");
    assert!(
        a.errors + a.lost > 0,
        "faults had no observable effect at the client"
    );
}

#[test]
fn different_seeds_diverge() {
    let a = soak(1, 0.002, true, 80_000);
    let b = soak(2, 0.002, true, 80_000);
    assert!(a.drained && b.drained);
    assert_ne!(a.fingerprint, b.fingerprint);
}

#[test]
fn supervisor_keeps_goodput_within_90_percent_no_recovery_does_not() {
    // 0.0005/cycle is the sweep's "moderate" cell: some link is down ~10%
    // of the time and the service tile is killed ~3 times per run.
    let duration = 100_000;
    let baseline = soak(42, 0.0, false, duration);
    let supervised = soak(42, 0.0005, true, duration);
    let unattended = soak(42, 0.0005, false, duration);
    assert!(baseline.drained && supervised.drained && unattended.drained);
    let bar = baseline.ok * 9 / 10;
    assert!(
        supervised.ok >= bar,
        "supervised goodput {} below 90% of fault-free {}",
        supervised.ok,
        baseline.ok
    );
    assert!(
        unattended.ok < bar,
        "no-recovery goodput {} unexpectedly at baseline ({})",
        unattended.ok,
        baseline.ok
    );
}

#[test]
fn aggressive_chaos_never_wedges_the_network() {
    // Well past the sweep's harshest cell; liveness only.
    for seed in [3, 4, 5] {
        let s = soak(seed, 0.02, true, 60_000);
        assert!(s.drained, "seed {seed} failed to drain");
    }
}

#[test]
#[ignore]
fn probe_seeds() {
    for seed in [1u64, 2, 3, 7, 9, 11, 42] {
        let duration = 100_000;
        let baseline = soak(seed, 0.0, false, duration);
        let supervised = soak(seed, 0.0005, true, duration);
        let unattended = soak(seed, 0.0005, false, duration);
        println!(
            "seed {seed}: base {} sup {} ({:.1}%) err {} lost {} | unatt {} ({:.1}%)",
            baseline.ok,
            supervised.ok,
            supervised.ok as f64 / baseline.ok as f64 * 100.0,
            supervised.errors,
            supervised.lost,
            unattended.ok,
            unattended.ok as f64 / baseline.ok as f64 * 100.0
        );
    }
}
