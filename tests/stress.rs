//! Stress: message-dependent deadlock and sustained saturation.
//!
//! The paper (§4.5) points at NoC work on *message-dependent deadlock*
//! [Lankes'10, Murali'06]: request/response protocols can deadlock even on
//! a deadlock-free network when replies block behind requests. Apiary's
//! defences are bounded monitor queues with overload NACKs (no tile can be
//! forced to buffer unboundedly) and traffic classes on separate VCs.
//! These tests drive the system to saturation and require forward
//! progress.

use apiary::accel::apps::echo::echo;
use apiary::accel::apps::idle::idle;
use apiary::core::{AppId, FaultPolicy, System, SystemConfig};
use apiary::monitor::wire;
use apiary::noc::{NodeId, TrafficClass};
use std::collections::HashMap;

/// Every tile is an echo server; every tile also sends requests to three
/// other tiles continuously. Requests, responses and NACKs all share the
/// fabric at saturation; the system must keep completing work.
#[test]
fn all_to_all_request_response_saturation_makes_progress() {
    let mut sys = System::new(SystemConfig::default());
    let nodes = 15u16; // Tile 15 is the memory service.
    for n in 0..nodes {
        sys.install(
            NodeId(n),
            Box::new(echo(2)),
            AppId(1),
            FaultPolicy::FailStop,
        )
        .expect("free");
    }
    // Full bidirectional wiring among a triple-neighbourhood.
    let mut caps = HashMap::new();
    for n in 0..nodes {
        for k in 1..=3u16 {
            let d = (n + k) % nodes;
            let cap = sys.connect(NodeId(n), NodeId(d), false).expect("same app");
            caps.insert((n, d), cap);
        }
    }

    let mut sent = 0u64;
    let mut tag = 0u64;
    for cycle in 0..60_000u64 {
        // Saturating offered load: every tile tries a send every 4 cycles.
        if cycle % 4 == 0 {
            for n in 0..nodes {
                let d = (n + 1 + (cycle / 4 % 3) as u16) % nodes;
                let cap = caps[&(n, d)];
                let now = sys.now();
                tag += 1;
                if sys
                    .tile_mut(NodeId(n))
                    .monitor
                    .send(
                        cap,
                        wire::KIND_REQUEST,
                        tag,
                        TrafficClass::Request,
                        vec![0; 48],
                        now,
                    )
                    .is_ok()
                {
                    sent += 1;
                }
            }
        }
        sys.tick();
    }
    // Echo servers consumed each other's traffic; the progress criterion
    // is aggregate deliveries, which must be a large fraction of sends.
    let delivered: u64 = (0..nodes)
        .map(|n| sys.tile(NodeId(n)).monitor.stats().received)
        .sum();
    assert!(sent > 10_000, "offered load too low: {sent}");
    assert!(
        delivered > sent / 2,
        "only {delivered} of {sent} messages delivered — wedged?"
    );
    // And the system can still drain completely: no residual deadlock.
    assert!(
        sys.run_until_idle(5_000_000),
        "network failed to drain after load stopped"
    );
}

/// Two echo servers in a tight mutual request loop at full rate: the
/// classic message-dependent-deadlock shape (each one's responses contend
/// with the other's requests). Bounded queues + NACKs must keep it live.
#[test]
fn mutual_request_loop_never_wedges() {
    let mut sys = System::new(SystemConfig::default());
    let a = NodeId(1);
    let b = NodeId(2);
    sys.install(a, Box::new(echo(0)), AppId(1), FaultPolicy::FailStop)
        .expect("free");
    sys.install(b, Box::new(echo(0)), AppId(1), FaultPolicy::FailStop)
        .expect("free");
    let ab = sys.connect(a, b, false).expect("same app");
    let ba = sys.connect(b, a, false).expect("same app");

    for cycle in 0..30_000u64 {
        let now = sys.now();
        // Both sides blast requests whenever their outbox has room.
        let _ = sys.tile_mut(a).monitor.send(
            ab,
            wire::KIND_REQUEST,
            cycle,
            TrafficClass::Request,
            vec![1; 32],
            now,
        );
        let _ = sys.tile_mut(b).monitor.send(
            ba,
            wire::KIND_REQUEST,
            cycle,
            TrafficClass::Request,
            vec![2; 32],
            now,
        );
        sys.tick();
    }
    let got_a = sys.tile(a).monitor.stats().received;
    let got_b = sys.tile(b).monitor.stats().received;
    assert!(got_a > 1_000, "tile a starved: {got_a}");
    assert!(got_b > 1_000, "tile b starved: {got_b}");
    assert!(sys.run_until_idle(5_000_000), "drain failed");
}

/// Saturation with an idle (never-consuming) sink: the sink's inbox fills,
/// the monitor NACKs the overflow, and the *senders* observe bounded
/// refusal rather than the network wedging — the no-unbounded-buffering
/// property that breaks the deadlock cycle.
#[test]
fn overloaded_sink_sheds_load_instead_of_wedging() {
    let mut sys = System::new(SystemConfig::default());
    let sink = NodeId(5);
    sys.install(sink, Box::new(idle()), AppId(1), FaultPolicy::FailStop)
        .expect("free");
    let senders: Vec<NodeId> = vec![NodeId(0), NodeId(1), NodeId(4)];
    let mut caps = Vec::new();
    for &s in &senders {
        sys.install(s, Box::new(idle()), AppId(1), FaultPolicy::FailStop)
            .expect("free");
        caps.push(sys.connect(s, sink, false).expect("same app"));
    }

    for cycle in 0..20_000u64 {
        for (i, &s) in senders.iter().enumerate() {
            let now = sys.now();
            let _ = sys.tile_mut(s).monitor.send(
                caps[i],
                wire::KIND_REQUEST,
                cycle,
                TrafficClass::Request,
                vec![0; 64],
                now,
            );
        }
        sys.tick();
    }
    // The sink holds exactly its inbox bound; the surplus was NACKed.
    let inbox = sys.tile(sink).monitor.inbox_len();
    assert!(inbox <= 64, "inbox grew unboundedly: {inbox}");
    let nacks = sys.tile(sink).monitor.stats().nacks_sent;
    assert!(nacks > 1_000, "expected heavy shedding, saw {nacks} NACKs");
    // Senders received those error replies (their inboxes bounded too).
    assert!(sys.run_until_idle(5_000_000), "drain failed");
}
