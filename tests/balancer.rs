//! The load balancer over a real system: transparent replication (§4.1's
//! "replicated accelerator with internal load balancing").

use apiary::accel::apps::balance::{balancer, BalancerAccel};
use apiary::accel::apps::echo::echo;
use apiary::accel::apps::idle::idle;
use apiary::core::{AppId, FaultPolicy, System, SystemConfig};
use apiary::monitor::wire;
use apiary::noc::{NodeId, TrafficClass};

fn build(replicas: &[NodeId]) -> (System, apiary::cap::CapRef, NodeId) {
    let client = NodeId(0);
    let lb = NodeId(5);
    let mut sys = System::new(SystemConfig::default());
    sys.install(client, Box::new(idle()), AppId(1), FaultPolicy::FailStop)
        .expect("free");
    sys.install(lb, Box::new(balancer()), AppId(1), FaultPolicy::FailStop)
        .expect("free");
    for (i, &r) in replicas.iter().enumerate() {
        sys.install(r, Box::new(echo(32)), AppId(1), FaultPolicy::FailStop)
            .expect("free");
        sys.connect_env(lb, r, &format!("replica{i}"), false)
            .expect("same app");
        sys.connect(r, lb, false).expect("reply path");
    }
    let cap = sys.connect(client, lb, false).expect("same app");
    sys.connect(lb, client, false).expect("reply path");
    (sys, cap, lb)
}

#[test]
fn balancer_is_transparent_to_the_client() {
    let (mut sys, cap, lb) = build(&[NodeId(6), NodeId(9)]);
    for tag in 0..10u64 {
        let now = sys.now();
        sys.tile_mut(NodeId(0))
            .monitor
            .send(
                cap,
                wire::KIND_REQUEST,
                tag,
                TrafficClass::Request,
                vec![tag as u8; 24],
                now,
            )
            .expect("send accepted");
    }
    assert!(sys.run_until_idle(1_000_000));
    // All ten responses arrive with the client's own tags and payloads.
    let mut tags = Vec::new();
    while let Some(d) = sys.tile_mut(NodeId(0)).monitor.recv() {
        assert_eq!(d.msg.kind, wire::KIND_RESPONSE);
        assert_eq!(d.msg.payload, vec![d.msg.tag as u8; 24]);
        assert_eq!(d.msg.src, lb, "the client only ever sees the balancer");
        tags.push(d.msg.tag);
    }
    tags.sort_unstable();
    assert_eq!(tags, (0..10).collect::<Vec<_>>());

    // The work was actually spread over both replicas.
    let b = sys.accel_as::<BalancerAccel>(lb).expect("installed");
    assert_eq!(b.per_replica, vec![5, 5]);
    assert_eq!(b.relayed, 10);
}

#[test]
fn two_replicas_roughly_double_throughput() {
    fn run_n(replicas: &[NodeId], requests: u64) -> u64 {
        let (mut sys, cap, _) = build(replicas);
        let start = sys.now();
        let mut completed = 0u64;
        let mut issued = 0u64;
        let mut in_flight = 0u32;
        for _ in 0..2_000_000u64 {
            sys.tick();
            while let Some(_d) = sys.tile_mut(NodeId(0)).monitor.recv() {
                completed += 1;
                in_flight -= 1;
            }
            // Keep 4 in flight.
            while in_flight < 4 && issued < requests {
                let now = sys.now();
                if sys
                    .tile_mut(NodeId(0))
                    .monitor
                    .send(
                        cap,
                        wire::KIND_REQUEST,
                        issued,
                        TrafficClass::Request,
                        vec![1; 16],
                        now,
                    )
                    .is_ok()
                {
                    issued += 1;
                    in_flight += 1;
                }
            }
            if completed == requests {
                break;
            }
        }
        assert_eq!(completed, requests, "balancer run stalled");
        sys.now() - start
    }
    let one = run_n(&[NodeId(6)], 40);
    let two = run_n(&[NodeId(6), NodeId(9)], 40);
    assert!(
        (two as f64) < one as f64 * 0.7,
        "2 replicas took {two} vs 1 replica {one}"
    );
}

#[test]
fn dead_replica_errors_are_relayed_not_fatal() {
    let (mut sys, cap, lb) = build(&[NodeId(6), NodeId(9)]);
    sys.fail_stop(NodeId(6));
    for tag in 0..6u64 {
        let now = sys.now();
        sys.tile_mut(NodeId(0))
            .monitor
            .send(
                cap,
                wire::KIND_REQUEST,
                tag,
                TrafficClass::Request,
                vec![0; 8],
                now,
            )
            .expect("send accepted");
    }
    assert!(sys.run_until_idle(1_000_000));
    let mut ok = 0;
    let mut errs = 0;
    while let Some(d) = sys.tile_mut(NodeId(0)).monitor.recv() {
        if d.msg.kind == wire::KIND_ERROR {
            errs += 1;
        } else {
            ok += 1;
        }
    }
    // Round-robin: half land on the dead replica and come back as errors,
    // half succeed; the balancer itself never dies.
    assert_eq!(ok, 3);
    assert_eq!(errs, 3);
    assert_eq!(
        sys.tile(lb).monitor.state(),
        apiary::monitor::TileState::Running
    );
}
