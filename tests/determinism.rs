//! Determinism: identical seeds must produce bit-identical runs.
//!
//! Reproducibility is a core property of the simulator — every experiment
//! in EXPERIMENTS.md is exactly re-runnable. These tests pin it down.

use apiary::noc::{Message, Noc, NocConfig, NodeId, TrafficClass};
use apiary::sim::SimRng;

/// Drives random traffic on a NoC and returns a fingerprint of everything
/// observable: delivery counts, per-message latencies in order, stats.
fn fingerprint(seed: u64) -> Vec<u64> {
    let mut noc = Noc::new(NocConfig::soft(4, 4));
    let mut rng = SimRng::new(seed);
    let mut fp = Vec::new();
    for _ in 0..2_000 {
        for src in 0..16u16 {
            if rng.gen_bool(0.15) {
                let dst = (src + 1 + rng.gen_range(15) as u16) % 16;
                let class = match rng.gen_range(3) {
                    0 => TrafficClass::Control,
                    1 => TrafficClass::Request,
                    _ => TrafficClass::Bulk,
                };
                let bytes = rng.gen_range(256) as usize;
                let mut m = Message::new(NodeId(src), NodeId(dst), class, vec![0xD; bytes]);
                m.tag = rng.next_u64();
                let _ = noc.try_inject(NodeId(src), m);
            }
        }
        noc.step();
        for n in 0..16u16 {
            while let Some(d) = noc.poll_eject(NodeId(n)) {
                fp.push(d.msg.tag);
                fp.push(d.latency());
            }
        }
    }
    noc.run_until_quiescent(1_000_000);
    for n in 0..16u16 {
        while let Some(d) = noc.poll_eject(NodeId(n)) {
            fp.push(d.msg.tag);
            fp.push(d.latency());
        }
    }
    let st = noc.stats();
    fp.extend([st.injected, st.delivered, st.flit_hops, st.latency.p99()]);
    fp
}

#[test]
fn same_seed_same_run() {
    assert_eq!(fingerprint(42), fingerprint(42));
}

#[test]
fn different_seed_different_run() {
    assert_ne!(fingerprint(1), fingerprint(2));
}

#[test]
fn full_system_experiments_are_deterministic() {
    // The heaviest end-to-end path: the E10 pipeline report, twice.
    let a = apiary_bench_free_run();
    let b = apiary_bench_free_run();
    assert_eq!(a, b);
}

/// A small deterministic system run mirroring the bench scenarios without
/// depending on the bench crate (kept self-contained on purpose).
fn apiary_bench_free_run() -> String {
    use apiary::accel::apps::echo::echo;
    use apiary::accel::apps::idle::idle;
    use apiary::core::{AppId, FaultPolicy, System, SystemConfig};
    use apiary::monitor::wire;

    let mut sys = System::new(SystemConfig::default());
    sys.install(NodeId(0), Box::new(idle()), AppId(1), FaultPolicy::FailStop)
        .expect("free");
    sys.install(
        NodeId(5),
        Box::new(echo(4)),
        AppId(1),
        FaultPolicy::FailStop,
    )
    .expect("free");
    let cap = sys.connect(NodeId(0), NodeId(5), false).expect("same app");
    sys.connect(NodeId(5), NodeId(0), false)
        .expect("reply path");
    let mut log = String::new();
    for tag in 0..20u64 {
        let now = sys.now();
        sys.tile_mut(NodeId(0))
            .monitor
            .send(
                cap,
                wire::KIND_REQUEST,
                tag,
                TrafficClass::Request,
                vec![tag as u8; (tag as usize * 7) % 100],
                now,
            )
            .expect("send accepted");
        sys.run_until_idle(100_000);
        let d = sys.tile_mut(NodeId(0)).monitor.recv().expect("reply");
        log.push_str(&format!("{}:{} ", d.msg.tag, sys.now().as_u64()));
    }
    log
}
