//! Cross-crate integration tests: full systems exercising several
//! subsystems at once (network + kernel + accelerators + memory).

use apiary::accel::apps::echo::echo;
use apiary::accel::apps::hash::{fnv1a, hasher};
use apiary::accel::apps::idle::idle;
use apiary::accel::{Accelerator, TileOs};
use apiary::core::{AppId, FaultPolicy, System, SystemConfig};
use apiary::monitor::wire;
use apiary::net::{EthernetTile, NetConfig, RequestGen, Workload};
use apiary::noc::{Delivered, NodeId, TrafficClass};

// ---------------------------------------------------------------------
// Hash service: verify payload integrity across the whole stack.
// ---------------------------------------------------------------------

#[test]
fn hash_service_digest_is_correct_end_to_end() {
    let mut sys = System::new(SystemConfig::default());
    let client = NodeId(0);
    let server = NodeId(10);
    sys.install(client, Box::new(idle()), AppId(1), FaultPolicy::FailStop)
        .expect("free");
    sys.install(server, Box::new(hasher()), AppId(1), FaultPolicy::FailStop)
        .expect("free");
    let cap = sys.connect(client, server, false).expect("same app");
    sys.connect(server, client, false).expect("reply path");

    let payload = b"the bytes to be hashed, crossing the NoC".to_vec();
    let now = sys.now();
    sys.tile_mut(client)
        .monitor
        .send(
            cap,
            wire::KIND_REQUEST,
            9,
            TrafficClass::Request,
            payload.clone(),
            now,
        )
        .expect("send accepted");
    assert!(sys.run_until_idle(100_000));
    let d = sys.tile_mut(client).monitor.recv().expect("digest");
    let digest = u64::from_le_bytes(d.msg.payload.as_slice().try_into().expect("8 bytes"));
    assert_eq!(digest, fnv1a(&payload));
}

// ---------------------------------------------------------------------
// Network service + reconfiguration: the MAC keeps serving clients while
// an unrelated tile is reconfigured.
// ---------------------------------------------------------------------

#[test]
fn mac_clients_survive_unrelated_reconfiguration() {
    let mut sys = System::new(SystemConfig::default());
    let mac_node = NodeId(0);
    let svc_node = NodeId(5);
    let churn_node = NodeId(9);

    let mut mac = EthernetTile::new(NetConfig::default());
    mac.add_client(
        RequestGen::new(
            1,
            80,
            64,
            Workload::Closed {
                outstanding: 2,
                think_cycles: 0,
            },
            5,
        )
        .with_max_requests(40),
    );
    sys.install(
        mac_node,
        Box::new(mac),
        apiary::core::process::OS_APP,
        FaultPolicy::FailStop,
    )
    .expect("free");
    sys.install(
        svc_node,
        Box::new(echo(16)),
        AppId(1),
        FaultPolicy::FailStop,
    )
    .expect("free");
    sys.install(
        churn_node,
        Box::new(echo(1)),
        AppId(2),
        FaultPolicy::FailStop,
    )
    .expect("free");
    let flow = sys.connect(mac_node, svc_node, false).expect("OS app");
    sys.connect(svc_node, mac_node, false).expect("reply path");
    sys.accel_as_mut::<EthernetTile>(mac_node)
        .expect("installed")
        .bind_flow(80, flow);

    // Kick off a reconfiguration of the unrelated tile mid-run.
    let mut reconfigured = false;
    for i in 0..5_000_000u64 {
        sys.tick();
        if i == 500 && !reconfigured {
            sys.reconfigure(
                churn_node,
                Box::new(hasher()),
                AppId(2),
                FaultPolicy::FailStop,
                64 << 10,
            )
            .expect("reconfigurable");
            reconfigured = true;
        }
        if sys
            .accel_as::<EthernetTile>(mac_node)
            .expect("installed")
            .all_done()
        {
            break;
        }
    }
    let mac = sys.accel_as::<EthernetTile>(mac_node).expect("installed");
    assert_eq!(mac.client(0).stats.completed, 40);
    assert_eq!(mac.client(0).stats.errors, 0);
    // The clients may finish before the bitstream does; let it land.
    sys.run(20_000);
    assert_eq!(sys.tile(churn_node).accel_name(), "hash");
}

// ---------------------------------------------------------------------
// An accelerator that uses the memory service from inside its own logic:
// write the request payload to DRAM, read it back, reply with the copy.
// Exercises the full monitor-checked, NoC-routed memory path driven by
// accelerator code.
// ---------------------------------------------------------------------

enum MemEchoState {
    Idle,
    Writing { req: Delivered },
    Reading { req: Delivered, len: u64 },
}

struct MemEcho {
    state: MemEchoState,
    served: u64,
}

impl MemEcho {
    fn new() -> MemEcho {
        MemEcho {
            state: MemEchoState::Idle,
            served: 0,
        }
    }
}

impl Accelerator for MemEcho {
    fn name(&self) -> &'static str {
        "mem-echo"
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }

    fn tick(&mut self, os: &mut dyn TileOs) {
        let mem = os.cap_env().get("mem").expect("granted at setup");
        match std::mem::replace(&mut self.state, MemEchoState::Idle) {
            MemEchoState::Idle => {
                if let Some(req) = os.recv() {
                    if req.msg.kind != wire::KIND_REQUEST {
                        return;
                    }
                    os.mem_write(mem, 0, &req.msg.payload, 1)
                        .expect("segment is large enough");
                    self.state = MemEchoState::Writing { req };
                }
            }
            MemEchoState::Writing { req } => {
                // Wait for the write ack.
                match os.recv() {
                    Some(d) if d.msg.kind == wire::KIND_MEM_REPLY => {
                        let len = req.msg.payload.len() as u64;
                        os.mem_read(mem, 0, len, 2).expect("in bounds");
                        self.state = MemEchoState::Reading { req, len };
                    }
                    _ => self.state = MemEchoState::Writing { req },
                }
            }
            MemEchoState::Reading { req, len } => match os.recv() {
                Some(d) if d.msg.kind == wire::KIND_MEM_REPLY => {
                    assert_eq!(d.msg.payload.len() as u64, len);
                    let _ = os.reply(
                        &req,
                        wire::KIND_RESPONSE,
                        TrafficClass::Request,
                        d.msg.payload,
                    );
                    self.served += 1;
                }
                _ => self.state = MemEchoState::Reading { req, len },
            },
        }
    }
}

#[test]
fn accelerator_driven_memory_roundtrip() {
    let mut sys = System::new(SystemConfig::default());
    let client = NodeId(0);
    let server = NodeId(6);
    sys.install(client, Box::new(idle()), AppId(1), FaultPolicy::FailStop)
        .expect("free");
    sys.install(
        server,
        Box::new(MemEcho::new()),
        AppId(1),
        FaultPolicy::FailStop,
    )
    .expect("free");
    let cap = sys.connect(client, server, false).expect("same app");
    sys.connect(server, client, false).expect("reply path");
    let mem_cap = sys.grant_memory(server, 8192).expect("space");
    sys.grant_env(server, "mem", mem_cap);

    let payload: Vec<u8> = (0..200u8).collect();
    let now = sys.now();
    sys.tile_mut(client)
        .monitor
        .send(
            cap,
            wire::KIND_REQUEST,
            7,
            TrafficClass::Request,
            payload.clone(),
            now,
        )
        .expect("send accepted");
    assert!(sys.run_until_idle(1_000_000));
    let d = sys.tile_mut(client).monitor.recv().expect("reply");
    assert_eq!(d.msg.payload, payload, "bytes round-tripped through DRAM");
    assert_eq!(d.msg.tag, 7);

    // The memory service actually saw the traffic.
    let memsvc = sys
        .accel_as::<apiary::core::memsvc::MemoryService>(sys.mem_node())
        .expect("boot service");
    assert_eq!(memsvc.writes, 1);
    assert_eq!(memsvc.reads, 1);
}

// ---------------------------------------------------------------------
// Tracing: the message layer is observable without accelerator help.
// ---------------------------------------------------------------------

#[test]
fn monitor_traces_capture_message_flow() {
    use apiary::monitor::{Monitor, MonitorConfig};
    use apiary::trace::EventKind;

    let mut sys = System::new(SystemConfig::default());
    let client = NodeId(0);
    let server = NodeId(5);
    sys.install(client, Box::new(idle()), AppId(1), FaultPolicy::FailStop)
        .expect("free");
    sys.install(server, Box::new(echo(2)), AppId(1), FaultPolicy::FailStop)
        .expect("free");
    // Enable a full trace ring on the client tile before wiring.
    sys.tile_mut(client).monitor = Monitor::new(
        client,
        MonitorConfig {
            trace_depth: 64,
            ..MonitorConfig::default()
        },
    );
    let cap = sys.connect(client, server, false).expect("same app");
    sys.connect(server, client, false).expect("reply path");

    let now = sys.now();
    sys.tile_mut(client)
        .monitor
        .send(
            cap,
            wire::KIND_REQUEST,
            3,
            TrafficClass::Request,
            vec![1],
            now,
        )
        .expect("send accepted");
    assert!(sys.run_until_idle(100_000));
    sys.tile_mut(client).monitor.recv().expect("reply");

    let tracer = sys.tile(client).monitor.tracer();
    assert_eq!(
        tracer.count(&EventKind::MsgSend {
            dst: 0,
            kind: 0,
            tag: 0,
            bytes: 0
        }),
        1
    );
    assert_eq!(
        tracer.count(&EventKind::MsgRecv {
            src: 0,
            kind: 0,
            tag: 0,
            bytes: 0
        }),
        1
    );
    let rendered = tracer.render();
    assert!(rendered.contains("send"), "{rendered}");
    assert!(rendered.contains("recv"), "{rendered}");
    assert!(rendered.contains("tag=3"), "{rendered}");
}

// ---------------------------------------------------------------------
// Service discovery: the registry tile resolves names over the NoC.
// ---------------------------------------------------------------------

#[test]
fn registry_resolves_service_names_over_the_noc() {
    use apiary::cap::ServiceId;
    use apiary::core::registry::{decode_lookup_reply, RegistryService};

    let mut sys = System::new(SystemConfig::default());
    let client = NodeId(0);
    let registry = NodeId(3);
    let kv_node = NodeId(9);
    sys.install(client, Box::new(idle()), AppId(1), FaultPolicy::FailStop)
        .expect("free");
    let mut reg = RegistryService::new();
    assert_eq!(reg.publish("kv-store", ServiceId(40), kv_node), None);
    assert_eq!(reg.publish("video", ServiceId(41), NodeId(1)), None);
    sys.install(
        registry,
        Box::new(reg),
        apiary::core::process::OS_APP,
        FaultPolicy::FailStop,
    )
    .expect("free");
    let cap = sys.connect(client, registry, false).expect("OS service");
    sys.connect(registry, client, false).expect("reply path");

    let now = sys.now();
    sys.tile_mut(client)
        .monitor
        .send(
            cap,
            wire::KIND_LOOKUP,
            1,
            TrafficClass::Control,
            b"kv-store".to_vec(),
            now,
        )
        .expect("send accepted");
    assert!(sys.run_until_idle(100_000));
    let d = sys.tile_mut(client).monitor.recv().expect("reply");
    assert_eq!(d.msg.kind, wire::KIND_LOOKUP_REPLY);
    assert_eq!(
        decode_lookup_reply(&d.msg.payload),
        Some(Some((ServiceId(40), kv_node)))
    );

    // With the discovered id in hand, the kernel can bind the name and the
    // client reaches the service through a *service* capability (§4.3).
    sys.install(kv_node, Box::new(echo(2)), AppId(1), FaultPolicy::FailStop)
        .expect("free");
    let svc_cap = sys
        .bind_service(client, ServiceId(40), kv_node)
        .expect("bindable");
    sys.connect(kv_node, client, false).expect("reply path");
    let now = sys.now();
    sys.tile_mut(client)
        .monitor
        .send(
            svc_cap,
            wire::KIND_REQUEST,
            2,
            TrafficClass::Request,
            vec![7],
            now,
        )
        .expect("service cap resolves");
    assert!(sys.run_until_idle(100_000));
    let d = sys.tile_mut(client).monitor.recv().expect("served");
    assert_eq!(d.msg.payload, vec![7]);
    assert_eq!(d.msg.src, kv_node);
}

#[test]
fn merged_trace_interleaves_tiles_in_time_order() {
    use apiary::monitor::{Monitor, MonitorConfig};

    let mut sys = System::new(SystemConfig::default());
    let client = NodeId(0);
    let server = NodeId(5);
    sys.install(client, Box::new(idle()), AppId(1), FaultPolicy::FailStop)
        .expect("free");
    sys.install(server, Box::new(echo(2)), AppId(1), FaultPolicy::FailStop)
        .expect("free");
    for n in [client, server] {
        sys.tile_mut(n).monitor = Monitor::new(
            n,
            MonitorConfig {
                trace_depth: 64,
                ..MonitorConfig::default()
            },
        );
    }
    let cap = sys.connect(client, server, false).expect("same app");
    sys.connect(server, client, false).expect("reply path");
    for tag in 0..3 {
        let now = sys.now();
        sys.tile_mut(client)
            .monitor
            .send(
                cap,
                wire::KIND_REQUEST,
                tag,
                TrafficClass::Request,
                vec![1],
                now,
            )
            .expect("send accepted");
        sys.run_until_idle(100_000);
        sys.tile_mut(client).monitor.recv().expect("reply");
    }
    let trace = sys.merged_trace();
    // Both tiles contributed, and events are time-sorted.
    assert!(trace.iter().any(|e| e.tile == client.0));
    assert!(trace.iter().any(|e| e.tile == server.0));
    assert!(trace.windows(2).all(|w| w[0].at <= w[1].at));
    // The causal order of one request is visible: client send precedes
    // server recv precedes server send precedes client recv.
    let kinds: Vec<(u16, &str)> = trace.iter().map(|e| (e.tile, e.kind.name())).collect();
    let first_client_send = kinds
        .iter()
        .position(|k| *k == (client.0, "send"))
        .expect("present");
    let first_server_recv = kinds
        .iter()
        .position(|k| *k == (server.0, "recv"))
        .expect("present");
    assert!(first_client_send < first_server_recv);
}
