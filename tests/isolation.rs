//! Isolation invariants under randomized configurations (property tests
//! spanning the kernel, monitors, capabilities and the NoC).

use apiary::accel::apps::echo::echo;
use apiary::accel::apps::idle::idle;
use apiary::core::{AppId, FaultPolicy, System, SystemConfig};
use apiary::monitor::wire;
use apiary::noc::{NodeId, TrafficClass};
use proptest::prelude::*;

/// A random system layout: which of tiles 0..14 host accelerators and to
/// which application they belong (tile 15 is the memory service).
#[derive(Debug, Clone)]
struct Layout {
    apps: Vec<(u16, u32)>,         // (node, app)
    connects: Vec<(usize, usize)>, // indices into apps; same-app only wiring.
}

fn arb_layout() -> impl Strategy<Value = Layout> {
    (
        prop::collection::vec((0u16..15, 1u32..4), 2..10),
        prop::collection::vec((any::<usize>(), any::<usize>()), 0..12),
    )
        .prop_map(|(mut apps, connects)| {
            apps.sort_by_key(|(n, _)| *n);
            apps.dedup_by_key(|(n, _)| *n);
            Layout { apps, connects }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Whatever the layout, a tile can only get a message to tiles the
    /// kernel connected it to, and implicit cross-app connects are refused.
    #[test]
    fn authority_matches_kernel_wiring(layout in arb_layout(), payload in 0usize..200) {
        let mut sys = System::new(SystemConfig::default());
        for &(node, app) in &layout.apps {
            // Inert occupants: deliveries stay in the inbox and are
            // counted, with no replies that could ping-pong.
            sys.install(NodeId(node), Box::new(idle()), AppId(app), FaultPolicy::FailStop)
                .expect("slots are deduped");
        }
        // Attempt the random connects without allow_cross_app.
        let mut granted: Vec<(u16, u16, apiary::cap::CapRef)> = Vec::new();
        for &(i, j) in &layout.connects {
            if layout.apps.is_empty() { continue; }
            let (from, fa) = layout.apps[i % layout.apps.len()];
            let (to, ta) = layout.apps[j % layout.apps.len()];
            match sys.connect(NodeId(from), NodeId(to), false) {
                Ok(cap) => {
                    prop_assert_eq!(fa, ta, "cross-app connect must be refused");
                    granted.push((from, to, cap));
                }
                Err(e) => {
                    prop_assert!(
                        fa != ta,
                        "same-app connect refused unexpectedly: {e}"
                    );
                }
            }
        }
        // Granted capabilities deliver; everything else has no path at all.
        for (k, &(from, to, cap)) in granted.iter().enumerate() {
            let now = sys.now();
            sys.tile_mut(NodeId(from)).monitor
                .send(cap, wire::KIND_REQUEST, k as u64, TrafficClass::Request,
                      vec![0xEE; payload], now)
                .expect("granted capability must work");
            let _ = to;
        }
        sys.run_until_idle(500_000);
        // Count deliveries: every tile's received count must equal the
        // number of grants targeting it — nothing more ever arrives.
        for &(node, _) in &layout.apps {
            let expected = granted.iter().filter(|(_, to, _)| *to == node).count() as u64;
            let got = sys.tile(NodeId(node)).monitor.stats().received;
            prop_assert_eq!(got, expected, "tile {} deliveries", node);
        }
    }

    /// Revocation is immediate: after the kernel revokes, no further
    /// message gets through, no matter how many were sent before.
    #[test]
    fn revocation_is_immediate(before in 1u64..8, after in 1u64..8) {
        let mut sys = System::new(SystemConfig::default());
        sys.install(NodeId(0), Box::new(idle()), AppId(1), FaultPolicy::FailStop)
            .expect("free");
        sys.install(NodeId(5), Box::new(echo(1)), AppId(1), FaultPolicy::FailStop)
            .expect("free");
        let cap = sys.connect(NodeId(0), NodeId(5), false).expect("same app");
        sys.connect(NodeId(5), NodeId(0), false).expect("reply path");

        for tag in 0..before {
            let now = sys.now();
            sys.tile_mut(NodeId(0)).monitor
                .send(cap, wire::KIND_REQUEST, tag, TrafficClass::Request, vec![1], now)
                .expect("live capability");
            sys.run_until_idle(100_000);
        }
        sys.tile_mut(NodeId(0)).monitor.revoke_cap(cap).expect("live");
        for tag in 0..after {
            let now = sys.now();
            let err = sys.tile_mut(NodeId(0)).monitor
                .send(cap, wire::KIND_REQUEST, before + tag, TrafficClass::Request, vec![1], now)
                .expect_err("revoked");
            prop_assert!(matches!(err, apiary::monitor::SendError::Cap(_)));
        }
        sys.run_until_idle(100_000);
        prop_assert_eq!(sys.tile(NodeId(5)).monitor.stats().received, before);
    }
}

/// Replays one concrete layout against the `authority_matches_kernel_wiring`
/// invariant with plain asserts (no proptest machinery involved).
fn assert_authority_matches_wiring(layout: &Layout, payload: usize) {
    let mut sys = System::new(SystemConfig::default());
    for &(node, app) in &layout.apps {
        sys.install(
            NodeId(node),
            Box::new(idle()),
            AppId(app),
            FaultPolicy::FailStop,
        )
        .expect("slots are deduped");
    }
    let mut granted: Vec<(u16, u16, apiary::cap::CapRef)> = Vec::new();
    for &(i, j) in &layout.connects {
        if layout.apps.is_empty() {
            continue;
        }
        let (from, fa) = layout.apps[i % layout.apps.len()];
        let (to, ta) = layout.apps[j % layout.apps.len()];
        match sys.connect(NodeId(from), NodeId(to), false) {
            Ok(cap) => {
                assert_eq!(fa, ta, "cross-app connect must be refused");
                granted.push((from, to, cap));
            }
            Err(e) => {
                assert!(fa != ta, "same-app connect refused unexpectedly: {e}");
            }
        }
    }
    for (k, &(from, _, cap)) in granted.iter().enumerate() {
        let now = sys.now();
        sys.tile_mut(NodeId(from))
            .monitor
            .send(
                cap,
                wire::KIND_REQUEST,
                k as u64,
                TrafficClass::Request,
                vec![0xEE; payload],
                now,
            )
            .expect("granted capability must work");
    }
    sys.run_until_idle(500_000);
    for &(node, _) in &layout.apps {
        let expected = granted.iter().filter(|(_, to, _)| *to == node).count() as u64;
        let got = sys.tile(NodeId(node)).monitor.stats().received;
        assert_eq!(got, expected, "tile {node} deliveries");
    }
}

// The three named regressions below are shrunk counterexamples proptest
// found historically (see `isolation.proptest-regressions`), pinned as
// always-run deterministic tests so the cases survive even where the
// regression file is not picked up.

/// Six same-app tiles, one connect whose huge random indices wrap onto
/// valid slots — connect index reduction modulo `apps.len()`.
#[test]
fn regression_wrapped_connect_indices_deliver_exactly_once() {
    assert_authority_matches_wiring(
        &Layout {
            apps: vec![(0, 1), (1, 1), (2, 1), (3, 1), (4, 1), (7, 1)],
            connects: vec![(9981102113195967758, 12079719831914863952)],
        },
        15,
    );
}

/// A wrapped connect landing on a (from == to) self-pair within one app:
/// loopback wiring must still deliver exactly once.
#[test]
fn regression_self_connect_counts_one_delivery() {
    assert_authority_matches_wiring(
        &Layout {
            apps: vec![(0, 1), (3, 1), (4, 1), (5, 1), (6, 1), (7, 1)],
            connects: vec![(6429280465722596886, 6091508379920084856)],
        },
        70,
    );
}

/// A single-tile layout where every connect index maps to tile 0: the
/// degenerate one-node case with a loopback capability.
#[test]
fn regression_single_tile_loopback() {
    assert_authority_matches_wiring(
        &Layout {
            apps: vec![(0, 1)],
            connects: vec![(0, 500833828703671)],
        },
        103,
    );
}

/// Non-property regression: a fail-stopped tile's in-flight inbox never
/// leaks to the replacement accelerator after reconfiguration.
#[test]
fn reconfiguration_does_not_leak_old_traffic() {
    let mut sys = System::new(SystemConfig::default());
    sys.install(NodeId(0), Box::new(idle()), AppId(1), FaultPolicy::FailStop)
        .expect("free");
    sys.install(NodeId(5), Box::new(idle()), AppId(1), FaultPolicy::FailStop)
        .expect("free");
    let cap = sys.connect(NodeId(0), NodeId(5), false).expect("same app");

    // Park several messages in n5's inbox (idle never reads them).
    for tag in 0..5 {
        let now = sys.now();
        sys.tile_mut(NodeId(0))
            .monitor
            .send(
                cap,
                wire::KIND_REQUEST,
                tag,
                TrafficClass::Request,
                vec![0x5E; 32],
                now,
            )
            .expect("send accepted");
    }
    sys.run_until_idle(100_000);
    assert_eq!(sys.tile(NodeId(5)).monitor.inbox_len(), 5);

    // Reconfigure n5 under a different application.
    let done = sys
        .reconfigure(
            NodeId(5),
            Box::new(echo(1)),
            AppId(2),
            FaultPolicy::FailStop,
            4096,
        )
        .expect("reconfigurable");
    let wait = done - sys.now();
    sys.run(wait + 2);

    // The new occupant sees an empty inbox: the old app's data is gone.
    assert_eq!(sys.tile(NodeId(5)).monitor.inbox_len(), 0);
    assert_eq!(sys.tile(NodeId(5)).accel_name(), "echo");
}
