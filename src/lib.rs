//! # Apiary
//!
//! A faithful, executable reproduction of *"Apiary: An OS for the Modern
//! FPGA"* (HotOS '25): a microkernel operating system implemented in
//! hardware on a network-attached FPGA, simulated cycle-by-cycle in Rust.
//!
//! Apiary structures an FPGA as a mesh of **tiles**. Each tile pairs an
//! untrusted accelerator (dynamic region) with a trusted **monitor**
//! (static region); tiles communicate only by **message passing** over a
//! **Network-on-Chip**. The monitor interposes on every message and
//! enforces **capabilities** — for endpoints, logical services, and
//! **memory segments** — giving mutually distrusting applications
//! isolation, rate limiting, fault containment (fail-stop or preemption)
//! and portable OS services (memory, networking) without any host CPU on
//! the data path.
//!
//! ## Crate map
//!
//! | Crate | Contents |
//! |---|---|
//! | [`sim`] | Cycle clock, deterministic event queue, PRNG, statistics |
//! | [`noc`] | Flit-accurate 2D-mesh NoC: wormhole, VCs, credits, QoS |
//! | [`cap`] | Capabilities: rights, partitioned tables, derive/revoke |
//! | [`mem`] | Segment allocators, paging baseline, bounds checks, DRAM |
//! | [`monitor`] | The per-tile monitor and its hardware area model |
//! | [`core`] | The kernel: tiles, system, fault policies, reconfiguration |
//! | [`cluster`] | Multi-board scale-out: gossip directory, balancing, migration |
//! | [`faas`] | Serverless plane: functions, bitstream caches, autoscaling |
//! | [`accel`] | Accelerator framework + library (video, LZ, KV, …) |
//! | [`net`] | Network service: MAC tile, wire, clients, go-back-N ARQ |
//! | [`host`] | Host-mediated baselines (Coyote/AmorphOS-like) + energy |
//! | [`resources`] | FPGA part catalog (Table 1) and tile floor-planning |
//! | [`trace`] | Message-layer tracing and latency tracking |
//!
//! ## Quickstart
//!
//! ```
//! use apiary::core::{AppId, FaultPolicy, System, SystemConfig};
//! use apiary::accel::apps::echo::echo;
//! use apiary::accel::apps::idle::idle;
//! use apiary::monitor::wire;
//! use apiary::noc::{NodeId, TrafficClass};
//!
//! // Boot a 4x4 Apiary with a memory-service tile.
//! let mut sys = System::new(SystemConfig::default());
//!
//! // Install a client slot and an echo service under one application.
//! sys.install(NodeId(0), Box::new(idle()), AppId(1), FaultPolicy::FailStop).unwrap();
//! sys.install(NodeId(5), Box::new(echo(8)), AppId(1), FaultPolicy::FailStop).unwrap();
//!
//! // Establish IPC explicitly, in both directions.
//! let cap = sys.connect(NodeId(0), NodeId(5), false).unwrap();
//! sys.connect(NodeId(5), NodeId(0), false).unwrap();
//!
//! // Send a request through the capability and run the machine.
//! let now = sys.now();
//! sys.tile_mut(NodeId(0)).monitor
//!     .send(cap, wire::KIND_REQUEST, 1, TrafficClass::Request, b"ping".to_vec(), now)
//!     .unwrap();
//! sys.run_until_idle(100_000);
//!
//! let reply = sys.tile_mut(NodeId(0)).monitor.recv().expect("echoed");
//! assert_eq!(reply.msg.payload, b"ping");
//! ```

pub use apiary_accel as accel;
pub use apiary_cap as cap;
pub use apiary_cluster as cluster;
pub use apiary_core as core;
pub use apiary_faas as faas;
pub use apiary_host as host;
pub use apiary_mem as mem;
pub use apiary_monitor as monitor;
pub use apiary_net as net;
pub use apiary_noc as noc;
pub use apiary_resources as resources;
pub use apiary_sim as sim;
pub use apiary_trace as trace;
