//! Property-based tests for the DRAM timing model.

use apiary_mem::{DramConfig, DramModel};
use apiary_sim::Cycle;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Completions never precede issue, and accesses to the *same bank*
    /// complete in issue order (the bank serialises).
    #[test]
    fn per_bank_completions_are_ordered(
        accesses in prop::collection::vec((0u64..4, 0u64..(1 << 22), 1u64..2_048), 1..100),
    ) {
        let cfg = DramConfig::default();
        let mut m = DramModel::new(cfg);
        let mut now = Cycle::ZERO;
        let bank_of = |addr: u64| (addr / cfg.row_bytes) % cfg.banks as u64;
        let mut last_done: std::collections::HashMap<u64, Cycle> =
            std::collections::HashMap::new();
        for (gap, addr, len) in accesses {
            now += gap;
            let done = m.access(now, addr, len);
            prop_assert!(done > now, "completion {done} not after issue {now}");
            let b = bank_of(addr);
            if let Some(prev) = last_done.get(&b) {
                prop_assert!(done > *prev, "bank {b} reordered: {done} <= {prev}");
            }
            last_done.insert(b, done);
        }
    }

    /// The stats triple partitions all accesses.
    #[test]
    fn stats_partition_accesses(
        accesses in prop::collection::vec((0u64..(1 << 20), 1u64..512), 1..200),
    ) {
        let mut m = DramModel::new(DramConfig::default());
        let mut now = Cycle::ZERO;
        for (addr, len) in &accesses {
            now = m.access(now, *addr, *len);
        }
        let (h, mi, c) = m.stats();
        prop_assert_eq!(h + mi + c, accesses.len() as u64);
    }

    /// Row-buffer locality can only help: a sorted (sequential) traversal
    /// of the same accesses never finishes later than a reversed-stride
    /// traversal of identical requests.
    #[test]
    fn locality_is_never_penalised(
        mut addrs in prop::collection::vec(0u64..(1 << 20), 2..100),
    ) {
        addrs.sort_unstable();
        let mut seq = DramModel::new(DramConfig::default());
        let mut t_seq = Cycle::ZERO;
        for &a in &addrs {
            t_seq = seq.access(t_seq, a, 64);
        }
        // Same multiset, maximally row-hostile order (alternate ends).
        let mut hostile_order = Vec::with_capacity(addrs.len());
        let (mut lo, mut hi) = (0usize, addrs.len() - 1);
        while lo <= hi {
            hostile_order.push(addrs[lo]);
            if lo != hi {
                hostile_order.push(addrs[hi]);
            }
            lo += 1;
            if hi == 0 { break; }
            hi -= 1;
        }
        let mut hostile = DramModel::new(DramConfig::default());
        let mut t_hostile = Cycle::ZERO;
        for &a in &hostile_order {
            t_hostile = hostile.access(t_hostile, a, 64);
        }
        prop_assert!(t_seq <= t_hostile, "sequential {t_seq} > hostile {t_hostile}");
    }
}
