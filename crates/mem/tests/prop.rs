//! Property-based tests for the memory allocators.
//!
//! Invariants:
//!
//! 1. Live segments never overlap and always lie inside the arena.
//! 2. Free/used byte accounting is exact under any alloc/free interleaving.
//! 3. Freeing everything returns the allocator to one fully coalesced block.
//! 4. The buddy allocator's blocks are aligned to their size.

use apiary_cap::MemRange;
use apiary_mem::{AllocPolicy, BuddyAllocator, PagedMmu, SegmentAllocator};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Alloc(u64),
    Free(usize),
}

fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        prop_oneof![
            (1u64..5000).prop_map(Op::Alloc),
            any::<usize>().prop_map(Op::Free),
        ],
        1..80,
    )
}

fn check_no_overlap(live: &[MemRange], total: u64) {
    for (i, a) in live.iter().enumerate() {
        assert!(a.end() <= total, "{a} escapes arena");
        for b in live.iter().skip(i + 1) {
            assert!(!a.overlaps(b), "{a} overlaps {b}");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn segment_allocator_invariants(ops in arb_ops(), best_fit in any::<bool>()) {
        let total = 64 * 1024u64;
        let policy = if best_fit { AllocPolicy::BestFit } else { AllocPolicy::FirstFit };
        let mut a = SegmentAllocator::new(total, policy);
        let mut live: Vec<MemRange> = Vec::new();
        let mut used = 0u64;

        for op in ops {
            match op {
                Op::Alloc(len) => {
                    if let Ok(seg) = a.alloc(len) {
                        prop_assert_eq!(seg.len, len);
                        live.push(seg);
                        used += len;
                    }
                }
                Op::Free(i) => {
                    if live.is_empty() { continue; }
                    let seg = live.swap_remove(i % live.len());
                    a.free(seg).expect("live segment must free");
                    used -= seg.len;
                }
            }
            check_no_overlap(&live, total);
            let st = a.stats();
            prop_assert_eq!(st.used, used);
            prop_assert_eq!(st.free, total - used);
            prop_assert_eq!(st.live_segments, live.len());
        }

        // Drain everything: one coalesced block remains.
        for seg in live.drain(..) {
            a.free(seg).expect("live");
        }
        let st = a.stats();
        prop_assert_eq!(st.free, total);
        prop_assert_eq!(st.free_blocks, 1);
        prop_assert!(st.external_fragmentation.abs() < 1e-12);
    }

    #[test]
    fn buddy_allocator_invariants(ops in arb_ops()) {
        let mut b = BuddyAllocator::new(64, 10); // 64 KiB arena.
        let total = b.total();
        let mut live: Vec<MemRange> = Vec::new();

        for op in ops {
            match op {
                Op::Alloc(len) => {
                    if let Ok(seg) = b.alloc(len) {
                        prop_assert!(seg.len >= len);
                        prop_assert!(seg.len.is_power_of_two());
                        // Buddy blocks are naturally aligned to their size.
                        prop_assert_eq!(seg.base % seg.len, 0);
                        live.push(seg);
                    }
                }
                Op::Free(i) => {
                    if live.is_empty() { continue; }
                    let seg = live.swap_remove(i % live.len());
                    b.free(seg).expect("live block must free");
                }
            }
            check_no_overlap(&live, total);
            let allocated: u64 = live.iter().map(|s| s.len).sum();
            prop_assert_eq!(b.free_bytes(), total - allocated);
        }

        for seg in live.drain(..) {
            b.free(seg).expect("live");
        }
        prop_assert_eq!(b.free_bytes(), total);
        // Fully merged: the whole arena is allocatable again.
        prop_assert!(b.alloc(total).is_ok());
    }

    #[test]
    fn paging_accounting_is_exact(ops in arb_ops()) {
        let page = 4096u64;
        let mut mmu = PagedMmu::new(page, 64, 16, 50);
        let mut live: Vec<MemRange> = Vec::new();

        for op in ops {
            match op {
                Op::Alloc(len) => {
                    if let Ok(r) = mmu.map(len) {
                        prop_assert_eq!(r.len, len);
                        live.push(r);
                    }
                }
                Op::Free(i) => {
                    if live.is_empty() { continue; }
                    let r = live.swap_remove(i % live.len());
                    mmu.unmap(r).expect("live mapping must unmap");
                }
            }
            let requested: u64 = live.iter().map(|r| r.len).sum();
            let pages: u64 = live.iter().map(|r| r.len.div_ceil(page)).sum();
            prop_assert_eq!(mmu.requested_bytes(), requested);
            prop_assert_eq!(mmu.mapped_bytes(), pages * page);
            prop_assert_eq!(mmu.internal_fragmentation(), pages * page - requested);
            // Every live byte translates; translations stay inside the pool.
            for r in &live {
                let (pa, _) = mmu.translate(r.base).expect("mapped");
                prop_assert!(pa < 64 * page);
            }
        }
    }

    /// Segments hand back exactly the bytes asked for; pages round up.
    /// Whatever the workload, paging's physical footprint dominates the
    /// segment allocator's for the same requests (E7's core inequality).
    #[test]
    fn paging_never_beats_segments_on_footprint(
        lens in prop::collection::vec(1u64..20_000, 1..30)
    ) {
        let mut seg = SegmentAllocator::new(1 << 30, AllocPolicy::FirstFit);
        let mut mmu = PagedMmu::new(4096, 1 << 18, 16, 50);
        let mut seg_used = 0u64;
        for len in &lens {
            if seg.alloc(*len).is_ok() {
                seg_used += len;
            }
            let _ = mmu.map(*len);
        }
        prop_assert!(mmu.mapped_bytes() >= seg_used);
    }
}
