//! The paging baseline: a page-granular MMU with TLB and walk latency.
//!
//! Previous FPGA shells (Coyote, Optimus-style designs) borrowed CPU paging
//! for FPGA memory virtualisation. The paper argues (§4.6) this buys Apiary
//! nothing: page sizes constrain allocation granularity (internal
//! fragmentation / stranding) and translation adds TLB-miss latency on the
//! data path. This module implements that baseline honestly so E7 can
//! compare it against segments.

use apiary_cap::MemRange;
use core::fmt;

/// Errors from the paging MMU.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PagingError {
    /// Out of physical frames.
    OutOfFrames {
        /// Frames requested.
        requested: u64,
        /// Frames available.
        available: u64,
    },
    /// Zero-length request.
    ZeroLength,
    /// Virtual address not mapped.
    NotMapped {
        /// The faulting virtual address.
        vaddr: u64,
    },
    /// Unmap of a range that is not exactly a prior allocation.
    BadUnmap,
}

impl fmt::Display for PagingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PagingError::OutOfFrames {
                requested,
                available,
            } => write!(f, "out of frames: need {requested}, have {available}"),
            PagingError::ZeroLength => write!(f, "zero-length mapping"),
            PagingError::NotMapped { vaddr } => write!(f, "page fault at {vaddr:#x}"),
            PagingError::BadUnmap => write!(f, "unmap of unknown range"),
        }
    }
}

impl std::error::Error for PagingError {}

/// A single-level-of-detail TLB cost model: a fully associative TLB with
/// pseudo-LRU replacement, a 1-cycle hit and a configurable miss penalty.
#[derive(Debug, Clone)]
pub struct TlbModel {
    entries: usize,
    miss_penalty: u64,
    /// Resident virtual page numbers in LRU order (front = most recent).
    resident: Vec<u64>,
    hits: u64,
    misses: u64,
}

impl TlbModel {
    /// Creates a TLB with `entries` slots and the given miss penalty
    /// (page-walk cycles against on-card DRAM; tens to hundreds of cycles).
    pub fn new(entries: usize, miss_penalty: u64) -> TlbModel {
        TlbModel {
            entries,
            miss_penalty,
            resident: Vec::new(),
            hits: 0,
            misses: 0,
        }
    }

    /// Touches a virtual page number; returns the translation latency in
    /// cycles (1 on hit, `1 + miss_penalty` on miss).
    pub fn access(&mut self, vpn: u64) -> u64 {
        if let Some(pos) = self.resident.iter().position(|&v| v == vpn) {
            self.resident.remove(pos);
            self.resident.insert(0, vpn);
            self.hits += 1;
            1
        } else {
            self.resident.insert(0, vpn);
            if self.resident.len() > self.entries {
                self.resident.pop();
            }
            self.misses += 1;
            1 + self.miss_penalty
        }
    }

    /// Drops a translation (on unmap).
    pub fn invalidate(&mut self, vpn: u64) {
        self.resident.retain(|&v| v != vpn);
    }

    /// (hits, misses) so far.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }
}

/// A page-granular MMU over a fixed pool of physical frames.
///
/// Allocations round up to whole pages; the difference between bytes asked
/// for and bytes of frames consumed is the internal fragmentation that
/// experiment E7 charges against paging.
///
/// # Examples
///
/// ```
/// use apiary_mem::PagedMmu;
///
/// // 4 KiB pages, 1 MiB of physical memory, 16-entry TLB, 60-cycle walks.
/// let mut mmu = PagedMmu::new(4096, 256, 16, 60);
/// let va = mmu.map(5000).expect("frames available");
/// assert_eq!(mmu.mapped_bytes(), 8192, "5000 B costs two 4 KiB pages");
/// let (_pa, lat) = mmu.translate(va.base).expect("mapped");
/// assert!(lat >= 1);
/// ```
#[derive(Debug, Clone)]
pub struct PagedMmu {
    page_size: u64,
    /// Free physical frame numbers.
    free_frames: Vec<u64>,
    total_frames: u64,
    /// vpn -> pfn.
    page_table: std::collections::BTreeMap<u64, u64>,
    /// Allocations: (virtual base, requested_len, pages).
    live: Vec<(u64, u64, u64)>,
    next_vpn: u64,
    tlb: TlbModel,
    requested_bytes: u64,
}

impl PagedMmu {
    /// Creates an MMU with `frames` physical frames of `page_size` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `page_size` is not a power of two.
    pub fn new(page_size: u64, frames: u64, tlb_entries: usize, walk_cycles: u64) -> PagedMmu {
        assert!(
            page_size.is_power_of_two(),
            "page size must be a power of two"
        );
        PagedMmu {
            page_size,
            free_frames: (0..frames).rev().collect(),
            total_frames: frames,
            page_table: std::collections::BTreeMap::new(),
            live: Vec::new(),
            next_vpn: 0,
            tlb: TlbModel::new(tlb_entries, walk_cycles),
            requested_bytes: 0,
        }
    }

    /// Page size in bytes.
    pub fn page_size(&self) -> u64 {
        self.page_size
    }

    /// Maps `len` bytes of fresh memory; returns the virtual range.
    ///
    /// # Errors
    ///
    /// [`PagingError::ZeroLength`] or [`PagingError::OutOfFrames`].
    pub fn map(&mut self, len: u64) -> Result<MemRange, PagingError> {
        if len == 0 {
            return Err(PagingError::ZeroLength);
        }
        let pages = len.div_ceil(self.page_size);
        if (self.free_frames.len() as u64) < pages {
            return Err(PagingError::OutOfFrames {
                requested: pages,
                available: self.free_frames.len() as u64,
            });
        }
        let base_vpn = self.next_vpn;
        self.next_vpn += pages;
        for i in 0..pages {
            let pfn = self.free_frames.pop().expect("count checked above");
            self.page_table.insert(base_vpn + i, pfn);
        }
        self.live.push((base_vpn * self.page_size, len, pages));
        self.requested_bytes += len;
        Ok(MemRange::new(base_vpn * self.page_size, len))
    }

    /// Unmaps a range previously returned by [`PagedMmu::map`].
    ///
    /// # Errors
    ///
    /// [`PagingError::BadUnmap`] if the range is not a live mapping.
    pub fn unmap(&mut self, range: MemRange) -> Result<(), PagingError> {
        let pos = self
            .live
            .iter()
            .position(|&(b, l, _)| b == range.base && l == range.len)
            .ok_or(PagingError::BadUnmap)?;
        let (vbase, len, pages) = self.live.remove(pos);
        let base_vpn = vbase / self.page_size;
        for i in 0..pages {
            if let Some(pfn) = self.page_table.remove(&(base_vpn + i)) {
                self.free_frames.push(pfn);
                self.tlb.invalidate(base_vpn + i);
            }
        }
        self.requested_bytes -= len;
        Ok(())
    }

    /// Translates a virtual address; returns `(physical address, latency)`.
    ///
    /// # Errors
    ///
    /// [`PagingError::NotMapped`] on a page fault.
    pub fn translate(&mut self, vaddr: u64) -> Result<(u64, u64), PagingError> {
        let vpn = vaddr / self.page_size;
        let off = vaddr % self.page_size;
        let pfn = *self
            .page_table
            .get(&vpn)
            .ok_or(PagingError::NotMapped { vaddr })?;
        let lat = self.tlb.access(vpn);
        Ok((pfn * self.page_size + off, lat))
    }

    /// Bytes of physical memory consumed (whole pages).
    pub fn mapped_bytes(&self) -> u64 {
        (self.total_frames - self.free_frames.len() as u64) * self.page_size
    }

    /// Bytes actually requested by callers.
    pub fn requested_bytes(&self) -> u64 {
        self.requested_bytes
    }

    /// Internal fragmentation: page-rounded bytes minus requested bytes.
    pub fn internal_fragmentation(&self) -> u64 {
        self.mapped_bytes() - self.requested_bytes
    }

    /// TLB (hits, misses).
    pub fn tlb_stats(&self) -> (u64, u64) {
        self.tlb.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_rounds_to_pages() {
        let mut mmu = PagedMmu::new(4096, 16, 8, 50);
        let r = mmu.map(1).expect("frames");
        assert_eq!(r.len, 1);
        assert_eq!(mmu.mapped_bytes(), 4096);
        assert_eq!(mmu.internal_fragmentation(), 4095);
    }

    #[test]
    fn out_of_frames() {
        let mut mmu = PagedMmu::new(4096, 2, 8, 50);
        mmu.map(8192).expect("fits exactly");
        assert!(matches!(mmu.map(1), Err(PagingError::OutOfFrames { .. })));
    }

    #[test]
    fn translate_hits_and_misses() {
        let mut mmu = PagedMmu::new(4096, 16, 4, 50);
        let r = mmu.map(4096 * 8).expect("frames");
        // First touch of each page misses.
        let (_, lat) = mmu.translate(r.base).expect("mapped");
        assert_eq!(lat, 51);
        // Immediate retouch hits.
        let (_, lat) = mmu.translate(r.base + 8).expect("mapped");
        assert_eq!(lat, 1);
        // Touch 8 pages with a 4-entry TLB, then re-touch the first: miss.
        for i in 0..8 {
            mmu.translate(r.base + i * 4096).expect("mapped");
        }
        let (_, lat) = mmu.translate(r.base).expect("mapped");
        assert_eq!(lat, 51);
    }

    #[test]
    fn unmap_releases_frames_and_faults() {
        let mut mmu = PagedMmu::new(4096, 4, 8, 50);
        let r = mmu.map(4096 * 3).expect("frames");
        mmu.unmap(r).expect("live");
        assert_eq!(mmu.mapped_bytes(), 0);
        assert!(matches!(
            mmu.translate(r.base),
            Err(PagingError::NotMapped { .. })
        ));
        // Frames are reusable.
        mmu.map(4096 * 4).expect("all frames back");
    }

    #[test]
    fn translation_is_consistent() {
        let mut mmu = PagedMmu::new(4096, 32, 16, 50);
        let r = mmu.map(4096 * 4 + 100).expect("frames");
        let (pa1, _) = mmu.translate(r.base + 5).expect("mapped");
        let (pa2, _) = mmu.translate(r.base + 5).expect("mapped");
        assert_eq!(pa1, pa2);
        // Same page, different offset: same frame.
        let (pa3, _) = mmu.translate(r.base + 6).expect("mapped");
        assert_eq!(pa3, pa1 + 1);
    }

    #[test]
    fn bad_unmap_rejected() {
        let mut mmu = PagedMmu::new(4096, 8, 8, 50);
        let r = mmu.map(4096).expect("frames");
        assert_eq!(
            mmu.unmap(MemRange::new(r.base, r.len + 1)),
            Err(PagingError::BadUnmap)
        );
        mmu.unmap(r).expect("live");
        assert_eq!(mmu.unmap(r), Err(PagingError::BadUnmap));
    }

    #[test]
    fn zero_length_rejected() {
        let mut mmu = PagedMmu::new(4096, 8, 8, 50);
        assert_eq!(mmu.map(0), Err(PagingError::ZeroLength));
    }

    #[test]
    fn tlb_lru_behaviour() {
        let mut tlb = TlbModel::new(2, 10);
        assert_eq!(tlb.access(1), 11); // miss
        assert_eq!(tlb.access(2), 11); // miss
        assert_eq!(tlb.access(1), 1); // hit, 1 becomes MRU
        assert_eq!(tlb.access(3), 11); // miss, evicts 2
        assert_eq!(tlb.access(2), 11); // miss again
        let (hits, misses) = tlb.stats();
        assert_eq!((hits, misses), (1, 4));
    }
}
