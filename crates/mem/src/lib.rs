//! Memory isolation and allocation for Apiary (§4.6 of the paper).
//!
//! The paper argues that FPGA-side memory isolation should use **segments
//! with capabilities** rather than CPU-style paging: segments allow
//! arbitrary-sized allocations (reducing resource stranding) and need only a
//! base/bounds comparator for enforcement, while paging buys a flat unified
//! address space Apiary does not need. This crate implements both sides of
//! that argument so the claim can be measured (experiment E7):
//!
//! - [`segment`]: free-list segment allocators (first-fit / best-fit) with
//!   coalescing and fragmentation accounting,
//! - [`buddy`]: a buddy allocator as a middle point (power-of-two segments),
//! - [`paging`]: the baseline — a page-granular MMU with a TLB model and
//!   page-walk latency, the design previous FPGA shells borrowed from CPUs,
//! - [`protect`]: the segment bounds-check unit the monitor uses to enforce
//!   memory capabilities (one comparator, single-cycle),
//! - [`dram`]: a banked DRAM timing model so memory experiments see
//!   realistic row-hit/row-miss behaviour.

pub mod buddy;
pub mod dram;
pub mod paging;
pub mod protect;
pub mod segment;

pub use buddy::BuddyAllocator;
pub use dram::{DramConfig, DramModel};
pub use paging::{PagedMmu, PagingError, TlbModel};
pub use protect::{AccessKind, ProtectError, SegmentChecker};
pub use segment::{AllocError, AllocPolicy, AllocStats, SegmentAllocator};
