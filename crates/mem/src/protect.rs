//! The segment bounds-check unit: capability enforcement on the data path.
//!
//! This is the hardware the paper's §4.6 puts in the monitor: for every
//! memory access message, check that the accessed byte range lies inside the
//! segment named by the presented capability and that the capability carries
//! the right for the access direction. In hardware this is a table read, two
//! 64-bit comparators and an AND gate — a single cycle.

use apiary_cap::{CapError, CapKind, CapRef, CapTable, MemRange, Rights};
use core::fmt;

/// Direction of a memory access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// A read (needs [`Rights::READ`]).
    Read,
    /// A write (needs [`Rights::WRITE`]).
    Write,
}

impl AccessKind {
    /// The right this access direction requires.
    pub fn required_right(self) -> Rights {
        match self {
            AccessKind::Read => Rights::READ,
            AccessKind::Write => Rights::WRITE,
        }
    }
}

/// Why an access was denied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProtectError {
    /// The capability handle is dead or missing rights.
    Cap(CapError),
    /// The capability is not a memory capability.
    NotMemory,
    /// The access falls (partly) outside the segment.
    OutOfBounds {
        /// Accessed range.
        addr: u64,
        /// Accessed length.
        len: u64,
        /// The segment the capability covers.
        segment: MemRange,
    },
}

impl fmt::Display for ProtectError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtectError::Cap(e) => write!(f, "capability error: {e}"),
            ProtectError::NotMemory => write!(f, "capability does not name memory"),
            ProtectError::OutOfBounds { addr, len, segment } => write!(
                f,
                "access [{addr:#x}, {:#x}) outside segment {segment}",
                addr + len
            ),
        }
    }
}

impl std::error::Error for ProtectError {}

impl From<CapError> for ProtectError {
    fn from(e: CapError) -> ProtectError {
        ProtectError::Cap(e)
    }
}

/// The bounds-check unit.
///
/// Stateless apart from its latency constant; it borrows the tile's
/// [`CapTable`] per check, mirroring how the hardware unit reads the
/// monitor's capability BRAM.
#[derive(Debug, Clone)]
pub struct SegmentChecker {
    /// Cycles a check costs on the message path (1 in a realistic design;
    /// configurable so E5 can sweep it).
    pub check_cycles: u64,
}

impl Default for SegmentChecker {
    fn default() -> Self {
        SegmentChecker { check_cycles: 1 }
    }
}

impl SegmentChecker {
    /// Creates a checker with the given per-check latency.
    pub fn new(check_cycles: u64) -> SegmentChecker {
        SegmentChecker { check_cycles }
    }

    /// Checks an access of `len` bytes at segment-relative offset `offset`
    /// through capability `cap`. Returns the *physical* byte address of the
    /// access on success.
    ///
    /// Addresses presented by accelerators are segment-relative (offset
    /// within the capability), so an accelerator cannot even name memory
    /// outside its grants.
    ///
    /// # Errors
    ///
    /// [`ProtectError`] describing the denial.
    pub fn check(
        &self,
        table: &CapTable,
        cap: CapRef,
        kind: AccessKind,
        offset: u64,
        len: u64,
    ) -> Result<u64, ProtectError> {
        let capability = table.check(cap, kind.required_right())?;
        let segment = match capability.kind {
            CapKind::Memory(range) => range,
            _ => return Err(ProtectError::NotMemory),
        };
        let addr = segment
            .base
            .checked_add(offset)
            .ok_or(ProtectError::OutOfBounds {
                addr: u64::MAX,
                len,
                segment,
            })?;
        if len == 0 || !segment.covers_bytes(addr, len) {
            return Err(ProtectError::OutOfBounds { addr, len, segment });
        }
        Ok(addr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apiary_cap::Capability;

    fn setup() -> (CapTable, CapRef, CapRef) {
        let mut t = CapTable::new(8);
        let rw = t
            .insert_root(Capability::new(
                CapKind::Memory(MemRange::new(0x1000, 0x100)),
                Rights::READ | Rights::WRITE,
            ))
            .expect("space");
        let ro = t
            .insert_root(Capability::new(
                CapKind::Memory(MemRange::new(0x2000, 0x80)),
                Rights::READ,
            ))
            .expect("space");
        (t, rw, ro)
    }

    #[test]
    fn in_bounds_access_translates() {
        let (t, rw, _) = setup();
        let chk = SegmentChecker::default();
        let pa = chk
            .check(&t, rw, AccessKind::Write, 0x10, 8)
            .expect("in bounds");
        assert_eq!(pa, 0x1010);
    }

    #[test]
    fn out_of_bounds_denied() {
        let (t, rw, _) = setup();
        let chk = SegmentChecker::default();
        // Straddles the end of the 0x100-byte segment.
        let err = chk
            .check(&t, rw, AccessKind::Read, 0xf8, 16)
            .expect_err("straddles");
        assert!(matches!(err, ProtectError::OutOfBounds { .. }));
        // Wildly out.
        assert!(chk.check(&t, rw, AccessKind::Read, 0x1_0000, 1).is_err());
    }

    #[test]
    fn write_through_readonly_denied() {
        let (t, _, ro) = setup();
        let chk = SegmentChecker::default();
        assert!(chk.check(&t, ro, AccessKind::Read, 0, 8).is_ok());
        let err = chk
            .check(&t, ro, AccessKind::Write, 0, 8)
            .expect_err("read-only");
        assert!(matches!(
            err,
            ProtectError::Cap(CapError::InsufficientRights { .. })
        ));
    }

    #[test]
    fn non_memory_cap_denied() {
        let mut t = CapTable::new(4);
        let ep = t
            .insert_root(Capability::new(
                CapKind::Endpoint(apiary_cap::EndpointId(1)),
                Rights::READ | Rights::SEND,
            ))
            .expect("space");
        let chk = SegmentChecker::default();
        assert_eq!(
            chk.check(&t, ep, AccessKind::Read, 0, 1)
                .expect_err("not memory"),
            ProtectError::NotMemory
        );
    }

    #[test]
    fn zero_length_access_denied() {
        let (t, rw, _) = setup();
        let chk = SegmentChecker::default();
        assert!(chk.check(&t, rw, AccessKind::Read, 0, 0).is_err());
    }

    #[test]
    fn offset_overflow_denied() {
        let (t, rw, _) = setup();
        let chk = SegmentChecker::default();
        assert!(chk
            .check(&t, rw, AccessKind::Read, u64::MAX - 2, 8)
            .is_err());
    }

    #[test]
    fn revoked_cap_denied() {
        let (mut t, rw, _) = setup();
        let chk = SegmentChecker::default();
        t.revoke(rw).expect("live");
        assert!(matches!(
            chk.check(&t, rw, AccessKind::Read, 0, 8),
            Err(ProtectError::Cap(_))
        ));
    }

    #[test]
    fn whole_segment_access_allowed() {
        let (t, rw, _) = setup();
        let chk = SegmentChecker::default();
        assert_eq!(
            chk.check(&t, rw, AccessKind::Read, 0, 0x100)
                .expect("exact fit"),
            0x1000
        );
    }
}
