//! Free-list segment allocation with coalescing.
//!
//! Segments are the unit of memory isolation in Apiary: an accelerator asks
//! the memory service for `len` bytes and receives a capability covering an
//! arbitrary-sized, contiguous range. Compared to paging, nothing is rounded
//! to a page multiple, so large allocations strand no memory and small ones
//! waste none — the trade-off the paper highlights in §4.6.

use apiary_cap::MemRange;
use core::fmt;

/// Allocation placement policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AllocPolicy {
    /// Place in the lowest-addressed free block that fits. Cheap in
    /// hardware: first match on a linear scan.
    #[default]
    FirstFit,
    /// Place in the smallest free block that fits. Reduces external
    /// fragmentation at the cost of a full scan.
    BestFit,
}

/// Why an allocation failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllocError {
    /// No single free block is large enough (the request may still be
    /// smaller than the *total* free bytes: external fragmentation, the
    /// "resource stranding" of §2).
    NoSpace {
        /// Bytes requested.
        requested: u64,
        /// Largest contiguous free block at the time of the request.
        largest_free: u64,
        /// Total free bytes at the time of the request.
        total_free: u64,
    },
    /// Zero-length allocations are not representable as segments.
    ZeroLength,
    /// The freed range is not a currently allocated segment.
    BadFree,
}

impl fmt::Display for AllocError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AllocError::NoSpace {
                requested,
                largest_free,
                total_free,
            } => write!(
                f,
                "no space: requested {requested} B, largest free {largest_free} B, total free {total_free} B"
            ),
            AllocError::ZeroLength => write!(f, "zero-length allocation"),
            AllocError::BadFree => write!(f, "free of an unallocated range"),
        }
    }
}

impl std::error::Error for AllocError {}

/// Point-in-time allocator statistics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AllocStats {
    /// Bytes managed in total.
    pub total: u64,
    /// Bytes currently free.
    pub free: u64,
    /// Bytes currently allocated.
    pub used: u64,
    /// Largest single free block.
    pub largest_free: u64,
    /// Number of live segments.
    pub live_segments: usize,
    /// Number of blocks on the free list (a coalescing health metric).
    pub free_blocks: usize,
    /// External fragmentation in `[0, 1]`: `1 - largest_free / free`.
    /// Zero when memory is unfragmented or entirely full.
    pub external_fragmentation: f64,
}

/// A free-list segment allocator over `[0, total)`.
///
/// The free list is kept sorted by base address and adjacent blocks are
/// coalesced on every free, so external fragmentation is purely a product of
/// the allocation pattern, not of bookkeeping artifacts.
///
/// # Examples
///
/// ```
/// use apiary_mem::{AllocPolicy, SegmentAllocator};
///
/// let mut a = SegmentAllocator::new(1 << 20, AllocPolicy::FirstFit);
/// let seg = a.alloc(1000).expect("space");
/// assert_eq!(seg.len, 1000);
/// a.free(seg).expect("was allocated");
/// assert_eq!(a.stats().free, 1 << 20);
/// ```
#[derive(Debug, Clone)]
pub struct SegmentAllocator {
    policy: AllocPolicy,
    total: u64,
    /// Sorted, coalesced free blocks as (base, len).
    free: Vec<(u64, u64)>,
    /// Live segments as (base, len), sorted by base.
    live: Vec<(u64, u64)>,
}

impl SegmentAllocator {
    /// Creates an allocator managing `total` bytes starting at address 0.
    pub fn new(total: u64, policy: AllocPolicy) -> SegmentAllocator {
        SegmentAllocator {
            policy,
            total,
            free: if total > 0 { vec![(0, total)] } else { vec![] },
            live: Vec::new(),
        }
    }

    /// Allocates a segment of exactly `len` bytes.
    ///
    /// # Errors
    ///
    /// [`AllocError::ZeroLength`] for `len == 0`; [`AllocError::NoSpace`]
    /// when no contiguous block fits.
    pub fn alloc(&mut self, len: u64) -> Result<MemRange, AllocError> {
        self.alloc_aligned(len, 1)
    }

    /// Allocates `len` bytes whose base is a multiple of `align`
    /// (which must be a power of two).
    ///
    /// # Errors
    ///
    /// As [`SegmentAllocator::alloc`].
    ///
    /// # Panics
    ///
    /// Panics if `align` is not a power of two.
    pub fn alloc_aligned(&mut self, len: u64, align: u64) -> Result<MemRange, AllocError> {
        assert!(align.is_power_of_two(), "alignment must be a power of two");
        if len == 0 {
            return Err(AllocError::ZeroLength);
        }
        let mut chosen: Option<(usize, u64)> = None; // (free index, aligned base)
        for (i, &(base, flen)) in self.free.iter().enumerate() {
            let abase = (base + align - 1) & !(align - 1);
            let waste = abase - base;
            if flen < waste || flen - waste < len {
                continue;
            }
            match self.policy {
                AllocPolicy::FirstFit => {
                    chosen = Some((i, abase));
                    break;
                }
                AllocPolicy::BestFit => {
                    let better = match chosen {
                        None => true,
                        Some((j, _)) => flen < self.free[j].1,
                    };
                    if better {
                        chosen = Some((i, abase));
                    }
                }
            }
        }
        let Some((i, abase)) = chosen else {
            let stats = self.stats();
            return Err(AllocError::NoSpace {
                requested: len,
                largest_free: stats.largest_free,
                total_free: stats.free,
            });
        };
        let (base, flen) = self.free[i];
        let head = abase - base;
        let tail = flen - head - len;
        // Replace the block with up to two remainders.
        self.free.remove(i);
        if tail > 0 {
            self.free.insert(i, (abase + len, tail));
        }
        if head > 0 {
            self.free.insert(i, (base, head));
        }
        let range = MemRange::new(abase, len);
        let pos = self
            .live
            .binary_search_by_key(&abase, |&(b, _)| b)
            .expect_err("allocated ranges never collide");
        self.live.insert(pos, (abase, len));
        Ok(range)
    }

    /// Frees a previously allocated segment, coalescing with neighbours.
    ///
    /// # Errors
    ///
    /// [`AllocError::BadFree`] if `range` is not exactly a live segment.
    pub fn free(&mut self, range: MemRange) -> Result<(), AllocError> {
        let pos = self
            .live
            .binary_search_by_key(&range.base, |&(b, _)| b)
            .map_err(|_| AllocError::BadFree)?;
        if self.live[pos].1 != range.len {
            return Err(AllocError::BadFree);
        }
        self.live.remove(pos);
        // Insert into the free list and coalesce.
        let at = self
            .free
            .binary_search_by_key(&range.base, |&(b, _)| b)
            .expect_err("a live segment's base is never on the free list");
        self.free.insert(at, (range.base, range.len));
        // Coalesce with the next block.
        if at + 1 < self.free.len() {
            let (nb, nl) = self.free[at + 1];
            if self.free[at].0 + self.free[at].1 == nb {
                self.free[at].1 += nl;
                self.free.remove(at + 1);
            }
        }
        // Coalesce with the previous block.
        if at > 0 {
            let (pb, pl) = self.free[at - 1];
            if pb + pl == self.free[at].0 {
                self.free[at - 1].1 += self.free[at].1;
                self.free.remove(at);
            }
        }
        Ok(())
    }

    /// Returns current statistics.
    pub fn stats(&self) -> AllocStats {
        let free: u64 = self.free.iter().map(|&(_, l)| l).sum();
        let largest = self.free.iter().map(|&(_, l)| l).max().unwrap_or(0);
        AllocStats {
            total: self.total,
            free,
            used: self.total - free,
            largest_free: largest,
            live_segments: self.live.len(),
            free_blocks: self.free.len(),
            external_fragmentation: if free == 0 {
                0.0
            } else {
                1.0 - largest as f64 / free as f64
            },
        }
    }

    /// Iterates over live segments in address order.
    pub fn live_segments(&self) -> impl Iterator<Item = MemRange> + '_ {
        self.live.iter().map(|&(b, l)| MemRange::new(b, l))
    }

    /// The placement policy in use.
    pub fn policy(&self) -> AllocPolicy {
        self.policy
    }

    /// Total bytes managed.
    pub fn total(&self) -> u64 {
        self.total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_and_free_roundtrip() {
        let mut a = SegmentAllocator::new(1024, AllocPolicy::FirstFit);
        let s1 = a.alloc(100).expect("space");
        let s2 = a.alloc(200).expect("space");
        assert_eq!(s1.base, 0);
        assert_eq!(s2.base, 100);
        assert_eq!(a.stats().used, 300);
        a.free(s1).expect("live");
        a.free(s2).expect("live");
        let s = a.stats();
        assert_eq!(s.free, 1024);
        assert_eq!(s.free_blocks, 1, "blocks must coalesce");
    }

    #[test]
    fn zero_len_rejected() {
        let mut a = SegmentAllocator::new(64, AllocPolicy::FirstFit);
        assert_eq!(a.alloc(0), Err(AllocError::ZeroLength));
    }

    #[test]
    fn arbitrary_sizes_do_not_round() {
        // The point of segments (§4.6): a 4097-byte ask uses 4097 bytes.
        let mut a = SegmentAllocator::new(1 << 20, AllocPolicy::FirstFit);
        let s = a.alloc(4097).expect("space");
        assert_eq!(s.len, 4097);
        assert_eq!(a.stats().used, 4097);
    }

    #[test]
    fn no_space_reports_stranding() {
        let mut a = SegmentAllocator::new(1000, AllocPolicy::FirstFit);
        let a1 = a.alloc(400).expect("space");
        let _a2 = a.alloc(200).expect("space");
        let _a3 = a.alloc(400).expect("space");
        a.free(a1).expect("live");
        // 400 bytes free but the request needs 500 contiguous.
        match a.alloc(500) {
            Err(AllocError::NoSpace {
                requested,
                largest_free,
                total_free,
            }) => {
                assert_eq!(requested, 500);
                assert_eq!(largest_free, 400);
                assert_eq!(total_free, 400);
            }
            other => panic!("expected NoSpace, got {other:?}"),
        }
    }

    #[test]
    fn best_fit_picks_smallest_hole() {
        let mut a = SegmentAllocator::new(1000, AllocPolicy::BestFit);
        // Carve holes of 300 (at 0) and 100 (at 500).
        let h300 = a.alloc(300).expect("space");
        let _keep1 = a.alloc(200).expect("space");
        let h100 = a.alloc(100).expect("space");
        let _keep2 = a.alloc(400).expect("space");
        a.free(h300).expect("live");
        a.free(h100).expect("live");
        // Best fit should use the 100-byte hole at 500.
        let s = a.alloc(80).expect("space");
        assert_eq!(s.base, 500);
        // First fit would have used the hole at 0.
        let mut ff = SegmentAllocator::new(1000, AllocPolicy::FirstFit);
        let h300 = ff.alloc(300).expect("space");
        let _k1 = ff.alloc(200).expect("space");
        let h100 = ff.alloc(100).expect("space");
        let _k2 = ff.alloc(400).expect("space");
        ff.free(h300).expect("live");
        ff.free(h100).expect("live");
        assert_eq!(ff.alloc(80).expect("space").base, 0);
    }

    #[test]
    fn aligned_alloc_respects_alignment() {
        let mut a = SegmentAllocator::new(1 << 16, AllocPolicy::FirstFit);
        let _pad = a.alloc(10).expect("space");
        let s = a.alloc_aligned(100, 256).expect("space");
        assert_eq!(s.base % 256, 0);
        assert!(s.base >= 10);
    }

    #[test]
    fn free_of_bogus_range_fails() {
        let mut a = SegmentAllocator::new(1024, AllocPolicy::FirstFit);
        let s = a.alloc(64).expect("space");
        assert_eq!(a.free(MemRange::new(1, 63)), Err(AllocError::BadFree));
        assert_eq!(
            a.free(MemRange::new(s.base, s.len - 1)),
            Err(AllocError::BadFree)
        );
        a.free(s).expect("live");
        assert_eq!(a.free(s), Err(AllocError::BadFree), "double free");
    }

    #[test]
    fn fragmentation_metric_moves() {
        let mut a = SegmentAllocator::new(1000, AllocPolicy::FirstFit);
        let segs: Vec<_> = (0..10).map(|_| a.alloc(100).expect("space")).collect();
        // Free every other segment: five 100-byte holes.
        for s in segs.iter().step_by(2) {
            a.free(*s).expect("live");
        }
        let st = a.stats();
        assert_eq!(st.free, 500);
        assert_eq!(st.largest_free, 100);
        assert!((st.external_fragmentation - 0.8).abs() < 1e-9);
    }

    #[test]
    fn exhausts_exactly() {
        let mut a = SegmentAllocator::new(256, AllocPolicy::FirstFit);
        let s = a.alloc(256).expect("space");
        assert_eq!(a.stats().free, 0);
        assert!(a.alloc(1).is_err());
        a.free(s).expect("live");
        assert_eq!(a.stats().free, 256);
    }
}
