//! A binary buddy allocator.
//!
//! The buddy system sits between segments and pages in the §4.6 design
//! space: allocation and free are O(log n) and coalescing is implicit, but
//! every allocation is rounded up to a power of two, re-introducing internal
//! fragmentation. Experiment E7 uses it as the middle data point.

use crate::segment::AllocError;
use apiary_cap::MemRange;

/// A binary buddy allocator over `[0, 2^max_order * min_block)`.
///
/// # Examples
///
/// ```
/// use apiary_mem::BuddyAllocator;
///
/// // 1 MiB arena with 256-byte minimum blocks.
/// let mut b = BuddyAllocator::new(256, 12);
/// let seg = b.alloc(1000).expect("space");
/// assert_eq!(seg.len, 1024, "rounded up to a power of two");
/// b.free(seg).expect("was allocated");
/// ```
#[derive(Debug, Clone)]
pub struct BuddyAllocator {
    min_block: u64,
    max_order: u32,
    /// `free[k]` holds base addresses of free blocks of size
    /// `min_block << k`, each kept sorted for determinism.
    free: Vec<Vec<u64>>,
    /// Live allocations: (base, order, requested_len), sorted by base.
    live: Vec<(u64, u32, u64)>,
}

impl BuddyAllocator {
    /// Creates an allocator whose arena is `min_block << max_order` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `min_block` is not a power of two or the arena would
    /// overflow `u64`.
    pub fn new(min_block: u64, max_order: u32) -> BuddyAllocator {
        assert!(
            min_block.is_power_of_two(),
            "min_block must be a power of two"
        );
        assert!(
            (max_order as u64) < 63 && min_block.checked_shl(max_order).is_some(),
            "arena too large"
        );
        let mut free = vec![Vec::new(); max_order as usize + 1];
        free[max_order as usize].push(0);
        BuddyAllocator {
            min_block,
            max_order,
            free,
            live: Vec::new(),
        }
    }

    /// Total bytes managed.
    pub fn total(&self) -> u64 {
        self.min_block << self.max_order
    }

    fn order_for(&self, len: u64) -> Option<u32> {
        let blocks = len.div_ceil(self.min_block).max(1);
        let order = blocks.next_power_of_two().trailing_zeros();
        if order > self.max_order {
            None
        } else {
            Some(order)
        }
    }

    /// Allocates at least `len` bytes (rounded up to a power-of-two block).
    ///
    /// # Errors
    ///
    /// [`AllocError::ZeroLength`] or [`AllocError::NoSpace`].
    pub fn alloc(&mut self, len: u64) -> Result<MemRange, AllocError> {
        if len == 0 {
            return Err(AllocError::ZeroLength);
        }
        let want = self.order_for(len).ok_or_else(|| self.no_space(len))?;
        // Find the smallest order >= want with a free block.
        let mut k = want;
        loop {
            if !self.free[k as usize].is_empty() {
                break;
            }
            if k == self.max_order {
                return Err(self.no_space(len));
            }
            k += 1;
        }
        // Pop the lowest-addressed block for determinism, splitting down.
        let base = self.free[k as usize].remove(0);
        while k > want {
            k -= 1;
            let buddy = base + (self.min_block << k);
            let list = &mut self.free[k as usize];
            let pos = list.partition_point(|&b| b < buddy);
            list.insert(pos, buddy);
        }
        let pos = self.live.partition_point(|&(b, _, _)| b < base);
        self.live.insert(pos, (base, want, len));
        Ok(MemRange::new(base, self.min_block << want))
    }

    fn no_space(&self, requested: u64) -> AllocError {
        let total_free: u64 = self
            .free
            .iter()
            .enumerate()
            .map(|(k, v)| (self.min_block << k) * v.len() as u64)
            .sum();
        let largest_free = self
            .free
            .iter()
            .enumerate()
            .rev()
            .find(|(_, v)| !v.is_empty())
            .map(|(k, _)| self.min_block << k)
            .unwrap_or(0);
        AllocError::NoSpace {
            requested,
            largest_free,
            total_free,
        }
    }

    /// Frees a block returned by [`BuddyAllocator::alloc`], merging buddies.
    ///
    /// # Errors
    ///
    /// [`AllocError::BadFree`] for ranges not currently allocated.
    pub fn free(&mut self, range: MemRange) -> Result<(), AllocError> {
        let pos = self
            .live
            .binary_search_by_key(&range.base, |&(b, _, _)| b)
            .map_err(|_| AllocError::BadFree)?;
        let (base, order, _) = self.live[pos];
        if self.min_block << order != range.len {
            return Err(AllocError::BadFree);
        }
        self.live.remove(pos);
        let mut base = base;
        let mut k = order;
        // Merge with the buddy while it is free.
        while k < self.max_order {
            let size = self.min_block << k;
            let buddy = base ^ size;
            let list = &mut self.free[k as usize];
            match list.binary_search(&buddy) {
                Ok(i) => {
                    list.remove(i);
                    base = base.min(buddy);
                    k += 1;
                }
                Err(_) => break,
            }
        }
        let list = &mut self.free[k as usize];
        let pos = list.partition_point(|&b| b < base);
        list.insert(pos, base);
        Ok(())
    }

    /// Bytes currently free.
    pub fn free_bytes(&self) -> u64 {
        self.free
            .iter()
            .enumerate()
            .map(|(k, v)| (self.min_block << k) * v.len() as u64)
            .sum()
    }

    /// Internal fragmentation across live allocations: allocated bytes minus
    /// requested bytes.
    pub fn internal_fragmentation(&self) -> u64 {
        self.live
            .iter()
            .map(|&(_, order, req)| (self.min_block << order) - req)
            .sum()
    }

    /// Number of live allocations.
    pub fn live_count(&self) -> usize {
        self.live.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rounds_to_power_of_two() {
        let mut b = BuddyAllocator::new(256, 12);
        assert_eq!(b.alloc(1).expect("space").len, 256);
        assert_eq!(b.alloc(257).expect("space").len, 512);
        assert_eq!(b.alloc(1024).expect("space").len, 1024);
    }

    #[test]
    fn split_and_merge_restores_arena() {
        let mut b = BuddyAllocator::new(64, 6); // 4 KiB arena.
        let total = b.total();
        let segs: Vec<_> = (0..8).map(|_| b.alloc(64).expect("space")).collect();
        assert_eq!(b.free_bytes(), total - 8 * 64);
        for s in segs {
            b.free(s).expect("live");
        }
        assert_eq!(b.free_bytes(), total);
        // The arena must have merged back into a single max-order block.
        let big = b.alloc(total).expect("fully merged");
        assert_eq!(big.base, 0);
        assert_eq!(big.len, total);
    }

    #[test]
    fn buddies_merge_out_of_order() {
        let mut b = BuddyAllocator::new(64, 4);
        let a1 = b.alloc(64).expect("space");
        let a2 = b.alloc(64).expect("space");
        let a3 = b.alloc(64).expect("space");
        b.free(a2).expect("live");
        b.free(a1).expect("live");
        b.free(a3).expect("live");
        assert_eq!(b.free_bytes(), b.total());
        assert!(b.alloc(b.total()).is_ok());
    }

    #[test]
    fn no_space_when_oversized() {
        let mut b = BuddyAllocator::new(64, 4); // 1 KiB.
        assert!(matches!(b.alloc(2048), Err(AllocError::NoSpace { .. })));
    }

    #[test]
    fn internal_fragmentation_accounts_rounding() {
        let mut b = BuddyAllocator::new(256, 12);
        let _s = b.alloc(300).expect("space"); // Rounds to 512.
        assert_eq!(b.internal_fragmentation(), 212);
    }

    #[test]
    fn double_free_rejected() {
        let mut b = BuddyAllocator::new(64, 4);
        let s = b.alloc(64).expect("space");
        b.free(s).expect("live");
        assert_eq!(b.free(s), Err(AllocError::BadFree));
    }

    #[test]
    fn zero_len_rejected() {
        let mut b = BuddyAllocator::new(64, 4);
        assert_eq!(b.alloc(0), Err(AllocError::ZeroLength));
    }

    #[test]
    fn allocations_never_overlap() {
        let mut b = BuddyAllocator::new(64, 8);
        let mut live: Vec<MemRange> = Vec::new();
        for i in 0..20 {
            if let Ok(s) = b.alloc(64 * (1 + i % 4)) {
                for other in &live {
                    assert!(!s.overlaps(other), "{s} overlaps {other}");
                }
                live.push(s);
            }
        }
    }
}
