//! A banked DRAM timing model.
//!
//! Memory experiments need latency numbers that respond to access *patterns*
//! (row-buffer locality, bank conflicts) rather than a constant. This model
//! captures the first-order DDR4 behaviour: per-bank open rows, row
//! hit/miss/conflict timing, and per-bank busy windows that serialise
//! conflicting accesses.

use apiary_sim::Cycle;

/// DRAM organisation and timing (in controller-clock cycles).
#[derive(Debug, Clone, Copy)]
pub struct DramConfig {
    /// Number of independent banks.
    pub banks: usize,
    /// Bytes per row (row-buffer size).
    pub row_bytes: u64,
    /// Activate-to-read delay (tRCD).
    pub t_rcd: u64,
    /// Read latency once the row is open (tCAS/CL).
    pub t_cas: u64,
    /// Precharge delay (tRP).
    pub t_rp: u64,
    /// Cycles to stream one 64-byte burst once the column is selected.
    pub t_burst: u64,
}

impl Default for DramConfig {
    fn default() -> Self {
        // Representative DDR4-2400 timings scaled to a 250 MHz fabric clock:
        // ~15 ns each for tRCD/tCAS/tRP is ~4 cycles at 4 ns/cycle.
        DramConfig {
            banks: 16,
            row_bytes: 8192,
            t_rcd: 4,
            t_cas: 4,
            t_rp: 4,
            t_burst: 1,
        }
    }
}

/// The timing model: tracks per-bank open rows and availability.
#[derive(Debug, Clone)]
pub struct DramModel {
    cfg: DramConfig,
    /// Open row per bank (`None` = precharged).
    open_row: Vec<Option<u64>>,
    /// Cycle at which each bank becomes free.
    bank_free_at: Vec<Cycle>,
    row_hits: u64,
    row_misses: u64,
    row_conflicts: u64,
}

impl DramModel {
    /// Creates a model from a configuration.
    pub fn new(cfg: DramConfig) -> DramModel {
        DramModel {
            open_row: vec![None; cfg.banks],
            bank_free_at: vec![Cycle::ZERO; cfg.banks],
            cfg,
            row_hits: 0,
            row_misses: 0,
            row_conflicts: 0,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &DramConfig {
        &self.cfg
    }

    fn bank_and_row(&self, addr: u64) -> (usize, u64) {
        let row_global = addr / self.cfg.row_bytes;
        // Interleave consecutive rows across banks for parallelism.
        let bank = (row_global % self.cfg.banks as u64) as usize;
        let row = row_global / self.cfg.banks as u64;
        (bank, row)
    }

    /// Issues an access of `len` bytes at `addr` beginning no earlier than
    /// `now`; returns the cycle at which the data transfer completes.
    ///
    /// The access is charged row-hit, row-miss (precharged) or row-conflict
    /// (wrong row open) timing, plus burst cycles proportional to `len`.
    pub fn access(&mut self, now: Cycle, addr: u64, len: u64) -> Cycle {
        let (bank, row) = self.bank_and_row(addr);
        let start = now.max(self.bank_free_at[bank]);
        let setup = match self.open_row[bank] {
            Some(open) if open == row => {
                self.row_hits += 1;
                self.cfg.t_cas
            }
            Some(_) => {
                self.row_conflicts += 1;
                self.cfg.t_rp + self.cfg.t_rcd + self.cfg.t_cas
            }
            None => {
                self.row_misses += 1;
                self.cfg.t_rcd + self.cfg.t_cas
            }
        };
        self.open_row[bank] = Some(row);
        let bursts = len.div_ceil(64).max(1);
        let done = start + setup + bursts * self.cfg.t_burst;
        self.bank_free_at[bank] = done;
        done
    }

    /// (row hits, row misses, row conflicts) so far.
    pub fn stats(&self) -> (u64, u64, u64) {
        (self.row_hits, self.row_misses, self.row_conflicts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> DramModel {
        DramModel::new(DramConfig::default())
    }

    #[test]
    fn sequential_same_row_hits() {
        let mut m = model();
        let t1 = m.access(Cycle::ZERO, 0, 64);
        // Second access to the same row is a hit and cheaper.
        let t2 = m.access(t1, 64, 64);
        let first_cost = t1 - Cycle::ZERO;
        let second_cost = t2 - t1;
        assert!(second_cost < first_cost, "{second_cost} !< {first_cost}");
        let (hits, misses, conflicts) = m.stats();
        assert_eq!((hits, misses, conflicts), (1, 1, 0));
    }

    #[test]
    fn row_conflict_costs_most() {
        let mut m = model();
        let cfg = *m.config();
        // Two rows in the same bank: rows N and N + banks share a bank.
        let stride = cfg.row_bytes * cfg.banks as u64;
        let t1 = m.access(Cycle::ZERO, 0, 64);
        let t2 = m.access(t1, stride, 64); // Same bank, different row.
        let conflict_cost = t2 - t1;
        assert_eq!(
            conflict_cost,
            cfg.t_rp + cfg.t_rcd + cfg.t_cas + cfg.t_burst
        );
        let (_, _, conflicts) = m.stats();
        assert_eq!(conflicts, 1);
    }

    #[test]
    fn banks_operate_in_parallel() {
        let mut m = model();
        let cfg = *m.config();
        // Accesses to different banks issued at the same cycle don't queue.
        let t_a = m.access(Cycle::ZERO, 0, 64);
        let t_b = m.access(Cycle::ZERO, cfg.row_bytes, 64); // Next bank.
        assert_eq!(t_a, t_b);
    }

    #[test]
    fn same_bank_serialises() {
        let mut m = model();
        let cfg = *m.config();
        let stride = cfg.row_bytes * cfg.banks as u64;
        let t_a = m.access(Cycle::ZERO, 0, 64);
        // Issued at cycle 0 but the bank is busy until t_a.
        let t_b = m.access(Cycle::ZERO, stride, 64);
        assert!(t_b > t_a);
    }

    #[test]
    fn long_transfers_charge_bursts() {
        let mut m = model();
        let t_small = m.access(Cycle::ZERO, 0, 64);
        let mut m2 = model();
        let t_big = m2.access(Cycle::ZERO, 0, 4096);
        assert_eq!(t_big - Cycle::ZERO, (t_small - Cycle::ZERO) + 63);
    }

    #[test]
    fn zero_len_counts_one_burst() {
        let mut m = model();
        let t = m.access(Cycle::ZERO, 0, 0);
        assert!(t > Cycle::ZERO);
    }
}
