//! Access rights carried by capabilities.

use core::fmt;
use core::ops::{BitAnd, BitOr};

/// A small bit-set of access rights.
///
/// Rights only ever *shrink* along a derivation chain; [`Rights::is_subset_of`]
/// is the check the table enforces on every derive.
///
/// # Examples
///
/// ```
/// use apiary_cap::Rights;
///
/// let rw = Rights::READ | Rights::WRITE;
/// assert!(Rights::READ.is_subset_of(rw));
/// assert!(!rw.is_subset_of(Rights::READ));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Rights(u16);

impl Rights {
    /// No rights at all.
    pub const NONE: Rights = Rights(0);
    /// May send messages to an endpoint.
    pub const SEND: Rights = Rights(1 << 0);
    /// May receive messages from an endpoint.
    pub const RECV: Rights = Rights(1 << 1);
    /// May read a memory segment.
    pub const READ: Rights = Rights(1 << 2);
    /// May write a memory segment.
    pub const WRITE: Rights = Rights(1 << 3);
    /// May derive and hand out narrowed copies (grant authority onward).
    pub const GRANT: Rights = Rights(1 << 4);
    /// May revoke derived children.
    pub const REVOKE: Rights = Rights(1 << 5);
    /// May invoke management operations (service registration,
    /// reconfiguration requests).
    pub const MANAGE: Rights = Rights(1 << 6);

    /// Every right at once; the authority of the kernel's root capabilities.
    pub const ALL: Rights = Rights(0x7f);

    /// Returns `true` if every bit of `needed` is present in `self`.
    #[inline]
    pub const fn contains(self, needed: Rights) -> bool {
        self.0 & needed.0 == needed.0
    }

    /// Returns `true` if `self` carries no right that `sup` lacks.
    #[inline]
    pub const fn is_subset_of(self, sup: Rights) -> bool {
        sup.contains(self)
    }

    /// Returns `true` if no rights are set.
    #[inline]
    pub const fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// The raw bits (for tracing).
    #[inline]
    pub const fn bits(self) -> u16 {
        self.0
    }
}

impl BitOr for Rights {
    type Output = Rights;

    #[inline]
    fn bitor(self, rhs: Rights) -> Rights {
        Rights(self.0 | rhs.0)
    }
}

impl BitAnd for Rights {
    type Output = Rights;

    #[inline]
    fn bitand(self, rhs: Rights) -> Rights {
        Rights(self.0 & rhs.0)
    }
}

impl fmt::Debug for Rights {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let names = [
            (Rights::SEND, "SEND"),
            (Rights::RECV, "RECV"),
            (Rights::READ, "READ"),
            (Rights::WRITE, "WRITE"),
            (Rights::GRANT, "GRANT"),
            (Rights::REVOKE, "REVOKE"),
            (Rights::MANAGE, "MANAGE"),
        ];
        let mut first = true;
        for (bit, name) in names {
            if self.contains(bit) {
                if !first {
                    write!(f, "|")?;
                }
                write!(f, "{name}")?;
                first = false;
            }
        }
        if first {
            write!(f, "NONE")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contains_and_subset() {
        let rw = Rights::READ | Rights::WRITE;
        assert!(rw.contains(Rights::READ));
        assert!(rw.contains(rw));
        assert!(!rw.contains(Rights::SEND));
        assert!(Rights::NONE.is_subset_of(rw));
        assert!(rw.is_subset_of(Rights::ALL));
        assert!(!Rights::ALL.is_subset_of(rw));
    }

    #[test]
    fn intersection_narrows() {
        let a = Rights::SEND | Rights::GRANT;
        let b = Rights::SEND | Rights::READ;
        assert_eq!(a & b, Rights::SEND);
    }

    #[test]
    fn all_contains_every_named_right() {
        for r in [
            Rights::SEND,
            Rights::RECV,
            Rights::READ,
            Rights::WRITE,
            Rights::GRANT,
            Rights::REVOKE,
            Rights::MANAGE,
        ] {
            assert!(Rights::ALL.contains(r));
        }
    }

    #[test]
    fn debug_render() {
        assert_eq!(format!("{:?}", Rights::NONE), "NONE");
        assert_eq!(format!("{:?}", Rights::SEND | Rights::READ), "SEND|READ");
    }
}
