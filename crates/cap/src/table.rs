//! Partitioned capability tables with derivation and recursive revocation.

use crate::capability::{CapKind, Capability};
use crate::rights::Rights;
use core::fmt;

/// An opaque, generation-checked handle to a slot in a [`CapTable`].
///
/// This is the *only* representation of authority that untrusted accelerator
/// logic ever sees (§4.6: "the accelerator can only obtain a reference to
/// the capability and not the capability itself"). The generation field makes
/// stale handles harmless when a revoked slot is reused.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CapRef {
    /// Slot index within the owning table.
    pub index: u16,
    /// Slot generation the handle was minted against.
    pub generation: u16,
}

/// Errors from capability-table operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CapError {
    /// The handle's slot index is out of range or empty.
    InvalidRef,
    /// The handle's generation does not match (slot was revoked and reused).
    StaleRef,
    /// The capability does not carry a required right.
    InsufficientRights {
        /// What the operation needed.
        needed: Rights,
    },
    /// A derive would amplify rights, widen a range, or change kind.
    IllegalDerivation,
    /// The table is full.
    TableFull,
}

impl fmt::Display for CapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CapError::InvalidRef => write!(f, "invalid capability reference"),
            CapError::StaleRef => write!(f, "stale capability reference"),
            CapError::InsufficientRights { needed } => {
                write!(f, "capability lacks required rights {needed:?}")
            }
            CapError::IllegalDerivation => write!(f, "illegal capability derivation"),
            CapError::TableFull => write!(f, "capability table full"),
        }
    }
}

impl std::error::Error for CapError {}

#[derive(Debug, Clone)]
struct Slot {
    cap: Capability,
    generation: u16,
    parent: Option<u16>,
    children: Vec<(u16, u16)>,
    live: bool,
}

/// A per-tile capability table, owned by the trusted monitor.
///
/// In hardware terms this is a small BRAM-backed table plus a comparator;
/// the [`crate`] docs explain the partitioned-capability model. The table
/// tracks the derivation tree so that revocation is recursive.
///
/// # Examples
///
/// ```
/// use apiary_cap::{CapKind, CapRef, CapTable, Capability, EndpointId, Rights};
///
/// let mut t = CapTable::new(16);
/// let root = t
///     .insert_root(Capability::new(
///         CapKind::Endpoint(EndpointId(3)),
///         Rights::SEND | Rights::GRANT,
///     ))
///     .expect("space");
/// let narrowed = t.derive(root, Rights::SEND, None).expect("legal");
/// assert!(t.check(narrowed, Rights::SEND).is_ok());
/// t.revoke(root).expect("revocable");
/// assert!(t.check(narrowed, Rights::SEND).is_err());
/// ```
#[derive(Debug, Clone)]
pub struct CapTable {
    slots: Vec<Option<Slot>>,
    /// Free-list of reusable slot indices.
    free: Vec<u16>,
    live_count: usize,
}

impl CapTable {
    /// Creates a table with `capacity` slots (hardware tables are fixed
    /// size; 16–64 entries is typical for a tile).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` exceeds `u16::MAX` slots.
    pub fn new(capacity: usize) -> CapTable {
        assert!(capacity <= u16::MAX as usize, "capability table too large");
        CapTable {
            slots: (0..capacity).map(|_| None).collect(),
            free: (0..capacity as u16).rev().collect(),
            live_count: 0,
        }
    }

    /// Number of live capabilities.
    pub fn live(&self) -> usize {
        self.live_count
    }

    /// Total slot capacity.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    fn alloc_slot(&mut self, cap: Capability, parent: Option<u16>) -> Result<CapRef, CapError> {
        let index = self.free.pop().ok_or(CapError::TableFull)?;
        let generation = match &self.slots[index as usize] {
            // Reused slot: bump the generation so old handles go stale.
            Some(old) => old.generation.wrapping_add(1),
            None => 0,
        };
        self.slots[index as usize] = Some(Slot {
            cap,
            generation,
            parent,
            children: Vec::new(),
            live: true,
        });
        self.live_count += 1;
        Ok(CapRef { index, generation })
    }

    /// Inserts a root capability (kernel/monitor authority only; accelerators
    /// have no path to this operation).
    ///
    /// # Errors
    ///
    /// Returns [`CapError::TableFull`] when no slot is free.
    pub fn insert_root(&mut self, cap: Capability) -> Result<CapRef, CapError> {
        self.alloc_slot(cap, None)
    }

    fn slot(&self, r: CapRef) -> Result<&Slot, CapError> {
        let s = self
            .slots
            .get(r.index as usize)
            .and_then(|s| s.as_ref())
            .ok_or(CapError::InvalidRef)?;
        if s.generation != r.generation {
            return Err(CapError::StaleRef);
        }
        if !s.live {
            return Err(CapError::StaleRef);
        }
        Ok(s)
    }

    /// Looks up the capability behind a handle.
    ///
    /// # Errors
    ///
    /// Returns [`CapError::InvalidRef`] or [`CapError::StaleRef`] for dead
    /// handles.
    pub fn lookup(&self, r: CapRef) -> Result<&Capability, CapError> {
        Ok(&self.slot(r)?.cap)
    }

    /// Checks that the handle is live and carries all of `needed`.
    ///
    /// This is the operation the monitor performs on every message send; it
    /// maps to one table read plus one AND-compare in hardware.
    ///
    /// # Errors
    ///
    /// Returns [`CapError::InsufficientRights`] when rights are missing, or a
    /// handle-validity error.
    pub fn check(&self, r: CapRef, needed: Rights) -> Result<&Capability, CapError> {
        let cap = self.lookup(r)?;
        if !cap.allows(needed) {
            return Err(CapError::InsufficientRights { needed });
        }
        Ok(cap)
    }

    /// Derives a narrowed capability from `parent`.
    ///
    /// `rights` must be a subset of the parent's rights and the parent must
    /// carry [`Rights::GRANT`]. For memory capabilities, `narrow_kind` may
    /// shrink the covered range; for all kinds it may be `None` to inherit
    /// the parent's kind.
    ///
    /// # Errors
    ///
    /// Returns [`CapError::IllegalDerivation`] for amplification attempts and
    /// [`CapError::TableFull`] when no slot is free.
    pub fn derive(
        &mut self,
        parent: CapRef,
        rights: Rights,
        narrow_kind: Option<CapKind>,
    ) -> Result<CapRef, CapError> {
        let parent_slot = self.slot(parent)?;
        let parent_cap = parent_slot.cap;
        let child = Capability {
            kind: narrow_kind.unwrap_or(parent_cap.kind),
            rights,
            badge: parent_cap.badge,
        };
        if !parent_cap.can_derive(&child) {
            return Err(CapError::IllegalDerivation);
        }
        let child_ref = self.alloc_slot(child, Some(parent.index))?;
        self.slots[parent.index as usize]
            .as_mut()
            .expect("parent slot verified live above")
            .children
            .push((child_ref.index, child_ref.generation));
        Ok(child_ref)
    }

    /// Derives with a new badge (same narrowing rules as [`CapTable::derive`]).
    ///
    /// # Errors
    ///
    /// Same as [`CapTable::derive`].
    pub fn derive_badged(
        &mut self,
        parent: CapRef,
        rights: Rights,
        badge: u64,
    ) -> Result<CapRef, CapError> {
        let r = self.derive(parent, rights, None)?;
        self.slots[r.index as usize]
            .as_mut()
            .expect("slot just allocated")
            .cap
            .badge = badge;
        Ok(r)
    }

    /// Revokes a capability and, recursively, everything derived from it.
    ///
    /// # Errors
    ///
    /// Returns a handle-validity error if `r` is already dead.
    pub fn revoke(&mut self, r: CapRef) -> Result<(), CapError> {
        // Validate the handle first.
        self.slot(r)?;
        let mut stack = vec![(r.index, r.generation)];
        while let Some((i, generation)) = stack.pop() {
            if let Some(slot) = self.slots[i as usize].as_mut() {
                // A child slot may have been revoked directly and then
                // reused; the recorded generation no longer matches and the
                // slot must not be touched.
                if !slot.live || slot.generation != generation {
                    continue;
                }
                slot.live = false;
                stack.append(&mut slot.children);
                self.live_count -= 1;
                self.free.push(i);
            }
        }
        Ok(())
    }

    /// Returns the handle's parent in the derivation tree, or `None` for a
    /// root capability.
    ///
    /// # Errors
    ///
    /// Returns a handle-validity error if `r` is dead.
    pub fn parent_of(&self, r: CapRef) -> Result<Option<CapRef>, CapError> {
        let slot = self.slot(r)?;
        Ok(slot.parent.and_then(|pi| {
            self.slots[pi as usize].as_ref().map(|p| CapRef {
                index: pi,
                generation: p.generation,
            })
        }))
    }

    /// Iterates over all live capabilities (for tracing and debug dumps).
    pub fn iter_live(&self) -> impl Iterator<Item = (CapRef, &Capability)> + '_ {
        self.slots.iter().enumerate().filter_map(|(i, s)| {
            s.as_ref().filter(|s| s.live).map(|s| {
                (
                    CapRef {
                        index: i as u16,
                        generation: s.generation,
                    },
                    &s.cap,
                )
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::capability::{EndpointId, MemRange};

    fn ep_cap(rights: Rights) -> Capability {
        Capability::new(CapKind::Endpoint(EndpointId(7)), rights)
    }

    #[test]
    fn insert_lookup_check() {
        let mut t = CapTable::new(4);
        let r = t.insert_root(ep_cap(Rights::SEND)).expect("space");
        assert_eq!(t.live(), 1);
        assert!(t.check(r, Rights::SEND).is_ok());
        assert_eq!(
            t.check(r, Rights::RECV),
            Err(CapError::InsufficientRights {
                needed: Rights::RECV
            })
        );
    }

    #[test]
    fn table_fills_up() {
        let mut t = CapTable::new(2);
        t.insert_root(ep_cap(Rights::SEND)).expect("slot 1");
        t.insert_root(ep_cap(Rights::SEND)).expect("slot 2");
        assert_eq!(
            t.insert_root(ep_cap(Rights::SEND)),
            Err(CapError::TableFull)
        );
    }

    #[test]
    fn derive_narrows_rights() {
        let mut t = CapTable::new(8);
        let root = t
            .insert_root(ep_cap(Rights::SEND | Rights::RECV | Rights::GRANT))
            .expect("space");
        let child = t.derive(root, Rights::SEND, None).expect("legal");
        assert!(t.check(child, Rights::SEND).is_ok());
        assert!(t.check(child, Rights::RECV).is_err());
        // Amplification is rejected.
        assert_eq!(
            t.derive(child, Rights::SEND | Rights::MANAGE, None),
            Err(CapError::IllegalDerivation)
        );
    }

    #[test]
    fn derive_requires_grant_on_parent() {
        let mut t = CapTable::new(8);
        let root = t.insert_root(ep_cap(Rights::SEND)).expect("space");
        assert_eq!(
            t.derive(root, Rights::SEND, None),
            Err(CapError::IllegalDerivation)
        );
    }

    #[test]
    fn memory_derive_narrows_range() {
        let mut t = CapTable::new(8);
        let root = t
            .insert_root(Capability::new(
                CapKind::Memory(MemRange::new(0x1000, 0x1000)),
                Rights::READ | Rights::WRITE | Rights::GRANT,
            ))
            .expect("space");
        let ok = t.derive(
            root,
            Rights::READ,
            Some(CapKind::Memory(MemRange::new(0x1800, 0x100))),
        );
        assert!(ok.is_ok());
        let widen = t.derive(
            root,
            Rights::READ,
            Some(CapKind::Memory(MemRange::new(0x800, 0x1000))),
        );
        assert_eq!(widen, Err(CapError::IllegalDerivation));
    }

    #[test]
    fn revoke_kills_subtree() {
        let mut t = CapTable::new(16);
        let root = t
            .insert_root(ep_cap(Rights::SEND | Rights::GRANT))
            .expect("space");
        let c1 = t
            .derive(root, Rights::SEND | Rights::GRANT, None)
            .expect("legal");
        let c2 = t.derive(c1, Rights::SEND, None).expect("legal");
        let sibling = t.insert_root(ep_cap(Rights::SEND)).expect("space");
        t.revoke(c1).expect("live");
        assert!(t.check(c1, Rights::SEND).is_err());
        assert!(t.check(c2, Rights::SEND).is_err());
        // Root and unrelated caps survive.
        assert!(t.check(root, Rights::SEND).is_ok());
        assert!(t.check(sibling, Rights::SEND).is_ok());
        assert_eq!(t.live(), 2);
    }

    #[test]
    fn stale_refs_after_slot_reuse() {
        let mut t = CapTable::new(2);
        let a = t.insert_root(ep_cap(Rights::SEND)).expect("space");
        t.revoke(a).expect("live");
        // Reuse the slot.
        let b = t.insert_root(ep_cap(Rights::RECV)).expect("space");
        assert_eq!(b.index, a.index);
        assert_ne!(b.generation, a.generation);
        assert_eq!(t.check(a, Rights::SEND), Err(CapError::StaleRef));
        assert!(t.check(b, Rights::RECV).is_ok());
    }

    #[test]
    fn double_revoke_is_an_error() {
        let mut t = CapTable::new(4);
        let a = t.insert_root(ep_cap(Rights::SEND)).expect("space");
        t.revoke(a).expect("live");
        assert!(t.revoke(a).is_err());
    }

    #[test]
    fn badged_derive_sets_badge() {
        let mut t = CapTable::new(8);
        let root = t
            .insert_root(ep_cap(Rights::SEND | Rights::GRANT))
            .expect("space");
        let b = t.derive_badged(root, Rights::SEND, 0xfeed).expect("legal");
        assert_eq!(t.lookup(b).expect("live").badge, 0xfeed);
    }

    #[test]
    fn iter_live_reports_only_live() {
        let mut t = CapTable::new(8);
        let a = t.insert_root(ep_cap(Rights::SEND)).expect("space");
        let _b = t.insert_root(ep_cap(Rights::RECV)).expect("space");
        t.revoke(a).expect("live");
        assert_eq!(t.iter_live().count(), 1);
    }

    #[test]
    fn out_of_range_ref_is_invalid() {
        let t = CapTable::new(2);
        let bogus = CapRef {
            index: 99,
            generation: 0,
        };
        assert_eq!(t.lookup(bogus), Err(CapError::InvalidRef));
    }
}
