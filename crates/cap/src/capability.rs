//! Capability objects: what a capability names and with which rights.

use crate::rights::Rights;
use core::fmt;

/// Identifies a message-passing endpoint (a tile/process as a communication
/// target). In a full system this is resolved to a NoC node by the monitor's
/// service table; the capability layer treats it as opaque.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EndpointId(pub u32);

/// Identifies a logical, named OS service (§4.3: service naming lives at the
/// API layer, not in physical wiring).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ServiceId(pub u32);

/// A physical memory range `[base, base + len)` covered by a memory
/// capability.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MemRange {
    /// First byte covered.
    pub base: u64,
    /// Length in bytes.
    pub len: u64,
}

impl MemRange {
    /// Creates a range.
    pub const fn new(base: u64, len: u64) -> MemRange {
        MemRange { base, len }
    }

    /// One past the last byte covered.
    pub const fn end(&self) -> u64 {
        self.base.saturating_add(self.len)
    }

    /// Returns `true` if `other` lies entirely within `self`.
    pub const fn covers(&self, other: &MemRange) -> bool {
        other.base >= self.base && other.end() <= self.end()
    }

    /// Returns `true` if the byte range `[addr, addr + len)` lies within
    /// `self`.
    pub const fn covers_bytes(&self, addr: u64, len: u64) -> bool {
        self.covers(&MemRange::new(addr, len))
    }

    /// Returns `true` if the two ranges share at least one byte. Empty
    /// ranges overlap nothing.
    pub const fn overlaps(&self, other: &MemRange) -> bool {
        self.len > 0 && other.len > 0 && self.base < other.end() && other.base < self.end()
    }
}

impl fmt::Display for MemRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{:#x}, {:#x})", self.base, self.end())
    }
}

/// What a capability names.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CapKind {
    /// Authority to communicate with one endpoint (tile/process).
    Endpoint(EndpointId),
    /// Authority over a physical memory segment.
    Memory(MemRange),
    /// Authority to invoke a logical, named service.
    Service(ServiceId),
    /// Authority to reconfigure the tile named by the id (load a new
    /// accelerator bitstream into its dynamic region).
    Reconfig(EndpointId),
    /// Authority to invoke a logical service hosted on *another board* of a
    /// multi-board fabric. The board id scopes the service name: local
    /// monitors cannot resolve it, so the kernel forwards the invocation
    /// through the board's egress proxy onto the inter-board fabric.
    Remote {
        /// Which board hosts the service.
        board: u16,
        /// The logical service on that board.
        service: ServiceId,
    },
}

impl CapKind {
    /// The board a remote capability targets, or `None` for on-board kinds.
    pub const fn remote_board(&self) -> Option<u16> {
        match self {
            CapKind::Remote { board, .. } => Some(*board),
            _ => None,
        }
    }
}

/// A capability: an unforgeable (kind, rights, badge) triple held in a
/// monitor-managed table.
///
/// The `badge` is an opaque word chosen at mint time; receivers can use it to
/// tell which grant a message arrived through (the classic seL4 pattern for
/// multiplexing one endpoint across clients).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Capability {
    /// What this capability names.
    pub kind: CapKind,
    /// What the holder may do with it.
    pub rights: Rights,
    /// Mint-time tag, visible to the resource implementor.
    pub badge: u64,
}

impl Capability {
    /// Creates a capability with a zero badge.
    pub const fn new(kind: CapKind, rights: Rights) -> Capability {
        Capability {
            kind,
            rights,
            badge: 0,
        }
    }

    /// Creates a badged capability.
    pub const fn badged(kind: CapKind, rights: Rights, badge: u64) -> Capability {
        Capability {
            kind,
            rights,
            badge,
        }
    }

    /// Returns `true` if this capability carries all of `needed`.
    pub const fn allows(&self, needed: Rights) -> bool {
        self.rights.contains(needed)
    }

    /// Checks that `derived` could legally be derived from `self`:
    /// rights must narrow, the kind must match, and memory ranges must
    /// shrink or stay equal.
    pub fn can_derive(&self, derived: &Capability) -> bool {
        if !self.rights.contains(Rights::GRANT) {
            return false;
        }
        if !derived.rights.is_subset_of(self.rights) {
            return false;
        }
        match (&self.kind, &derived.kind) {
            (CapKind::Memory(parent), CapKind::Memory(child)) => parent.covers(child),
            (a, b) => a == b,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn range_cover_and_overlap() {
        let big = MemRange::new(0x1000, 0x1000);
        let inside = MemRange::new(0x1800, 0x100);
        let outside = MemRange::new(0x2000, 0x10);
        let straddle = MemRange::new(0x1f00, 0x200);
        assert!(big.covers(&inside));
        assert!(!big.covers(&outside));
        assert!(!big.covers(&straddle));
        assert!(big.overlaps(&straddle));
        assert!(!big.overlaps(&outside));
        assert!(big.covers_bytes(0x1000, 0x1000));
        assert!(!big.covers_bytes(0x1000, 0x1001));
    }

    #[test]
    fn zero_length_range_edge_cases() {
        let r = MemRange::new(0x100, 0);
        assert_eq!(r.end(), 0x100);
        let big = MemRange::new(0, 0x200);
        assert!(big.covers(&r));
        // A zero-length range overlaps nothing.
        assert!(!big.overlaps(&r));
    }

    #[test]
    fn range_end_saturates() {
        let r = MemRange::new(u64::MAX - 1, 10);
        assert_eq!(r.end(), u64::MAX);
    }

    #[test]
    fn derive_requires_grant() {
        let no_grant = Capability::new(CapKind::Endpoint(EndpointId(1)), Rights::SEND);
        let child = Capability::new(CapKind::Endpoint(EndpointId(1)), Rights::SEND);
        assert!(!no_grant.can_derive(&child));
        let with_grant = Capability::new(
            CapKind::Endpoint(EndpointId(1)),
            Rights::SEND | Rights::GRANT,
        );
        assert!(with_grant.can_derive(&child));
    }

    #[test]
    fn derive_cannot_amplify_rights() {
        let parent = Capability::new(
            CapKind::Endpoint(EndpointId(1)),
            Rights::SEND | Rights::GRANT,
        );
        let amplified = Capability::new(
            CapKind::Endpoint(EndpointId(1)),
            Rights::SEND | Rights::RECV,
        );
        assert!(!parent.can_derive(&amplified));
    }

    #[test]
    fn remote_caps_carry_a_board_id_and_derive_like_endpoints() {
        let parent = Capability::new(
            CapKind::Remote {
                board: 3,
                service: ServiceId(7),
            },
            Rights::SEND | Rights::GRANT,
        );
        assert_eq!(parent.kind.remote_board(), Some(3));
        assert_eq!(
            Capability::new(CapKind::Endpoint(EndpointId(1)), Rights::SEND)
                .kind
                .remote_board(),
            None
        );
        // Same board + service narrows fine; a different board is a
        // different kind and cannot be derived.
        let same = Capability::new(
            CapKind::Remote {
                board: 3,
                service: ServiceId(7),
            },
            Rights::SEND,
        );
        assert!(parent.can_derive(&same));
        let other_board = Capability::new(
            CapKind::Remote {
                board: 4,
                service: ServiceId(7),
            },
            Rights::SEND,
        );
        assert!(!parent.can_derive(&other_board));
    }

    #[test]
    fn derive_cannot_change_kind_or_widen_range() {
        let parent = Capability::new(
            CapKind::Memory(MemRange::new(0x1000, 0x100)),
            Rights::READ | Rights::GRANT,
        );
        let other_endpoint = Capability::new(CapKind::Endpoint(EndpointId(9)), Rights::READ);
        assert!(!parent.can_derive(&other_endpoint));
        let wider = Capability::new(CapKind::Memory(MemRange::new(0x1000, 0x200)), Rights::READ);
        assert!(!parent.can_derive(&wider));
        let narrower = Capability::new(CapKind::Memory(MemRange::new(0x1040, 0x40)), Rights::READ);
        assert!(parent.can_derive(&narrower));
    }
}
