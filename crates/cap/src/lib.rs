//! Capabilities for Apiary (§4.6 of the paper).
//!
//! Apiary controls access to every shared resource — communication endpoints,
//! memory segments, named services — with capabilities in the Dennis &
//! Van Horn tradition. Capabilities are *partitioned*: the authoritative
//! [`CapTable`] lives inside the trusted per-tile monitor, and untrusted
//! accelerator logic only ever holds opaque [`CapRef`] handles. The monitor
//! interposes on every message and checks the referenced capability, so a
//! buggy or malicious accelerator cannot forge, amplify, or resurrect
//! authority.
//!
//! The model supports:
//!
//! - **rights narrowing** — a derived capability's [`Rights`] are always a
//!   subset of its parent's,
//! - **range narrowing** — a derived memory capability covers a sub-range of
//!   its parent segment,
//! - **recursive revocation** — revoking a capability kills its entire
//!   derivation subtree,
//! - **generation-checked handles** — a revoked slot can be reused without
//!   stale [`CapRef`]s regaining authority.

pub mod capability;
pub mod rights;
pub mod table;

pub use capability::{CapKind, Capability, EndpointId, MemRange, ServiceId};
pub use rights::Rights;
pub use table::{CapError, CapRef, CapTable};
