//! Property-based tests for the capability system.
//!
//! Invariants checked:
//!
//! 1. A derived capability never carries a right its parent lacked
//!    (no amplification, transitively).
//! 2. Memory derivations never widen the covered range.
//! 3. After revoking any capability, its entire derivation subtree is dead.
//! 4. Stale handles never validate after slot reuse.

use apiary_cap::{CapKind, CapRef, CapTable, Capability, EndpointId, MemRange, Rights};
use proptest::prelude::*;

fn arb_rights() -> impl Strategy<Value = Rights> {
    (0u16..=0x7f).prop_map(|bits| {
        // Reconstruct a Rights value from bits using public constants.
        let all = [
            Rights::SEND,
            Rights::RECV,
            Rights::READ,
            Rights::WRITE,
            Rights::GRANT,
            Rights::REVOKE,
            Rights::MANAGE,
        ];
        let mut r = Rights::NONE;
        for (i, flag) in all.iter().enumerate() {
            if bits & (1 << i) != 0 {
                r = r | *flag;
            }
        }
        r
    })
}

/// A random sequence of table operations, interpreted against a model.
#[derive(Debug, Clone)]
enum Op {
    InsertRoot(Rights),
    Derive { parent: usize, rights: Rights },
    Revoke(usize),
    Check { target: usize, rights: Rights },
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        arb_rights().prop_map(Op::InsertRoot),
        (any::<usize>(), arb_rights()).prop_map(|(parent, rights)| Op::Derive { parent, rights }),
        any::<usize>().prop_map(Op::Revoke),
        (any::<usize>(), arb_rights()).prop_map(|(target, rights)| Op::Check { target, rights }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Fuzzes random op sequences against a shadow model that tracks, for
    /// every minted handle, its rights and its transitive parent chain.
    #[test]
    fn table_matches_shadow_model(ops in prop::collection::vec(arb_op(), 1..60)) {
        let mut table = CapTable::new(64);
        // Shadow: (handle, rights, parent_position, alive).
        let mut shadow: Vec<(CapRef, Rights, Option<usize>, bool)> = Vec::new();

        for op in ops {
            match op {
                Op::InsertRoot(rights) => {
                    if let Ok(r) = table.insert_root(Capability::new(
                        CapKind::Endpoint(EndpointId(1)),
                        rights,
                    )) {
                        shadow.push((r, rights, None, true));
                    }
                }
                Op::Derive { parent, rights } => {
                    if shadow.is_empty() { continue; }
                    let pi = parent % shadow.len();
                    let (pref, prights, _, palive) = shadow[pi];
                    let res = table.derive(pref, rights, None);
                    let legal = palive
                        && prights.contains(Rights::GRANT)
                        && rights.is_subset_of(prights);
                    match res {
                        Ok(r) => {
                            prop_assert!(legal, "illegal derive succeeded");
                            shadow.push((r, rights, Some(pi), true));
                        }
                        Err(apiary_cap::CapError::TableFull) => {}
                        Err(_) => prop_assert!(!legal, "legal derive failed"),
                    }
                }
                Op::Revoke(target) => {
                    if shadow.is_empty() { continue; }
                    let ti = target % shadow.len();
                    let (tref, _, _, talive) = shadow[ti];
                    let res = table.revoke(tref);
                    prop_assert_eq!(res.is_ok(), talive);
                    if talive {
                        // Mark the subtree dead in the shadow.
                        let mut dead = vec![ti];
                        while let Some(d) = dead.pop() {
                            shadow[d].3 = false;
                            for (i, entry) in shadow.iter().enumerate() {
                                if entry.2 == Some(d) && entry.3 {
                                    dead.push(i);
                                }
                            }
                        }
                    }
                }
                Op::Check { target, rights } => {
                    if shadow.is_empty() { continue; }
                    let ti = target % shadow.len();
                    let (tref, trights, _, talive) = shadow[ti];
                    let ok = table.check(tref, rights).is_ok();
                    let expect = talive && trights.contains(rights);
                    prop_assert_eq!(ok, expect, "check mismatch for handle {}", ti);
                }
            }
        }

        // Global invariant: every live handle in the shadow still validates
        // with exactly its recorded rights; every dead handle fails.
        for (r, rights, _, alive) in &shadow {
            let ok = table.check(*r, *rights).is_ok();
            prop_assert_eq!(ok, *alive);
        }
    }

    /// Chains of memory derivations only ever shrink the range.
    #[test]
    fn memory_ranges_only_shrink(
        cuts in prop::collection::vec((0u64..4096, 0u64..4096), 1..12)
    ) {
        let mut table = CapTable::new(64);
        let root_range = MemRange::new(0, 1 << 20);
        let mut parent = table
            .insert_root(Capability::new(
                CapKind::Memory(root_range),
                Rights::READ | Rights::WRITE | Rights::GRANT,
            ))
            .expect("space");
        let mut current = root_range;
        for (off, len) in cuts {
            let child_base = current.base + off.min(current.len);
            let child_len = len.min(current.end().saturating_sub(child_base));
            let child = MemRange::new(child_base, child_len);
            let r = table.derive(
                parent,
                Rights::READ | Rights::GRANT,
                Some(CapKind::Memory(child)),
            );
            let r = r.expect("shrinking derivation is always legal");
            let got = table.lookup(r).expect("live");
            match got.kind {
                CapKind::Memory(range) => {
                    prop_assert!(root_range.covers(&range));
                    prop_assert!(current.covers(&range));
                    current = range;
                }
                _ => prop_assert!(false, "kind changed"),
            }
            parent = r;
        }
    }
}
