//! Property-based tests for the accelerator library.

use apiary_accel::apps::compress::{CompressorService, Mode};
use apiary_accel::apps::echo::EchoService;
use apiary_accel::apps::faulty::FaultyService;
use apiary_accel::apps::hash::HashService;
use apiary_accel::apps::kv::{self, KvStoreService};
use apiary_accel::apps::multi::MultiService;
use apiary_accel::apps::vector::VectorService;
use apiary_accel::apps::video::VideoEncoderService;
use apiary_accel::codec::{lz, video};
use apiary_accel::os::test_os::MockOs;
use apiary_accel::{Accelerator, Service, ServiceAction, StateError, TileOs};
use apiary_monitor::wire;
use apiary_noc::{Delivered, Message, NodeId, TrafficClass};
use apiary_sim::Cycle;
use proptest::prelude::*;
use std::collections::HashMap;

fn deliver(badge: u64, payload: Vec<u8>) -> Delivered {
    let mut msg = Message::new(NodeId(1), NodeId(0), TrafficClass::Request, payload);
    msg.kind = wire::KIND_REQUEST;
    msg.badge = badge;
    Delivered {
        msg,
        injected_at: Cycle(0),
        delivered_at: Cycle(0),
    }
}

#[derive(Debug, Clone)]
enum KvOp {
    Put(u8, Vec<u8>),
    Get(u8),
    Del(u8),
}

fn arb_kv_op() -> impl Strategy<Value = KvOp> {
    prop_oneof![
        (any::<u8>(), prop::collection::vec(any::<u8>(), 0..64)).prop_map(|(k, v)| KvOp::Put(k, v)),
        any::<u8>().prop_map(KvOp::Get),
        any::<u8>().prop_map(KvOp::Del),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The KV store agrees with a plain HashMap for any single-tenant
    /// operation sequence (sequential consistency of the service logic).
    #[test]
    fn kv_matches_hashmap_model(ops in prop::collection::vec(arb_kv_op(), 1..80)) {
        let mut svc = KvStoreService::new();
        let mut model: HashMap<u8, Vec<u8>> = HashMap::new();
        let mut os = apiary_accel::os::test_os::MockOs::new();

        for op in ops {
            let (payload, expect_status, expect_val) = match &op {
                KvOp::Put(k, v) => {
                    model.insert(*k, v.clone());
                    (kv::put_req(&[*k], v), kv::status::OK, None)
                }
                KvOp::Get(k) => match model.get(k) {
                    Some(v) => (kv::get_req(&[*k]), kv::status::OK, Some(v.clone())),
                    None => (kv::get_req(&[*k]), kv::status::NOT_FOUND, None),
                },
                KvOp::Del(k) => match model.remove(k) {
                    Some(_) => (kv::del_req(&[*k]), kv::status::OK, None),
                    None => (kv::del_req(&[*k]), kv::status::NOT_FOUND, None),
                },
            };
            let action = svc.serve(&deliver(7, payload), &mut os);
            let reply = match action {
                ServiceAction::Reply(r) => r,
                _ => return Err(TestCaseError::fail("kv always replies")),
            };
            let (status, value) = kv::parse_resp(&reply.payload).expect("well formed");
            prop_assert_eq!(status, expect_status, "op {:?}", op);
            prop_assert_eq!(value.map(|v| v.to_vec()), expect_val);
        }
        prop_assert_eq!(svc.tenant_len(7), model.len());
    }

    /// Save/restore is the identity on the store for any contents.
    #[test]
    fn kv_save_restore_identity(
        entries in prop::collection::vec(
            (any::<u64>(), prop::collection::vec(any::<u8>(), 1..16),
             prop::collection::vec(any::<u8>(), 0..32)),
            0..40,
        )
    ) {
        let mut svc = KvStoreService::new();
        let mut os = apiary_accel::os::test_os::MockOs::new();
        for (badge, k, v) in &entries {
            let _ = svc.serve(&deliver(*badge, kv::put_req(k, v)), &mut os);
        }
        let snap = svc.save().expect("preemptible");
        let mut restored = KvStoreService::new();
        restored.restore(&snap).expect("own snapshot");
        prop_assert_eq!(restored.len(), svc.len());
        // Spot-check every entry through the service interface.
        for (badge, k, v) in &entries {
            let action = restored.serve(&deliver(*badge, kv::get_req(k)), &mut os);
            let ServiceAction::Reply(r) = action else {
                return Err(TestCaseError::fail("kv always replies"));
            };
            let (status, value) = kv::parse_resp(&r.payload).expect("well formed");
            // Later puts may have overwritten; only require presence.
            prop_assert_eq!(status, kv::status::OK);
            prop_assert!(value.is_some() || v.is_empty());
        }
    }

    /// LZ compression round-trips arbitrary bytes.
    #[test]
    fn lz_roundtrip(data in prop::collection::vec(any::<u8>(), 0..4096)) {
        let c = lz::compress(&data);
        prop_assert_eq!(lz::decompress(&c).expect("own output"), data);
    }

    /// LZ decompression never panics on arbitrary (mostly corrupt) input.
    #[test]
    fn lz_decompress_total(data in prop::collection::vec(any::<u8>(), 0..512)) {
        let _ = lz::decompress(&data);
    }

    /// The video codec round-trips any frame at quant 0 and bounds the
    /// error at quant k.
    #[test]
    fn video_roundtrip_and_quant_bound(
        w in 1u32..48,
        h in 1u32..48,
        seed in any::<u64>(),
        quant in 0u32..4,
    ) {
        let frame = video::Frame::test_pattern(w, h, seed);
        let lossless = video::decode(&video::encode(&frame, 0)).expect("own output");
        prop_assert_eq!(&lossless, &frame);
        let lossy = video::decode(&video::encode(&frame, quant)).expect("own output");
        let bound = (1u16 << quant) as i16;
        for (a, b) in frame.pixels.iter().zip(lossy.pixels.iter()) {
            prop_assert!((*a as i16 - *b as i16).abs() < bound.max(1));
        }
    }

    /// Video decode never panics on arbitrary input.
    #[test]
    fn video_decode_total(data in prop::collection::vec(any::<u8>(), 0..512)) {
        let _ = video::decode(&data);
    }
}

// ---------------------------------------------------------------------------
// Checkpoint-plane audit: every preemptible service must (a) serialize
// deterministically — save → restore → save is byte-identical, (b) reject
// structurally corrupt snapshots with `StateError::Corrupt`, (c) never
// panic on arbitrary corruption, and (d) never half-restore: a rejected
// snapshot leaves the victim's state exactly as it was.

/// Runs the four checkpoint-plane properties against one service type.
/// `prime` drives the instance into an arbitrary state; it is applied
/// identically to every instance so their snapshots must agree.
fn check_state_plane<S: Service>(
    fresh: impl Fn() -> S,
    prime: impl Fn(&mut S),
    cut: usize,
    flip: (usize, u8),
) -> Result<(), TestCaseError> {
    let mut svc = fresh();
    prime(&mut svc);
    let snap = svc.save().expect("service advertises preemption");

    // (a) Deterministic round-trip.
    let mut twin = fresh();
    if let Err(e) = twin.restore(&snap) {
        return Err(TestCaseError::fail(format!("own snapshot rejected: {e:?}")));
    }
    prop_assert_eq!(twin.save().expect("still preemptible"), snap.clone());

    // (b) Truncation and trailing garbage are always structural errors.
    let mut rejected: Vec<Vec<u8>> = Vec::new();
    if !snap.is_empty() {
        rejected.push(snap[..cut % snap.len()].to_vec());
    }
    let mut trailing = snap.clone();
    trailing.push(0xA5);
    rejected.push(trailing);
    for bad in rejected {
        let mut victim = fresh();
        prime(&mut victim);
        prop_assert_eq!(victim.restore(&bad), Err(StateError::Corrupt));
        // (d) The rejected restore changed nothing.
        prop_assert_eq!(victim.save().expect("still preemptible"), snap.clone());
    }

    // (c) A flipped byte must never panic. It may restore Ok (plain
    // counters have no redundancy — integrity is the checkpoint layer's
    // checksum), but on Err the victim must again be untouched.
    if !snap.is_empty() {
        let mut flipped = snap.clone();
        flipped[flip.0 % snap.len()] ^= flip.1 | 1; // never a no-op flip
        let mut victim = fresh();
        prime(&mut victim);
        if victim.restore(&flipped).is_err() {
            prop_assert_eq!(victim.save().expect("still preemptible"), snap);
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Checkpoint-plane properties for the KV store (variable-length,
    /// multi-tenant snapshot format).
    #[test]
    fn kv_state_plane(
        entries in prop::collection::vec(
            (any::<u64>(), prop::collection::vec(any::<u8>(), 1..12),
             prop::collection::vec(any::<u8>(), 0..24)),
            0..24,
        ),
        cut in any::<usize>(),
        flip in (any::<usize>(), any::<u8>()),
    ) {
        check_state_plane(
            KvStoreService::new,
            |svc| {
                let mut os = MockOs::new();
                for (badge, k, v) in &entries {
                    let _ = svc.serve(&deliver(*badge, kv::put_req(k, v)), &mut os);
                }
            },
            cut,
            flip,
        )?;
    }

    /// Checkpoint-plane properties for every fixed-size-state service:
    /// echo, hash, vector, faulty, compressor (both modes), video.
    #[test]
    fn counter_services_state_plane(
        inputs in prop::collection::vec(
            (any::<u64>(), prop::collection::vec(any::<u8>(), 0..64)),
            0..12,
        ),
        cost in 0u64..100,
        fault_after in 1u64..8,
        quant in 0u32..4,
        cut in any::<usize>(),
        flip in (any::<usize>(), any::<u8>()),
    ) {
        macro_rules! plane {
            ($fresh:expr) => {
                check_state_plane(
                    $fresh,
                    |svc| {
                        let mut os = MockOs::new();
                        for (badge, payload) in &inputs {
                            let _ = svc.serve(&deliver(*badge, payload.clone()), &mut os);
                        }
                    },
                    cut,
                    flip,
                )?
            };
        }
        plane!(|| EchoService { cost_cycles: cost });
        plane!(HashService::default);
        plane!(VectorService::default);
        plane!(|| FaultyService::new(fault_after));
        plane!(|| CompressorService::new(Mode::Compress));
        plane!(|| CompressorService::new(Mode::Decompress));
        plane!(|| VideoEncoderService::new(quant));
    }

    /// The multi-context wrapper externalizes *every* context; the same
    /// four properties hold at the whole-tile (`Accelerator`) level.
    #[test]
    fn multi_context_state_plane(
        entries in prop::collection::vec(
            (0u64..6, prop::collection::vec(any::<u8>(), 1..8),
             prop::collection::vec(any::<u8>(), 0..16)),
            0..16,
        ),
        cut in any::<usize>(),
        flip in (any::<usize>(), any::<u8>()),
    ) {
        let fresh = || MultiService::new(KvStoreService::new);
        let prime = |m: &mut MultiService<KvStoreService>| {
            let mut os = MockOs::new();
            for (badge, k, v) in &entries {
                os.deliver(deliver(*badge, kv::put_req(k, v)));
            }
            // Drain the inbox and every in-flight job so the snapshot is
            // a function of `entries` alone.
            for _ in 0..2048 {
                m.wake(os.now(), &mut os);
                os.advance(1);
            }
        };

        let mut a = fresh();
        prime(&mut a);
        let snap = a.save_state().expect("multi-context is preemptible");

        let mut twin = fresh();
        twin.restore_state(&snap).expect("own snapshot restores");
        prop_assert_eq!(twin.save_state().expect("still preemptible"), snap.clone());

        let mut rejected: Vec<Vec<u8>> = Vec::new();
        if !snap.is_empty() {
            rejected.push(snap[..cut % snap.len()].to_vec());
        }
        let mut trailing = snap.clone();
        trailing.push(0xA5);
        rejected.push(trailing);
        for bad in rejected {
            let mut victim = fresh();
            prime(&mut victim);
            prop_assert_eq!(victim.restore_state(&bad), Err(StateError::Corrupt));
            prop_assert_eq!(victim.save_state().expect("still preemptible"), snap.clone());
        }

        if !snap.is_empty() {
            let mut flipped = snap.clone();
            flipped[flip.0 % snap.len()] ^= 0x01;
            let mut victim = fresh();
            prime(&mut victim);
            if victim.restore_state(&flipped).is_err() {
                prop_assert_eq!(victim.save_state().expect("still preemptible"), snap);
            }
        }
    }
}
