//! Property-based tests for the accelerator library.

use apiary_accel::apps::kv::{self, KvStoreService};
use apiary_accel::codec::{lz, video};
use apiary_accel::{Service, ServiceAction};
use apiary_monitor::wire;
use apiary_noc::{Delivered, Message, NodeId, TrafficClass};
use apiary_sim::Cycle;
use proptest::prelude::*;
use std::collections::HashMap;

fn deliver(badge: u64, payload: Vec<u8>) -> Delivered {
    let mut msg = Message::new(NodeId(1), NodeId(0), TrafficClass::Request, payload);
    msg.kind = wire::KIND_REQUEST;
    msg.badge = badge;
    Delivered {
        msg,
        injected_at: Cycle(0),
        delivered_at: Cycle(0),
    }
}

#[derive(Debug, Clone)]
enum KvOp {
    Put(u8, Vec<u8>),
    Get(u8),
    Del(u8),
}

fn arb_kv_op() -> impl Strategy<Value = KvOp> {
    prop_oneof![
        (any::<u8>(), prop::collection::vec(any::<u8>(), 0..64)).prop_map(|(k, v)| KvOp::Put(k, v)),
        any::<u8>().prop_map(KvOp::Get),
        any::<u8>().prop_map(KvOp::Del),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The KV store agrees with a plain HashMap for any single-tenant
    /// operation sequence (sequential consistency of the service logic).
    #[test]
    fn kv_matches_hashmap_model(ops in prop::collection::vec(arb_kv_op(), 1..80)) {
        let mut svc = KvStoreService::new();
        let mut model: HashMap<u8, Vec<u8>> = HashMap::new();
        let mut os = apiary_accel::os::test_os::MockOs::new();

        for op in ops {
            let (payload, expect_status, expect_val) = match &op {
                KvOp::Put(k, v) => {
                    model.insert(*k, v.clone());
                    (kv::put_req(&[*k], v), kv::status::OK, None)
                }
                KvOp::Get(k) => match model.get(k) {
                    Some(v) => (kv::get_req(&[*k]), kv::status::OK, Some(v.clone())),
                    None => (kv::get_req(&[*k]), kv::status::NOT_FOUND, None),
                },
                KvOp::Del(k) => match model.remove(k) {
                    Some(_) => (kv::del_req(&[*k]), kv::status::OK, None),
                    None => (kv::del_req(&[*k]), kv::status::NOT_FOUND, None),
                },
            };
            let action = svc.serve(&deliver(7, payload), &mut os);
            let reply = match action {
                ServiceAction::Reply(r) => r,
                _ => return Err(TestCaseError::fail("kv always replies")),
            };
            let (status, value) = kv::parse_resp(&reply.payload).expect("well formed");
            prop_assert_eq!(status, expect_status, "op {:?}", op);
            prop_assert_eq!(value.map(|v| v.to_vec()), expect_val);
        }
        prop_assert_eq!(svc.tenant_len(7), model.len());
    }

    /// Save/restore is the identity on the store for any contents.
    #[test]
    fn kv_save_restore_identity(
        entries in prop::collection::vec(
            (any::<u64>(), prop::collection::vec(any::<u8>(), 1..16),
             prop::collection::vec(any::<u8>(), 0..32)),
            0..40,
        )
    ) {
        let mut svc = KvStoreService::new();
        let mut os = apiary_accel::os::test_os::MockOs::new();
        for (badge, k, v) in &entries {
            let _ = svc.serve(&deliver(*badge, kv::put_req(k, v)), &mut os);
        }
        let snap = svc.save().expect("preemptible");
        let mut restored = KvStoreService::new();
        restored.restore(&snap).expect("own snapshot");
        prop_assert_eq!(restored.len(), svc.len());
        // Spot-check every entry through the service interface.
        for (badge, k, v) in &entries {
            let action = restored.serve(&deliver(*badge, kv::get_req(k)), &mut os);
            let ServiceAction::Reply(r) = action else {
                return Err(TestCaseError::fail("kv always replies"));
            };
            let (status, value) = kv::parse_resp(&r.payload).expect("well formed");
            // Later puts may have overwritten; only require presence.
            prop_assert_eq!(status, kv::status::OK);
            prop_assert!(value.is_some() || v.is_empty());
        }
    }

    /// LZ compression round-trips arbitrary bytes.
    #[test]
    fn lz_roundtrip(data in prop::collection::vec(any::<u8>(), 0..4096)) {
        let c = lz::compress(&data);
        prop_assert_eq!(lz::decompress(&c).expect("own output"), data);
    }

    /// LZ decompression never panics on arbitrary (mostly corrupt) input.
    #[test]
    fn lz_decompress_total(data in prop::collection::vec(any::<u8>(), 0..512)) {
        let _ = lz::decompress(&data);
    }

    /// The video codec round-trips any frame at quant 0 and bounds the
    /// error at quant k.
    #[test]
    fn video_roundtrip_and_quant_bound(
        w in 1u32..48,
        h in 1u32..48,
        seed in any::<u64>(),
        quant in 0u32..4,
    ) {
        let frame = video::Frame::test_pattern(w, h, seed);
        let lossless = video::decode(&video::encode(&frame, 0)).expect("own output");
        prop_assert_eq!(&lossless, &frame);
        let lossy = video::decode(&video::encode(&frame, quant)).expect("own output");
        let bound = (1u16 << quant) as i16;
        for (a, b) in frame.pixels.iter().zip(lossy.pixels.iter()) {
            prop_assert!((*a as i16 - *b as i16).abs() < bound.max(1));
        }
    }

    /// Video decode never panics on arbitrary input.
    #[test]
    fn video_decode_total(data in prop::collection::vec(any::<u8>(), 0..512)) {
        let _ = video::decode(&data);
    }
}
