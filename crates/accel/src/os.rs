//! The portable OS interface accelerators program against.

use apiary_cap::CapRef;
use apiary_monitor::SendError;
use apiary_noc::{Delivered, TrafficClass};
use apiary_sim::{Cycle, Payload};

/// The capability environment a process starts with: named handles to the
/// resources the kernel granted it (its "argv of authority").
///
/// # Examples
///
/// ```
/// use apiary_accel::CapEnv;
/// use apiary_cap::CapRef;
///
/// let mut env = CapEnv::new();
/// env.insert("mem", CapRef { index: 0, generation: 0 });
/// assert!(env.get("mem").is_some());
/// assert!(env.get("net").is_none());
/// ```
#[derive(Debug, Clone, Default)]
pub struct CapEnv {
    caps: Vec<(String, CapRef)>,
}

impl CapEnv {
    /// Creates an empty environment.
    pub fn new() -> CapEnv {
        CapEnv::default()
    }

    /// Adds or replaces a named capability.
    pub fn insert(&mut self, name: &str, cap: CapRef) {
        if let Some(slot) = self.caps.iter_mut().find(|(n, _)| n == name) {
            slot.1 = cap;
        } else {
            self.caps.push((name.to_string(), cap));
        }
    }

    /// Looks a capability up by name.
    pub fn get(&self, name: &str) -> Option<CapRef> {
        self.caps.iter().find(|(n, _)| n == name).map(|(_, c)| *c)
    }

    /// Iterates over all named capabilities.
    pub fn iter(&self) -> impl Iterator<Item = (&str, CapRef)> {
        self.caps.iter().map(|(n, c)| (n.as_str(), *c))
    }

    /// Number of capabilities in the environment.
    pub fn len(&self) -> usize {
        self.caps.len()
    }

    /// Returns `true` when no capabilities were granted.
    pub fn is_empty(&self) -> bool {
        self.caps.is_empty()
    }
}

/// The system-call surface of an Apiary tile.
///
/// This is the *entire* interface between untrusted accelerator logic and
/// the rest of the system; everything passes through the tile's monitor.
/// Implementations live in the kernel (`apiary-core`); tests may use mocks.
pub trait TileOs {
    /// Current simulated time.
    fn now(&self) -> Cycle;

    /// Takes the next delivered message, if any.
    fn recv(&mut self) -> Option<Delivered>;

    /// Messages waiting in the inbox (what [`TileOs::recv`] would drain).
    /// Wakeup scheduling uses this to choose between sleeping until a
    /// message arrives and re-running next cycle to drain a backlog.
    fn inbox_depth(&self) -> usize;

    /// Sends a message through a capability.
    ///
    /// # Errors
    ///
    /// [`SendError`] when the monitor refuses (capability, rate, queue).
    fn send(
        &mut self,
        cap: CapRef,
        kind: u16,
        tag: u64,
        class: TrafficClass,
        payload: Payload,
    ) -> Result<(), SendError>;

    /// Replies to a received message. Succeeds only if the kernel granted
    /// this tile an endpoint capability for the message's source — IPC must
    /// have been established (§4.2).
    ///
    /// # Errors
    ///
    /// [`SendError::Cap`] when no endpoint capability covers the source.
    fn reply(
        &mut self,
        to: &Delivered,
        kind: u16,
        class: TrafficClass,
        payload: Payload,
    ) -> Result<(), SendError>;

    /// Issues an asynchronous read of `len` bytes at `offset` within the
    /// segment capability `mem_cap`; the completion arrives later as a
    /// [`apiary_monitor::wire::KIND_MEM_REPLY`] message carrying `tag`.
    ///
    /// # Errors
    ///
    /// [`SendError::Protect`] on a bounds/rights failure (checked locally,
    /// before the network).
    fn mem_read(
        &mut self,
        mem_cap: CapRef,
        offset: u64,
        len: u64,
        tag: u64,
    ) -> Result<(), SendError>;

    /// Issues an asynchronous write; completion semantics as
    /// [`TileOs::mem_read`].
    ///
    /// # Errors
    ///
    /// As [`TileOs::mem_read`].
    fn mem_write(
        &mut self,
        mem_cap: CapRef,
        offset: u64,
        data: &[u8],
        tag: u64,
    ) -> Result<(), SendError>;

    /// The capability environment the kernel granted this process.
    fn cap_env(&self) -> &CapEnv;

    /// Emits a free-form trace annotation.
    fn note(&mut self, text: &str);

    /// Raises a fault: the accelerator detected an unrecoverable internal
    /// error. The kernel applies the tile's fault policy (§4.4) — fail-stop,
    /// or context swap if the accelerator is preemptible.
    fn raise_fault(&mut self, code: u32);
}

/// A self-contained [`TileOs`] implementation for unit-testing accelerators
/// without booting a kernel.
pub mod test_os {
    use super::{CapEnv, TileOs};
    use apiary_cap::CapRef;
    use apiary_monitor::SendError;
    use apiary_noc::{Delivered, NodeId, TrafficClass};
    use apiary_sim::{Cycle, Payload};
    use std::collections::VecDeque;

    /// A mock tile OS: deliveries are scripted, sends and faults are
    /// recorded, replies always succeed.
    #[derive(Default)]
    pub struct MockOs {
        now: Cycle,
        inbox: VecDeque<Delivered>,
        /// Replies sent: (destination, kind, class, payload).
        pub sent: Vec<(NodeId, u16, TrafficClass, Payload)>,
        /// Raw sends through capabilities: (cap, kind, tag, payload).
        pub cap_sends: Vec<(CapRef, u16, u64, Payload)>,
        /// Memory operations issued: (cap, offset, len_or_data_len, write?).
        pub mem_ops: Vec<(CapRef, u64, u64, bool)>,
        /// Faults raised.
        pub faults: Vec<u32>,
        /// Notes emitted.
        pub notes: Vec<String>,
        env: CapEnv,
    }

    impl MockOs {
        /// Creates an empty mock at time zero.
        pub fn new() -> MockOs {
            MockOs::default()
        }

        /// Queues a delivery for the accelerator to `recv`.
        pub fn deliver(&mut self, d: Delivered) {
            self.inbox.push_back(d);
        }

        /// Advances mock time.
        pub fn advance(&mut self, cycles: u64) {
            self.now += cycles;
        }

        /// Messages still queued.
        pub fn inbox_len(&self) -> usize {
            self.inbox.len()
        }

        /// Grants a named capability in the environment.
        pub fn grant(&mut self, name: &str, cap: CapRef) {
            self.env.insert(name, cap);
        }
    }

    impl TileOs for MockOs {
        fn now(&self) -> Cycle {
            self.now
        }

        fn recv(&mut self) -> Option<Delivered> {
            self.inbox.pop_front()
        }

        fn inbox_depth(&self) -> usize {
            self.inbox.len()
        }

        fn send(
            &mut self,
            cap: CapRef,
            kind: u16,
            tag: u64,
            _class: TrafficClass,
            payload: Payload,
        ) -> Result<(), SendError> {
            self.cap_sends.push((cap, kind, tag, payload));
            Ok(())
        }

        fn reply(
            &mut self,
            to: &Delivered,
            kind: u16,
            class: TrafficClass,
            payload: Payload,
        ) -> Result<(), SendError> {
            self.sent.push((to.msg.src, kind, class, payload));
            Ok(())
        }

        fn mem_read(
            &mut self,
            mem_cap: CapRef,
            offset: u64,
            len: u64,
            _tag: u64,
        ) -> Result<(), SendError> {
            self.mem_ops.push((mem_cap, offset, len, false));
            Ok(())
        }

        fn mem_write(
            &mut self,
            mem_cap: CapRef,
            offset: u64,
            data: &[u8],
            _tag: u64,
        ) -> Result<(), SendError> {
            self.mem_ops
                .push((mem_cap, offset, data.len() as u64, true));
            Ok(())
        }

        fn cap_env(&self) -> &CapEnv {
            &self.env
        }

        fn note(&mut self, text: &str) {
            self.notes.push(text.to_string());
        }

        fn raise_fault(&mut self, code: u32) {
            self.faults.push(code);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cap_env_insert_get_replace() {
        let mut env = CapEnv::new();
        assert!(env.is_empty());
        let a = CapRef {
            index: 1,
            generation: 0,
        };
        let b = CapRef {
            index: 2,
            generation: 3,
        };
        env.insert("x", a);
        env.insert("y", b);
        assert_eq!(env.get("x"), Some(a));
        assert_eq!(env.len(), 2);
        // Replace keeps one entry.
        env.insert("x", b);
        assert_eq!(env.get("x"), Some(b));
        assert_eq!(env.len(), 2);
        assert_eq!(env.iter().count(), 2);
    }
}
