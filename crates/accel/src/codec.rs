//! Real (if modest) codecs so pipeline experiments move real bytes.

pub mod lz;
pub mod video;
