//! The accelerator library: services the paper's scenarios are built from.

pub mod balance;
pub mod compress;
pub mod echo;
pub mod faulty;
pub mod flood;
pub mod hash;
pub mod idle;
pub mod kv;
pub mod multi;
pub mod vector;
pub mod video;
