//! An LZ77-style sliding-window compressor.
//!
//! This is the "third-party compression accelerator" of §2: a standalone,
//! reusable block that the video pipeline composes with. The format is a
//! token stream:
//!
//! - `0x00, len, bytes...` — literal run (`1..=255` bytes),
//! - `0x01, dist_lo, dist_hi, len` — match of `len` (`4..=255`) bytes at
//!   `dist` (`1..=65535`) bytes back.
//!
//! Matching uses a 3-byte hash table over a 64 KiB window — greedy, single
//! pass, exactly the shape a streaming hardware implementation takes.

use core::fmt;

/// Decompression errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LzError {
    /// The token stream is malformed.
    Corrupt,
}

impl fmt::Display for LzError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LzError::Corrupt => write!(f, "corrupt LZ stream"),
        }
    }
}

impl std::error::Error for LzError {}

const MIN_MATCH: usize = 4;
const MAX_MATCH: usize = 255;
const WINDOW: usize = 65_535;
const HASH_BITS: u32 = 13;

#[inline]
fn hash3(data: &[u8], i: usize) -> usize {
    let v = (data[i] as u32) | ((data[i + 1] as u32) << 8) | ((data[i + 2] as u32) << 16);
    (v.wrapping_mul(0x9E37_79B1) >> (32 - HASH_BITS)) as usize
}

/// Compresses `data`.
pub fn compress(data: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(data.len() / 2 + 16);
    let mut head = vec![usize::MAX; 1 << HASH_BITS];
    let mut lit_start = 0usize;
    let mut i = 0usize;

    let flush_literals = |out: &mut Vec<u8>, from: usize, to: usize, data: &[u8]| {
        let mut s = from;
        while s < to {
            let n = (to - s).min(255);
            out.push(0x00);
            out.push(n as u8);
            out.extend_from_slice(&data[s..s + n]);
            s += n;
        }
    };

    while i + MIN_MATCH <= data.len() {
        let h = hash3(data, i);
        let cand = head[h];
        head[h] = i;
        let mut matched = 0usize;
        if cand != usize::MAX && i - cand <= WINDOW {
            let max = (data.len() - i).min(MAX_MATCH);
            while matched < max && data[cand + matched] == data[i + matched] {
                matched += 1;
            }
        }
        if matched >= MIN_MATCH {
            flush_literals(&mut out, lit_start, i, data);
            let dist = (i - cand) as u16;
            out.push(0x01);
            out.extend_from_slice(&dist.to_le_bytes());
            out.push(matched as u8);
            // Index the skipped positions sparsely (every other byte) to
            // keep the single-pass cost low, as a hardware matcher would.
            let end = i + matched;
            let mut j = i + 1;
            while j + MIN_MATCH <= data.len() && j < end {
                head[hash3(data, j)] = j;
                j += 2;
            }
            i = end;
            lit_start = i;
        } else {
            i += 1;
        }
    }
    flush_literals(&mut out, lit_start, data.len(), data);
    out
}

/// Decompresses a token stream.
///
/// # Errors
///
/// [`LzError::Corrupt`] on malformed input (bad opcode, zero-length run,
/// out-of-range back-reference, truncation).
pub fn decompress(stream: &[u8]) -> Result<Vec<u8>, LzError> {
    let mut out = Vec::with_capacity(stream.len() * 2);
    let mut i = 0usize;
    while i < stream.len() {
        match stream[i] {
            0x00 => {
                if i + 1 >= stream.len() {
                    return Err(LzError::Corrupt);
                }
                let n = stream[i + 1] as usize;
                if n == 0 || i + 2 + n > stream.len() {
                    return Err(LzError::Corrupt);
                }
                out.extend_from_slice(&stream[i + 2..i + 2 + n]);
                i += 2 + n;
            }
            0x01 => {
                if i + 3 >= stream.len() {
                    return Err(LzError::Corrupt);
                }
                let dist =
                    u16::from_le_bytes(stream[i + 1..i + 3].try_into().expect("sized")) as usize;
                let len = stream[i + 3] as usize;
                if dist == 0 || len < MIN_MATCH || dist > out.len() {
                    return Err(LzError::Corrupt);
                }
                let start = out.len() - dist;
                // Overlapping copies are legal (and common for runs).
                for k in 0..len {
                    let b = out[start + k];
                    out.push(b);
                }
                i += 4;
            }
            _ => return Err(LzError::Corrupt),
        }
    }
    Ok(out)
}

/// Compression cost model: a streaming matcher does ~1 byte/cycle plus
/// hash-table setup.
pub fn compress_cost_cycles(bytes: usize) -> u64 {
    64 + bytes as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(data: &[u8]) {
        let c = compress(data);
        let d = decompress(&c).expect("well formed");
        assert_eq!(d, data);
    }

    #[test]
    fn empty_and_tiny_inputs() {
        roundtrip(b"");
        roundtrip(b"a");
        roundtrip(b"abc");
        roundtrip(b"abcd");
    }

    #[test]
    fn repetitive_input_compresses_well() {
        let data: Vec<u8> = b"hello world ".repeat(500).to_vec();
        let c = compress(&data);
        assert!(c.len() < data.len() / 5, "{} vs {}", c.len(), data.len());
        assert_eq!(decompress(&c).expect("well formed"), data);
    }

    #[test]
    fn run_of_one_byte() {
        let data = vec![7u8; 10_000];
        let c = compress(&data);
        assert!(c.len() < 200, "{}", c.len());
        assert_eq!(decompress(&c).expect("well formed"), data);
    }

    #[test]
    fn incompressible_input_roundtrips() {
        // A linear-congruential byte stream has few 4-byte repeats.
        let mut x = 12345u32;
        let data: Vec<u8> = (0..8192)
            .map(|_| {
                x = x.wrapping_mul(1664525).wrapping_add(1013904223);
                (x >> 24) as u8
            })
            .collect();
        roundtrip(&data);
    }

    #[test]
    fn structured_text_roundtrips() {
        let data = b"the quick brown fox jumps over the lazy dog; \
                     the quick brown fox jumps over the lazy dog again"
            .repeat(40);
        roundtrip(&data);
    }

    #[test]
    fn corrupt_streams_rejected() {
        assert_eq!(decompress(&[0x02]), Err(LzError::Corrupt));
        assert_eq!(decompress(&[0x00]), Err(LzError::Corrupt));
        assert_eq!(decompress(&[0x00, 0]), Err(LzError::Corrupt));
        assert_eq!(decompress(&[0x00, 5, 1, 2]), Err(LzError::Corrupt));
        // Back-reference beyond the start of output.
        assert_eq!(decompress(&[0x01, 9, 0, 8]), Err(LzError::Corrupt));
        // Match length below MIN_MATCH.
        assert_eq!(
            decompress(&[0x00, 4, 1, 2, 3, 4, 0x01, 2, 0, 2]),
            Err(LzError::Corrupt)
        );
    }

    #[test]
    fn overlapping_match_decodes() {
        // Literal "ab", then a match of length 6 at distance 2 = "ababab".
        let stream = [0x00, 2, b'a', b'b', 0x01, 2, 0, 6];
        assert_eq!(decompress(&stream).expect("well formed"), b"abababab");
    }

    #[test]
    fn cost_scales() {
        assert!(compress_cost_cycles(10_000) > compress_cost_cycles(10));
    }
}
