//! A simple intra-frame video codec: per-row delta prediction, optional
//! quantisation, and run-length entropy coding.
//!
//! The point is not compression ratio; it is that the encoding service in
//! the §2 pipeline performs a real, verifiable transformation with a
//! data-dependent output size and a plausible cycles-per-pixel cost.
//!
//! Frame format: `width * height` bytes of 8-bit luma samples.
//! Stream format: a 12-byte header (`width: u32, height: u32,
//! quant_shift: u32`) followed by RLE tokens over the quantised deltas:
//!
//! - `0x00, n, v` — run of `n` copies of `v` (n >= 1),
//! - `0x01, n, v0..v{n-1}` — literal run of `n` bytes.

use core::fmt;

/// Codec errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VideoError {
    /// Frame dimensions do not match the pixel count.
    BadDimensions,
    /// The encoded stream is malformed.
    Corrupt,
}

impl fmt::Display for VideoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VideoError::BadDimensions => write!(f, "dimensions do not match pixel data"),
            VideoError::Corrupt => write!(f, "corrupt video stream"),
        }
    }
}

impl std::error::Error for VideoError {}

/// A raw frame of 8-bit samples.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Pixels per row.
    pub width: u32,
    /// Rows.
    pub height: u32,
    /// Row-major samples, `width * height` of them.
    pub pixels: Vec<u8>,
}

impl Frame {
    /// Creates a frame, validating dimensions.
    ///
    /// # Errors
    ///
    /// [`VideoError::BadDimensions`] if `pixels.len() != width * height`.
    pub fn new(width: u32, height: u32, pixels: Vec<u8>) -> Result<Frame, VideoError> {
        if pixels.len() != (width as usize) * (height as usize) {
            return Err(VideoError::BadDimensions);
        }
        Ok(Frame {
            width,
            height,
            pixels,
        })
    }

    /// A synthetic test-pattern frame (smooth gradient plus moving block),
    /// deterministic in `seed`.
    pub fn test_pattern(width: u32, height: u32, seed: u64) -> Frame {
        let mut pixels = Vec::with_capacity((width * height) as usize);
        let bx = (seed % width.max(1) as u64) as u32;
        let by = (seed / 7 % height.max(1) as u64) as u32;
        for y in 0..height {
            for x in 0..width {
                let grad = ((x / 2 + y / 3) & 0xff) as u8;
                let block = if x.abs_diff(bx) < 8 && y.abs_diff(by) < 8 {
                    128
                } else {
                    0
                };
                pixels.push(grad.wrapping_add(block));
            }
        }
        Frame {
            width,
            height,
            pixels,
        }
    }
}

fn delta_encode(frame: &Frame, quant_shift: u32) -> Vec<u8> {
    let w = frame.width as usize;
    let mut out = Vec::with_capacity(frame.pixels.len());
    for row in frame.pixels.chunks(w.max(1)) {
        let mut prev = 0u8;
        for &p in row {
            let q = p >> quant_shift;
            out.push(q.wrapping_sub(prev));
            prev = q;
        }
    }
    out
}

fn delta_decode(deltas: &[u8], width: u32, quant_shift: u32) -> Vec<u8> {
    let w = width as usize;
    let mut out = Vec::with_capacity(deltas.len());
    for row in deltas.chunks(w.max(1)) {
        let mut prev = 0u8;
        for &d in row {
            let q = prev.wrapping_add(d);
            out.push(q << quant_shift);
            prev = q;
        }
    }
    out
}

fn rle_encode(data: &[u8]) -> Vec<u8> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < data.len() {
        // Measure the run starting at i.
        let v = data[i];
        let mut run = 1usize;
        while i + run < data.len() && data[i + run] == v && run < 255 {
            run += 1;
        }
        if run >= 3 {
            out.extend_from_slice(&[0x00, run as u8, v]);
            i += run;
        } else {
            // Collect a literal run up to the next >=3 run or 255 bytes.
            let start = i;
            let mut j = i;
            while j < data.len() && j - start < 255 {
                let v = data[j];
                let mut r = 1;
                while j + r < data.len() && data[j + r] == v && r < 3 {
                    r += 1;
                }
                if r >= 3 {
                    break;
                }
                j += 1;
            }
            let lit = &data[start..j];
            out.push(0x01);
            out.push(lit.len() as u8);
            out.extend_from_slice(lit);
            i = j;
        }
    }
    out
}

fn rle_decode(data: &[u8]) -> Result<Vec<u8>, VideoError> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < data.len() {
        match data[i] {
            0x00 => {
                if i + 2 >= data.len() {
                    return Err(VideoError::Corrupt);
                }
                let n = data[i + 1] as usize;
                let v = data[i + 2];
                if n == 0 {
                    return Err(VideoError::Corrupt);
                }
                out.extend(std::iter::repeat_n(v, n));
                i += 3;
            }
            0x01 => {
                if i + 1 >= data.len() {
                    return Err(VideoError::Corrupt);
                }
                let n = data[i + 1] as usize;
                if n == 0 || i + 2 + n > data.len() {
                    return Err(VideoError::Corrupt);
                }
                out.extend_from_slice(&data[i + 2..i + 2 + n]);
                i += 2 + n;
            }
            _ => return Err(VideoError::Corrupt),
        }
    }
    Ok(out)
}

/// Encodes a frame. With `quant_shift == 0` the codec is lossless; larger
/// shifts trade fidelity for size exactly like a real quantiser.
pub fn encode(frame: &Frame, quant_shift: u32) -> Vec<u8> {
    let quant_shift = quant_shift.min(7);
    let mut out = Vec::new();
    out.extend_from_slice(&frame.width.to_le_bytes());
    out.extend_from_slice(&frame.height.to_le_bytes());
    out.extend_from_slice(&quant_shift.to_le_bytes());
    out.extend_from_slice(&rle_encode(&delta_encode(frame, quant_shift)));
    out
}

/// Decodes a stream back into a frame.
///
/// # Errors
///
/// [`VideoError::Corrupt`] on malformed streams.
pub fn decode(stream: &[u8]) -> Result<Frame, VideoError> {
    if stream.len() < 12 {
        return Err(VideoError::Corrupt);
    }
    let width = u32::from_le_bytes(stream[0..4].try_into().expect("sized"));
    let height = u32::from_le_bytes(stream[4..8].try_into().expect("sized"));
    let quant_shift = u32::from_le_bytes(stream[8..12].try_into().expect("sized"));
    if quant_shift > 7 {
        return Err(VideoError::Corrupt);
    }
    let deltas = rle_decode(&stream[12..])?;
    if deltas.len() != (width as usize) * (height as usize) {
        return Err(VideoError::Corrupt);
    }
    let pixels = delta_decode(&deltas, width, quant_shift);
    Frame::new(width, height, pixels)
}

/// The encoder's cost model: cycles to encode a frame of `n` pixels.
/// A pipelined hardware encoder sustains ~1 pixel/cycle plus setup.
pub fn encode_cost_cycles(pixels: usize) -> u64 {
    32 + pixels as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lossless_roundtrip_test_pattern() {
        for seed in 0..8 {
            let f = Frame::test_pattern(64, 48, seed);
            let enc = encode(&f, 0);
            let dec = decode(&enc).expect("well formed");
            assert_eq!(dec, f, "seed {seed}");
        }
    }

    #[test]
    fn quantisation_is_bounded_loss() {
        let f = Frame::test_pattern(32, 32, 3);
        let enc = encode(&f, 2);
        let dec = decode(&enc).expect("well formed");
        for (a, b) in f.pixels.iter().zip(dec.pixels.iter()) {
            assert!((*a as i16 - *b as i16).unsigned_abs() < 4);
        }
    }

    #[test]
    fn smooth_content_compresses() {
        // A flat frame should shrink dramatically under delta+RLE.
        let f = Frame::new(64, 64, vec![77; 64 * 64]).expect("sized");
        let enc = encode(&f, 0);
        assert!(enc.len() < f.pixels.len() / 10, "{} bytes", enc.len());
    }

    #[test]
    fn adversarial_content_still_roundtrips() {
        // Worst case for RLE: no runs at all.
        let pixels: Vec<u8> = (0..4096u32).map(|i| (i * 97 % 251) as u8).collect();
        let f = Frame::new(64, 64, pixels).expect("sized");
        let dec = decode(&encode(&f, 0)).expect("well formed");
        assert_eq!(dec, f);
    }

    #[test]
    fn bad_dimensions_rejected() {
        assert_eq!(
            Frame::new(10, 10, vec![0; 99]),
            Err(VideoError::BadDimensions)
        );
    }

    #[test]
    fn truncated_stream_rejected() {
        let f = Frame::test_pattern(16, 16, 0);
        let enc = encode(&f, 0);
        assert_eq!(decode(&enc[..8]), Err(VideoError::Corrupt));
        assert_eq!(decode(&enc[..enc.len() - 1]), Err(VideoError::Corrupt));
    }

    #[test]
    fn garbage_stream_rejected() {
        assert!(decode(&[0xFF; 64]).is_err());
    }

    #[test]
    fn empty_frame_roundtrips() {
        let f = Frame::new(0, 0, vec![]).expect("sized");
        let dec = decode(&encode(&f, 0)).expect("well formed");
        assert_eq!(dec, f);
    }

    #[test]
    fn cost_scales_with_pixels() {
        assert!(encode_cost_cycles(10_000) > encode_cost_cycles(100));
    }
}
