//! Multi-context accelerators (§4.2, §4.4).
//!
//! The paper's process granularity is *one user context on one
//! accelerator*: contexts on the same tile are mutually trusting but
//! should still be fault-isolated — "if an error occurs in one user
//! context within an accelerator, other independent processes on the
//! accelerator can keep running."
//!
//! [`MultiService`] is that execution model as a harness: it hosts one
//! [`Service`] instance per context (contexts are keyed by capability
//! badge, like KV tenancy), dispatches each request to its context's
//! instance, and contains context faults — a faulting context is swapped
//! out (its instance reset, its state lost) while every other context
//! keeps both service and state. Because each context's state is
//! externalized independently, the whole tile is preemptible.

use crate::accelerator::{Accelerator, Service, ServiceAction, ServiceReply, StateError};
use crate::os::TileOs;
use apiary_monitor::wire;
use apiary_noc::{Delivered, TrafficClass};
use apiary_sim::{Cycle, Wakeup};
use std::collections::BTreeMap;

/// One in-flight job (per tile, one execution unit shared by contexts —
/// the §4.4 concurrent model).
struct Pending {
    done_at: Cycle,
    reply: ServiceReply,
    to: Delivered,
}

/// A multi-context wrapper: one `S` per badge.
pub struct MultiService<S: Service> {
    factory: Box<dyn Fn() -> S + Send>,
    contexts: BTreeMap<u64, S>,
    pending: Option<Pending>,
    /// Requests served per context.
    pub served: BTreeMap<u64, u64>,
    /// Context faults contained (context id, code).
    pub context_faults: Vec<(u64, u32)>,
}

impl<S: Service> MultiService<S> {
    /// Creates a multi-context accelerator; `factory` builds a fresh
    /// context instance on first use and after a context fault.
    pub fn new(factory: impl Fn() -> S + Send + 'static) -> MultiService<S> {
        MultiService {
            factory: Box::new(factory),
            contexts: BTreeMap::new(),
            pending: None,
            served: BTreeMap::new(),
            context_faults: Vec::new(),
        }
    }

    /// Live context count.
    pub fn contexts(&self) -> usize {
        self.contexts.len()
    }

    /// Immutable access to one context's service instance.
    pub fn context(&self, badge: u64) -> Option<&S> {
        self.contexts.get(&badge)
    }
}

impl<S: Service + 'static> Accelerator for MultiService<S> {
    fn name(&self) -> &'static str {
        "multi-context"
    }

    fn as_any(&self) -> &dyn core::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn core::any::Any {
        self
    }

    fn wake(&mut self, now: Cycle, os: &mut dyn TileOs) -> Wakeup {
        // Finish the in-flight job.
        if let Some(p) = &self.pending {
            if now >= p.done_at {
                let p = self.pending.take().expect("checked above");
                let _ = os.reply(&p.to, p.reply.kind, p.reply.class, p.reply.payload);
            } else {
                return Wakeup::At(p.done_at);
            }
        }
        let Some(req) = os.recv() else {
            return Wakeup::OnMessage;
        };
        // Consumed one message; more may be queued behind it.
        let backlog = if os.inbox_depth() > 0 {
            Wakeup::AtOrMessage(now.saturating_add(1))
        } else {
            Wakeup::OnMessage
        };
        if matches!(
            req.msg.kind,
            wire::KIND_ERROR | wire::KIND_RESPONSE | wire::KIND_MEM_REPLY | wire::KIND_LOOKUP_REPLY
        ) {
            return backlog;
        }
        let badge = req.msg.badge;
        let ctx = self
            .contexts
            .entry(badge)
            .or_insert_with(|| (self.factory)());
        match ctx.serve(&req, os) {
            ServiceAction::Reply(reply) => {
                *self.served.entry(badge).or_default() += 1;
                let done_at = now + reply.cost_cycles;
                self.pending = Some(Pending {
                    done_at,
                    reply,
                    to: req,
                });
                Wakeup::At(done_at)
            }
            ServiceAction::Forward { .. } | ServiceAction::Done => {
                *self.served.entry(badge).or_default() += 1;
                backlog
            }
            ServiceAction::Fault(code) => {
                // Contain the fault to this context: swap in a fresh
                // instance; the other contexts are untouched (§4.4). The
                // faulting request is answered with an error so the caller
                // is not left hanging.
                self.context_faults.push((badge, code));
                self.contexts.insert(badge, (self.factory)());
                let _ = os.reply(
                    &req,
                    wire::KIND_ERROR,
                    TrafficClass::Control,
                    vec![wire::err::REJECTED].into(),
                );
                backlog
            }
        }
    }

    fn is_preemptible(&self) -> bool {
        true
    }

    /// Externalizes every context: `[count][per ctx: badge, len, bytes]`.
    /// Contexts whose service cannot save are recreated fresh on restore
    /// (recorded with length `u32::MAX`).
    fn save_state(&self) -> Option<Vec<u8>> {
        let mut out = (self.contexts.len() as u64).to_le_bytes().to_vec();
        for (badge, ctx) in &self.contexts {
            out.extend_from_slice(&badge.to_le_bytes());
            match ctx.save() {
                Some(bytes) => {
                    out.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
                    out.extend_from_slice(&bytes);
                }
                None => out.extend_from_slice(&u32::MAX.to_le_bytes()),
            }
        }
        Some(out)
    }

    fn restore_state(&mut self, state: &[u8]) -> Result<(), StateError> {
        fn take<'a>(b: &mut &'a [u8], n: usize) -> Result<&'a [u8], StateError> {
            if b.len() < n {
                return Err(StateError::Corrupt);
            }
            let (h, t) = b.split_at(n);
            *b = t;
            Ok(h)
        }
        let mut b = state;
        let count = u64::from_le_bytes(take(&mut b, 8)?.try_into().expect("sized"));
        let mut contexts = BTreeMap::new();
        for _ in 0..count {
            let badge = u64::from_le_bytes(take(&mut b, 8)?.try_into().expect("sized"));
            let len = u32::from_le_bytes(take(&mut b, 4)?.try_into().expect("sized"));
            let mut ctx = (self.factory)();
            if len != u32::MAX {
                let bytes = take(&mut b, len as usize)?;
                ctx.restore(bytes)?;
            }
            contexts.insert(badge, ctx);
        }
        if !b.is_empty() {
            return Err(StateError::Corrupt);
        }
        self.contexts = contexts;
        self.pending = None;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apps::faulty::FaultyService;
    use crate::apps::kv::{self, KvStoreService};
    use crate::os::test_os::MockOs;
    use apiary_noc::{Message, NodeId};

    fn deliver(os: &mut MockOs, badge: u64, payload: Vec<u8>) {
        let mut msg = Message::new(NodeId(1), NodeId(0), TrafficClass::Request, payload);
        msg.kind = wire::KIND_REQUEST;
        msg.badge = badge;
        os.deliver(Delivered {
            msg,
            injected_at: Cycle(0),
            delivered_at: Cycle(0),
        });
    }

    fn pump<S: Service + 'static>(a: &mut MultiService<S>, os: &mut MockOs, n: u64) {
        for _ in 0..n {
            a.wake(os.now(), os);
            os.advance(1);
        }
    }

    #[test]
    fn contexts_are_independent_kv_stores() {
        let mut os = MockOs::new();
        let mut a = MultiService::new(KvStoreService::new);
        deliver(&mut os, 1, kv::put_req(b"k", b"ctx one"));
        deliver(&mut os, 2, kv::put_req(b"k", b"ctx two"));
        deliver(&mut os, 1, kv::get_req(b"k"));
        deliver(&mut os, 2, kv::get_req(b"k"));
        pump(&mut a, &mut os, 200);
        assert_eq!(a.contexts(), 2);
        assert_eq!(
            kv::parse_resp(&os.sent[2].3),
            Some((kv::status::OK, Some(b"ctx one".as_slice())))
        );
        assert_eq!(
            kv::parse_resp(&os.sent[3].3),
            Some((kv::status::OK, Some(b"ctx two".as_slice())))
        );
    }

    #[test]
    fn context_fault_is_contained() {
        let mut os = MockOs::new();
        // Every context faults on its 2nd request.
        let mut a = MultiService::new(|| FaultyService::new(2));
        deliver(&mut os, 1, vec![1]);
        deliver(&mut os, 2, vec![2]);
        deliver(&mut os, 1, vec![3]); // Context 1 faults here.
        deliver(&mut os, 2, vec![4]); // Context 2 faults here.
        deliver(&mut os, 1, vec![5]); // Fresh context 1 serves again.
        pump(&mut a, &mut os, 200);
        assert_eq!(a.context_faults, vec![(1, 0xBAD0), (2, 0xBAD0)]);
        // No tile-level fault was ever raised; the tile stays alive.
        assert!(os.faults.is_empty());
        // The faulting requests got error replies; the rest succeeded.
        let errors = os
            .sent
            .iter()
            .filter(|(_, kind, _, _)| *kind == wire::KIND_ERROR)
            .count();
        assert_eq!(errors, 2);
        assert_eq!(os.sent.len(), 5);
    }

    #[test]
    fn whole_tile_save_restore_keeps_every_context() {
        let mut os = MockOs::new();
        let mut a = MultiService::new(KvStoreService::new);
        deliver(&mut os, 7, kv::put_req(b"a", b"1"));
        deliver(&mut os, 9, kv::put_req(b"b", b"2"));
        pump(&mut a, &mut os, 100);
        let snap = a.save_state().expect("preemptible");

        let mut b = MultiService::new(KvStoreService::new);
        b.restore_state(&snap).expect("own snapshot");
        assert_eq!(b.contexts(), 2);
        let mut os2 = MockOs::new();
        deliver(&mut os2, 9, kv::get_req(b"b"));
        pump(&mut b, &mut os2, 100);
        assert_eq!(
            kv::parse_resp(&os2.sent[0].3),
            Some((kv::status::OK, Some(b"2".as_slice())))
        );
    }

    #[test]
    fn corrupt_snapshot_rejected() {
        let mut a = MultiService::new(KvStoreService::new);
        assert_eq!(a.restore_state(&[1, 2]), Err(StateError::Corrupt));
        let snap = a.save_state().expect("preemptible");
        let mut long = snap.clone();
        long.push(9);
        assert_eq!(a.restore_state(&long), Err(StateError::Corrupt));
    }
}
