//! An accelerator that works for a while, then hits an internal error —
//! the test vehicle for the paper's fault-handling models (§4.4).

use crate::accelerator::{Service, ServiceAction, ServiceReply, StateError};
use crate::os::TileOs;
use apiary_noc::Delivered;

/// Echoes requests, but the `fault_after`-th request (exactly) trips an
/// internal error and raises a fault. The kernel's policy then decides the
/// blast radius: fail-stop (whole tile) or preemption (context swap). A
/// preempted-and-restored instance remembers `served` and keeps working —
/// the fault was a one-off condition tied to that request.
///
/// The service externalizes its request counter, so it is preemptible: a
/// restored instance remembers how far it got.
#[derive(Debug, Clone)]
pub struct FaultyService {
    /// Requests served before faulting.
    pub fault_after: u64,
    /// Requests served so far.
    pub served: u64,
    /// Fault code raised.
    pub fault_code: u32,
}

impl FaultyService {
    /// Creates a service that faults on request number `fault_after`
    /// (1-based).
    pub fn new(fault_after: u64) -> FaultyService {
        FaultyService {
            fault_after,
            served: 0,
            fault_code: 0xBAD0,
        }
    }
}

impl Service for FaultyService {
    fn name(&self) -> &'static str {
        "faulty"
    }

    fn serve(&mut self, req: &Delivered, _os: &mut dyn TileOs) -> ServiceAction {
        self.served += 1;
        if self.served == self.fault_after {
            return ServiceAction::Fault(self.fault_code);
        }
        ServiceAction::Reply(ServiceReply::ok(req.msg.payload.clone(), 2))
    }

    fn save(&self) -> Option<Vec<u8>> {
        let mut out = self.fault_after.to_le_bytes().to_vec();
        out.extend_from_slice(&self.served.to_le_bytes());
        Some(out)
    }

    fn restore(&mut self, state: &[u8]) -> Result<(), StateError> {
        if state.len() != 16 {
            return Err(StateError::Corrupt);
        }
        self.fault_after = u64::from_le_bytes(state[0..8].try_into().expect("sized"));
        self.served = u64::from_le_bytes(state[8..16].try_into().expect("sized"));
        Ok(())
    }
}

/// An accelerator that wedges *silently*: it echoes `hang_after - 1`
/// requests, then stops consuming anything — without raising a fault. The
/// only way the system notices is the monitor's watchdog (§4.4: a process
/// that never yields).
pub struct HangAccel {
    served: u64,
    hang_after: u64,
}

impl HangAccel {
    /// Creates an accelerator that hangs on request number `hang_after`.
    pub fn new(hang_after: u64) -> HangAccel {
        HangAccel {
            served: 0,
            hang_after,
        }
    }
}

impl crate::accelerator::Accelerator for HangAccel {
    fn name(&self) -> &'static str {
        "hang"
    }

    fn as_any(&self) -> &dyn core::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn core::any::Any {
        self
    }

    fn wake(&mut self, now: apiary_sim::Cycle, os: &mut dyn TileOs) -> apiary_sim::Wakeup {
        use apiary_sim::Wakeup;
        if self.served + 1 >= self.hang_after {
            // Wedged: consumes nothing, says nothing — only the monitor's
            // watchdog will notice.
            return Wakeup::Idle;
        }
        if let Some(req) = os.recv() {
            if req.msg.kind != apiary_monitor::wire::KIND_ERROR {
                self.served += 1;
                let _ = os.reply(
                    &req,
                    apiary_monitor::wire::KIND_RESPONSE,
                    apiary_noc::TrafficClass::Request,
                    req.msg.payload.clone(),
                );
                if self.served + 1 >= self.hang_after {
                    return Wakeup::Idle;
                }
            }
            if os.inbox_depth() > 0 {
                return Wakeup::AtOrMessage(now.saturating_add(1));
            }
        }
        Wakeup::OnMessage
    }
}

/// The faulty service as an accelerator.
pub type FaultyAccel = crate::accelerator::ServerAccel<FaultyService>;

/// Creates a faulty accelerator.
pub fn faulty(fault_after: u64) -> FaultyAccel {
    crate::accelerator::ServerAccel::new(FaultyService::new(fault_after))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::accelerator::Accelerator;
    use crate::os::test_os::MockOs;
    use apiary_monitor::wire;
    use apiary_noc::{Message, NodeId, TrafficClass};
    use apiary_sim::Cycle;

    fn deliver(os: &mut MockOs, tag: u64) {
        let mut msg = Message::new(NodeId(1), NodeId(0), TrafficClass::Request, vec![tag as u8]);
        msg.kind = wire::KIND_REQUEST;
        msg.tag = tag;
        os.deliver(Delivered {
            msg,
            injected_at: Cycle(0),
            delivered_at: Cycle(0),
        });
    }

    #[test]
    fn serves_then_faults() {
        let mut os = MockOs::new();
        let mut a = faulty(3);
        for i in 0..5 {
            deliver(&mut os, i);
        }
        for _ in 0..50 {
            a.wake(os.now(), &mut os);
            os.advance(1);
        }
        // Two good replies, then the fault wedges the accelerator; the
        // remaining requests are never consumed.
        assert_eq!(os.sent.len(), 2);
        assert_eq!(os.faults, vec![0xBAD0]);
        assert_eq!(os.inbox_len(), 2);
    }

    #[test]
    fn state_roundtrip_remembers_progress() {
        let mut s = FaultyService::new(10);
        s.served = 7;
        let snap = s.save().expect("preemptible");
        let mut t = FaultyService::new(1);
        t.restore(&snap).expect("well formed");
        assert_eq!(t.fault_after, 10);
        assert_eq!(t.served, 7);
        assert_eq!(t.restore(&[0; 3]), Err(StateError::Corrupt));
    }
}
