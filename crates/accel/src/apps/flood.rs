//! A misbehaving accelerator that floods a target (§4.5's resource
//! exhaustion threat).
//!
//! The flooder sends as fast as its monitor lets it. With no rate limiting
//! and no QoS it can starve a shared service; the isolation experiments
//! (E6) turn Apiary's defences on and measure the victim's recovery.

use crate::accelerator::{Service, ServiceAction};
use crate::os::TileOs;
use apiary_monitor::{wire, SendError};
use apiary_noc::{Delivered, TrafficClass};
use apiary_sim::{Cycle, Payload, Wakeup};

/// Fires requests at the capability named `"target"` in the cap
/// environment, every cycle, forever.
#[derive(Debug, Clone)]
pub struct FlooderService {
    /// Payload bytes per message (junk fill) when no template is set.
    pub payload_bytes: usize,
    /// Exact payload to send instead of junk — lets the flooder pose as a
    /// legitimate-but-abusive client of a real protocol (e.g. KV PUTs).
    pub template: Option<Payload>,
    /// Traffic class used for the flood.
    pub class: TrafficClass,
    /// Messages successfully handed to the monitor.
    pub sent: u64,
    /// Sends refused by the monitor (caps, rate limit, backpressure).
    pub refused: u64,
    /// Refusals that were rate-limit denials specifically.
    pub rate_limited: u64,
    /// Upper bound on send attempts per cycle (a real accelerator's issue
    /// width; also guards the simulator against infinite loops).
    pub burst_per_cycle: usize,
    tag: u64,
}

impl FlooderService {
    /// Creates a flooder with the given message size.
    pub fn new(payload_bytes: usize) -> FlooderService {
        FlooderService {
            payload_bytes,
            template: None,
            class: TrafficClass::Bulk,
            sent: 0,
            refused: 0,
            rate_limited: 0,
            burst_per_cycle: 16,
            tag: 0,
        }
    }

    fn blast(&mut self, os: &mut dyn TileOs) {
        let Some(target) = os.cap_env().get("target") else {
            return;
        };
        // Try to send as many messages as the monitor will take this cycle,
        // up to the issue width.
        for _ in 0..self.burst_per_cycle {
            // Flooding a template is a pure refcount bump per message; the
            // junk fill is materialised once per burst size change at most.
            let body: Payload = match &self.template {
                Some(t) => t.clone(),
                None => vec![0x55; self.payload_bytes].into(),
            };
            match os.send(target, wire::KIND_REQUEST, self.tag, self.class, body) {
                Ok(()) => {
                    self.sent += 1;
                    self.tag += 1;
                }
                Err(e) => {
                    self.refused += 1;
                    if e == SendError::RateLimited {
                        self.rate_limited += 1;
                    }
                    break;
                }
            }
        }
    }
}

impl Service for FlooderService {
    fn name(&self) -> &'static str {
        "flooder"
    }

    fn serve(&mut self, _req: &Delivered, os: &mut dyn TileOs) -> ServiceAction {
        // Responses (or errors) from the victim are ignored; keep flooding.
        self.blast(os);
        ServiceAction::Done
    }

    fn idle(&mut self, os: &mut dyn TileOs) {
        self.blast(os);
    }

    fn wakeup(&self, now: Cycle) -> Wakeup {
        // The flooder generates traffic spontaneously: it must run every
        // cycle even with an empty inbox, or event-driven runs would flood
        // less than dense ones.
        Wakeup::AtOrMessage(now.saturating_add(1))
    }
}

/// The flooder as an accelerator.
pub type FlooderAccel = crate::accelerator::ServerAccel<FlooderService>;

/// Creates a flooding accelerator.
pub fn flooder(payload_bytes: usize) -> FlooderAccel {
    crate::accelerator::ServerAccel::new(FlooderService::new(payload_bytes))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::accelerator::Accelerator;
    use crate::os::test_os::MockOs;
    use apiary_cap::CapRef;

    #[test]
    fn floods_when_granted_a_target() {
        let mut os = MockOs::new();
        os.grant(
            "target",
            CapRef {
                index: 1,
                generation: 0,
            },
        );
        let mut a = flooder(64);
        for _ in 0..10 {
            // The flooder never sleeps: its wakeup always names next cycle.
            let w = a.wake(os.now(), &mut os);
            assert_eq!(w, apiary_sim::Wakeup::AtOrMessage(os.now() + 1));
            os.advance(1);
        }
        // MockOs never refuses, so every wake sends a full burst.
        assert_eq!(a.service().sent, 10 * 16);
        assert!(!os.cap_sends.is_empty());
    }

    #[test]
    fn quiet_without_a_target() {
        let mut os = MockOs::new();
        let mut a = flooder(64);
        for _ in 0..10 {
            a.wake(os.now(), &mut os);
            os.advance(1);
        }
        assert_eq!(a.service().sent, 0);
        assert!(os.cap_sends.is_empty());
    }
}
