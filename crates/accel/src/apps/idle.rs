//! An accelerator that does nothing.
//!
//! Useful as a placeholder occupant of a tile whose traffic is driven from
//! outside (test harnesses, external load generators): deliveries stay in
//! the monitor inbox for the driver to collect.

use crate::accelerator::{Accelerator, StateError};
use crate::os::TileOs;
use apiary_sim::{Cycle, Wakeup};

/// The do-nothing accelerator.
#[derive(Debug, Clone, Copy, Default)]
pub struct IdleAccel;

/// Creates an idle accelerator.
pub fn idle() -> IdleAccel {
    IdleAccel
}

impl Accelerator for IdleAccel {
    fn name(&self) -> &'static str {
        "idle"
    }

    fn wake(&mut self, _now: Cycle, _os: &mut dyn TileOs) -> Wakeup {
        // Deliveries stay queued for the external driver; nothing ever
        // needs this tile to run.
        Wakeup::Idle
    }

    fn is_preemptible(&self) -> bool {
        true
    }

    fn save_state(&self) -> Option<Vec<u8>> {
        Some(Vec::new())
    }

    fn restore_state(&mut self, state: &[u8]) -> Result<(), StateError> {
        if state.is_empty() {
            Ok(())
        } else {
            Err(StateError::Corrupt)
        }
    }

    fn as_any(&self) -> &dyn core::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn core::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::os::test_os::MockOs;

    #[test]
    fn does_nothing() {
        let mut os = MockOs::new();
        let mut a = idle();
        for _ in 0..10 {
            assert_eq!(a.wake(os.now(), &mut os), Wakeup::Idle);
            os.advance(1);
        }
        assert!(os.sent.is_empty());
        assert!(os.cap_sends.is_empty());
        assert!(os.faults.is_empty());
    }

    #[test]
    fn trivially_preemptible() {
        let mut a = idle();
        let s = a.save_state().expect("preemptible");
        a.restore_state(&s).expect("own snapshot");
        assert!(a.restore_state(&[1]).is_err());
    }
}
