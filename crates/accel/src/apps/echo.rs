//! Echo: replies with its request payload. The latency yardstick.

use crate::accelerator::{Service, ServiceAction, ServiceReply};
use crate::os::TileOs;
use apiary_noc::Delivered;

/// Replies to every request with the request payload after a fixed compute
/// cost.
#[derive(Debug, Clone)]
pub struct EchoService {
    /// Cycles charged per request.
    pub cost_cycles: u64,
}

impl Default for EchoService {
    fn default() -> Self {
        EchoService { cost_cycles: 1 }
    }
}

impl Service for EchoService {
    fn name(&self) -> &'static str {
        "echo"
    }

    fn serve(&mut self, req: &Delivered, _os: &mut dyn TileOs) -> ServiceAction {
        ServiceAction::Reply(ServiceReply::ok(req.msg.payload.clone(), self.cost_cycles))
    }

    fn save(&self) -> Option<Vec<u8>> {
        // Echo is stateless, hence trivially preemptible.
        Some(Vec::new())
    }

    fn restore(&mut self, state: &[u8]) -> Result<(), crate::accelerator::StateError> {
        // The snapshot is empty; anything else is not an echo snapshot.
        if state.is_empty() {
            Ok(())
        } else {
            Err(crate::accelerator::StateError::Corrupt)
        }
    }
}

/// An [`crate::accelerator::Accelerator`] wrapping [`EchoService`].
pub type EchoAccel = crate::accelerator::ServerAccel<EchoService>;

/// Creates an echo accelerator with the given per-request cost.
pub fn echo(cost_cycles: u64) -> EchoAccel {
    crate::accelerator::ServerAccel::new(EchoService { cost_cycles })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::accelerator::Accelerator;
    use crate::os::test_os::MockOs;
    use apiary_monitor::wire;
    use apiary_noc::{Message, NodeId, TrafficClass};
    use apiary_sim::Cycle;

    #[test]
    fn echoes_payload() {
        let mut os = MockOs::new();
        let mut msg = Message::new(NodeId(4), NodeId(0), TrafficClass::Request, vec![1, 2, 3]);
        msg.kind = wire::KIND_REQUEST;
        os.deliver(Delivered {
            msg,
            injected_at: Cycle(0),
            delivered_at: Cycle(0),
        });
        let mut a = echo(1);
        a.wake(os.now(), &mut os);
        os.advance(1);
        a.wake(os.now(), &mut os);
        assert_eq!(os.sent.len(), 1);
        assert_eq!(os.sent[0].3, vec![1, 2, 3]);
    }

    #[test]
    fn echo_is_preemptible() {
        let a = echo(1);
        assert!(a.is_preemptible());
        assert!(a.save_state().is_some());
    }
}
