//! A hashing engine: FNV-1a over the request payload.

use crate::accelerator::{ServerAccel, Service, ServiceAction, ServiceReply};
use crate::os::TileOs;
use apiary_noc::Delivered;

/// Computes the 64-bit FNV-1a hash of `data`.
pub fn fnv1a(data: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in data {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Hashes request payloads; replies with the 8-byte digest.
#[derive(Debug, Clone, Default)]
pub struct HashService {
    /// Requests served.
    pub hashed: u64,
}

impl Service for HashService {
    fn name(&self) -> &'static str {
        "hash"
    }

    fn serve(&mut self, req: &Delivered, _os: &mut dyn TileOs) -> ServiceAction {
        self.hashed += 1;
        let digest = fnv1a(&req.msg.payload);
        // A pipelined hasher eats 8 bytes/cycle.
        let cost = 4 + (req.msg.payload.len() as u64) / 8;
        ServiceAction::Reply(ServiceReply::ok(digest.to_le_bytes().to_vec(), cost))
    }

    fn save(&self) -> Option<Vec<u8>> {
        Some(self.hashed.to_le_bytes().to_vec())
    }

    fn restore(&mut self, state: &[u8]) -> Result<(), crate::accelerator::StateError> {
        let bytes: [u8; 8] = state
            .try_into()
            .map_err(|_| crate::accelerator::StateError::Corrupt)?;
        self.hashed = u64::from_le_bytes(bytes);
        Ok(())
    }
}

/// The hash engine as an accelerator.
pub type HashAccel = ServerAccel<HashService>;

/// Creates a hash accelerator.
pub fn hasher() -> HashAccel {
    ServerAccel::new(HashService::default())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_known_values() {
        // FNV-1a reference vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn different_inputs_differ() {
        assert_ne!(fnv1a(b"x"), fnv1a(b"y"));
    }

    #[test]
    fn save_restore_roundtrip() {
        let mut s = HashService { hashed: 42 };
        let snap = s.save().expect("preemptible");
        s.hashed = 0;
        s.restore(&snap).expect("well formed");
        assert_eq!(s.hashed, 42);
        assert!(s.restore(&[1, 2]).is_err());
    }
}
