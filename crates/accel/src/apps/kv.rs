//! A multi-tenant key-value store (the "independent KV-store application"
//! of §2, after Caribou).
//!
//! Tenancy comes from capability badges: the kernel badges each client's
//! endpoint capability, the monitor stamps the badge into every message,
//! and the store namespaces keys by badge. Tenants cannot observe one
//! another's keys even though they share the accelerator — and because the
//! store externalizes its state, it is *preemptible* (§4.4): the kernel can
//! swap it out and back without losing data.
//!
//! Request payload:
//! `[op: u8][klen: u16][key][vlen: u16][value]` (value only for PUT).
//! Response payload: `[status: u8]` then `[vlen: u16][value]` for GET hits.

use crate::accelerator::{ServerAccel, Service, ServiceAction, ServiceReply, StateError};
use crate::os::TileOs;
use apiary_noc::Delivered;
use std::collections::BTreeMap;

/// Operations.
pub mod op {
    /// Read a key.
    pub const GET: u8 = 1;
    /// Write a key.
    pub const PUT: u8 = 2;
    /// Delete a key.
    pub const DEL: u8 = 3;
}

/// Response status codes.
pub mod status {
    /// Success (GET hit, PUT stored, DEL removed).
    pub const OK: u8 = 0;
    /// GET/DEL on an absent key.
    pub const NOT_FOUND: u8 = 1;
    /// Request did not parse.
    pub const MALFORMED: u8 = 2;
}

/// Builds a GET request payload.
pub fn get_req(key: &[u8]) -> Vec<u8> {
    let mut p = vec![op::GET];
    p.extend_from_slice(&(key.len() as u16).to_le_bytes());
    p.extend_from_slice(key);
    p
}

/// Builds a PUT request payload.
pub fn put_req(key: &[u8], value: &[u8]) -> Vec<u8> {
    let mut p = vec![op::PUT];
    p.extend_from_slice(&(key.len() as u16).to_le_bytes());
    p.extend_from_slice(key);
    p.extend_from_slice(&(value.len() as u16).to_le_bytes());
    p.extend_from_slice(value);
    p
}

/// Builds a DEL request payload.
pub fn del_req(key: &[u8]) -> Vec<u8> {
    let mut p = vec![op::DEL];
    p.extend_from_slice(&(key.len() as u16).to_le_bytes());
    p.extend_from_slice(key);
    p
}

/// Parses a response payload into `(status, value)`.
pub fn parse_resp(payload: &[u8]) -> Option<(u8, Option<&[u8]>)> {
    let status = *payload.first()?;
    if payload.len() > 1 {
        let vlen = u16::from_le_bytes(payload[1..3].try_into().ok()?) as usize;
        if payload.len() != 3 + vlen {
            return None;
        }
        Some((status, Some(&payload[3..])))
    } else {
        Some((status, None))
    }
}

struct Parsed<'a> {
    op: u8,
    key: &'a [u8],
    value: Option<&'a [u8]>,
}

fn parse_req(p: &[u8]) -> Option<Parsed<'_>> {
    if p.len() < 3 {
        return None;
    }
    let op = p[0];
    let klen = u16::from_le_bytes(p[1..3].try_into().ok()?) as usize;
    if p.len() < 3 + klen {
        return None;
    }
    let key = &p[3..3 + klen];
    let rest = &p[3 + klen..];
    match op {
        self::op::GET | self::op::DEL => {
            if !rest.is_empty() {
                return None;
            }
            Some(Parsed {
                op,
                key,
                value: None,
            })
        }
        self::op::PUT => {
            if rest.len() < 2 {
                return None;
            }
            let vlen = u16::from_le_bytes(rest[0..2].try_into().ok()?) as usize;
            if rest.len() != 2 + vlen {
                return None;
            }
            Some(Parsed {
                op,
                key,
                value: Some(&rest[2..]),
            })
        }
        _ => None,
    }
}

/// The store: keys namespaced by tenant badge.
#[derive(Debug, Clone, Default)]
pub struct KvStoreService {
    map: BTreeMap<(u64, Vec<u8>), Vec<u8>>,
    /// Operations served, by (gets, puts, dels).
    pub ops: (u64, u64, u64),
    /// Per-request base cost in cycles (hash + BRAM access pipeline).
    pub base_cost: u64,
}

impl KvStoreService {
    /// Creates an empty store with a default 8-cycle access pipeline.
    pub fn new() -> KvStoreService {
        KvStoreService {
            base_cost: 8,
            ..KvStoreService::default()
        }
    }

    /// Number of live keys across all tenants.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Returns `true` when no tenant has data.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Keys held by one tenant (tests and admin tooling).
    pub fn tenant_len(&self, badge: u64) -> usize {
        self.map.range((badge, vec![])..(badge + 1, vec![])).count()
    }

    /// Admin insert bypassing the wire protocol (preloading experiments
    /// and tests with a known population).
    pub fn insert(&mut self, badge: u64, key: &[u8], value: &[u8]) {
        self.map.insert((badge, key.to_vec()), value.to_vec());
    }

    /// Admin read bypassing the wire protocol (retention audits).
    pub fn get(&self, badge: u64, key: &[u8]) -> Option<&[u8]> {
        self.map.get(&(badge, key.to_vec())).map(|v| v.as_slice())
    }
}

impl Service for KvStoreService {
    fn name(&self) -> &'static str {
        "kv-store"
    }

    fn serve(&mut self, req: &Delivered, _os: &mut dyn TileOs) -> ServiceAction {
        let tenant = req.msg.badge;
        let Some(parsed) = parse_req(&req.msg.payload) else {
            return ServiceAction::Reply(ServiceReply::ok(vec![status::MALFORMED], 1));
        };
        let cost = self.base_cost + (parsed.key.len() as u64) / 8;
        let payload = match parsed.op {
            op::GET => {
                self.ops.0 += 1;
                match self.map.get(&(tenant, parsed.key.to_vec())) {
                    Some(v) => {
                        let mut p = vec![status::OK];
                        p.extend_from_slice(&(v.len() as u16).to_le_bytes());
                        p.extend_from_slice(v);
                        p
                    }
                    None => vec![status::NOT_FOUND],
                }
            }
            op::PUT => {
                self.ops.1 += 1;
                let value = parsed.value.expect("parser guarantees value for PUT");
                self.map
                    .insert((tenant, parsed.key.to_vec()), value.to_vec());
                vec![status::OK]
            }
            op::DEL => {
                self.ops.2 += 1;
                match self.map.remove(&(tenant, parsed.key.to_vec())) {
                    Some(_) => vec![status::OK],
                    None => vec![status::NOT_FOUND],
                }
            }
            _ => unreachable!("parser rejects unknown ops"),
        };
        ServiceAction::Reply(ServiceReply::ok(payload, cost))
    }

    /// Externalizes the whole store: `[count: u64]` then per entry
    /// `[badge: u64][klen: u32][key][vlen: u32][value]`, then the
    /// configuration and counters `[base_cost: u64][gets][puts][dels]`.
    /// BTreeMap iteration is sorted, so identical stores always produce
    /// identical bytes.
    fn save(&self) -> Option<Vec<u8>> {
        let mut out = Vec::new();
        out.extend_from_slice(&(self.map.len() as u64).to_le_bytes());
        for ((badge, key), value) in &self.map {
            out.extend_from_slice(&badge.to_le_bytes());
            out.extend_from_slice(&(key.len() as u32).to_le_bytes());
            out.extend_from_slice(key);
            out.extend_from_slice(&(value.len() as u32).to_le_bytes());
            out.extend_from_slice(value);
        }
        out.extend_from_slice(&self.base_cost.to_le_bytes());
        out.extend_from_slice(&self.ops.0.to_le_bytes());
        out.extend_from_slice(&self.ops.1.to_le_bytes());
        out.extend_from_slice(&self.ops.2.to_le_bytes());
        Some(out)
    }

    fn restore(&mut self, state: &[u8]) -> Result<(), StateError> {
        fn take<'a>(b: &mut &'a [u8], n: usize) -> Result<&'a [u8], StateError> {
            if b.len() < n {
                return Err(StateError::Corrupt);
            }
            let (head, tail) = b.split_at(n);
            *b = tail;
            Ok(head)
        }
        let mut b = state;
        let count = u64::from_le_bytes(take(&mut b, 8)?.try_into().expect("sized"));
        let mut map = BTreeMap::new();
        for _ in 0..count {
            let badge = u64::from_le_bytes(take(&mut b, 8)?.try_into().expect("sized"));
            let klen = u32::from_le_bytes(take(&mut b, 4)?.try_into().expect("sized")) as usize;
            let key = take(&mut b, klen)?.to_vec();
            let vlen = u32::from_le_bytes(take(&mut b, 4)?.try_into().expect("sized")) as usize;
            let value = take(&mut b, vlen)?.to_vec();
            map.insert((badge, key), value);
        }
        let base_cost = u64::from_le_bytes(take(&mut b, 8)?.try_into().expect("sized"));
        let gets = u64::from_le_bytes(take(&mut b, 8)?.try_into().expect("sized"));
        let puts = u64::from_le_bytes(take(&mut b, 8)?.try_into().expect("sized"));
        let dels = u64::from_le_bytes(take(&mut b, 8)?.try_into().expect("sized"));
        if !b.is_empty() {
            return Err(StateError::Corrupt);
        }
        self.map = map;
        self.base_cost = base_cost;
        self.ops = (gets, puts, dels);
        Ok(())
    }
}

/// The KV store as an accelerator.
pub type KvStoreAccel = ServerAccel<KvStoreService>;

/// Creates a KV-store accelerator.
pub fn kv_store() -> KvStoreAccel {
    ServerAccel::new(KvStoreService::new())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::accelerator::Accelerator;
    use crate::os::test_os::MockOs;
    use apiary_monitor::wire;
    use apiary_noc::{Message, NodeId, TrafficClass};
    use apiary_sim::Cycle;

    fn deliver(os: &mut MockOs, badge: u64, payload: Vec<u8>) {
        let mut msg = Message::new(NodeId(1), NodeId(0), TrafficClass::Request, payload);
        msg.kind = wire::KIND_REQUEST;
        msg.badge = badge;
        os.deliver(Delivered {
            msg,
            injected_at: Cycle(0),
            delivered_at: Cycle(0),
        });
    }

    fn pump(a: &mut KvStoreAccel, os: &mut MockOs, cycles: u64) {
        for _ in 0..cycles {
            a.wake(os.now(), os);
            os.advance(1);
        }
    }

    #[test]
    fn put_get_del_roundtrip() {
        let mut os = MockOs::new();
        let mut a = kv_store();
        deliver(&mut os, 1, put_req(b"k", b"value!"));
        deliver(&mut os, 1, get_req(b"k"));
        deliver(&mut os, 1, del_req(b"k"));
        deliver(&mut os, 1, get_req(b"k"));
        pump(&mut a, &mut os, 100);
        assert_eq!(os.sent.len(), 4);
        assert_eq!(parse_resp(&os.sent[0].3), Some((status::OK, None)));
        assert_eq!(
            parse_resp(&os.sent[1].3),
            Some((status::OK, Some(b"value!".as_slice())))
        );
        assert_eq!(parse_resp(&os.sent[2].3), Some((status::OK, None)));
        assert_eq!(parse_resp(&os.sent[3].3), Some((status::NOT_FOUND, None)));
    }

    #[test]
    fn tenants_are_isolated_by_badge() {
        let mut os = MockOs::new();
        let mut a = kv_store();
        deliver(&mut os, 100, put_req(b"shared-key", b"tenant A"));
        deliver(&mut os, 200, put_req(b"shared-key", b"tenant B"));
        deliver(&mut os, 100, get_req(b"shared-key"));
        deliver(&mut os, 200, get_req(b"shared-key"));
        deliver(&mut os, 300, get_req(b"shared-key"));
        pump(&mut a, &mut os, 200);
        assert_eq!(
            parse_resp(&os.sent[2].3),
            Some((status::OK, Some(b"tenant A".as_slice())))
        );
        assert_eq!(
            parse_resp(&os.sent[3].3),
            Some((status::OK, Some(b"tenant B".as_slice())))
        );
        // A third tenant sees nothing.
        assert_eq!(parse_resp(&os.sent[4].3), Some((status::NOT_FOUND, None)));
        assert_eq!(a.service().tenant_len(100), 1);
        assert_eq!(a.service().tenant_len(999), 0);
    }

    #[test]
    fn malformed_requests_get_status() {
        let mut os = MockOs::new();
        let mut a = kv_store();
        deliver(&mut os, 1, vec![9, 9]);
        deliver(&mut os, 1, vec![op::PUT, 2, 0, b'k']); // Truncated.
        pump(&mut a, &mut os, 50);
        assert_eq!(os.sent.len(), 2);
        assert_eq!(os.sent[0].3, vec![status::MALFORMED]);
        assert_eq!(os.sent[1].3, vec![status::MALFORMED]);
    }

    #[test]
    fn save_restore_preserves_all_tenants() {
        let mut os = MockOs::new();
        let mut a = kv_store();
        deliver(&mut os, 1, put_req(b"a", b"1"));
        deliver(&mut os, 2, put_req(b"b", b"2"));
        deliver(&mut os, 2, put_req(b"c", &vec![0xCC; 300]));
        pump(&mut a, &mut os, 100);
        assert!(a.is_preemptible());
        let snap = a.save_state().expect("preemptible");

        let mut b = kv_store();
        b.restore_state(&snap).expect("well formed");
        assert_eq!(b.service().len(), 3);
        assert_eq!(b.service().tenant_len(2), 2);

        // Restored store serves the data.
        let mut os2 = MockOs::new();
        deliver(&mut os2, 2, get_req(b"c"));
        pump(&mut b, &mut os2, 100);
        assert_eq!(
            parse_resp(&os2.sent[0].3),
            Some((status::OK, Some(vec![0xCC; 300].as_slice())))
        );
    }

    #[test]
    fn corrupt_snapshot_rejected() {
        let mut a = kv_store();
        assert_eq!(a.restore_state(&[1, 2, 3]), Err(StateError::Corrupt));
        let snap = kv_store().save_state().expect("preemptible");
        // Trailing garbage.
        let mut bad = snap.clone();
        bad.push(0);
        assert_eq!(a.restore_state(&bad), Err(StateError::Corrupt));
    }

    #[test]
    fn request_builders_parse() {
        assert!(parse_req(&get_req(b"key")).is_some());
        assert!(parse_req(&put_req(b"key", b"val")).is_some());
        assert!(parse_req(&del_req(b"key")).is_some());
        assert!(parse_req(&[]).is_none());
        // PUT bytes interpreted as GET (trailing junk) must fail.
        let mut p = get_req(b"key");
        p.push(0);
        assert!(parse_req(&p).is_none());
    }
}
