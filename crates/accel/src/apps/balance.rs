//! A load balancer: fans requests out over replica accelerators (§4.1's
//! "replicated accelerator with internal load balancing for higher
//! bandwidth").
//!
//! The balancer holds SEND capabilities to its replicas under environment
//! names `replica0`, `replica1`, … (the kernel wires them; the balancer
//! discovers however many exist). Requests are forwarded with fresh
//! internal tags; replica responses are matched back to the original
//! request and relayed to the client with the client's own tag — so the
//! client cannot tell it is not talking to a single, faster accelerator.

use crate::accelerator::{Accelerator, StateError};
use crate::os::TileOs;
use apiary_cap::CapRef;
use apiary_monitor::wire;
use apiary_noc::Delivered;
use apiary_sim::{Cycle, Wakeup};
use std::collections::HashMap;

/// Replica selection policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Balance {
    /// Strict rotation.
    RoundRobin,
    /// Pick the replica with the fewest outstanding requests (ties go to
    /// the lowest index).
    LeastOutstanding,
}

/// The load-balancer accelerator.
pub struct BalancerAccel {
    policy: Balance,
    /// Discovered replica capabilities (refreshed from the environment on
    /// every tick so reconfiguration can re-point them).
    replicas: Vec<CapRef>,
    outstanding: Vec<u32>,
    rr: usize,
    /// In-flight requests: internal tag -> original request.
    pending: HashMap<u64, (usize, Delivered)>,
    next_tag: u64,
    /// Requests forwarded to replicas.
    pub forwarded: u64,
    /// Responses relayed back to clients.
    pub relayed: u64,
    /// Requests dropped because no replica capability exists.
    pub no_replica_drops: u64,
    /// Per-replica forward counts (for balance checks).
    pub per_replica: Vec<u64>,
}

impl BalancerAccel {
    /// Creates a balancer with the given policy.
    pub fn new(policy: Balance) -> BalancerAccel {
        BalancerAccel {
            policy,
            replicas: Vec::new(),
            outstanding: Vec::new(),
            rr: 0,
            pending: HashMap::new(),
            next_tag: 0,
            forwarded: 0,
            relayed: 0,
            no_replica_drops: 0,
            per_replica: Vec::new(),
        }
    }

    fn refresh_replicas(&mut self, os: &dyn TileOs) {
        let mut found = Vec::new();
        for i in 0.. {
            match os.cap_env().get(&format!("replica{i}")) {
                Some(cap) => found.push(cap),
                None => break,
            }
        }
        if found.len() != self.replicas.len() {
            self.outstanding = vec![0; found.len()];
            self.per_replica = vec![0; found.len()];
            self.rr = 0;
        }
        self.replicas = found;
    }

    fn pick(&mut self) -> Option<usize> {
        if self.replicas.is_empty() {
            return None;
        }
        Some(match self.policy {
            Balance::RoundRobin => {
                let i = self.rr % self.replicas.len();
                self.rr = self.rr.wrapping_add(1);
                i
            }
            Balance::LeastOutstanding => self
                .outstanding
                .iter()
                .enumerate()
                .min_by_key(|(_, o)| **o)
                .map(|(i, _)| i)
                .expect("non-empty"),
        })
    }
}

impl Accelerator for BalancerAccel {
    fn name(&self) -> &'static str {
        "balancer"
    }

    fn as_any(&self) -> &dyn core::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn core::any::Any {
        self
    }

    fn wake(&mut self, _now: Cycle, os: &mut dyn TileOs) -> Wakeup {
        self.refresh_replicas(os);
        while let Some(d) = os.recv() {
            if let Some((replica, original)) = self.pending.remove(&d.msg.tag) {
                // A replica answered (possibly with an error — relay it,
                // the client decides what to do).
                if replica < self.outstanding.len() {
                    self.outstanding[replica] = self.outstanding[replica].saturating_sub(1);
                }
                let _ = os.reply(&original, d.msg.kind, d.msg.class, d.msg.payload);
                self.relayed += 1;
            } else if d.msg.kind == wire::KIND_REQUEST {
                let Some(replica) = self.pick() else {
                    self.no_replica_drops += 1;
                    continue;
                };
                let tag = self.next_tag;
                self.next_tag += 1;
                let cap = self.replicas[replica];
                match os.send(
                    cap,
                    wire::KIND_REQUEST,
                    tag,
                    d.msg.class,
                    d.msg.payload.clone(),
                ) {
                    Ok(()) => {
                        self.outstanding[replica] += 1;
                        self.per_replica[replica] += 1;
                        self.forwarded += 1;
                        self.pending.insert(tag, (replica, d));
                    }
                    Err(_) => {
                        // Backpressure toward the replica: bounce an
                        // overload error to the client.
                        let _ = os.reply(
                            &d,
                            wire::KIND_ERROR,
                            apiary_noc::TrafficClass::Control,
                            vec![wire::err::OVERLOAD].into(),
                        );
                    }
                }
            }
            // Unsolicited non-request traffic is dropped.
        }
        // The balancer is purely reactive: it drains its whole inbox every
        // wake, so only a new delivery can give it work.
        Wakeup::OnMessage
    }

    fn is_preemptible(&self) -> bool {
        false
    }

    fn restore_state(&mut self, _state: &[u8]) -> Result<(), StateError> {
        Err(StateError::NotPreemptible)
    }
}

/// Creates a round-robin balancer.
pub fn balancer() -> BalancerAccel {
    BalancerAccel::new(Balance::RoundRobin)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::os::test_os::MockOs;
    use apiary_noc::{Message, NodeId, TrafficClass};
    use apiary_sim::Cycle;

    fn request(from: u16, tag: u64) -> Delivered {
        let mut msg = Message::new(
            NodeId(from),
            NodeId(0),
            TrafficClass::Request,
            vec![tag as u8],
        );
        msg.kind = wire::KIND_REQUEST;
        msg.tag = tag;
        Delivered {
            msg,
            injected_at: Cycle(0),
            delivered_at: Cycle(0),
        }
    }

    fn response(tag: u64, payload: Vec<u8>) -> Delivered {
        let mut msg = Message::new(NodeId(5), NodeId(0), TrafficClass::Request, payload);
        msg.kind = wire::KIND_RESPONSE;
        msg.tag = tag;
        Delivered {
            msg,
            injected_at: Cycle(0),
            delivered_at: Cycle(0),
        }
    }

    fn cap(i: u16) -> CapRef {
        CapRef {
            index: i,
            generation: 0,
        }
    }

    #[test]
    fn round_robin_spreads_requests() {
        let mut os = MockOs::new();
        os.grant("replica0", cap(1));
        os.grant("replica1", cap(2));
        let mut b = balancer();
        for tag in 0..6 {
            os.deliver(request(9, tag));
        }
        b.wake(os.now(), &mut os);
        assert_eq!(b.forwarded, 6);
        assert_eq!(b.per_replica, vec![3, 3]);
        // Alternating caps.
        let caps: Vec<u16> = os.cap_sends.iter().map(|(c, _, _, _)| c.index).collect();
        assert_eq!(caps, vec![1, 2, 1, 2, 1, 2]);
    }

    #[test]
    fn responses_return_to_original_clients() {
        let mut os = MockOs::new();
        os.grant("replica0", cap(1));
        let mut b = balancer();
        os.deliver(request(7, 100));
        os.deliver(request(8, 200));
        b.wake(os.now(), &mut os);
        // Replica answers the internal tags (0 and 1), out of order.
        let internal: Vec<u64> = os.cap_sends.iter().map(|(_, _, t, _)| *t).collect();
        os.deliver(response(internal[1], vec![0xB]));
        os.deliver(response(internal[0], vec![0xA]));
        b.wake(os.now(), &mut os);
        assert_eq!(b.relayed, 2);
        // MockOs::reply records (dst, kind, class, payload); order follows
        // the replica responses.
        assert_eq!(os.sent[0].0, NodeId(8));
        assert_eq!(os.sent[0].3, vec![0xB]);
        assert_eq!(os.sent[1].0, NodeId(7));
        assert_eq!(os.sent[1].3, vec![0xA]);
    }

    #[test]
    fn least_outstanding_prefers_idle_replica() {
        let mut os = MockOs::new();
        os.grant("replica0", cap(1));
        os.grant("replica1", cap(2));
        let mut b = BalancerAccel::new(Balance::LeastOutstanding);
        // Three requests: r0, r1, then (both at 1) r0 again.
        for tag in 0..3 {
            os.deliver(request(9, tag));
        }
        b.wake(os.now(), &mut os);
        assert_eq!(b.per_replica, vec![2, 1]);
        // Replica 1's request completes; the next request goes to replica 1.
        let internal_r1 = os.cap_sends[1].2;
        os.deliver(response(internal_r1, vec![]));
        os.deliver(request(9, 3));
        b.wake(os.now(), &mut os);
        assert_eq!(b.per_replica, vec![2, 2]);
    }

    #[test]
    fn no_replicas_drops_and_counts() {
        let mut os = MockOs::new();
        let mut b = balancer();
        os.deliver(request(9, 1));
        b.wake(os.now(), &mut os);
        assert_eq!(b.no_replica_drops, 1);
        assert!(os.cap_sends.is_empty());
    }

    #[test]
    fn error_responses_are_relayed() {
        let mut os = MockOs::new();
        os.grant("replica0", cap(1));
        let mut b = balancer();
        os.deliver(request(7, 42));
        b.wake(os.now(), &mut os);
        let internal = os.cap_sends[0].2;
        let mut err = response(internal, vec![wire::err::TARGET_FAILED]);
        err.msg.kind = wire::KIND_ERROR;
        os.deliver(err);
        b.wake(os.now(), &mut os);
        assert_eq!(os.sent[0].1, wire::KIND_ERROR);
        assert_eq!(os.sent[0].0, NodeId(7));
    }
}
