//! The third-party compression accelerator of §2.
//!
//! A reusable stage: compresses (or decompresses) its request payload and
//! replies, or forwards downstream in pipeline mode. Crucially, this
//! accelerator knows nothing about video, memory partitioning, or who its
//! neighbours are — the composition happens entirely through capabilities,
//! which is the paper's composability argument.

use crate::accelerator::{ServerAccel, Service, ServiceAction, ServiceReply, StateError};
use crate::codec::lz;
use crate::os::TileOs;
use apiary_monitor::wire;
use apiary_noc::{Delivered, TrafficClass};

/// Exact size of a [`CompressorService`] snapshot.
const COMPRESS_SNAP_LEN: usize = 1 + 8 + 8 + 8;

/// Operating direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Compress request payloads.
    Compress,
    /// Decompress request payloads.
    Decompress,
}

/// Application error codes for the compressor.
pub mod cerr {
    /// Decompression input was corrupt.
    pub const CORRUPT: u8 = 0x20;
}

/// The compression service.
#[derive(Debug, Clone)]
pub struct CompressorService {
    /// Direction.
    pub mode: Mode,
    /// Requests processed.
    pub blocks: u64,
    /// Bytes in.
    pub bytes_in: u64,
    /// Bytes out.
    pub bytes_out: u64,
}

impl CompressorService {
    /// Creates a compressor in the given mode.
    pub fn new(mode: Mode) -> CompressorService {
        CompressorService {
            mode,
            blocks: 0,
            bytes_in: 0,
            bytes_out: 0,
        }
    }

    /// Observed compression ratio (in/out).
    pub fn ratio(&self) -> f64 {
        if self.bytes_out == 0 {
            0.0
        } else {
            self.bytes_in as f64 / self.bytes_out as f64
        }
    }
}

impl Service for CompressorService {
    fn name(&self) -> &'static str {
        match self.mode {
            Mode::Compress => "compressor",
            Mode::Decompress => "decompressor",
        }
    }

    fn serve(&mut self, req: &Delivered, os: &mut dyn TileOs) -> ServiceAction {
        let input = &req.msg.payload;
        let out = match self.mode {
            Mode::Compress => lz::compress(input),
            Mode::Decompress => match lz::decompress(input) {
                Ok(d) => d,
                Err(_) => return ServiceAction::Reply(ServiceReply::error(cerr::CORRUPT)),
            },
        };
        self.blocks += 1;
        self.bytes_in += input.len() as u64;
        self.bytes_out += out.len() as u64;
        let cost = lz::compress_cost_cycles(input.len());
        if let Some(next) = os.cap_env().get("next") {
            ServiceAction::Forward {
                cap: next,
                kind: wire::KIND_REQUEST,
                class: TrafficClass::Bulk,
                payload: out.into(),
                cost_cycles: cost,
            }
        } else {
            ServiceAction::Reply(ServiceReply {
                kind: wire::KIND_RESPONSE,
                class: TrafficClass::Bulk,
                payload: out.into(),
                cost_cycles: cost,
            })
        }
    }

    fn save(&self) -> Option<Vec<u8>> {
        // Fixed-width little-endian fields — byte-stable across runs.
        let mut s = Vec::with_capacity(COMPRESS_SNAP_LEN);
        s.push(match self.mode {
            Mode::Compress => 0,
            Mode::Decompress => 1,
        });
        s.extend_from_slice(&self.blocks.to_le_bytes());
        s.extend_from_slice(&self.bytes_in.to_le_bytes());
        s.extend_from_slice(&self.bytes_out.to_le_bytes());
        Some(s)
    }

    fn restore(&mut self, state: &[u8]) -> Result<(), StateError> {
        if state.len() != COMPRESS_SNAP_LEN {
            return Err(StateError::Corrupt);
        }
        let mode = match state[0] {
            0 => Mode::Compress,
            1 => Mode::Decompress,
            _ => return Err(StateError::Corrupt),
        };
        let u64le = |b: &[u8]| u64::from_le_bytes(b.try_into().expect("sliced to 8"));
        self.mode = mode;
        self.blocks = u64le(&state[1..9]);
        self.bytes_in = u64le(&state[9..17]);
        self.bytes_out = u64le(&state[17..25]);
        Ok(())
    }
}

/// The compressor as an accelerator.
pub type CompressorAccel = ServerAccel<CompressorService>;

/// Creates a compressing accelerator.
pub fn compressor() -> CompressorAccel {
    ServerAccel::new(CompressorService::new(Mode::Compress))
}

/// Creates a decompressing accelerator.
pub fn decompressor() -> CompressorAccel {
    ServerAccel::new(CompressorService::new(Mode::Decompress))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::accelerator::Accelerator;
    use crate::os::test_os::MockOs;
    use apiary_noc::{Message, NodeId};
    use apiary_sim::Cycle;

    fn deliver(os: &mut MockOs, payload: Vec<u8>) {
        let mut msg = Message::new(NodeId(1), NodeId(0), TrafficClass::Request, payload);
        msg.kind = wire::KIND_REQUEST;
        os.deliver(Delivered {
            msg,
            injected_at: Cycle(0),
            delivered_at: Cycle(0),
        });
    }

    fn run_to_reply(a: &mut CompressorAccel, os: &mut MockOs, max: u64) {
        for _ in 0..max {
            a.wake(os.now(), os);
            os.advance(1);
            if !os.sent.is_empty() {
                return;
            }
        }
    }

    #[test]
    fn compresses_and_ratio_tracks() {
        let mut os = MockOs::new();
        let data = b"abcabcabcabc".repeat(100).to_vec();
        deliver(&mut os, data.clone());
        let mut a = compressor();
        run_to_reply(&mut a, &mut os, 10_000);
        assert_eq!(os.sent.len(), 1);
        let compressed = &os.sent[0].3;
        assert!(compressed.len() < data.len());
        assert_eq!(lz::decompress(compressed).expect("well formed"), data);
        assert!(a.service().ratio() > 1.0);
    }

    #[test]
    fn decompressor_inverts() {
        let data = b"some structured data, some structured data".repeat(20);
        let compressed = lz::compress(&data);
        let mut os = MockOs::new();
        deliver(&mut os, compressed);
        let mut a = decompressor();
        run_to_reply(&mut a, &mut os, 10_000);
        assert_eq!(os.sent[0].3, data);
    }

    #[test]
    fn corrupt_input_to_decompressor_errors() {
        let mut os = MockOs::new();
        deliver(&mut os, vec![0xFF, 0xFF]);
        let mut a = decompressor();
        run_to_reply(&mut a, &mut os, 100);
        assert_eq!(os.sent[0].1, wire::KIND_ERROR);
        assert_eq!(os.sent[0].3, vec![cerr::CORRUPT]);
    }
}
