//! A SIMD-style vector engine (the ML-inference flavour of accelerator
//! that motivates datacenter FPGAs in §1 — Microsoft's direct-attached
//! inference accelerators being the canonical example).
//!
//! Request payload: `[op: u8][n: u32][a: n x i32][b: n x i32]` for
//! elementwise ops, or `[op][n][a][b]` reduced for dot product.
//! Response: `[n x i32]` (elementwise) or `[i64]` (dot).
//!
//! The cost model is a `LANES`-wide pipeline: `ceil(n / LANES)` cycles
//! plus setup — the classic shape of a vector unit.

use crate::accelerator::{ServerAccel, Service, ServiceAction, ServiceReply};
use crate::os::TileOs;
use apiary_noc::Delivered;

/// Operation codes.
pub mod op {
    /// Elementwise addition.
    pub const ADD: u8 = 1;
    /// Elementwise multiplication.
    pub const MUL: u8 = 2;
    /// Dot product (i64 accumulator).
    pub const DOT: u8 = 3;
}

/// Application error codes.
pub mod verr {
    /// Request did not parse.
    pub const MALFORMED: u8 = 0x30;
}

/// Pipeline width (elements per cycle).
pub const LANES: u64 = 8;

/// Builds a request payload for two `i32` vectors.
pub fn request(op_code: u8, a: &[i32], b: &[i32]) -> Vec<u8> {
    assert_eq!(a.len(), b.len(), "operands must match");
    let mut p = vec![op_code];
    p.extend_from_slice(&(a.len() as u32).to_le_bytes());
    for v in a.iter().chain(b.iter()) {
        p.extend_from_slice(&v.to_le_bytes());
    }
    p
}

/// Parses an elementwise response.
pub fn parse_elementwise(payload: &[u8]) -> Option<Vec<i32>> {
    if !payload.len().is_multiple_of(4) {
        return None;
    }
    Some(
        payload
            .chunks_exact(4)
            .map(|c| i32::from_le_bytes(c.try_into().expect("sized")))
            .collect(),
    )
}

/// Parses a dot-product response.
pub fn parse_dot(payload: &[u8]) -> Option<i64> {
    Some(i64::from_le_bytes(payload.try_into().ok()?))
}

fn parse_request(p: &[u8]) -> Option<(u8, Vec<i32>, Vec<i32>)> {
    if p.len() < 5 {
        return None;
    }
    let opc = p[0];
    let n = u32::from_le_bytes(p[1..5].try_into().ok()?) as usize;
    let body = &p[5..];
    if body.len() != n * 8 {
        return None;
    }
    let read = |bytes: &[u8]| -> Vec<i32> {
        bytes
            .chunks_exact(4)
            .map(|c| i32::from_le_bytes(c.try_into().expect("sized")))
            .collect()
    };
    Some((opc, read(&body[..n * 4]), read(&body[n * 4..])))
}

/// The vector engine.
#[derive(Debug, Clone, Default)]
pub struct VectorService {
    /// Operations served.
    pub ops: u64,
    /// Elements processed.
    pub elements: u64,
}

impl Service for VectorService {
    fn name(&self) -> &'static str {
        "vector"
    }

    fn serve(&mut self, req: &Delivered, _os: &mut dyn TileOs) -> ServiceAction {
        let Some((opc, a, b)) = parse_request(&req.msg.payload) else {
            return ServiceAction::Reply(ServiceReply::error(verr::MALFORMED));
        };
        let n = a.len() as u64;
        let cost = 8 + n.div_ceil(LANES);
        let payload = match opc {
            op::ADD => a
                .iter()
                .zip(&b)
                .flat_map(|(x, y)| x.wrapping_add(*y).to_le_bytes())
                .collect(),
            op::MUL => a
                .iter()
                .zip(&b)
                .flat_map(|(x, y)| x.wrapping_mul(*y).to_le_bytes())
                .collect(),
            op::DOT => {
                let acc: i64 = a.iter().zip(&b).map(|(x, y)| *x as i64 * *y as i64).sum();
                acc.to_le_bytes().to_vec()
            }
            _ => return ServiceAction::Reply(ServiceReply::error(verr::MALFORMED)),
        };
        self.ops += 1;
        self.elements += n;
        ServiceAction::Reply(ServiceReply::ok(payload, cost))
    }

    fn save(&self) -> Option<Vec<u8>> {
        let mut out = self.ops.to_le_bytes().to_vec();
        out.extend_from_slice(&self.elements.to_le_bytes());
        Some(out)
    }

    fn restore(&mut self, state: &[u8]) -> Result<(), crate::accelerator::StateError> {
        if state.len() != 16 {
            return Err(crate::accelerator::StateError::Corrupt);
        }
        self.ops = u64::from_le_bytes(state[0..8].try_into().expect("sized"));
        self.elements = u64::from_le_bytes(state[8..16].try_into().expect("sized"));
        Ok(())
    }
}

/// The vector engine as an accelerator.
pub type VectorAccel = ServerAccel<VectorService>;

/// Creates a vector accelerator.
pub fn vector() -> VectorAccel {
    ServerAccel::new(VectorService::default())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::accelerator::Accelerator;
    use crate::os::test_os::MockOs;
    use apiary_monitor::wire;
    use apiary_noc::{Message, NodeId, TrafficClass};
    use apiary_sim::Cycle;

    fn deliver(os: &mut MockOs, payload: Vec<u8>) {
        let mut msg = Message::new(NodeId(1), NodeId(0), TrafficClass::Request, payload);
        msg.kind = wire::KIND_REQUEST;
        os.deliver(Delivered {
            msg,
            injected_at: Cycle(0),
            delivered_at: Cycle(0),
        });
    }

    fn run(a: &mut VectorAccel, os: &mut MockOs) {
        for _ in 0..1_000 {
            a.wake(os.now(), os);
            os.advance(1);
            if !os.sent.is_empty() {
                return;
            }
        }
    }

    #[test]
    fn add_and_mul_elementwise() {
        let mut os = MockOs::new();
        let mut a = vector();
        deliver(&mut os, request(op::ADD, &[1, 2, 3], &[10, 20, 30]));
        run(&mut a, &mut os);
        assert_eq!(parse_elementwise(&os.sent[0].3), Some(vec![11, 22, 33]));
        os.sent.clear();
        deliver(&mut os, request(op::MUL, &[2, -3], &[4, 5]));
        run(&mut a, &mut os);
        assert_eq!(parse_elementwise(&os.sent[0].3), Some(vec![8, -15]));
    }

    #[test]
    fn dot_product_accumulates_wide() {
        let mut os = MockOs::new();
        let mut a = vector();
        // Values that would overflow i32 accumulation.
        deliver(&mut os, request(op::DOT, &[i32::MAX, i32::MAX], &[2, 2]));
        run(&mut a, &mut os);
        assert_eq!(parse_dot(&os.sent[0].3), Some(2 * 2 * (i32::MAX as i64)));
    }

    #[test]
    fn overflow_wraps_like_hardware() {
        let mut os = MockOs::new();
        let mut a = vector();
        deliver(&mut os, request(op::ADD, &[i32::MAX], &[1]));
        run(&mut a, &mut os);
        assert_eq!(parse_elementwise(&os.sent[0].3), Some(vec![i32::MIN]));
    }

    #[test]
    fn malformed_rejected() {
        let mut os = MockOs::new();
        let mut a = vector();
        deliver(&mut os, vec![op::ADD, 9, 0, 0, 0, 1, 2]);
        run(&mut a, &mut os);
        assert_eq!(os.sent[0].1, wire::KIND_ERROR);
        os.sent.clear();
        deliver(&mut os, vec![99, 0, 0, 0, 0]);
        run(&mut a, &mut os);
        assert_eq!(os.sent[0].1, wire::KIND_ERROR);
    }

    #[test]
    fn cost_scales_with_lanes() {
        let mut svc = VectorService::default();
        let mut os = MockOs::new();
        let small = request(op::ADD, &[0; 8], &[0; 8]);
        let large = request(op::ADD, &[0; 256], &[0; 256]);
        let mk = |payload: Vec<u8>| {
            let mut msg = Message::new(NodeId(1), NodeId(0), TrafficClass::Request, payload);
            msg.kind = wire::KIND_REQUEST;
            Delivered {
                msg,
                injected_at: Cycle(0),
                delivered_at: Cycle(0),
            }
        };
        let c_small = match svc.serve(&mk(small), &mut os) {
            ServiceAction::Reply(r) => r.cost_cycles,
            _ => unreachable!(),
        };
        let c_large = match svc.serve(&mk(large), &mut os) {
            ServiceAction::Reply(r) => r.cost_cycles,
            _ => unreachable!(),
        };
        assert_eq!(c_small, 8 + 1);
        assert_eq!(c_large, 8 + 32);
    }

    #[test]
    fn preemptible_state_roundtrip() {
        let mut svc = VectorService {
            ops: 5,
            elements: 123,
        };
        let snap = svc.save().expect("preemptible");
        let mut restored = VectorService::default();
        restored.restore(&snap).expect("own snapshot");
        assert_eq!(restored.ops, 5);
        assert_eq!(restored.elements, 123);
        assert!(svc.restore(&[1]).is_err());
    }
}
