//! The video encoding service from the paper's motivating pipeline (§2).
//!
//! Requests carry a raw frame (`[width: u32][height: u32][pixels...]`);
//! the service encodes it with [`crate::codec::video`] and either replies
//! with the stream or — when the kernel granted a `"next"` capability —
//! forwards it to the next pipeline stage (e.g. a third-party compressor),
//! tagging it with the original request tag so the pipeline's egress can
//! correlate.

use crate::accelerator::{ServerAccel, Service, ServiceAction, ServiceReply, StateError};
use crate::codec::video::{self, Frame};
use crate::os::TileOs;
use apiary_monitor::wire;
use apiary_noc::{Delivered, TrafficClass};

/// Exact size of a [`VideoEncoderService`] snapshot.
const VIDEO_SNAP_LEN: usize = 4 + 8 + 8 + 8;

/// Encodes a frame request payload.
pub fn encode_request(frame: &Frame) -> Vec<u8> {
    let mut p = Vec::with_capacity(8 + frame.pixels.len());
    p.extend_from_slice(&frame.width.to_le_bytes());
    p.extend_from_slice(&frame.height.to_le_bytes());
    p.extend_from_slice(&frame.pixels);
    p
}

/// Decodes a frame request payload.
pub fn decode_request(payload: &[u8]) -> Option<Frame> {
    if payload.len() < 8 {
        return None;
    }
    let width = u32::from_le_bytes(payload[0..4].try_into().ok()?);
    let height = u32::from_le_bytes(payload[4..8].try_into().ok()?);
    Frame::new(width, height, payload[8..].to_vec()).ok()
}

/// Application error codes for the video service.
pub mod verr {
    /// The request payload did not parse as a frame.
    pub const BAD_FRAME: u8 = 0x10;
}

/// The video encoding service.
#[derive(Debug, Clone)]
pub struct VideoEncoderService {
    /// Quantisation shift (0 = lossless).
    pub quant_shift: u32,
    /// Frames encoded.
    pub frames: u64,
    /// Bytes in / bytes out, for compression accounting.
    pub bytes_in: u64,
    /// Encoded bytes produced.
    pub bytes_out: u64,
}

impl VideoEncoderService {
    /// Creates an encoder.
    pub fn new(quant_shift: u32) -> VideoEncoderService {
        VideoEncoderService {
            quant_shift,
            frames: 0,
            bytes_in: 0,
            bytes_out: 0,
        }
    }
}

impl Service for VideoEncoderService {
    fn name(&self) -> &'static str {
        "video-encoder"
    }

    fn serve(&mut self, req: &Delivered, os: &mut dyn TileOs) -> ServiceAction {
        let Some(frame) = decode_request(&req.msg.payload) else {
            return ServiceAction::Reply(ServiceReply::error(verr::BAD_FRAME));
        };
        let cost = video::encode_cost_cycles(frame.pixels.len());
        let stream = video::encode(&frame, self.quant_shift);
        self.frames += 1;
        self.bytes_in += frame.pixels.len() as u64;
        self.bytes_out += stream.len() as u64;
        if let Some(next) = os.cap_env().get("next") {
            // Pipeline mode: compute, then forward downstream with the
            // client's tag intact.
            ServiceAction::Forward {
                cap: next,
                kind: wire::KIND_REQUEST,
                class: TrafficClass::Bulk,
                payload: stream.into(),
                cost_cycles: cost,
            }
        } else {
            ServiceAction::Reply(ServiceReply {
                kind: wire::KIND_RESPONSE,
                class: TrafficClass::Bulk,
                payload: stream.into(),
                cost_cycles: cost,
            })
        }
    }

    fn save(&self) -> Option<Vec<u8>> {
        // Fixed-width little-endian fields: deterministic by construction
        // (no maps, no iteration order), so checkpoints are byte-stable.
        let mut s = Vec::with_capacity(VIDEO_SNAP_LEN);
        s.extend_from_slice(&self.quant_shift.to_le_bytes());
        s.extend_from_slice(&self.frames.to_le_bytes());
        s.extend_from_slice(&self.bytes_in.to_le_bytes());
        s.extend_from_slice(&self.bytes_out.to_le_bytes());
        Some(s)
    }

    fn restore(&mut self, state: &[u8]) -> Result<(), StateError> {
        if state.len() != VIDEO_SNAP_LEN {
            return Err(StateError::Corrupt);
        }
        let u32le = |b: &[u8]| u32::from_le_bytes(b.try_into().expect("sliced to 4"));
        let u64le = |b: &[u8]| u64::from_le_bytes(b.try_into().expect("sliced to 8"));
        self.quant_shift = u32le(&state[0..4]);
        self.frames = u64le(&state[4..12]);
        self.bytes_in = u64le(&state[12..20]);
        self.bytes_out = u64le(&state[20..28]);
        Ok(())
    }
}

/// The video encoder as an accelerator.
pub type VideoEncoderAccel = ServerAccel<VideoEncoderService>;

/// Creates a video encoder accelerator.
pub fn video_encoder(quant_shift: u32) -> VideoEncoderAccel {
    ServerAccel::new(VideoEncoderService::new(quant_shift))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::accelerator::Accelerator;
    use crate::os::test_os::MockOs;
    use apiary_cap::CapRef;
    use apiary_noc::{Message, NodeId};
    use apiary_sim::Cycle;

    fn deliver_frame(os: &mut MockOs, frame: &Frame, tag: u64) {
        let mut msg = Message::new(
            NodeId(1),
            NodeId(0),
            TrafficClass::Request,
            encode_request(frame),
        );
        msg.kind = wire::KIND_REQUEST;
        msg.tag = tag;
        os.deliver(Delivered {
            msg,
            injected_at: Cycle(0),
            delivered_at: Cycle(0),
        });
    }

    #[test]
    fn encodes_and_replies() {
        let mut os = MockOs::new();
        let frame = Frame::test_pattern(32, 32, 1);
        deliver_frame(&mut os, &frame, 5);
        let mut a = video_encoder(0);
        a.wake(os.now(), &mut os);
        // Encoding a 32x32 frame costs 32 + 1024 cycles.
        os.advance(video::encode_cost_cycles(1024));
        a.wake(os.now(), &mut os);
        assert_eq!(os.sent.len(), 1);
        let decoded = video::decode(&os.sent[0].3).expect("well formed");
        assert_eq!(decoded, frame);
        assert_eq!(a.service().frames, 1);
    }

    #[test]
    fn pipeline_mode_forwards_downstream() {
        let mut os = MockOs::new();
        let next = CapRef {
            index: 7,
            generation: 0,
        };
        os.grant("next", next);
        let frame = Frame::test_pattern(16, 16, 2);
        deliver_frame(&mut os, &frame, 42);
        let mut a = video_encoder(0);
        a.wake(os.now(), &mut os);
        assert!(
            os.cap_sends.is_empty(),
            "forward waits out the compute cost"
        );
        // 16x16 frame: 32 + 256 cycles of encode.
        for _ in 0..=video::encode_cost_cycles(256) {
            os.advance(1);
            a.wake(os.now(), &mut os);
        }
        assert!(os.sent.is_empty());
        assert_eq!(os.cap_sends.len(), 1);
        let (cap, kind, tag, payload) = &os.cap_sends[0];
        assert_eq!(*cap, next);
        assert_eq!(*kind, wire::KIND_REQUEST);
        assert_eq!(*tag, 42, "tag follows the pipeline");
        assert!(video::decode(payload).is_ok());
    }

    #[test]
    fn malformed_frame_gets_error_reply() {
        let mut os = MockOs::new();
        let mut msg = Message::new(NodeId(1), NodeId(0), TrafficClass::Request, vec![1, 2, 3]);
        msg.kind = wire::KIND_REQUEST;
        os.deliver(Delivered {
            msg,
            injected_at: Cycle(0),
            delivered_at: Cycle(0),
        });
        let mut a = video_encoder(0);
        a.wake(os.now(), &mut os);
        os.advance(1);
        a.wake(os.now(), &mut os);
        assert_eq!(os.sent.len(), 1);
        assert_eq!(os.sent[0].1, wire::KIND_ERROR);
        assert_eq!(os.sent[0].3, vec![verr::BAD_FRAME]);
    }

    #[test]
    fn request_codec_roundtrip() {
        let f = Frame::test_pattern(20, 10, 9);
        let req = encode_request(&f);
        assert_eq!(decode_request(&req).expect("well formed"), f);
        assert!(decode_request(&req[..4]).is_none());
        // Wrong pixel count.
        assert!(decode_request(&req[..req.len() - 1]).is_none());
    }
}
