//! The [`Accelerator`] trait and the request/response server harness.

use crate::os::TileOs;
use apiary_cap::CapRef;
use apiary_monitor::wire;
use apiary_noc::{Delivered, TrafficClass};
use apiary_sim::Cycle;
use core::fmt;

/// Error restoring externalized accelerator state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StateError {
    /// The accelerator does not support preemption.
    NotPreemptible,
    /// The snapshot bytes did not parse.
    Corrupt,
}

impl fmt::Display for StateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StateError::NotPreemptible => write!(f, "accelerator is not preemptible"),
            StateError::Corrupt => write!(f, "state snapshot is corrupt"),
        }
    }
}

impl std::error::Error for StateError {}

/// Untrusted logic occupying a tile's dynamic region.
///
/// The kernel calls [`Accelerator::tick`] once per cycle while the tile is
/// running. All interaction with the world goes through the [`TileOs`]
/// handle. The default implementations make an accelerator merely
/// *concurrent* (§4.4); overriding the three state methods makes it
/// *preemptible*.
pub trait Accelerator {
    /// A short, stable name (for traces and floor plans).
    fn name(&self) -> &'static str;

    /// Advances the accelerator by one cycle.
    fn tick(&mut self, os: &mut dyn TileOs);

    /// Returns `true` if the accelerator externalizes its architectural
    /// state ([`Accelerator::save_state`] works).
    fn is_preemptible(&self) -> bool {
        false
    }

    /// Serialises the architectural state of the accelerator so it can be
    /// swapped out at any cycle. `None` means not supported.
    fn save_state(&self) -> Option<Vec<u8>> {
        None
    }

    /// Restores previously saved state.
    ///
    /// # Errors
    ///
    /// [`StateError`] if unsupported or the snapshot is corrupt.
    fn restore_state(&mut self, _state: &[u8]) -> Result<(), StateError> {
        Err(StateError::NotPreemptible)
    }

    /// Downcasting support so the kernel and tests can inspect concrete
    /// accelerator state behind `Box<dyn Accelerator>`.
    fn as_any(&self) -> &dyn core::any::Any;

    /// Mutable downcasting support.
    fn as_any_mut(&mut self) -> &mut dyn core::any::Any;
}

/// A reply produced by a [`Service`].
#[derive(Debug, Clone)]
pub struct ServiceReply {
    /// Response kind word (defaults to [`wire::KIND_RESPONSE`]).
    pub kind: u16,
    /// Traffic class for the response.
    pub class: TrafficClass,
    /// Response payload.
    pub payload: Vec<u8>,
    /// Compute cycles the request costs before the response can leave
    /// (models the accelerator's processing latency).
    pub cost_cycles: u64,
}

impl ServiceReply {
    /// A plain response with the given payload and cost.
    pub fn ok(payload: Vec<u8>, cost_cycles: u64) -> ServiceReply {
        ServiceReply {
            kind: wire::KIND_RESPONSE,
            class: TrafficClass::Request,
            payload,
            cost_cycles,
        }
    }

    /// An application-level error reply.
    pub fn error(code: u8) -> ServiceReply {
        ServiceReply {
            kind: wire::KIND_ERROR,
            class: TrafficClass::Control,
            payload: vec![code],
            cost_cycles: 1,
        }
    }
}

/// What a service asks the harness to do with a request.
pub enum ServiceAction {
    /// Compute for `cost_cycles`, then send the reply to the requester.
    Reply(ServiceReply),
    /// Compute for `cost_cycles`, then forward `payload` through `cap`
    /// (pipeline stages), carrying the original request's tag.
    Forward {
        /// Capability to the next stage.
        cap: CapRef,
        /// Message kind for the forwarded message.
        kind: u16,
        /// Traffic class for the forwarded message.
        class: TrafficClass,
        /// The forwarded payload.
        payload: Vec<u8>,
        /// Compute latency before the forward leaves.
        cost_cycles: u64,
    },
    /// Consume the request silently.
    Done,
    /// The request exposed an internal error: raise a fault with this code.
    Fault(u32),
}

/// Request/response service logic, lifted into an [`Accelerator`] by
/// [`ServerAccel`].
///
/// `serve` is called once per request; the harness models compute latency,
/// busy-state backpressure and reply routing, so services stay pure.
pub trait Service {
    /// Service name.
    fn name(&self) -> &'static str;

    /// Handles one request.
    fn serve(&mut self, req: &Delivered, os: &mut dyn TileOs) -> ServiceAction;

    /// Optional per-cycle idle work (e.g. proactive traffic generators).
    fn idle(&mut self, _os: &mut dyn TileOs) {}

    /// Optional state externalization (enables preemption).
    fn save(&self) -> Option<Vec<u8>> {
        None
    }

    /// Optional state restoration.
    ///
    /// # Errors
    ///
    /// [`StateError`] if unsupported or the snapshot is corrupt.
    fn restore(&mut self, _state: &[u8]) -> Result<(), StateError> {
        Err(StateError::NotPreemptible)
    }
}

/// What happens when the in-flight job finishes.
enum Completion {
    Reply {
        reply: ServiceReply,
        to: Delivered,
    },
    Forward {
        cap: CapRef,
        kind: u16,
        tag: u64,
        class: TrafficClass,
        payload: Vec<u8>,
    },
}

/// One in-flight job inside a [`ServerAccel`].
struct Pending {
    done_at: Cycle,
    completion: Completion,
}

/// Lifts a [`Service`] into a full [`Accelerator`]: one request in service
/// at a time (a single execution unit), compute latency modelled by
/// [`ServiceReply::cost_cycles`], replies routed back to the requester.
pub struct ServerAccel<S: Service> {
    service: S,
    pending: Option<Pending>,
    served: u64,
    halted: bool,
}

impl<S: Service> ServerAccel<S> {
    /// Wraps a service.
    pub fn new(service: S) -> ServerAccel<S> {
        ServerAccel {
            service,
            pending: None,
            served: 0,
            halted: false,
        }
    }

    /// Returns `true` once the accelerator has wedged on a fault.
    pub fn halted(&self) -> bool {
        self.halted
    }

    /// Requests completed.
    pub fn served(&self) -> u64 {
        self.served
    }

    /// The wrapped service.
    pub fn service(&self) -> &S {
        &self.service
    }

    /// Mutable access to the wrapped service (tests, reconfiguration).
    pub fn service_mut(&mut self) -> &mut S {
        &mut self.service
    }
}

impl<S: Service + 'static> Accelerator for ServerAccel<S> {
    fn name(&self) -> &'static str {
        self.service.name()
    }

    fn as_any(&self) -> &dyn core::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn core::any::Any {
        self
    }

    fn tick(&mut self, os: &mut dyn TileOs) {
        // A faulted accelerator is wedged until the kernel swaps or resets
        // it; it makes no further progress on its own (§4.4).
        if self.halted {
            return;
        }
        // Finish the in-flight job first.
        if let Some(p) = &self.pending {
            if os.now() >= p.done_at {
                let p = self.pending.take().expect("checked above");
                match p.completion {
                    // Reply failures (revoked client, backpressure) are the
                    // client's problem; the service moves on.
                    Completion::Reply { reply, to } => {
                        let _ = os.reply(&to, reply.kind, reply.class, reply.payload);
                    }
                    Completion::Forward {
                        cap,
                        kind,
                        tag,
                        class,
                        payload,
                    } => {
                        let _ = os.send(cap, kind, tag, class, payload);
                    }
                }
                self.served += 1;
            } else {
                return; // Busy: requests wait in the monitor's inbox.
            }
        }
        // Accept the next request.
        if let Some(req) = os.recv() {
            // Responses, errors and completions are not requests: a
            // service must never "serve" them, or two mutually-connected
            // services would echo each other's replies forever.
            if matches!(
                req.msg.kind,
                wire::KIND_ERROR
                    | wire::KIND_RESPONSE
                    | wire::KIND_MEM_REPLY
                    | wire::KIND_LOOKUP_REPLY
            ) {
                return;
            }
            match self.service.serve(&req, os) {
                ServiceAction::Reply(reply) => {
                    let done_at = os.now() + reply.cost_cycles;
                    self.pending = Some(Pending {
                        done_at,
                        completion: Completion::Reply { reply, to: req },
                    });
                }
                ServiceAction::Forward {
                    cap,
                    kind,
                    class,
                    payload,
                    cost_cycles,
                } => {
                    let done_at = os.now() + cost_cycles;
                    self.pending = Some(Pending {
                        done_at,
                        completion: Completion::Forward {
                            cap,
                            kind,
                            tag: req.msg.tag,
                            class,
                            payload,
                        },
                    });
                }
                ServiceAction::Done => {
                    self.served += 1;
                }
                ServiceAction::Fault(code) => {
                    self.halted = true;
                    os.raise_fault(code);
                }
            }
        } else {
            self.service.idle(os);
        }
    }

    fn is_preemptible(&self) -> bool {
        self.service.save().is_some()
    }

    fn save_state(&self) -> Option<Vec<u8>> {
        // The harness itself is stateless between requests apart from the
        // pending job, which is abandoned on preemption (the client will
        // retry or time out) — matching the paper's observation that
        // mid-invocation state is the hard part.
        self.service.save()
    }

    fn restore_state(&mut self, state: &[u8]) -> Result<(), StateError> {
        self.pending = None;
        self.service.restore(state)?;
        self.halted = false;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::os::test_os::MockOs;
    use apiary_noc::{Message, NodeId};

    struct Upper;

    impl Service for Upper {
        fn name(&self) -> &'static str {
            "upper"
        }

        fn serve(&mut self, req: &Delivered, _os: &mut dyn TileOs) -> ServiceAction {
            ServiceAction::Reply(ServiceReply::ok(req.msg.payload.to_ascii_uppercase(), 5))
        }
    }

    fn request(payload: &[u8]) -> Delivered {
        let mut msg = Message::new(
            NodeId(1),
            NodeId(0),
            TrafficClass::Request,
            payload.to_vec(),
        );
        msg.kind = wire::KIND_REQUEST;
        msg.tag = 33;
        Delivered {
            msg,
            injected_at: Cycle(0),
            delivered_at: Cycle(0),
        }
    }

    #[test]
    fn server_replies_after_cost_cycles() {
        let mut os = MockOs::new();
        os.deliver(request(b"abc"));
        let mut a = ServerAccel::new(Upper);
        // Cycle 0: accept, job takes 5 cycles.
        a.tick(&mut os);
        assert!(os.sent.is_empty());
        for _ in 0..4 {
            os.advance(1);
            a.tick(&mut os);
        }
        assert!(os.sent.is_empty(), "still computing");
        os.advance(1);
        a.tick(&mut os);
        assert_eq!(os.sent.len(), 1);
        let (to, kind, _, payload) = &os.sent[0];
        assert_eq!(*to, NodeId(1));
        assert_eq!(*kind, wire::KIND_RESPONSE);
        assert_eq!(payload, b"ABC");
        assert_eq!(a.served(), 1);
    }

    #[test]
    fn one_job_at_a_time() {
        let mut os = MockOs::new();
        os.deliver(request(b"a"));
        os.deliver(request(b"b"));
        let mut a = ServerAccel::new(Upper);
        a.tick(&mut os); // Accepts "a".
        os.advance(1);
        a.tick(&mut os); // Busy; "b" stays queued.
        assert_eq!(os.inbox_len(), 1);
        for _ in 0..10 {
            os.advance(1);
            a.tick(&mut os);
        }
        assert_eq!(os.sent.len(), 2);
        assert_eq!(a.served(), 2);
    }

    #[test]
    fn error_messages_are_skipped() {
        let mut os = MockOs::new();
        let mut req = request(b"x");
        req.msg.kind = wire::KIND_ERROR;
        os.deliver(req);
        let mut a = ServerAccel::new(Upper);
        for _ in 0..3 {
            a.tick(&mut os);
            os.advance(1);
        }
        assert!(os.sent.is_empty());
        assert_eq!(a.served(), 0);
    }

    struct Crasher;

    impl Service for Crasher {
        fn name(&self) -> &'static str {
            "crasher"
        }

        fn serve(&mut self, _req: &Delivered, _os: &mut dyn TileOs) -> ServiceAction {
            ServiceAction::Fault(0xdead)
        }
    }

    #[test]
    fn fault_action_raises() {
        let mut os = MockOs::new();
        os.deliver(request(b"boom"));
        let mut a = ServerAccel::new(Crasher);
        a.tick(&mut os);
        assert_eq!(os.faults, vec![0xdead]);
    }

    #[test]
    fn default_accelerator_is_not_preemptible() {
        let a = ServerAccel::new(Upper);
        assert!(!a.is_preemptible());
        assert!(a.save_state().is_none());
        let mut a = a;
        assert_eq!(a.restore_state(&[]), Err(StateError::NotPreemptible));
    }
}
