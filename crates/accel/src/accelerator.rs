//! The [`Accelerator`] trait and the request/response server harness.

use crate::os::TileOs;
use apiary_cap::CapRef;
use apiary_monitor::wire;
use apiary_noc::{Delivered, TrafficClass};
use apiary_sim::{Cycle, Payload, Wakeup};
use core::fmt;

/// Error restoring externalized accelerator state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StateError {
    /// The accelerator does not support preemption.
    NotPreemptible,
    /// The snapshot bytes did not parse.
    Corrupt,
}

impl fmt::Display for StateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StateError::NotPreemptible => write!(f, "accelerator is not preemptible"),
            StateError::Corrupt => write!(f, "state snapshot is corrupt"),
        }
    }
}

impl std::error::Error for StateError {}

/// Untrusted logic occupying a tile's dynamic region.
///
/// The kernel calls [`Accelerator::wake`] whenever the accelerator is due
/// to run; the accelerator does one cycle's worth of work and reports when
/// it next needs CPU. All interaction with the world goes through the
/// [`TileOs`] handle. The default implementations make an accelerator
/// merely *concurrent* (§4.4); overriding the three state methods makes it
/// *preemptible*.
///
/// # Migrating from `tick`
///
/// Implement **exactly one** of [`Accelerator::wake`] and the deprecated
/// [`Accelerator::tick`] — each defaults to calling the other. Legacy
/// implementations that only define `tick` keep working: the default
/// `wake` runs `tick` and conservatively asks to be woken every cycle,
/// which is exactly the old dense behaviour. New implementations define
/// `wake` and return a precise [`Wakeup`] so the event-driven drivers can
/// skip their quiescent cycles. A `wake` implementation must tolerate
/// spurious calls (earlier than the wakeup it requested) by no-opping,
/// and must never request a wakeup *later* than the first cycle at which
/// its dense-ticked twin would have changed state.
pub trait Accelerator {
    /// A short, stable name (for traces and floor plans).
    fn name(&self) -> &'static str;

    /// Runs the accelerator at `now` and returns when it next needs CPU.
    ///
    /// The driver re-arms [`Wakeup::OnMessage`] sleepers implicitly when a
    /// message lands in the tile's inbox.
    fn wake(&mut self, now: Cycle, os: &mut dyn TileOs) -> Wakeup {
        #[allow(deprecated)]
        self.tick(os);
        Wakeup::AtOrMessage(now.saturating_add(1))
    }

    /// Advances the accelerator by one cycle.
    #[deprecated(note = "implement `wake` instead; `tick` is the pre-event-core name")]
    fn tick(&mut self, os: &mut dyn TileOs) {
        let now = os.now();
        let _ = self.wake(now, os);
    }

    /// Returns `true` if the accelerator externalizes its architectural
    /// state ([`Accelerator::save_state`] works).
    fn is_preemptible(&self) -> bool {
        false
    }

    /// Serialises the architectural state of the accelerator so it can be
    /// swapped out at any cycle. `None` means not supported.
    fn save_state(&self) -> Option<Vec<u8>> {
        None
    }

    /// Restores previously saved state.
    ///
    /// # Errors
    ///
    /// [`StateError`] if unsupported or the snapshot is corrupt.
    fn restore_state(&mut self, _state: &[u8]) -> Result<(), StateError> {
        Err(StateError::NotPreemptible)
    }

    /// Downcasting support so the kernel and tests can inspect concrete
    /// accelerator state behind `Box<dyn Accelerator>`.
    fn as_any(&self) -> &dyn core::any::Any;

    /// Mutable downcasting support.
    fn as_any_mut(&mut self) -> &mut dyn core::any::Any;
}

/// A reply produced by a [`Service`].
#[derive(Debug, Clone)]
pub struct ServiceReply {
    /// Response kind word (defaults to [`wire::KIND_RESPONSE`]).
    pub kind: u16,
    /// Traffic class for the response.
    pub class: TrafficClass,
    /// Response payload.
    pub payload: Payload,
    /// Compute cycles the request costs before the response can leave
    /// (models the accelerator's processing latency).
    pub cost_cycles: u64,
}

impl ServiceReply {
    /// A plain response with the given payload and cost.
    pub fn ok(payload: impl Into<Payload>, cost_cycles: u64) -> ServiceReply {
        ServiceReply {
            kind: wire::KIND_RESPONSE,
            class: TrafficClass::Request,
            payload: payload.into(),
            cost_cycles,
        }
    }

    /// An application-level error reply.
    pub fn error(code: u8) -> ServiceReply {
        ServiceReply {
            kind: wire::KIND_ERROR,
            class: TrafficClass::Control,
            payload: vec![code].into(),
            cost_cycles: 1,
        }
    }
}

/// What a service asks the harness to do with a request.
pub enum ServiceAction {
    /// Compute for `cost_cycles`, then send the reply to the requester.
    Reply(ServiceReply),
    /// Compute for `cost_cycles`, then forward `payload` through `cap`
    /// (pipeline stages), carrying the original request's tag.
    Forward {
        /// Capability to the next stage.
        cap: CapRef,
        /// Message kind for the forwarded message.
        kind: u16,
        /// Traffic class for the forwarded message.
        class: TrafficClass,
        /// The forwarded payload.
        payload: Payload,
        /// Compute latency before the forward leaves.
        cost_cycles: u64,
    },
    /// Consume the request silently.
    Done,
    /// The request exposed an internal error: raise a fault with this code.
    Fault(u32),
}

/// Request/response service logic, lifted into an [`Accelerator`] by
/// [`ServerAccel`].
///
/// `serve` is called once per request; the harness models compute latency,
/// busy-state backpressure and reply routing, so services stay pure.
pub trait Service {
    /// Service name.
    fn name(&self) -> &'static str;

    /// Handles one request.
    fn serve(&mut self, req: &Delivered, os: &mut dyn TileOs) -> ServiceAction;

    /// Optional per-cycle idle work (e.g. proactive traffic generators).
    fn idle(&mut self, _os: &mut dyn TileOs) {}

    /// When the service needs CPU while no request is in flight. The
    /// default — [`Wakeup::OnMessage`] — suits pure request/response
    /// services whose [`Service::idle`] does nothing; services that
    /// generate work spontaneously (traffic flooders, pollers) override
    /// this to request timed wakeups so the event-driven drivers keep
    /// calling [`Service::idle`].
    fn wakeup(&self, _now: Cycle) -> Wakeup {
        Wakeup::OnMessage
    }

    /// Optional state externalization (enables preemption).
    fn save(&self) -> Option<Vec<u8>> {
        None
    }

    /// Optional state restoration.
    ///
    /// # Errors
    ///
    /// [`StateError`] if unsupported or the snapshot is corrupt.
    fn restore(&mut self, _state: &[u8]) -> Result<(), StateError> {
        Err(StateError::NotPreemptible)
    }
}

/// What happens when the in-flight job finishes.
enum Completion {
    Reply {
        reply: ServiceReply,
        to: Delivered,
    },
    Forward {
        cap: CapRef,
        kind: u16,
        tag: u64,
        class: TrafficClass,
        payload: Payload,
    },
}

/// One in-flight job inside a [`ServerAccel`].
struct Pending {
    done_at: Cycle,
    completion: Completion,
}

/// Lifts a [`Service`] into a full [`Accelerator`]: one request in service
/// at a time (a single execution unit), compute latency modelled by
/// [`ServiceReply::cost_cycles`], replies routed back to the requester.
pub struct ServerAccel<S: Service> {
    service: S,
    pending: Option<Pending>,
    served: u64,
    halted: bool,
}

impl<S: Service> ServerAccel<S> {
    /// Wraps a service.
    pub fn new(service: S) -> ServerAccel<S> {
        ServerAccel {
            service,
            pending: None,
            served: 0,
            halted: false,
        }
    }

    /// Returns `true` once the accelerator has wedged on a fault.
    pub fn halted(&self) -> bool {
        self.halted
    }

    /// Requests completed.
    pub fn served(&self) -> u64 {
        self.served
    }

    /// The wrapped service.
    pub fn service(&self) -> &S {
        &self.service
    }

    /// Mutable access to the wrapped service (tests, reconfiguration).
    pub fn service_mut(&mut self) -> &mut S {
        &mut self.service
    }

    /// Next wakeup after consuming a message without starting a job: drain
    /// the backlog next cycle if one exists, else sleep — but never later
    /// than the service's own idle schedule.
    fn backlog_wakeup(&self, now: Cycle, os: &dyn TileOs) -> Wakeup {
        let drain = if os.inbox_depth() > 0 {
            Wakeup::AtOrMessage(now.saturating_add(1))
        } else {
            Wakeup::OnMessage
        };
        drain.earliest(self.service.wakeup(now))
    }
}

impl<S: Service + 'static> Accelerator for ServerAccel<S> {
    fn name(&self) -> &'static str {
        self.service.name()
    }

    fn as_any(&self) -> &dyn core::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn core::any::Any {
        self
    }

    fn wake(&mut self, now: Cycle, os: &mut dyn TileOs) -> Wakeup {
        // A faulted accelerator is wedged until the kernel swaps or resets
        // it; it makes no further progress on its own (§4.4).
        if self.halted {
            return Wakeup::Idle;
        }
        // Finish the in-flight job first.
        if let Some(p) = &self.pending {
            if now >= p.done_at {
                let p = self.pending.take().expect("checked above");
                match p.completion {
                    // Reply failures (revoked client, backpressure) are the
                    // client's problem; the service moves on.
                    Completion::Reply { reply, to } => {
                        let _ = os.reply(&to, reply.kind, reply.class, reply.payload);
                    }
                    Completion::Forward {
                        cap,
                        kind,
                        tag,
                        class,
                        payload,
                    } => {
                        let _ = os.send(cap, kind, tag, class, payload);
                    }
                }
                self.served += 1;
            } else {
                // Busy: requests wait in the monitor's inbox.
                return Wakeup::At(p.done_at);
            }
        }
        // Accept the next request (one per cycle, like the dense loop).
        if let Some(req) = os.recv() {
            // Responses, errors and completions are not requests: a
            // service must never "serve" them, or two mutually-connected
            // services would echo each other's replies forever.
            if matches!(
                req.msg.kind,
                wire::KIND_ERROR
                    | wire::KIND_RESPONSE
                    | wire::KIND_MEM_REPLY
                    | wire::KIND_LOOKUP_REPLY
            ) {
                return self.backlog_wakeup(now, os);
            }
            match self.service.serve(&req, os) {
                ServiceAction::Reply(reply) => {
                    let done_at = now + reply.cost_cycles;
                    self.pending = Some(Pending {
                        done_at,
                        completion: Completion::Reply { reply, to: req },
                    });
                    Wakeup::At(done_at)
                }
                ServiceAction::Forward {
                    cap,
                    kind,
                    class,
                    payload,
                    cost_cycles,
                } => {
                    let done_at = now + cost_cycles;
                    self.pending = Some(Pending {
                        done_at,
                        completion: Completion::Forward {
                            cap,
                            kind,
                            tag: req.msg.tag,
                            class,
                            payload,
                        },
                    });
                    Wakeup::At(done_at)
                }
                ServiceAction::Done => {
                    self.served += 1;
                    self.backlog_wakeup(now, os)
                }
                ServiceAction::Fault(code) => {
                    self.halted = true;
                    os.raise_fault(code);
                    Wakeup::Idle
                }
            }
        } else {
            self.service.idle(os);
            self.service.wakeup(now)
        }
    }

    fn is_preemptible(&self) -> bool {
        self.service.save().is_some()
    }

    fn save_state(&self) -> Option<Vec<u8>> {
        // The harness itself is stateless between requests apart from the
        // pending job, which is abandoned on preemption (the client will
        // retry or time out) — matching the paper's observation that
        // mid-invocation state is the hard part.
        self.service.save()
    }

    fn restore_state(&mut self, state: &[u8]) -> Result<(), StateError> {
        self.pending = None;
        self.service.restore(state)?;
        self.halted = false;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::os::test_os::MockOs;
    use apiary_noc::{Message, NodeId};
    use apiary_sim::Wakeup;

    struct Upper;

    impl Service for Upper {
        fn name(&self) -> &'static str {
            "upper"
        }

        fn serve(&mut self, req: &Delivered, _os: &mut dyn TileOs) -> ServiceAction {
            ServiceAction::Reply(ServiceReply::ok(req.msg.payload.to_ascii_uppercase(), 5))
        }
    }

    fn request(payload: &[u8]) -> Delivered {
        let mut msg = Message::new(
            NodeId(1),
            NodeId(0),
            TrafficClass::Request,
            payload.to_vec(),
        );
        msg.kind = wire::KIND_REQUEST;
        msg.tag = 33;
        Delivered {
            msg,
            injected_at: Cycle(0),
            delivered_at: Cycle(0),
        }
    }

    #[test]
    fn server_replies_after_cost_cycles() {
        let mut os = MockOs::new();
        os.deliver(request(b"abc"));
        let mut a = ServerAccel::new(Upper);
        // Cycle 0: accept, job takes 5 cycles; the wakeup names the
        // completion cycle so the driver can jump straight to it.
        assert_eq!(a.wake(os.now(), &mut os), Wakeup::At(Cycle(5)));
        assert!(os.sent.is_empty());
        for _ in 0..4 {
            os.advance(1);
            // Spurious wakes while busy are no-ops re-stating the deadline.
            assert_eq!(a.wake(os.now(), &mut os), Wakeup::At(Cycle(5)));
        }
        assert!(os.sent.is_empty(), "still computing");
        os.advance(1);
        assert_eq!(a.wake(os.now(), &mut os), Wakeup::OnMessage);
        assert_eq!(os.sent.len(), 1);
        let (to, kind, _, payload) = &os.sent[0];
        assert_eq!(*to, NodeId(1));
        assert_eq!(*kind, wire::KIND_RESPONSE);
        assert_eq!(payload, b"ABC");
        assert_eq!(a.served(), 1);
    }

    #[test]
    fn one_job_at_a_time() {
        let mut os = MockOs::new();
        os.deliver(request(b"a"));
        os.deliver(request(b"b"));
        let mut a = ServerAccel::new(Upper);
        a.wake(os.now(), &mut os); // Accepts "a".
        os.advance(1);
        a.wake(os.now(), &mut os); // Busy; "b" stays queued.
        assert_eq!(os.inbox_len(), 1);
        for _ in 0..10 {
            os.advance(1);
            a.wake(os.now(), &mut os);
        }
        assert_eq!(os.sent.len(), 2);
        assert_eq!(a.served(), 2);
    }

    #[test]
    fn error_messages_are_skipped() {
        let mut os = MockOs::new();
        let mut req = request(b"x");
        req.msg.kind = wire::KIND_ERROR;
        os.deliver(req);
        let mut a = ServerAccel::new(Upper);
        for _ in 0..3 {
            a.wake(os.now(), &mut os);
            os.advance(1);
        }
        assert!(os.sent.is_empty());
        assert_eq!(a.served(), 0);
    }

    struct Crasher;

    impl Service for Crasher {
        fn name(&self) -> &'static str {
            "crasher"
        }

        fn serve(&mut self, _req: &Delivered, _os: &mut dyn TileOs) -> ServiceAction {
            ServiceAction::Fault(0xdead)
        }
    }

    #[test]
    fn fault_action_raises() {
        let mut os = MockOs::new();
        os.deliver(request(b"boom"));
        let mut a = ServerAccel::new(Crasher);
        assert_eq!(a.wake(os.now(), &mut os), Wakeup::Idle);
        assert_eq!(os.faults, vec![0xdead]);
    }

    #[test]
    fn deprecated_tick_shim_drives_wake() {
        // One release of backwards compatibility: external code calling
        // the old per-cycle `tick` must see identical behaviour.
        let mut os = MockOs::new();
        os.deliver(request(b"abc"));
        let mut a = ServerAccel::new(Upper);
        for _ in 0..6 {
            #[allow(deprecated)]
            a.tick(&mut os);
            os.advance(1);
        }
        assert_eq!(os.sent.len(), 1);
        assert_eq!(os.sent[0].3, b"ABC");
    }

    #[test]
    fn legacy_tick_only_impls_still_wake() {
        // The other direction of the shim: an implementor that only
        // defines the deprecated `tick` gets a conservative every-cycle
        // wakeup from the default `wake`.
        struct Legacy(u32);
        impl Accelerator for Legacy {
            fn name(&self) -> &'static str {
                "legacy"
            }
            #[allow(deprecated)]
            fn tick(&mut self, _os: &mut dyn TileOs) {
                self.0 += 1;
            }
            fn as_any(&self) -> &dyn core::any::Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn core::any::Any {
                self
            }
        }
        let mut os = MockOs::new();
        let mut a = Legacy(0);
        assert_eq!(a.wake(os.now(), &mut os), Wakeup::AtOrMessage(Cycle(1)));
        assert_eq!(a.0, 1);
    }

    #[test]
    fn default_accelerator_is_not_preemptible() {
        let a = ServerAccel::new(Upper);
        assert!(!a.is_preemptible());
        assert!(a.save_state().is_none());
        let mut a = a;
        assert_eq!(a.restore_state(&[]), Err(StateError::NotPreemptible));
    }
}
