//! The Apiary accelerator framework and accelerator library.
//!
//! An accelerator is untrusted logic in a tile's dynamic region. It programs
//! against the portable [`TileOs`] interface — the stable, board-independent
//! API the paper's §4.3 calls for — and implements the [`Accelerator`]
//! trait, which the kernel drives one `tick` per cycle.
//!
//! Execution model (§4.4): every accelerator is at least *concurrent*
//! (cooperatively scheduled, fail-stop on faults). Accelerators that
//! implement [`Accelerator::save_state`]/[`Accelerator::restore_state`] are
//! *preemptible*: the kernel can swap a faulting context out and let the
//! tile's other processes continue.
//!
//! The library ships the accelerators the paper's motivation (§2) builds
//! its scenarios from:
//!
//! - [`apps::video::VideoEncoderAccel`] — video encoding service,
//! - [`apps::compress::CompressorAccel`] — a third-party compression stage,
//! - [`apps::kv::KvStoreAccel`] — an independent, multi-tenant KV store,
//! - [`apps::hash::HashAccel`], [`apps::echo::EchoAccel`] — utility engines,
//! - [`apps::flood::FlooderAccel`], [`apps::faulty::FaultyAccel`] —
//!   adversarial accelerators for the isolation and fault experiments.
//!
//! The codecs under [`codec`] are real (lossless round-trip) implementations
//! so pipeline experiments move real bytes.

pub mod accelerator;
pub mod apps;
pub mod codec;
pub mod os;

pub use accelerator::{Accelerator, ServerAccel, Service, ServiceAction, ServiceReply, StateError};
pub use os::{CapEnv, TileOs};
