//! FPGA resource modelling for Apiary.
//!
//! Apiary's feasibility hinges on a resource question the paper poses
//! explicitly (§6): *"What is the overhead of the per-tile monitor?"* — the
//! fraction of a device spent on Apiary's static framework grows with the
//! number of tiles. This crate provides the pieces needed to answer it:
//!
//! - [`catalog`]: a catalog of real Xilinx/AMD FPGA parts, including every
//!   part in the paper's Table 1, with logic-cell/LUT/FF/BRAM counts,
//! - [`area`]: the [`area::Area`] resource vector and utilisation math,
//! - [`floorplan`]: a tile floor-planner that divides a part into Apiary
//!   tiles and accounts for static (framework) versus dynamic (accelerator
//!   slot) logic.

pub mod area;
pub mod catalog;
pub mod floorplan;

pub use area::Area;
pub use catalog::{Family, Part, PARTS};
pub use floorplan::{FloorPlan, FloorPlanError, FloorPlanner};
