//! Resource vectors: LUTs, flip-flops, BRAM and DSP slices.

use core::fmt;
use core::ops::{Add, AddAssign, Mul};

/// A vector of FPGA logic resources.
///
/// Areas add component-wise and scale by integer factors, which is all the
/// floor-planner needs. BRAM is counted in 36 Kb blocks (the Xilinx RAMB36
/// unit) so that capability tables and message buffers can be sized in the
/// same unit the vendor tools report.
///
/// # Examples
///
/// ```
/// use apiary_resources::Area;
///
/// let monitor = Area { luts: 2_000, ffs: 3_000, bram36: 4, dsps: 0 };
/// let four_tiles = monitor * 4;
/// assert_eq!(four_tiles.luts, 8_000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Area {
    /// Look-up tables (6-input equivalents).
    pub luts: u64,
    /// Flip-flops / registers.
    pub ffs: u64,
    /// 36 Kb block RAMs.
    pub bram36: u64,
    /// DSP48-class multiply-accumulate slices.
    pub dsps: u64,
}

impl Area {
    /// The zero area.
    pub const ZERO: Area = Area {
        luts: 0,
        ffs: 0,
        bram36: 0,
        dsps: 0,
    };

    /// Creates an area from LUT and FF counts only.
    pub const fn logic(luts: u64, ffs: u64) -> Area {
        Area {
            luts,
            ffs,
            bram36: 0,
            dsps: 0,
        }
    }

    /// Returns `true` if every component of `self` fits within `budget`.
    pub fn fits_in(&self, budget: &Area) -> bool {
        self.luts <= budget.luts
            && self.ffs <= budget.ffs
            && self.bram36 <= budget.bram36
            && self.dsps <= budget.dsps
    }

    /// Component-wise saturating subtraction: the resources left in `self`
    /// after placing `other`.
    pub fn saturating_sub(&self, other: &Area) -> Area {
        Area {
            luts: self.luts.saturating_sub(other.luts),
            ffs: self.ffs.saturating_sub(other.ffs),
            bram36: self.bram36.saturating_sub(other.bram36),
            dsps: self.dsps.saturating_sub(other.dsps),
        }
    }

    /// The largest single-resource utilisation of `self` against `budget`,
    /// as a fraction in `[0, +inf)`. This is the binding constraint the
    /// vendor tools would report.
    pub fn utilisation_of(&self, budget: &Area) -> f64 {
        fn frac(used: u64, avail: u64) -> f64 {
            if avail == 0 {
                if used == 0 {
                    0.0
                } else {
                    f64::INFINITY
                }
            } else {
                used as f64 / avail as f64
            }
        }
        frac(self.luts, budget.luts)
            .max(frac(self.ffs, budget.ffs))
            .max(frac(self.bram36, budget.bram36))
            .max(frac(self.dsps, budget.dsps))
    }
}

impl Add for Area {
    type Output = Area;

    fn add(self, rhs: Area) -> Area {
        Area {
            luts: self.luts + rhs.luts,
            ffs: self.ffs + rhs.ffs,
            bram36: self.bram36 + rhs.bram36,
            dsps: self.dsps + rhs.dsps,
        }
    }
}

impl AddAssign for Area {
    fn add_assign(&mut self, rhs: Area) {
        *self = *self + rhs;
    }
}

impl Mul<u64> for Area {
    type Output = Area;

    fn mul(self, rhs: u64) -> Area {
        Area {
            luts: self.luts * rhs,
            ffs: self.ffs * rhs,
            bram36: self.bram36 * rhs,
            dsps: self.dsps * rhs,
        }
    }
}

impl fmt::Display for Area {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} LUT / {} FF / {} BRAM36 / {} DSP",
            self.luts, self.ffs, self.bram36, self.dsps
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_scale() {
        let a = Area::logic(100, 200);
        let b = Area {
            luts: 1,
            ffs: 2,
            bram36: 3,
            dsps: 4,
        };
        let sum = a + b * 2;
        assert_eq!(sum.luts, 102);
        assert_eq!(sum.ffs, 204);
        assert_eq!(sum.bram36, 6);
        assert_eq!(sum.dsps, 8);
    }

    #[test]
    fn fits_in_is_componentwise() {
        let small = Area::logic(10, 10);
        let big = Area::logic(100, 100);
        assert!(small.fits_in(&big));
        assert!(!big.fits_in(&small));
        // A single overflowing component fails the whole check.
        let tall = Area {
            luts: 1,
            ffs: 1,
            bram36: 999,
            dsps: 0,
        };
        assert!(!tall.fits_in(&big));
    }

    #[test]
    fn utilisation_picks_binding_constraint() {
        let budget = Area {
            luts: 1000,
            ffs: 2000,
            bram36: 10,
            dsps: 10,
        };
        let used = Area {
            luts: 100,
            ffs: 100,
            bram36: 9,
            dsps: 0,
        };
        assert!((used.utilisation_of(&budget) - 0.9).abs() < 1e-12);
    }

    #[test]
    fn utilisation_of_zero_budget() {
        let none = Area::ZERO;
        assert_eq!(Area::ZERO.utilisation_of(&none), 0.0);
        assert_eq!(Area::logic(1, 0).utilisation_of(&none), f64::INFINITY);
    }

    #[test]
    fn saturating_sub_floors_at_zero() {
        let a = Area::logic(5, 5);
        let b = Area::logic(10, 2);
        let r = a.saturating_sub(&b);
        assert_eq!(r.luts, 0);
        assert_eq!(r.ffs, 3);
    }
}
