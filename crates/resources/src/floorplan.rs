//! Tile floor-planning: dividing a part into Apiary tiles.
//!
//! Apiary (§4.1) divides the FPGA into a *static region* — NoC routers,
//! per-tile monitors, I/O shells — and per-tile *dynamic regions* that hold
//! untrusted accelerators and are partially reconfigurable. The floor-planner
//! answers: given a part, a mesh geometry and a monitor implementation, how
//! much logic does the framework consume and how much is left per tile?
//!
//! This directly serves the paper's first open question (§6): more tiles
//! means finer-grained composition but a larger fraction of the device spent
//! on Apiary itself.

use crate::area::Area;
use crate::catalog::Part;
use core::fmt;

/// Why a floor plan could not be produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FloorPlanError {
    /// The static framework alone exceeds the device.
    FrameworkDoesNotFit {
        /// Resources required by the framework.
        required: Area,
        /// Resources offered by the part.
        available: Area,
    },
    /// A zero-tile plan was requested.
    NoTiles,
}

impl fmt::Display for FloorPlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FloorPlanError::FrameworkDoesNotFit {
                required,
                available,
            } => write!(
                f,
                "Apiary framework ({required}) exceeds device ({available})"
            ),
            FloorPlanError::NoTiles => write!(f, "a floor plan needs at least one tile"),
        }
    }
}

impl std::error::Error for FloorPlanError {}

/// Inputs to the floor-planner.
#[derive(Debug, Clone, Copy)]
pub struct FloorPlanner {
    /// Number of tiles (mesh nodes with an accelerator slot).
    pub tiles: u64,
    /// Area of one per-tile monitor.
    pub monitor: Area,
    /// Area of one NoC router (zero on parts with a hardened NoC).
    pub router: Area,
    /// One-off area for board I/O shells: Ethernet MAC, memory controllers,
    /// reconfiguration controller.
    pub io_shell: Area,
}

impl FloorPlanner {
    /// A representative soft NoC router: 5 ports x 2 VCs x 4-flit buffers
    /// plus a 5x5 crossbar and allocators — on the order of published
    /// open-source router implementations (CONNECT, OpenSMART).
    pub const SOFT_ROUTER: Area = Area {
        luts: 1_500,
        ffs: 1_200,
        bram36: 0,
        dsps: 0,
    };

    /// A hardened router consumes no programmable logic.
    pub const HARD_ROUTER: Area = Area::ZERO;

    /// A representative I/O shell: 100G MAC + DDR4 controller + ICAP glue,
    /// in line with published shell sizes (Coyote reports its full static
    /// shell below ~15% of a VU9P; ours is the subset Apiary needs).
    pub const IO_SHELL: Area = Area {
        luts: 60_000,
        ffs: 90_000,
        bram36: 150,
        dsps: 0,
    };

    /// Produces the floor plan for the given part.
    ///
    /// # Errors
    ///
    /// Returns [`FloorPlanError::NoTiles`] for a zero-tile request and
    /// [`FloorPlanError::FrameworkDoesNotFit`] when the static framework
    /// exceeds the device.
    pub fn plan(&self, part: &Part) -> Result<FloorPlan, FloorPlanError> {
        if self.tiles == 0 {
            return Err(FloorPlanError::NoTiles);
        }
        let framework = (self.monitor + self.router) * self.tiles + self.io_shell;
        if !framework.fits_in(&part.resources) {
            return Err(FloorPlanError::FrameworkDoesNotFit {
                required: framework,
                available: part.resources,
            });
        }
        let remaining = part.resources.saturating_sub(&framework);
        let per_tile = Area {
            luts: remaining.luts / self.tiles,
            ffs: remaining.ffs / self.tiles,
            bram36: remaining.bram36 / self.tiles,
            dsps: remaining.dsps / self.tiles,
        };
        Ok(FloorPlan {
            part: *part,
            tiles: self.tiles,
            framework,
            tile_slot: per_tile,
        })
    }
}

/// The result of floor-planning: how the device is divided.
#[derive(Debug, Clone)]
pub struct FloorPlan {
    /// The part the plan targets.
    pub part: Part,
    /// Number of tiles.
    pub tiles: u64,
    /// Total static-framework area (monitors + routers + I/O shell).
    pub framework: Area,
    /// Dynamic-region budget available to each tile's accelerator.
    pub tile_slot: Area,
}

impl FloorPlan {
    /// Fraction of the device consumed by the Apiary framework (binding
    /// resource), in `[0, 1]`.
    pub fn framework_fraction(&self) -> f64 {
        self.framework.utilisation_of(&self.part.resources)
    }

    /// Fraction of the device's LUTs left for user accelerators.
    pub fn user_lut_fraction(&self) -> f64 {
        (self.tile_slot.luts * self.tiles) as f64 / self.part.resources.luts as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::Part;

    fn monitor() -> Area {
        Area {
            luts: 2_000,
            ffs: 2_500,
            bram36: 4,
            dsps: 0,
        }
    }

    #[test]
    fn plan_on_vu9p_leaves_most_of_device() {
        let part = Part::by_number("VU9P").expect("catalogued");
        let planner = FloorPlanner {
            tiles: 16,
            monitor: monitor(),
            router: FloorPlanner::SOFT_ROUTER,
            io_shell: FloorPlanner::IO_SHELL,
        };
        let plan = planner.plan(part).expect("fits");
        assert!(
            plan.framework_fraction() < 0.20,
            "{}",
            plan.framework_fraction()
        );
        assert!(plan.user_lut_fraction() > 0.75);
    }

    #[test]
    fn more_tiles_means_more_framework() {
        let part = Part::by_number("VU9P").expect("catalogued");
        let mk = |tiles| FloorPlanner {
            tiles,
            monitor: monitor(),
            router: FloorPlanner::SOFT_ROUTER,
            io_shell: FloorPlanner::IO_SHELL,
        };
        let f4 = mk(4).plan(part).expect("fits").framework_fraction();
        let f64t = mk(64).plan(part).expect("fits").framework_fraction();
        assert!(f64t > f4);
    }

    #[test]
    fn hardened_noc_cuts_framework_area() {
        let part = Part::by_number("VP1802").expect("catalogued");
        let soft = FloorPlanner {
            tiles: 32,
            monitor: monitor(),
            router: FloorPlanner::SOFT_ROUTER,
            io_shell: FloorPlanner::IO_SHELL,
        };
        let hard = FloorPlanner {
            router: FloorPlanner::HARD_ROUTER,
            ..soft
        };
        let fs = soft.plan(part).expect("fits");
        let fh = hard.plan(part).expect("fits");
        // Routers vanish into hard logic: LUT cost drops, and the overall
        // framework fraction can only improve.
        assert!(fh.framework.luts < fs.framework.luts);
        assert!(fh.framework_fraction() <= fs.framework_fraction());
    }

    #[test]
    fn zero_tiles_is_an_error() {
        let part = Part::by_number("VU3P").expect("catalogued");
        let planner = FloorPlanner {
            tiles: 0,
            monitor: monitor(),
            router: FloorPlanner::SOFT_ROUTER,
            io_shell: FloorPlanner::IO_SHELL,
        };
        assert!(matches!(planner.plan(part), Err(FloorPlanError::NoTiles)));
    }

    #[test]
    fn oversized_framework_is_rejected() {
        let part = Part::by_number("XC7V585T").expect("catalogued");
        let planner = FloorPlanner {
            tiles: 1_000,
            monitor: monitor(),
            router: FloorPlanner::SOFT_ROUTER,
            io_shell: FloorPlanner::IO_SHELL,
        };
        match planner.plan(part) {
            Err(FloorPlanError::FrameworkDoesNotFit {
                required,
                available,
            }) => {
                assert!(required.luts > available.luts);
            }
            other => panic!("expected FrameworkDoesNotFit, got {other:?}"),
        }
    }

    #[test]
    fn tile_slots_partition_the_remainder() {
        let part = Part::by_number("VU29P").expect("catalogued");
        let planner = FloorPlanner {
            tiles: 9,
            monitor: monitor(),
            router: FloorPlanner::SOFT_ROUTER,
            io_shell: FloorPlanner::IO_SHELL,
        };
        let plan = planner.plan(part).expect("fits");
        let used = plan.framework + plan.tile_slot * plan.tiles;
        assert!(used.fits_in(&part.resources));
    }
}
