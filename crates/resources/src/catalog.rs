//! A catalog of real FPGA parts.
//!
//! The four parts from the paper's Table 1 are present with the paper's
//! exact logic-cell counts; additional parts (VU9P as used by AWS F1 and
//! Coyote, and a Versal part with a hardened NoC) are included because the
//! floor-planning experiments place Apiary configurations on them.
//!
//! LUT/FF/BRAM/DSP figures are derived from vendor data sheets; logic-cell
//! counts relate to LUTs by the vendor's marketing ratio (1.6 for 7-series,
//! 2.1875 for UltraScale+). Logic-cell values for Table 1 rows are the
//! paper's values verbatim.

use crate::area::Area;

/// An FPGA product family.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Family {
    /// Xilinx Virtex-7 (28 nm, 2010).
    Virtex7,
    /// Xilinx/AMD Virtex UltraScale+ (16 nm, 2016–2018).
    VirtexUltraScalePlus,
    /// AMD Versal ACAP (7 nm) — ships a *hardened* NoC, the substrate §4.3
    /// of the paper points at for Apiary's interconnect.
    Versal,
}

impl Family {
    /// Human-readable family name as used in the paper's Table 1.
    pub fn name(&self) -> &'static str {
        match self {
            Family::Virtex7 => "Virtex 7",
            Family::VirtexUltraScalePlus => "Virtex Ultrascale+",
            Family::Versal => "Versal",
        }
    }
}

/// A single FPGA part.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Part {
    /// Vendor part number, e.g. `"VU29P"`.
    pub number: &'static str,
    /// Product family.
    pub family: Family,
    /// Year the family was released (as reported in Table 1).
    pub year: u16,
    /// Marketing "logic cells" figure; Table 1's unit of comparison.
    pub logic_cells: u64,
    /// Programmable-logic resources available to designs.
    pub resources: Area,
    /// Whether the part ships a hardened (ASIC) NoC.
    pub hardened_noc: bool,
    /// Whether the part appears in the paper's Table 1.
    pub in_table1: bool,
}

impl Part {
    /// Looks a part up by its part number.
    pub fn by_number(number: &str) -> Option<&'static Part> {
        PARTS.iter().find(|p| p.number == number)
    }
}

/// All catalogued parts, ordered by family then size.
pub static PARTS: &[Part] = &[
    Part {
        number: "XC7V585T",
        family: Family::Virtex7,
        year: 2010,
        logic_cells: 582_720,
        resources: Area {
            luts: 364_200,
            ffs: 728_400,
            bram36: 795,
            dsps: 1_260,
        },
        hardened_noc: false,
        in_table1: true,
    },
    Part {
        number: "XC7VH870T",
        family: Family::Virtex7,
        year: 2010,
        logic_cells: 876_160,
        resources: Area {
            luts: 547_600,
            ffs: 1_095_200,
            bram36: 1_880,
            dsps: 2_520,
        },
        hardened_noc: false,
        in_table1: true,
    },
    Part {
        number: "VU3P",
        family: Family::VirtexUltraScalePlus,
        year: 2016,
        logic_cells: 862_000,
        resources: Area {
            luts: 394_080,
            ffs: 788_160,
            bram36: 720,
            dsps: 2_280,
        },
        hardened_noc: false,
        in_table1: true,
    },
    Part {
        number: "VU9P",
        family: Family::VirtexUltraScalePlus,
        year: 2016,
        logic_cells: 2_586_000,
        resources: Area {
            luts: 1_182_240,
            ffs: 2_364_480,
            bram36: 2_160,
            dsps: 6_840,
        },
        hardened_noc: false,
        in_table1: false,
    },
    Part {
        number: "VU29P",
        family: Family::VirtexUltraScalePlus,
        year: 2018,
        logic_cells: 3_780_000,
        resources: Area {
            luts: 1_728_000,
            ffs: 3_456_000,
            bram36: 2_688,
            dsps: 5_952,
        },
        hardened_noc: false,
        in_table1: true,
    },
    Part {
        number: "VP1802",
        family: Family::Versal,
        year: 2021,
        logic_cells: 3_692_000,
        resources: Area {
            luts: 1_688_000,
            ffs: 3_376_000,
            bram36: 2_541,
            dsps: 6_864,
        },
        hardened_noc: true,
        in_table1: false,
    },
];

/// Returns the Table 1 rows in paper order (smallest and largest part of
/// each of the two families compared).
pub fn table1_rows() -> Vec<&'static Part> {
    PARTS.iter().filter(|p| p.in_table1).collect()
}

/// Growth factors derived from Table 1: `(smallest-part growth, largest-part
/// growth)` between the Virtex-7 and Virtex UltraScale+ generations.
///
/// The paper summarises these as "about 50%" and "3x"; the exact quotients
/// are ~1.48 and ~4.31.
pub fn table1_growth_factors() -> (f64, f64) {
    let small_old = Part::by_number("XC7V585T").expect("catalogued").logic_cells as f64;
    let small_new = Part::by_number("VU3P").expect("catalogued").logic_cells as f64;
    let large_old = Part::by_number("XC7VH870T")
        .expect("catalogued")
        .logic_cells as f64;
    let large_new = Part::by_number("VU29P").expect("catalogued").logic_cells as f64;
    (small_new / small_old, large_new / large_old)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_has_the_papers_four_parts() {
        let rows = table1_rows();
        assert_eq!(rows.len(), 4);
        let numbers: Vec<_> = rows.iter().map(|p| p.number).collect();
        assert_eq!(numbers, vec!["XC7V585T", "XC7VH870T", "VU3P", "VU29P"]);
    }

    #[test]
    fn table1_logic_cells_match_paper_exactly() {
        let expect = [
            ("XC7V585T", 582_720),
            ("XC7VH870T", 876_160),
            ("VU3P", 862_000),
            ("VU29P", 3_780_000),
        ];
        for (number, cells) in expect {
            assert_eq!(
                Part::by_number(number).expect("present").logic_cells,
                cells,
                "{number}"
            );
        }
    }

    #[test]
    fn growth_factors_match_papers_narrative() {
        let (small, large) = table1_growth_factors();
        // "the number of logic cells has increased by about 50%".
        assert!((1.4..1.6).contains(&small), "small growth {small}");
        // "the largest parts have scaled up by 3x" (the exact quotient is 4.3;
        // the paper rounds aggressively downward).
        assert!(large >= 3.0, "large growth {large}");
    }

    #[test]
    fn table1_years_match_paper() {
        assert_eq!(Part::by_number("XC7V585T").expect("present").year, 2010);
        assert_eq!(Part::by_number("VU3P").expect("present").year, 2016);
        assert_eq!(Part::by_number("VU29P").expect("present").year, 2018);
    }

    #[test]
    fn logic_cell_ratio_is_consistent_with_luts() {
        // 7-series: cells = LUTs * 1.6; UltraScale+: cells = LUTs * 2.1875.
        for p in PARTS {
            let ratio = p.logic_cells as f64 / p.resources.luts as f64;
            match p.family {
                Family::Virtex7 => assert!((ratio - 1.6).abs() < 0.01, "{}", p.number),
                Family::VirtexUltraScalePlus => {
                    assert!((ratio - 2.1875).abs() < 0.01, "{}", p.number)
                }
                Family::Versal => assert!((1.9..2.4).contains(&ratio), "{}", p.number),
            }
        }
    }

    #[test]
    fn only_versal_has_hardened_noc() {
        for p in PARTS {
            assert_eq!(p.hardened_noc, p.family == Family::Versal, "{}", p.number);
        }
    }

    #[test]
    fn lookup_by_number() {
        assert!(Part::by_number("VU9P").is_some());
        assert!(Part::by_number("NOPE").is_none());
    }
}
