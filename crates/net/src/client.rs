//! External clients: load generation and client-observed latency.

use apiary_sim::{Cycle, Histogram, SimRng};

/// How a client issues requests.
#[derive(Debug, Clone, Copy)]
pub enum Workload {
    /// Open loop: Poisson arrivals with the given mean inter-arrival time
    /// (cycles). Arrival times do not react to response latency — the
    /// honest way to measure latency under load.
    Open {
        /// Mean cycles between arrivals.
        mean_interarrival: f64,
    },
    /// Closed loop: keep `outstanding` requests in flight; a response
    /// triggers the next request after `think_cycles`.
    Closed {
        /// In-flight window.
        outstanding: u32,
        /// Think time between response and next request.
        think_cycles: u64,
    },
}

/// Client-observed statistics.
#[derive(Debug, Clone, Default)]
pub struct ClientStats {
    /// Requests issued.
    pub issued: u64,
    /// Responses received.
    pub completed: u64,
    /// Error responses received.
    pub errors: u64,
    /// Request-to-response round-trip latency (cycles).
    pub rtt: Histogram,
}

/// A request generator on the far side of the wire.
#[derive(Debug, Clone)]
pub struct RequestGen {
    /// Client identity (rides in frames).
    pub client_id: u32,
    /// Destination service port.
    pub port: u16,
    /// Request payload size in bytes.
    pub payload_bytes: usize,
    /// Issue policy.
    pub workload: Workload,
    /// Stop issuing after this many requests (`u64::MAX` = unbounded).
    pub max_requests: u64,
    rng: SimRng,
    next_fire: Cycle,
    in_flight: u32,
    next_tag: u64,
    /// Statistics.
    pub stats: ClientStats,
    /// Request send times by tag.
    sent_at: std::collections::HashMap<u64, Cycle>,
}

impl RequestGen {
    /// Creates a generator.
    pub fn new(
        client_id: u32,
        port: u16,
        payload_bytes: usize,
        workload: Workload,
        seed: u64,
    ) -> RequestGen {
        RequestGen {
            client_id,
            port,
            payload_bytes,
            workload,
            max_requests: u64::MAX,
            rng: SimRng::new(seed),
            next_fire: Cycle::ZERO,
            in_flight: 0,
            next_tag: 0,
            stats: ClientStats::default(),
            sent_at: std::collections::HashMap::new(),
        }
    }

    /// Limits total requests.
    pub fn with_max_requests(mut self, n: u64) -> RequestGen {
        self.max_requests = n;
        self
    }

    /// Returns the tags of requests to issue at `now`.
    pub fn poll(&mut self, now: Cycle) -> Vec<u64> {
        let mut out = Vec::new();
        match self.workload {
            Workload::Open { mean_interarrival } => {
                while self.next_fire <= now && self.stats.issued < self.max_requests {
                    out.push(self.issue(now));
                    let gap = self.rng.gen_exp(mean_interarrival).max(1.0) as u64;
                    self.next_fire += gap;
                }
            }
            Workload::Closed { outstanding, .. } => {
                while self.in_flight < outstanding
                    && self.next_fire <= now
                    && self.stats.issued < self.max_requests
                {
                    out.push(self.issue(now));
                }
            }
        }
        out
    }

    fn issue(&mut self, now: Cycle) -> u64 {
        let tag = (self.client_id as u64) << 32 | self.next_tag;
        self.next_tag += 1;
        self.in_flight += 1;
        self.stats.issued += 1;
        self.sent_at.insert(tag, now);
        tag
    }

    /// Records a response arriving at the client at `now`.
    pub fn complete(&mut self, tag: u64, now: Cycle, is_error: bool) {
        if let Some(sent) = self.sent_at.remove(&tag) {
            self.in_flight = self.in_flight.saturating_sub(1);
            self.stats.completed += 1;
            if is_error {
                self.stats.errors += 1;
            }
            self.stats.rtt.record(now - sent);
            if let Workload::Closed { think_cycles, .. } = self.workload {
                self.next_fire = now + think_cycles;
            }
        }
    }

    /// Requests awaiting responses.
    pub fn in_flight(&self) -> u32 {
        self.in_flight
    }

    /// Returns `true` when the generator is done: its request budget is
    /// exhausted and everything came back.
    pub fn done(&self) -> bool {
        self.stats.issued >= self.max_requests && self.in_flight == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closed_loop_respects_window() {
        let mut g = RequestGen::new(
            1,
            80,
            64,
            Workload::Closed {
                outstanding: 2,
                think_cycles: 0,
            },
            7,
        );
        let tags = g.poll(Cycle(0));
        assert_eq!(tags.len(), 2);
        assert!(g.poll(Cycle(1)).is_empty(), "window full");
        g.complete(tags[0], Cycle(10), false);
        assert_eq!(g.poll(Cycle(10)).len(), 1);
        assert_eq!(g.stats.completed, 1);
        assert_eq!(g.stats.rtt.max(), 10);
    }

    #[test]
    fn closed_loop_think_time_delays_next() {
        let mut g = RequestGen::new(
            1,
            80,
            64,
            Workload::Closed {
                outstanding: 1,
                think_cycles: 50,
            },
            7,
        );
        let t = g.poll(Cycle(0));
        g.complete(t[0], Cycle(5), false);
        assert!(g.poll(Cycle(30)).is_empty());
        assert_eq!(g.poll(Cycle(55)).len(), 1);
    }

    #[test]
    fn open_loop_rate_is_roughly_right() {
        let mut g = RequestGen::new(
            1,
            80,
            64,
            Workload::Open {
                mean_interarrival: 100.0,
            },
            42,
        );
        let mut issued = 0;
        for t in 0..100_000u64 {
            issued += g.poll(Cycle(t)).len();
        }
        // ~1000 expected; accept a wide band.
        assert!((800..1200).contains(&issued), "issued {issued}");
    }

    #[test]
    fn open_loop_does_not_wait_for_responses() {
        let mut g = RequestGen::new(
            1,
            80,
            64,
            Workload::Open {
                mean_interarrival: 10.0,
            },
            3,
        );
        let mut total = 0;
        for t in 0..1000u64 {
            total += g.poll(Cycle(t)).len();
        }
        assert!(total > 50, "issued {total} without any completions");
    }

    #[test]
    fn max_requests_bounds_and_done() {
        let mut g = RequestGen::new(
            1,
            80,
            64,
            Workload::Closed {
                outstanding: 4,
                think_cycles: 0,
            },
            9,
        )
        .with_max_requests(3);
        let tags = g.poll(Cycle(0));
        assert_eq!(tags.len(), 3);
        assert!(!g.done());
        for t in tags {
            g.complete(t, Cycle(9), false);
        }
        assert!(g.done());
        assert!(g.poll(Cycle(20)).is_empty());
    }

    #[test]
    fn unknown_tag_ignored() {
        let mut g = RequestGen::new(
            1,
            80,
            64,
            Workload::Closed {
                outstanding: 1,
                think_cycles: 0,
            },
            1,
        );
        g.complete(999, Cycle(5), false);
        assert_eq!(g.stats.completed, 0);
    }

    #[test]
    fn error_responses_counted() {
        let mut g = RequestGen::new(
            1,
            80,
            64,
            Workload::Closed {
                outstanding: 1,
                think_cycles: 0,
            },
            1,
        );
        let t = g.poll(Cycle(0));
        g.complete(t[0], Cycle(3), true);
        assert_eq!(g.stats.errors, 1);
        assert_eq!(g.stats.completed, 1);
    }
}
