//! External clients: load generation and client-observed latency.

use apiary_sim::{Cycle, Histogram, SimRng};

/// How a client issues requests.
#[derive(Debug, Clone, Copy)]
pub enum Workload {
    /// Open loop: Poisson arrivals with the given mean inter-arrival time
    /// (cycles). Arrival times do not react to response latency — the
    /// honest way to measure latency under load.
    Open {
        /// Mean cycles between arrivals.
        mean_interarrival: f64,
    },
    /// Closed loop: keep `outstanding` requests in flight; a response
    /// triggers the next request after `think_cycles`.
    Closed {
        /// In-flight window.
        outstanding: u32,
        /// Think time between response and next request.
        think_cycles: u64,
    },
}

/// Client-observed statistics.
#[derive(Debug, Clone, Default)]
pub struct ClientStats {
    /// Requests issued.
    pub issued: u64,
    /// Responses received.
    pub completed: u64,
    /// Error responses received.
    pub errors: u64,
    /// Retransmissions scheduled by the retry policy.
    pub retries: u64,
    /// Requests that exhausted their retries.
    pub gave_up: u64,
    /// Open-loop arrivals shed by an open circuit breaker.
    pub shed: u64,
    /// Request-to-response round-trip latency (cycles).
    pub rtt: Histogram,
}

/// Client-side retry policy: failed requests are reissued with
/// exponentially growing, jittered backoff. Off by default — a plain
/// [`RequestGen`] observes failures without reacting to them.
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Retries per request beyond the first attempt.
    pub max_retries: u32,
    /// Backoff before the first retry (cycles); doubles per attempt.
    pub base_backoff: u64,
    /// Backoff ceiling (cycles).
    pub max_backoff: u64,
    /// Uniform random extra delay in `[0, jitter]` cycles, decorrelating
    /// retry storms across clients.
    pub jitter: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 3,
            base_backoff: 2_000,
            max_backoff: 64_000,
            jitter: 1_000,
        }
    }
}

/// Circuit-breaker configuration: after `failure_threshold` consecutive
/// errors the client stops sending for `cooldown` cycles, then probes with
/// a single request (half-open) before resuming.
#[derive(Debug, Clone, Copy)]
pub struct BreakerConfig {
    /// Consecutive failures that trip the breaker.
    pub failure_threshold: u32,
    /// Cycles to back off while open.
    pub cooldown: u64,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            failure_threshold: 5,
            cooldown: 20_000,
        }
    }
}

/// Circuit-breaker state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Traffic flows normally.
    Closed,
    /// Tripped: no traffic until the cooldown elapses.
    Open,
    /// Cooldown over: one probe request is allowed through.
    HalfOpen,
}

#[derive(Debug, Clone)]
struct Breaker {
    cfg: BreakerConfig,
    state: BreakerState,
    consecutive_failures: u32,
    open_until: Cycle,
    probe_in_flight: bool,
}

impl Breaker {
    fn new(cfg: BreakerConfig) -> Breaker {
        Breaker {
            cfg,
            state: BreakerState::Closed,
            consecutive_failures: 0,
            open_until: Cycle::ZERO,
            probe_in_flight: false,
        }
    }

    /// Moves Open -> HalfOpen once the cooldown has elapsed.
    fn refresh(&mut self, now: Cycle) {
        if self.state == BreakerState::Open && now >= self.open_until {
            self.state = BreakerState::HalfOpen;
            self.probe_in_flight = false;
        }
    }

    /// May a request be issued at `now`?
    fn admits(&self, _now: Cycle) -> bool {
        match self.state {
            BreakerState::Closed => true,
            BreakerState::Open => false,
            BreakerState::HalfOpen => !self.probe_in_flight,
        }
    }

    fn on_issue(&mut self) {
        if self.state == BreakerState::HalfOpen {
            self.probe_in_flight = true;
        }
    }

    fn on_outcome(&mut self, is_error: bool, now: Cycle) {
        if is_error {
            self.consecutive_failures += 1;
            let trip = self.state == BreakerState::HalfOpen
                || self.consecutive_failures >= self.cfg.failure_threshold;
            if trip {
                self.state = BreakerState::Open;
                self.open_until = now + self.cfg.cooldown;
                self.probe_in_flight = false;
            }
        } else {
            self.consecutive_failures = 0;
            self.state = BreakerState::Closed;
            self.probe_in_flight = false;
        }
    }
}

/// A request generator on the far side of the wire.
#[derive(Debug, Clone)]
pub struct RequestGen {
    /// Client identity (rides in frames).
    pub client_id: u32,
    /// Destination service port.
    pub port: u16,
    /// Request payload size in bytes.
    pub payload_bytes: usize,
    /// Issue policy.
    pub workload: Workload,
    /// Stop issuing after this many requests (`u64::MAX` = unbounded).
    pub max_requests: u64,
    rng: SimRng,
    next_fire: Cycle,
    in_flight: u32,
    next_tag: u64,
    /// Statistics.
    pub stats: ClientStats,
    /// Request send times by tag.
    sent_at: std::collections::HashMap<u64, Cycle>,
    retry: Option<RetryPolicy>,
    /// Retry attempts consumed, by tag.
    attempts: std::collections::HashMap<u64, u32>,
    /// Scheduled retries `(due, tag)`, kept sorted by insertion (backoffs
    /// are monotonic per tag, and poll scans the whole queue).
    pending_retries: Vec<(Cycle, u64)>,
    breaker: Option<Breaker>,
}

impl RequestGen {
    /// Creates a generator.
    pub fn new(
        client_id: u32,
        port: u16,
        payload_bytes: usize,
        workload: Workload,
        seed: u64,
    ) -> RequestGen {
        RequestGen {
            client_id,
            port,
            payload_bytes,
            workload,
            max_requests: u64::MAX,
            rng: SimRng::new(seed),
            next_fire: Cycle::ZERO,
            in_flight: 0,
            next_tag: 0,
            stats: ClientStats::default(),
            sent_at: std::collections::HashMap::new(),
            retry: None,
            attempts: std::collections::HashMap::new(),
            pending_retries: Vec::new(),
            breaker: None,
        }
    }

    /// Limits total requests.
    pub fn with_max_requests(mut self, n: u64) -> RequestGen {
        self.max_requests = n;
        self
    }

    /// Enables client-side retries with exponential backoff and jitter.
    pub fn with_retry(mut self, policy: RetryPolicy) -> RequestGen {
        self.retry = Some(policy);
        self
    }

    /// Arms a circuit breaker in front of the generator.
    pub fn with_breaker(mut self, cfg: BreakerConfig) -> RequestGen {
        self.breaker = Some(Breaker::new(cfg));
        self
    }

    /// Current breaker state (`None` if no breaker is armed).
    pub fn breaker_state(&self) -> Option<BreakerState> {
        self.breaker.as_ref().map(|b| b.state)
    }

    /// Returns the tags of requests to issue at `now` (new arrivals plus
    /// any due retries), filtered through the circuit breaker if armed.
    pub fn poll(&mut self, now: Cycle) -> Vec<u64> {
        if let Some(b) = &mut self.breaker {
            b.refresh(now);
        }
        let mut out = Vec::new();
        // Due retries go first: they are older traffic.
        let mut i = 0;
        while i < self.pending_retries.len() {
            let (due, tag) = self.pending_retries[i];
            if due <= now && self.admits(now) {
                self.pending_retries.remove(i);
                if let Some(b) = &mut self.breaker {
                    b.on_issue();
                }
                out.push(tag);
            } else {
                i += 1;
            }
        }
        match self.workload {
            Workload::Open { mean_interarrival } => {
                while self.next_fire <= now && self.stats.issued < self.max_requests {
                    let gap = self.rng.gen_exp(mean_interarrival).max(1.0) as u64;
                    if self.admits(now) {
                        out.push(self.issue(now));
                    } else {
                        // Open loop: the arrival happened regardless; an
                        // open breaker sheds it.
                        self.stats.shed += 1;
                    }
                    self.next_fire += gap;
                }
            }
            Workload::Closed { outstanding, .. } => {
                while self.in_flight < outstanding
                    && self.next_fire <= now
                    && self.stats.issued < self.max_requests
                    && self.admits(now)
                {
                    out.push(self.issue(now));
                }
            }
        }
        out
    }

    fn admits(&self, now: Cycle) -> bool {
        self.breaker.as_ref().is_none_or(|b| b.admits(now))
    }

    fn issue(&mut self, now: Cycle) -> u64 {
        let tag = (self.client_id as u64) << 32 | self.next_tag;
        self.next_tag += 1;
        self.in_flight += 1;
        self.stats.issued += 1;
        self.sent_at.insert(tag, now);
        if let Some(b) = &mut self.breaker {
            b.on_issue();
        }
        tag
    }

    /// Records a response arriving at the client at `now`. With a retry
    /// policy armed, an error response schedules a reissue of the same tag
    /// (after jittered exponential backoff) instead of completing it, until
    /// the retries run out.
    pub fn complete(&mut self, tag: u64, now: Cycle, is_error: bool) {
        if !self.sent_at.contains_key(&tag) {
            return;
        }
        if let Some(b) = &mut self.breaker {
            b.on_outcome(is_error, now);
        }
        if is_error {
            if let Some(policy) = self.retry {
                let used = *self.attempts.get(&tag).unwrap_or(&0);
                if used < policy.max_retries {
                    self.attempts.insert(tag, used + 1);
                    let backoff = policy
                        .base_backoff
                        .saturating_mul(1u64 << used.min(16))
                        .min(policy.max_backoff);
                    let jitter = if policy.jitter > 0 {
                        self.rng.gen_range(policy.jitter + 1)
                    } else {
                        0
                    };
                    self.pending_retries.push((now + backoff + jitter, tag));
                    self.stats.retries += 1;
                    return; // still in flight; sent_at keeps the first send.
                }
                self.stats.gave_up += 1;
            }
        }
        let sent = self.sent_at.remove(&tag).expect("checked above");
        self.attempts.remove(&tag);
        self.in_flight = self.in_flight.saturating_sub(1);
        self.stats.completed += 1;
        if is_error {
            self.stats.errors += 1;
        }
        self.stats.rtt.record(now - sent);
        if let Workload::Closed { think_cycles, .. } = self.workload {
            self.next_fire = now + think_cycles;
        }
    }

    /// When this generator next needs a [`RequestGen::poll`] to make timed
    /// progress: the next open-loop arrival, the next closed-loop refill,
    /// a due retry, or the end of a breaker cooldown. `None` means only a
    /// response can unblock it (the wire and the NoC carry those, and they
    /// are timed separately). Spurious earlier polls are harmless no-ops,
    /// so event-driven drivers may poll more often — never less.
    ///
    /// Arrivals and retries blocked by an *open* breaker are clamped to
    /// the cooldown expiry: polling in between cannot issue anything, and
    /// open-loop shed accounting still happens arrival-by-arrival because
    /// open-loop arrivals are never clamped.
    pub fn next_timed_event(&self) -> Option<Cycle> {
        let mut due: Option<Cycle> = None;
        let upd = |d: &mut Option<Cycle>, t: Cycle| *d = Some(d.map_or(t, |x: Cycle| x.min(t)));
        let gate = match &self.breaker {
            Some(b) if b.state == BreakerState::Open => Some(b.open_until),
            _ => None,
        };
        for &(t, _) in &self.pending_retries {
            upd(&mut due, gate.map_or(t, |g| t.max(g)));
        }
        match self.workload {
            Workload::Open { .. } => {
                if self.stats.issued < self.max_requests {
                    // Never clamped: a shed arrival must be counted at its
                    // own cycle, exactly as a dense per-cycle poll would.
                    upd(&mut due, self.next_fire);
                }
            }
            Workload::Closed { outstanding, .. } => {
                if self.in_flight < outstanding && self.stats.issued < self.max_requests {
                    upd(
                        &mut due,
                        gate.map_or(self.next_fire, |g| self.next_fire.max(g)),
                    );
                }
            }
        }
        due
    }

    /// Requests awaiting responses.
    pub fn in_flight(&self) -> u32 {
        self.in_flight
    }

    /// Returns `true` when the generator is done: its request budget is
    /// exhausted and everything came back.
    pub fn done(&self) -> bool {
        self.stats.issued >= self.max_requests && self.in_flight == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closed_loop_respects_window() {
        let mut g = RequestGen::new(
            1,
            80,
            64,
            Workload::Closed {
                outstanding: 2,
                think_cycles: 0,
            },
            7,
        );
        let tags = g.poll(Cycle(0));
        assert_eq!(tags.len(), 2);
        assert!(g.poll(Cycle(1)).is_empty(), "window full");
        g.complete(tags[0], Cycle(10), false);
        assert_eq!(g.poll(Cycle(10)).len(), 1);
        assert_eq!(g.stats.completed, 1);
        assert_eq!(g.stats.rtt.max(), 10);
    }

    #[test]
    fn closed_loop_think_time_delays_next() {
        let mut g = RequestGen::new(
            1,
            80,
            64,
            Workload::Closed {
                outstanding: 1,
                think_cycles: 50,
            },
            7,
        );
        let t = g.poll(Cycle(0));
        g.complete(t[0], Cycle(5), false);
        assert!(g.poll(Cycle(30)).is_empty());
        assert_eq!(g.poll(Cycle(55)).len(), 1);
    }

    #[test]
    fn open_loop_rate_is_roughly_right() {
        let mut g = RequestGen::new(
            1,
            80,
            64,
            Workload::Open {
                mean_interarrival: 100.0,
            },
            42,
        );
        let mut issued = 0;
        for t in 0..100_000u64 {
            issued += g.poll(Cycle(t)).len();
        }
        // ~1000 expected; accept a wide band.
        assert!((800..1200).contains(&issued), "issued {issued}");
    }

    #[test]
    fn open_loop_does_not_wait_for_responses() {
        let mut g = RequestGen::new(
            1,
            80,
            64,
            Workload::Open {
                mean_interarrival: 10.0,
            },
            3,
        );
        let mut total = 0;
        for t in 0..1000u64 {
            total += g.poll(Cycle(t)).len();
        }
        assert!(total > 50, "issued {total} without any completions");
    }

    #[test]
    fn max_requests_bounds_and_done() {
        let mut g = RequestGen::new(
            1,
            80,
            64,
            Workload::Closed {
                outstanding: 4,
                think_cycles: 0,
            },
            9,
        )
        .with_max_requests(3);
        let tags = g.poll(Cycle(0));
        assert_eq!(tags.len(), 3);
        assert!(!g.done());
        for t in tags {
            g.complete(t, Cycle(9), false);
        }
        assert!(g.done());
        assert!(g.poll(Cycle(20)).is_empty());
    }

    #[test]
    fn unknown_tag_ignored() {
        let mut g = RequestGen::new(
            1,
            80,
            64,
            Workload::Closed {
                outstanding: 1,
                think_cycles: 0,
            },
            1,
        );
        g.complete(999, Cycle(5), false);
        assert_eq!(g.stats.completed, 0);
    }

    fn retry_gen(max_retries: u32) -> RequestGen {
        RequestGen::new(
            1,
            80,
            64,
            Workload::Closed {
                outstanding: 1,
                think_cycles: 0,
            },
            5,
        )
        .with_retry(RetryPolicy {
            max_retries,
            base_backoff: 100,
            max_backoff: 1_000,
            jitter: 0,
        })
    }

    #[test]
    fn error_schedules_backoff_retry_of_same_tag() {
        let mut g = retry_gen(2);
        let t = g.poll(Cycle(0));
        assert_eq!(t.len(), 1);
        g.complete(t[0], Cycle(10), true);
        // Not completed: the request is pending its retry.
        assert_eq!(g.stats.completed, 0);
        assert_eq!(g.stats.retries, 1);
        assert_eq!(g.in_flight(), 1);
        assert!(g.poll(Cycle(50)).is_empty(), "backoff not elapsed");
        let r = g.poll(Cycle(110));
        assert_eq!(r, t, "the same tag is reissued");
        // Success on the retry completes it, RTT from first send.
        g.complete(t[0], Cycle(150), false);
        assert_eq!(g.stats.completed, 1);
        assert_eq!(g.stats.errors, 0);
        assert_eq!(g.stats.rtt.max(), 150);
    }

    #[test]
    fn backoff_grows_exponentially_then_gives_up() {
        let mut g = retry_gen(2);
        let t = g.poll(Cycle(0))[0];
        g.complete(t, Cycle(0), true); // retry 1 due at 100
        assert_eq!(g.poll(Cycle(100)), vec![t]);
        g.complete(t, Cycle(100), true); // retry 2 due at 100 + 200
        assert!(g.poll(Cycle(250)).is_empty());
        assert_eq!(g.poll(Cycle(300)), vec![t]);
        g.complete(t, Cycle(300), true); // retries exhausted
        assert_eq!(g.stats.gave_up, 1);
        assert_eq!(g.stats.errors, 1);
        assert_eq!(g.stats.completed, 1);
        assert_eq!(g.in_flight(), 0);
    }

    #[test]
    fn breaker_opens_after_threshold_and_probes_half_open() {
        let mut g = RequestGen::new(
            1,
            80,
            64,
            Workload::Closed {
                outstanding: 1,
                think_cycles: 0,
            },
            5,
        )
        .with_breaker(BreakerConfig {
            failure_threshold: 2,
            cooldown: 1_000,
        });
        let mut now = 0u64;
        for _ in 0..2 {
            let t = g.poll(Cycle(now));
            assert_eq!(t.len(), 1);
            g.complete(t[0], Cycle(now + 5), true);
            now += 10;
        }
        assert_eq!(g.breaker_state(), Some(BreakerState::Open));
        assert!(g.poll(Cycle(now)).is_empty(), "open breaker blocks");
        // Cooldown elapses: exactly one probe allowed.
        now += 1_000;
        let probe = g.poll(Cycle(now));
        assert_eq!(probe.len(), 1);
        assert_eq!(g.breaker_state(), Some(BreakerState::HalfOpen));
        assert!(g.poll(Cycle(now)).is_empty(), "one probe at a time");
        // Probe succeeds: closed again, traffic resumes.
        g.complete(probe[0], Cycle(now + 5), false);
        assert_eq!(g.breaker_state(), Some(BreakerState::Closed));
        assert_eq!(g.poll(Cycle(now + 10)).len(), 1);
    }

    #[test]
    fn failed_probe_reopens_breaker() {
        let mut g = RequestGen::new(
            1,
            80,
            64,
            Workload::Closed {
                outstanding: 1,
                think_cycles: 0,
            },
            5,
        )
        .with_breaker(BreakerConfig {
            failure_threshold: 1,
            cooldown: 100,
        });
        let t = g.poll(Cycle(0));
        g.complete(t[0], Cycle(1), true);
        assert_eq!(g.breaker_state(), Some(BreakerState::Open));
        let probe = g.poll(Cycle(101));
        assert_eq!(probe.len(), 1);
        g.complete(probe[0], Cycle(105), true);
        assert_eq!(g.breaker_state(), Some(BreakerState::Open));
        assert!(g.poll(Cycle(150)).is_empty());
    }

    #[test]
    fn open_loop_sheds_arrivals_while_open() {
        let mut g = RequestGen::new(
            1,
            80,
            64,
            Workload::Open {
                mean_interarrival: 10.0,
            },
            3,
        )
        .with_breaker(BreakerConfig {
            failure_threshold: 1,
            cooldown: 100_000,
        });
        let t = g.poll(Cycle(0));
        assert!(!t.is_empty());
        g.complete(t[0], Cycle(1), true);
        let mut issued = 0;
        for c in 2..2_000u64 {
            issued += g.poll(Cycle(c)).len();
        }
        assert_eq!(issued, 0, "open breaker issues nothing");
        assert!(g.stats.shed > 100, "arrivals kept coming and were shed");
    }

    #[test]
    fn retries_and_breaker_stay_deterministic() {
        let run = || {
            let mut g = RequestGen::new(
                1,
                80,
                64,
                Workload::Open {
                    mean_interarrival: 50.0,
                },
                77,
            )
            .with_retry(RetryPolicy::default())
            .with_breaker(BreakerConfig::default());
            let mut trace = Vec::new();
            for c in 0..50_000u64 {
                for tag in g.poll(Cycle(c)) {
                    trace.push((c, tag));
                    // Every 3rd request errors on arrival + 10.
                    let fail = tag % 3 == 0;
                    g.complete(tag, Cycle(c + 10), fail);
                }
            }
            (trace, g.stats.retries, g.stats.shed)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn error_responses_counted() {
        let mut g = RequestGen::new(
            1,
            80,
            64,
            Workload::Closed {
                outstanding: 1,
                think_cycles: 0,
            },
            1,
        );
        let t = g.poll(Cycle(0));
        g.complete(t[0], Cycle(3), true);
        assert_eq!(g.stats.errors, 1);
        assert_eq!(g.stats.completed, 1);
    }
}
