//! A go-back-N reliable transport.
//!
//! §2 of the paper lists "reliable network protocols" among the services
//! FPGA developers are forced to rebuild per project. Apiary provides one:
//! a compact go-back-N ARQ suitable for hardware (fixed window, cumulative
//! acks, a single retransmission timer — no per-packet state beyond the
//! ring of unacknowledged payloads).

use apiary_sim::{Cycle, Payload};
use std::collections::VecDeque;

/// A data packet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Packet {
    /// Sequence number.
    pub seq: u64,
    /// Payload, shared with the sender's unacked ring: a retransmission
    /// re-sends the same buffer, it does not copy it.
    pub payload: Payload,
}

/// A cumulative acknowledgement: "I have everything below `next`".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ack {
    /// Next expected sequence number.
    pub next: u64,
}

/// Go-back-N sender state machine.
#[derive(Debug, Clone)]
pub struct GoBackNSender {
    window: usize,
    timeout: u64,
    base: u64,
    next_seq: u64,
    unacked: VecDeque<Payload>,
    /// Deadline for the oldest unacked packet.
    timer: Option<Cycle>,
    /// Packets to (re)transmit.
    outbox: VecDeque<Packet>,
    /// Wire serialization rate (bytes/cycle); 0 = size-unaware timeouts.
    bytes_per_cycle: u64,
    /// Retransmitted packets (for stats).
    pub retransmissions: u64,
}

impl GoBackNSender {
    /// Creates a sender with the given window (packets) and retransmission
    /// timeout (cycles).
    pub fn new(window: usize, timeout: u64) -> GoBackNSender {
        GoBackNSender {
            window: window.max(1),
            timeout,
            base: 0,
            next_seq: 0,
            unacked: VecDeque::new(),
            timer: None,
            outbox: VecDeque::new(),
            bytes_per_cycle: 0,
            retransmissions: 0,
        }
    }

    /// Makes the retransmission deadline account for serialization time:
    /// `timeout + unacked_bytes / bytes_per_cycle` cycles instead of a flat
    /// `timeout`. A single fixed timeout works for packets much smaller than
    /// `timeout × rate`, but a bulk payload (e.g. a migration snapshot) whose
    /// wire time exceeds the timeout would otherwise be retransmitted in a
    /// storm before its first copy even finishes serializing — delivery still
    /// succeeds (the receiver discards duplicates) but the wasted copies
    /// occupy the wire for far longer than the payload itself. `0` disables
    /// the scaling (the default).
    pub fn with_serialization_rate(mut self, bytes_per_cycle: u64) -> GoBackNSender {
        self.bytes_per_cycle = bytes_per_cycle;
        self
    }

    /// The retransmission deadline as of `now`: the flat timeout plus the
    /// serialization time of everything outstanding (when a rate is set).
    fn deadline(&self, now: Cycle) -> Cycle {
        let extra = if self.bytes_per_cycle == 0 {
            0
        } else {
            let bytes: u64 = self.unacked.iter().map(|p| p.len() as u64).sum();
            bytes.div_ceil(self.bytes_per_cycle)
        };
        now + self.timeout + extra
    }

    /// Offers a payload; returns `false` (not accepted) when the window is
    /// full.
    pub fn offer(&mut self, payload: impl Into<Payload>, now: Cycle) -> bool {
        if self.unacked.len() >= self.window {
            return false;
        }
        let payload: Payload = payload.into();
        self.outbox.push_back(Packet {
            seq: self.next_seq,
            payload: payload.clone(),
        });
        self.unacked.push_back(payload);
        self.next_seq += 1;
        if self.timer.is_none() {
            self.timer = Some(self.deadline(now));
        }
        true
    }

    /// Processes a cumulative ack.
    pub fn on_ack(&mut self, ack: Ack, now: Cycle) {
        while self.base < ack.next.min(self.next_seq) {
            self.unacked.pop_front();
            self.base += 1;
        }
        self.timer = if self.unacked.is_empty() {
            None
        } else {
            Some(self.deadline(now))
        };
    }

    /// Advances time: on timeout, requeues the entire window (go-back-N).
    /// Returns packets to put on the wire (new and retransmitted).
    pub fn poll(&mut self, now: Cycle) -> Vec<Packet> {
        if let Some(deadline) = self.timer {
            if now >= deadline {
                // Retransmit everything outstanding.
                self.outbox.clear();
                for (i, payload) in self.unacked.iter().enumerate() {
                    self.outbox.push_back(Packet {
                        seq: self.base + i as u64,
                        payload: payload.clone(),
                    });
                    self.retransmissions += 1;
                }
                self.timer = Some(self.deadline(now));
            }
        }
        self.outbox.drain(..).collect()
    }

    /// Payloads not yet acknowledged.
    pub fn outstanding(&self) -> usize {
        self.unacked.len()
    }

    /// The retransmission deadline, if the timer is armed. [`GoBackNSender::poll`]
    /// at or after this cycle requeues the window; polls before it are no-ops
    /// (beyond draining the outbox).
    pub fn next_timeout(&self) -> Option<Cycle> {
        self.timer
    }

    /// Packets waiting in the outbox for the next [`GoBackNSender::poll`].
    pub fn queued(&self) -> usize {
        self.outbox.len()
    }

    /// Whether [`GoBackNSender::offer`] would currently accept a payload.
    pub fn window_free(&self) -> bool {
        self.unacked.len() < self.window
    }

    /// Everything offered has been acknowledged.
    pub fn idle(&self) -> bool {
        self.unacked.is_empty() && self.outbox.is_empty()
    }
}

/// Go-back-N receiver state machine.
#[derive(Debug, Clone, Default)]
pub struct GoBackNReceiver {
    expected: u64,
    /// Out-of-order packets discarded.
    pub discarded: u64,
}

impl GoBackNReceiver {
    /// Creates a receiver.
    pub fn new() -> GoBackNReceiver {
        GoBackNReceiver::default()
    }

    /// Processes an arriving packet; returns the in-order payload (if this
    /// was the expected packet) and the ack to send back.
    pub fn on_packet(&mut self, pkt: Packet) -> (Option<Payload>, Ack) {
        if pkt.seq == self.expected {
            self.expected += 1;
            (
                Some(pkt.payload),
                Ack {
                    next: self.expected,
                },
            )
        } else {
            // Go-back-N discards out-of-order data; the cumulative ack
            // tells the sender where to resume.
            self.discarded += 1;
            (
                None,
                Ack {
                    next: self.expected,
                },
            )
        }
    }

    /// Next sequence number the receiver expects.
    pub fn expected(&self) -> u64 {
        self.expected
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apiary_sim::SimRng;

    #[test]
    fn lossless_in_order_delivery() {
        let mut tx = GoBackNSender::new(4, 100);
        let mut rx = GoBackNReceiver::new();
        let mut delivered = Vec::new();
        for i in 0..10u8 {
            assert!(tx.offer(vec![i], Cycle(i as u64)));
            for pkt in tx.poll(Cycle(i as u64)) {
                let (data, ack) = rx.on_packet(pkt);
                if let Some(d) = data {
                    delivered.push(d[0]);
                }
                tx.on_ack(ack, Cycle(i as u64));
            }
        }
        assert_eq!(delivered, (0..10).collect::<Vec<_>>());
        assert!(tx.idle());
        assert_eq!(tx.retransmissions, 0);
    }

    #[test]
    fn window_blocks_when_full() {
        let mut tx = GoBackNSender::new(2, 100);
        assert!(tx.offer(vec![1], Cycle(0)));
        assert!(tx.offer(vec![2], Cycle(0)));
        assert!(!tx.offer(vec![3], Cycle(0)));
        tx.on_ack(Ack { next: 1 }, Cycle(5));
        assert!(tx.offer(vec![3], Cycle(5)));
    }

    #[test]
    fn timeout_retransmits_window() {
        let mut tx = GoBackNSender::new(4, 50);
        tx.offer(vec![1], Cycle(0));
        tx.offer(vec![2], Cycle(0));
        let first = tx.poll(Cycle(0));
        assert_eq!(first.len(), 2);
        // Lose them; nothing to send until the timer fires.
        assert!(tx.poll(Cycle(40)).is_empty());
        let retx = tx.poll(Cycle(50));
        assert_eq!(retx.len(), 2);
        assert_eq!(retx[0].seq, 0);
        assert_eq!(tx.retransmissions, 2);
    }

    #[test]
    fn receiver_discards_out_of_order() {
        let mut rx = GoBackNReceiver::new();
        let (d, ack) = rx.on_packet(Packet {
            seq: 3,
            payload: vec![9].into(),
        });
        assert!(d.is_none());
        assert_eq!(ack, Ack { next: 0 });
        assert_eq!(rx.discarded, 1);
    }

    #[test]
    fn duplicate_cumulative_acks_are_idempotent() {
        let mut tx = GoBackNSender::new(4, 100);
        for i in 0..3u8 {
            assert!(tx.offer(vec![i], Cycle(0)));
        }
        tx.poll(Cycle(0));
        tx.on_ack(Ack { next: 2 }, Cycle(10));
        assert_eq!(tx.outstanding(), 1);
        // The same ack again (go-back-N receivers repeat cumulative acks
        // for every out-of-order arrival) must change nothing.
        tx.on_ack(Ack { next: 2 }, Cycle(11));
        tx.on_ack(Ack { next: 2 }, Cycle(12));
        assert_eq!(tx.outstanding(), 1);
        // A stale (lower) ack must not regress the base either.
        tx.on_ack(Ack { next: 1 }, Cycle(13));
        assert_eq!(tx.outstanding(), 1);
        tx.on_ack(Ack { next: 3 }, Cycle(14));
        assert!(tx.idle());
    }

    #[test]
    fn timer_restarts_after_retransmission_burst() {
        let mut tx = GoBackNSender::new(4, 50);
        tx.offer(vec![1], Cycle(0));
        tx.offer(vec![2], Cycle(0));
        tx.poll(Cycle(0));
        // First timeout at 50: the whole window is retransmitted and the
        // timer restarts from the retransmission, not from the old deadline.
        assert_eq!(tx.poll(Cycle(50)).len(), 2);
        assert!(tx.poll(Cycle(99)).is_empty(), "new deadline is 100");
        assert_eq!(tx.poll(Cycle(100)).len(), 2, "second burst on schedule");
        assert_eq!(tx.retransmissions, 4);
        // An ack mid-flight rebases the timer again.
        tx.on_ack(Ack { next: 1 }, Cycle(120));
        assert!(tx.poll(Cycle(150)).is_empty(), "deadline moved to 170");
        assert_eq!(tx.poll(Cycle(170)).len(), 1, "only the unacked packet");
    }

    #[test]
    fn window_full_rejection_then_drain_resumes_in_order() {
        let mut tx = GoBackNSender::new(2, 100);
        assert!(tx.offer(vec![0], Cycle(0)));
        assert!(tx.offer(vec![1], Cycle(0)));
        // Rejections while full: no sequence numbers are burned.
        assert!(!tx.offer(vec![2], Cycle(1)));
        assert!(!tx.offer(vec![2], Cycle(2)));
        assert_eq!(tx.outstanding(), 2);
        // Drain the window completely, then refill.
        tx.poll(Cycle(2));
        tx.on_ack(Ack { next: 2 }, Cycle(10));
        assert!(tx.idle());
        assert!(tx.offer(vec![2], Cycle(11)));
        let pkts = tx.poll(Cycle(11));
        assert_eq!(pkts.len(), 1);
        assert_eq!(pkts[0].seq, 2, "rejected offers did not consume seqs");
        let mut rx = GoBackNReceiver::new();
        rx.on_packet(Packet {
            seq: 0,
            payload: vec![0].into(),
        });
        rx.on_packet(Packet {
            seq: 1,
            payload: vec![1].into(),
        });
        let (data, ack) = rx.on_packet(pkts[0].clone());
        assert_eq!(data, Some(vec![2].into()));
        assert_eq!(ack, Ack { next: 3 });
    }

    #[test]
    fn ack_beyond_next_seq_does_not_panic_or_corrupt() {
        let mut tx = GoBackNSender::new(4, 100);
        tx.offer(vec![1], Cycle(0));
        tx.offer(vec![2], Cycle(0));
        // A corrupted or malicious ack far beyond anything sent: the sender
        // clamps to what it actually transmitted.
        tx.on_ack(Ack { next: u64::MAX }, Cycle(5));
        assert!(tx.unacked.is_empty());
        assert_eq!(tx.base, tx.next_seq, "base clamps to next_seq");
        // The sender keeps working afterwards.
        assert!(tx.offer(vec![3], Cycle(6)));
        let pkts = tx.poll(Cycle(6));
        assert_eq!(pkts.last().expect("sent").seq, 2);
        // Also safe on a sender that never sent anything.
        let mut fresh = GoBackNSender::new(2, 100);
        fresh.on_ack(Ack { next: 7 }, Cycle(0));
        assert!(fresh.idle());
    }

    #[test]
    fn serialization_rate_scales_the_timeout_for_bulk_payloads() {
        // A 64 KiB payload on a 16 B/cycle wire takes 4096 cycles to
        // serialize — more than the 100-cycle flat timeout. Size-unaware,
        // the sender would retransmit dozens of copies before the first
        // one could possibly be acked; with the rate set, the deadline is
        // 100 + 4096 and no spurious retransmission happens.
        let mut tx = GoBackNSender::new(4, 100).with_serialization_rate(16);
        assert!(tx.offer(vec![0u8; 64 * 1024], Cycle(0)));
        assert_eq!(tx.poll(Cycle(0)).len(), 1);
        assert!(tx.poll(Cycle(4195)).is_empty(), "deadline is 100 + 4096");
        assert_eq!(tx.retransmissions, 0);
        // A genuinely lost bulk payload is still retransmitted — once the
        // scaled deadline passes, not never.
        assert_eq!(tx.poll(Cycle(4196)).len(), 1);
        assert_eq!(tx.retransmissions, 1);
        // New offers do NOT slide the armed deadline (a retransmit timer
        // that resets on new data never fires under continuous traffic) —
        // but an ack rebases it on everything still outstanding, so a bulk
        // payload offered behind a small one is covered from the moment
        // the small one is acked.
        let mut tx = GoBackNSender::new(4, 100).with_serialization_rate(16);
        assert!(tx.offer(vec![0u8; 1600], Cycle(0)));
        assert_eq!(tx.next_timeout(), Some(Cycle(200)));
        assert!(tx.offer(vec![0u8; 64 * 1024], Cycle(50)));
        assert_eq!(tx.next_timeout(), Some(Cycle(200)), "offers never extend");
        tx.poll(Cycle(50));
        tx.on_ack(Ack { next: 1 }, Cycle(60));
        assert_eq!(tx.next_timeout(), Some(Cycle(4256)), "60 + 100 + 65536/16");
    }

    #[test]
    fn survives_heavy_loss_both_directions() {
        let mut rng = SimRng::new(99);
        let mut tx = GoBackNSender::new(8, 200);
        let mut rx = GoBackNReceiver::new();
        let total = 200u64;
        let mut offered = 0u64;
        let mut delivered: Vec<u64> = Vec::new();
        // Wires with 30% loss, 10-cycle latency.
        let mut data_wire: VecDeque<(Cycle, Packet)> = VecDeque::new();
        let mut ack_wire: VecDeque<(Cycle, Ack)> = VecDeque::new();

        for t in 0..2_000_000u64 {
            let now = Cycle(t);
            if offered < total && tx.offer(offered.to_le_bytes().to_vec(), now) {
                offered += 1;
            }
            for pkt in tx.poll(now) {
                if rng.gen_f64() > 0.3 {
                    data_wire.push_back((now + 10, pkt));
                }
            }
            while data_wire.front().is_some_and(|(at, _)| *at <= now) {
                let (_, pkt) = data_wire.pop_front().expect("peeked");
                let (data, ack) = rx.on_packet(pkt);
                if let Some(d) = data {
                    delivered.push(u64::from_le_bytes(d[..].try_into().expect("sized")));
                }
                if rng.gen_f64() > 0.3 {
                    ack_wire.push_back((now + 10, ack));
                }
            }
            while ack_wire.front().is_some_and(|(at, _)| *at <= now) {
                let (_, ack) = ack_wire.pop_front().expect("peeked");
                tx.on_ack(ack, now);
            }
            if delivered.len() as u64 == total && tx.idle() {
                break;
            }
        }
        assert_eq!(delivered.len() as u64, total, "all data delivered");
        assert_eq!(delivered, (0..total).collect::<Vec<_>>(), "in order");
        assert!(tx.retransmissions > 0, "loss must have caused retransmits");
    }
}
