//! The Ethernet MAC tile: the boundary between the datacenter network and
//! the NoC.
//!
//! Everything external — the wire and the clients — is state *inside* this
//! accelerator, so an `apiary_core::System` containing an `EthernetTile`
//! is a closed, deterministic simulation. The kernel steers flows by
//! installing endpoint capabilities and registering them in the flow table
//! (port -> capability): the MAC can only reach tiles the kernel connected
//! it to, like any other accelerator.

use crate::client::RequestGen;
use crate::frame::{Frame, Wire};
use apiary_accel::{Accelerator, TileOs};
use apiary_cap::CapRef;
use apiary_monitor::wire as proto;
use apiary_noc::TrafficClass;
use apiary_sim::{Cycle, Wakeup};
use std::collections::HashMap;

/// Network front-end configuration.
#[derive(Debug, Clone, Copy)]
pub struct NetConfig {
    /// One-way wire propagation delay in cycles (ToR to FPGA; ~500 ns at
    /// 250 MHz is 125 cycles).
    pub wire_latency: u64,
    /// Wire bandwidth in bytes/cycle (100 GbE at 250 MHz is 50 B/cycle).
    pub wire_bandwidth: u64,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            wire_latency: 125,
            wire_bandwidth: 50,
        }
    }
}

/// The network service accelerator.
pub struct EthernetTile {
    cfg: NetConfig,
    /// Flow table: UDP port -> capability to the serving tile.
    flows: HashMap<u16, CapRef>,
    /// External clients (the far end of the wire).
    clients: Vec<RequestGen>,
    /// Client -> FPGA direction.
    rx: Wire,
    /// FPGA -> client direction.
    tx: Wire,
    /// tag -> client index for response steering.
    inflight: HashMap<u64, usize>,
    /// Frames dropped for lack of a flow-table entry.
    pub no_flow_drops: u64,
    /// Requests refused by the monitor (backpressure, caps).
    pub send_refused: u64,
}

impl EthernetTile {
    /// Creates a network tile.
    pub fn new(cfg: NetConfig) -> EthernetTile {
        EthernetTile {
            rx: Wire::new(cfg.wire_latency, cfg.wire_bandwidth),
            tx: Wire::new(cfg.wire_latency, cfg.wire_bandwidth),
            cfg,
            flows: HashMap::new(),
            clients: Vec::new(),
            inflight: HashMap::new(),
            no_flow_drops: 0,
            send_refused: 0,
        }
    }

    /// Registers a flow: frames for `port` go through `cap` (which the
    /// kernel must have installed at this tile's monitor).
    pub fn bind_flow(&mut self, port: u16, cap: CapRef) {
        self.flows.insert(port, cap);
    }

    /// Adds an external client; returns its index.
    pub fn add_client(&mut self, client: RequestGen) -> usize {
        self.clients.push(client);
        self.clients.len() - 1
    }

    /// Client access (stats).
    pub fn client(&self, idx: usize) -> &RequestGen {
        &self.clients[idx]
    }

    /// All clients.
    pub fn clients(&self) -> &[RequestGen] {
        &self.clients
    }

    /// Returns `true` when every bounded client is done.
    pub fn all_done(&self) -> bool {
        self.clients.iter().all(|c| c.done())
    }

    /// The configuration.
    pub fn config(&self) -> &NetConfig {
        &self.cfg
    }
}

impl Accelerator for EthernetTile {
    fn name(&self) -> &'static str {
        "ethernet-mac"
    }

    fn as_any(&self) -> &dyn core::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn core::any::Any {
        self
    }

    fn wake(&mut self, now: Cycle, os: &mut dyn TileOs) -> Wakeup {
        // 1. Clients issue requests onto the rx wire.
        for (idx, c) in self.clients.iter_mut().enumerate() {
            let port = c.port;
            let bytes = c.payload_bytes;
            let cid = c.client_id;
            for tag in c.poll(now) {
                self.inflight.insert(tag, idx);
                self.rx.push(
                    now,
                    Frame {
                        client: cid,
                        port,
                        tag,
                        payload: vec![0xC1; bytes].into(),
                    },
                );
            }
        }

        // 2. Frames arriving at the MAC become NoC requests.
        while let Some(frame) = self.rx.pop_due(now) {
            match self.flows.get(&frame.port) {
                Some(&cap) => {
                    let res = os.send(
                        cap,
                        proto::KIND_REQUEST,
                        frame.tag,
                        TrafficClass::Request,
                        frame.payload,
                    );
                    if res.is_err() {
                        self.send_refused += 1;
                        self.inflight.remove(&frame.tag);
                    }
                }
                None => {
                    self.no_flow_drops += 1;
                    self.inflight.remove(&frame.tag);
                }
            }
        }

        // 3. NoC responses become frames on the tx wire.
        while let Some(d) = os.recv() {
            if let Some(&idx) = self.inflight.get(&d.msg.tag) {
                self.inflight.remove(&d.msg.tag);
                let client = &self.clients[idx];
                self.tx.push(
                    now,
                    Frame {
                        client: client.client_id,
                        port: client.port,
                        tag: d.msg.tag,
                        payload: d.msg.payload.clone(),
                    },
                );
                // Error kind rides in the tag-indexed completion below.
                if d.msg.kind == proto::KIND_ERROR {
                    // Mark by pushing an error frame: payload[0] is a code;
                    // completion marks is_error below on arrival.
                }
            }
        }

        // 4. Frames arriving back at clients complete requests.
        while let Some(frame) = self.tx.pop_due(now) {
            if let Some(c) = self
                .clients
                .iter_mut()
                .find(|c| c.client_id == frame.client)
            {
                // A 1-byte payload that is a known error code marks errors;
                // real responses from our services are structured payloads.
                let is_error =
                    frame.payload.len() == 1 && frame.payload[0] == proto::err::TARGET_FAILED;
                c.complete(frame.tag, now, is_error);
            }
        }

        // Sleep until the earliest thing that can happen without a NoC
        // message: a client's timed event (arrival, refill, retry, breaker
        // cooldown) or a frame landing at either end of the wire. NoC
        // responses re-arm the tile on delivery. Every state change above
        // is gated on one of these times, so skipped cycles are no-ops.
        let mut due = Cycle::MAX;
        for c in &self.clients {
            if let Some(t) = c.next_timed_event() {
                due = due.min(t);
            }
        }
        if let Some(t) = self.rx.next_due() {
            due = due.min(t);
        }
        if let Some(t) = self.tx.next_due() {
            due = due.min(t);
        }
        if due == Cycle::MAX {
            Wakeup::OnMessage
        } else {
            Wakeup::AtOrMessage(due.max(now.saturating_add(1)))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::Workload;
    use apiary_accel::apps::echo::echo;
    use apiary_accel::apps::idle::idle;
    use apiary_core::{AppId, FaultPolicy, System, SystemConfig};
    use apiary_noc::NodeId;

    /// Builds a system with a MAC at n0 serving an echo service at n5.
    fn net_system(clients: Vec<RequestGen>) -> (System, NodeId) {
        let mut sys = System::new(SystemConfig::default());
        let mac_node = NodeId(0);
        let svc_node = NodeId(5);
        let mut mac = EthernetTile::new(NetConfig::default());
        for c in clients {
            mac.add_client(c);
        }
        sys.install(
            mac_node,
            Box::new(mac),
            apiary_core::process::OS_APP,
            FaultPolicy::FailStop,
        )
        .expect("free");
        sys.install(svc_node, Box::new(echo(4)), AppId(1), FaultPolicy::FailStop)
            .expect("free");
        let cap = sys.connect(mac_node, svc_node, false).expect("OS app");
        sys.connect(svc_node, mac_node, false).expect("reply path");
        sys.accel_as_mut::<EthernetTile>(mac_node)
            .expect("installed")
            .bind_flow(80, cap);
        (sys, mac_node)
    }

    #[test]
    fn closed_loop_requests_complete_over_the_wire() {
        let gen = RequestGen::new(
            1,
            80,
            64,
            Workload::Closed {
                outstanding: 2,
                think_cycles: 0,
            },
            11,
        )
        .with_max_requests(20);
        let (mut sys, mac_node) = net_system(vec![gen]);
        sys.run_until(20_000, |s| {
            s.accel_as::<EthernetTile>(mac_node)
                .expect("installed")
                .all_done()
        });
        let mac = sys.accel_as::<EthernetTile>(mac_node).expect("installed");
        let stats = &mac.client(0).stats;
        assert_eq!(stats.issued, 20);
        assert_eq!(stats.completed, 20);
        assert_eq!(stats.errors, 0);
        // RTT includes two wire crossings: at least 2 x 125 cycles.
        assert!(stats.rtt.min() >= 250, "min rtt {}", stats.rtt.min());
    }

    #[test]
    fn frames_without_flow_entry_are_dropped() {
        let gen = RequestGen::new(
            2,
            9999, // Unbound port.
            64,
            Workload::Closed {
                outstanding: 1,
                think_cycles: 0,
            },
            5,
        )
        .with_max_requests(3);
        let (mut sys, mac_node) = net_system(vec![gen]);
        sys.run(5_000);
        let mac = sys.accel_as::<EthernetTile>(mac_node).expect("installed");
        assert!(mac.no_flow_drops >= 1);
        assert_eq!(mac.client(0).stats.completed, 0);
    }

    #[test]
    fn multiple_clients_share_the_mac() {
        let mk = |id, seed| {
            RequestGen::new(
                id,
                80,
                64,
                Workload::Closed {
                    outstanding: 1,
                    think_cycles: 10,
                },
                seed,
            )
            .with_max_requests(10)
        };
        let (mut sys, mac_node) = net_system(vec![mk(1, 1), mk(2, 2), mk(3, 3)]);
        sys.run_until(60_000, |s| {
            s.accel_as::<EthernetTile>(mac_node)
                .expect("installed")
                .all_done()
        });
        let mac = sys.accel_as::<EthernetTile>(mac_node).expect("installed");
        for i in 0..3 {
            assert_eq!(mac.client(i).stats.completed, 10, "client {i}");
        }
    }

    #[test]
    fn dead_service_yields_error_responses() {
        let gen = RequestGen::new(
            1,
            80,
            64,
            Workload::Closed {
                outstanding: 1,
                think_cycles: 0,
            },
            7,
        )
        .with_max_requests(5);
        let (mut sys, mac_node) = net_system(vec![gen]);
        // Also occupy another tile so the system stays busy.
        sys.install(NodeId(9), Box::new(idle()), AppId(2), FaultPolicy::FailStop)
            .expect("free");
        sys.fail_stop(NodeId(5));
        sys.run_until(60_000, |s| {
            s.accel_as::<EthernetTile>(mac_node)
                .expect("installed")
                .all_done()
        });
        let mac = sys.accel_as::<EthernetTile>(mac_node).expect("installed");
        let stats = &mac.client(0).stats;
        assert_eq!(stats.completed, 5);
        assert_eq!(stats.errors, 5, "all responses are TARGET_FAILED errors");
    }
}
