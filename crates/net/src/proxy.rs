//! A proxy tile for a service hosted on a *remote* CPU (§6, open question
//! 3).
//!
//! The paper asks whether Apiary can avoid an on-node host CPU entirely:
//! functionality that is "rarely used or exceptionally complex" could live
//! on *any* remote CPU, reached through the network, keeping the FPGA
//! independent of its own host. This tile models exactly that: it occupies
//! one Apiary tile (so callers use ordinary capabilities), but fulfilment
//! happens across the wire on a finite pool of remote cores.
//!
//! Experiment E12 uses it to find the crossover: when is it worth spending
//! fabric on a hardware service versus parking it on a remote CPU?

use apiary_accel::{Accelerator, TileOs};
use apiary_host::Resource;
use apiary_monitor::wire;
use apiary_noc::{Delivered, TrafficClass};
use apiary_sim::{Cycle, Wakeup};
use std::collections::VecDeque;

/// Remote-service cost parameters (cycles at the 250 MHz fabric clock).
#[derive(Debug, Clone, Copy)]
pub struct RemoteConfig {
    /// One-way network latency FPGA -> remote host (two switch hops;
    /// ~2 us => 500 cycles).
    pub wire_latency: u64,
    /// Remote CPU cores serving this function.
    pub cpu_cores: usize,
    /// CPU cycles of work per request (network stack + the function).
    pub cpu_cycles: u64,
}

impl Default for RemoteConfig {
    fn default() -> Self {
        RemoteConfig {
            wire_latency: 500,
            cpu_cores: 2,
            cpu_cycles: 2_000,
        }
    }
}

/// The proxy accelerator: requests in, remote completions out.
pub struct RemoteCpuProxy {
    cfg: RemoteConfig,
    cpu: Resource,
    /// Completions waiting for their arrival time.
    pending: VecDeque<(Cycle, Delivered)>,
    /// Requests forwarded to the remote host.
    pub forwarded: u64,
    /// Responses relayed back to callers.
    pub completed: u64,
}

impl RemoteCpuProxy {
    /// Creates a proxy.
    pub fn new(cfg: RemoteConfig) -> RemoteCpuProxy {
        RemoteCpuProxy {
            cpu: Resource::new(cfg.cpu_cores),
            cfg,
            pending: VecDeque::new(),
            forwarded: 0,
            completed: 0,
        }
    }

    /// Remote CPU busy cycles so far (for energy accounting).
    pub fn cpu_busy_cycles(&self) -> u64 {
        self.cpu.busy_cycles
    }
}

impl Accelerator for RemoteCpuProxy {
    fn name(&self) -> &'static str {
        "remote-cpu-proxy"
    }

    fn as_any(&self) -> &dyn core::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn core::any::Any {
        self
    }

    fn wake(&mut self, now: Cycle, os: &mut dyn TileOs) -> Wakeup {
        // Relay completions whose round trip has elapsed.
        let mut keep = VecDeque::with_capacity(self.pending.len());
        while let Some((at, req)) = self.pending.pop_front() {
            if at <= now {
                // The remote function's "result" is modelled as an echo;
                // experiments only need the timing and the payload size.
                let _ = os.reply(
                    &req,
                    wire::KIND_RESPONSE,
                    TrafficClass::Request,
                    req.msg.payload.clone(),
                );
                self.completed += 1;
            } else {
                keep.push_back((at, req));
            }
        }
        self.pending = keep;
        // Forward new requests across the wire to the remote cores.
        while let Some(req) = os.recv() {
            if req.msg.kind == wire::KIND_ERROR {
                continue;
            }
            let at_host = now + self.cfg.wire_latency;
            let cpu_done = self.cpu.acquire(at_host, self.cfg.cpu_cycles);
            let back = cpu_done + self.cfg.wire_latency;
            self.pending.push_back((back, req));
            self.forwarded += 1;
        }
        // Sleep until the earliest completion returns from the wire; a new
        // request re-arms the tile on delivery.
        match self.pending.iter().map(|(at, _)| *at).min() {
            Some(at) => Wakeup::AtOrMessage(at.max(now.saturating_add(1))),
            None => Wakeup::OnMessage,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apiary_accel::os::test_os::MockOs;
    use apiary_noc::{Message, NodeId};

    fn request(tag: u64) -> Delivered {
        let mut msg = Message::new(NodeId(1), NodeId(0), TrafficClass::Request, vec![tag as u8]);
        msg.kind = wire::KIND_REQUEST;
        msg.tag = tag;
        Delivered {
            msg,
            injected_at: Cycle(0),
            delivered_at: Cycle(0),
        }
    }

    #[test]
    fn remote_rtt_includes_wire_and_cpu() {
        let cfg = RemoteConfig {
            wire_latency: 100,
            cpu_cores: 1,
            cpu_cycles: 50,
        };
        let mut os = MockOs::new();
        os.deliver(request(1));
        let mut p = RemoteCpuProxy::new(cfg);
        p.wake(os.now(), &mut os);
        // Too early: 100 + 50 + 100 = 250 cycles minimum.
        for _ in 0..249 {
            os.advance(1);
            p.wake(os.now(), &mut os);
        }
        assert!(os.sent.is_empty());
        os.advance(1);
        p.wake(os.now(), &mut os);
        assert_eq!(os.sent.len(), 1);
        assert_eq!(p.completed, 1);
    }

    #[test]
    fn finite_cores_queue_requests() {
        let cfg = RemoteConfig {
            wire_latency: 10,
            cpu_cores: 1,
            cpu_cycles: 100,
        };
        let mut os = MockOs::new();
        for tag in 0..3 {
            os.deliver(request(tag));
        }
        let mut p = RemoteCpuProxy::new(cfg);
        // All three arrive at the host at t=10; the single core serialises:
        // completions at 10+100+10, 10+200+10, 10+300+10.
        for _ in 0..=121 {
            p.wake(os.now(), &mut os);
            os.advance(1);
        }
        assert_eq!(p.completed, 1);
        for _ in 0..100 {
            p.wake(os.now(), &mut os);
            os.advance(1);
        }
        assert_eq!(p.completed, 2);
        for _ in 0..100 {
            p.wake(os.now(), &mut os);
            os.advance(1);
        }
        assert_eq!(p.completed, 3);
        assert_eq!(p.cpu_busy_cycles(), 300);
    }

    #[test]
    fn errors_not_forwarded() {
        let mut os = MockOs::new();
        let mut err = request(1);
        err.msg.kind = wire::KIND_ERROR;
        os.deliver(err);
        let mut p = RemoteCpuProxy::new(RemoteConfig::default());
        p.wake(os.now(), &mut os);
        assert_eq!(p.forwarded, 0);
    }
}
