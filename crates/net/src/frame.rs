//! Frames and the wire model.

use apiary_sim::{Cycle, Payload, SimRng};
use std::collections::VecDeque;

/// A simplified network frame (Ethernet + UDP collapsed into what the
/// experiments need).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Identifies the external client (stands in for src IP/port).
    pub client: u32,
    /// Destination service port (the flow-table key).
    pub port: u16,
    /// Request/response correlation tag.
    pub tag: u64,
    /// Payload bytes (shared handle; framing never copies them).
    pub payload: Payload,
}

impl Frame {
    /// Wire size: payload plus Ethernet+IP+UDP header overhead (42 bytes,
    /// rounded to the 64-byte Ethernet minimum).
    pub fn wire_bytes(&self) -> u64 {
        (self.payload.len() as u64 + 42).max(64)
    }
}

/// A unidirectional wire: serialisation at a fixed bandwidth plus constant
/// propagation delay. Frames arrive in order.
///
/// # Examples
///
/// ```
/// use apiary_net::{Frame, Wire};
/// use apiary_sim::Cycle;
///
/// let mut w = Wire::new(100, 8); // 100-cycle propagation, 8 B/cycle.
/// w.push(Cycle(0), Frame { client: 0, port: 7, tag: 1, payload: vec![0; 22].into() });
/// assert_eq!(w.pop_due(Cycle(50)), None);
/// // 64 B / 8 Bpc = 8 cycles serialisation + 100 propagation.
/// assert!(w.pop_due(Cycle(108)).is_some());
/// ```
#[derive(Debug, Clone)]
pub struct Wire {
    latency: u64,
    bytes_per_cycle: u64,
    /// The transmitter is busy serialising until this cycle.
    tx_free_at: Cycle,
    queue: VecDeque<(Cycle, Frame)>,
    /// Frames carried.
    pub carried: u64,
    /// Frames dropped by the loss model.
    pub dropped: u64,
    loss: Option<(f64, SimRng)>,
}

impl Wire {
    /// Creates a lossless wire with the given propagation delay (cycles)
    /// and bandwidth (bytes per cycle).
    pub fn new(latency: u64, bytes_per_cycle: u64) -> Wire {
        Wire {
            latency,
            bytes_per_cycle: bytes_per_cycle.max(1),
            tx_free_at: Cycle::ZERO,
            queue: VecDeque::new(),
            carried: 0,
            dropped: 0,
            loss: None,
        }
    }

    /// Creates a wire that drops each frame independently with probability
    /// `loss_prob` (after paying serialisation — the transmitter cannot
    /// know). Deterministic in `seed`.
    pub fn with_loss(latency: u64, bytes_per_cycle: u64, loss_prob: f64, seed: u64) -> Wire {
        let mut w = Wire::new(latency, bytes_per_cycle);
        w.loss = Some((loss_prob.clamp(0.0, 1.0), SimRng::new(seed)));
        w
    }

    /// Transmits a frame at `now`; it will arrive after serialisation and
    /// propagation, queuing behind earlier frames for the transmitter —
    /// unless the loss model eats it.
    pub fn push(&mut self, now: Cycle, frame: Frame) {
        let start = now.max(self.tx_free_at);
        let ser = frame.wire_bytes().div_ceil(self.bytes_per_cycle);
        let tx_done = start + ser;
        self.tx_free_at = tx_done;
        if let Some((p, rng)) = &mut self.loss {
            if rng.gen_bool(*p) {
                self.dropped += 1;
                return;
            }
        }
        self.queue.push_back((tx_done + self.latency, frame));
        self.carried += 1;
    }

    /// Takes the next frame if it has fully arrived by `now`.
    pub fn pop_due(&mut self, now: Cycle) -> Option<Frame> {
        if self.queue.front().is_some_and(|(at, _)| *at <= now) {
            self.queue.pop_front().map(|(_, f)| f)
        } else {
            None
        }
    }

    /// Frames still in flight.
    pub fn in_flight(&self) -> usize {
        self.queue.len()
    }

    /// When the next in-flight frame arrives (`None` if the wire is empty).
    /// Frames are queued in arrival order, so the head is the earliest.
    pub fn next_due(&self) -> Option<Cycle> {
        self.queue.front().map(|(at, _)| *at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame(bytes: usize) -> Frame {
        Frame {
            client: 1,
            port: 80,
            tag: 0,
            payload: vec![0; bytes].into(),
        }
    }

    #[test]
    fn min_frame_size_is_64() {
        assert_eq!(frame(0).wire_bytes(), 64);
        assert_eq!(frame(21).wire_bytes(), 64);
        assert_eq!(frame(100).wire_bytes(), 142);
    }

    #[test]
    fn serialisation_queues_back_to_back_frames() {
        let mut w = Wire::new(10, 8);
        w.push(Cycle(0), frame(22)); // 64 B -> 8 cycles.
        w.push(Cycle(0), frame(22)); // Starts at 8, done at 16.
        assert_eq!(w.pop_due(Cycle(17)), None);
        assert_eq!(w.pop_due(Cycle(18)), Some(frame(22)));
        assert_eq!(w.pop_due(Cycle(25)), None);
        assert!(w.pop_due(Cycle(26)).is_some());
    }

    #[test]
    fn in_order_arrival() {
        let mut w = Wire::new(5, 64);
        for tag in 0..10u64 {
            let mut f = frame(10);
            f.tag = tag;
            w.push(Cycle(tag), f);
        }
        let mut got = Vec::new();
        for t in 0..200u64 {
            while let Some(f) = w.pop_due(Cycle(t)) {
                got.push(f.tag);
            }
        }
        assert_eq!(got, (0..10).collect::<Vec<_>>());
        assert_eq!(w.carried, 10);
        assert_eq!(w.in_flight(), 0);
    }

    #[test]
    fn big_frames_take_longer() {
        let mut small = Wire::new(0, 8);
        small.push(Cycle(0), frame(22));
        let mut t_small = 0;
        for t in 0..1000 {
            if small.pop_due(Cycle(t)).is_some() {
                t_small = t;
                break;
            }
        }
        let mut big = Wire::new(0, 8);
        big.push(Cycle(0), frame(4000));
        let mut t_big = 0;
        for t in 0..10_000 {
            if big.pop_due(Cycle(t)).is_some() {
                t_big = t;
                break;
            }
        }
        assert!(t_big > t_small);
    }
}

#[cfg(test)]
mod loss_tests {
    use super::*;
    use crate::arq::{Ack, GoBackNReceiver, GoBackNSender};

    #[test]
    fn lossy_wire_drops_roughly_at_rate() {
        let mut w = Wire::with_loss(0, 64, 0.25, 7);
        for _ in 0..2_000 {
            w.push(
                Cycle(0),
                Frame {
                    client: 0,
                    port: 1,
                    tag: 0,
                    payload: vec![0; 10].into(),
                },
            );
        }
        let rate = w.dropped as f64 / 2_000.0;
        assert!((0.20..0.30).contains(&rate), "drop rate {rate}");
        assert_eq!(w.carried + w.dropped, 2_000);
    }

    /// A full reliable transfer over two lossy wires: go-back-N carries
    /// 100 records across 20% loss in both directions, in order.
    #[test]
    fn go_back_n_over_lossy_wires_delivers_everything() {
        let mut data_wire = Wire::with_loss(20, 64, 0.2, 11);
        let mut ack_wire = Wire::with_loss(20, 64, 0.2, 13);
        let mut tx = GoBackNSender::new(8, 400);
        let mut rx = GoBackNReceiver::new();
        let total = 100u64;
        let mut offered = 0u64;
        let mut delivered = Vec::new();

        for t in 0..5_000_000u64 {
            let now = Cycle(t);
            if offered < total && tx.offer(offered.to_le_bytes().to_vec(), now) {
                offered += 1;
            }
            for pkt in tx.poll(now) {
                data_wire.push(
                    now,
                    Frame {
                        client: 0,
                        port: 1,
                        tag: pkt.seq,
                        payload: pkt.payload,
                    },
                );
            }
            while let Some(f) = data_wire.pop_due(now) {
                let (data, ack) = rx.on_packet(crate::arq::Packet {
                    seq: f.tag,
                    payload: f.payload,
                });
                if let Some(d) = data {
                    delivered.push(u64::from_le_bytes(d[..].try_into().expect("sized")));
                }
                ack_wire.push(
                    now,
                    Frame {
                        client: 0,
                        port: 2,
                        tag: ack.next,
                        payload: Payload::empty(),
                    },
                );
            }
            while let Some(f) = ack_wire.pop_due(now) {
                tx.on_ack(Ack { next: f.tag }, now);
            }
            if delivered.len() as u64 == total && tx.idle() {
                break;
            }
        }
        assert_eq!(delivered, (0..total).collect::<Vec<_>>());
        assert!(tx.retransmissions > 0, "loss must have caused retransmits");
        assert!(data_wire.dropped > 0);
    }
}
