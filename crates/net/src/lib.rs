//! Apiary's network service: the direct-attached path (§1).
//!
//! A direct-attached FPGA terminates the datacenter network itself: frames
//! arrive at an Ethernet MAC on the card and are steered to accelerator
//! tiles without any CPU on the path. This crate provides:
//!
//! - [`frame::Frame`] and [`frame::Wire`] — a simplified Ethernet/UDP frame
//!   and a serialisation + propagation wire model,
//! - [`client`] — external load generators (open-loop Poisson and
//!   closed-loop) that live on the far end of the wire and measure
//!   *client-observed* request latency,
//! - [`mac::EthernetTile`] — the network service accelerator: a flow table
//!   maps UDP ports to capability-addressed tiles; inbound frames become
//!   NoC requests, responses become outbound frames,
//! - [`arq`] — a go-back-N reliable transport, one of the "services that
//!   would be taken for granted in software" (§2) that Apiary offers so
//!   every accelerator does not rebuild it.
//!
//! The experiment E4 pairs this path against `apiary-host`'s CPU-mediated
//! baselines.

pub mod arq;
pub mod client;
pub mod frame;
pub mod mac;
pub mod proxy;

pub use client::{BreakerConfig, BreakerState, ClientStats, RequestGen, RetryPolicy, Workload};
pub use frame::{Frame, Wire};
pub use mac::{EthernetTile, NetConfig};
pub use proxy::RemoteCpuProxy;
