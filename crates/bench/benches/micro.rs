//! Criterion microbenchmarks for Apiary's hot paths.
//!
//! These complement the experiment binaries (which regenerate the paper's
//! tables/figures) with statistically solid measurements of the core
//! primitives: the capability check on the message path, segment allocation
//! vs paging, NoC transit, monitor send, codecs, and the full-system cycle.

use apiary_bench::scenarios::{client_server, drive, MonitorClient};
use apiary_cap::{CapKind, CapTable, Capability, EndpointId, MemRange, Rights};
use apiary_core::SystemConfig;
use apiary_mem::{AccessKind, AllocPolicy, PagedMmu, SegmentAllocator, SegmentChecker};
use apiary_noc::{Message, Noc, NocConfig, NodeId, TrafficClass};
use apiary_sim::SimRng;
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

fn bench_cap_check(c: &mut Criterion) {
    let mut table = CapTable::new(64);
    let cap = table
        .insert_root(Capability::new(
            CapKind::Endpoint(EndpointId(3)),
            Rights::SEND,
        ))
        .expect("space");
    c.bench_function("cap/check", |b| {
        b.iter(|| black_box(table.check(black_box(cap), Rights::SEND)).is_ok())
    });

    let mem = table
        .insert_root(Capability::new(
            CapKind::Memory(MemRange::new(0x10000, 0x10000)),
            Rights::READ | Rights::WRITE,
        ))
        .expect("space");
    let checker = SegmentChecker::default();
    c.bench_function("cap/bounds_check", |b| {
        b.iter(|| {
            black_box(checker.check(&table, black_box(mem), AccessKind::Read, 0x100, 64)).is_ok()
        })
    });
}

fn bench_allocators(c: &mut Criterion) {
    c.bench_function("mem/segment_alloc_free", |b| {
        b.iter_batched_ref(
            || SegmentAllocator::new(1 << 24, AllocPolicy::FirstFit),
            |a| {
                let seg = a.alloc(black_box(4097)).expect("space");
                a.free(seg).expect("live");
            },
            BatchSize::SmallInput,
        )
    });
    c.bench_function("mem/paged_map_unmap", |b| {
        b.iter_batched_ref(
            || PagedMmu::new(4096, 4096, 32, 60),
            |m| {
                let r = m.map(black_box(4097)).expect("frames");
                m.unmap(r).expect("live");
            },
            BatchSize::SmallInput,
        )
    });
    // Steady-state churn against a fragmented heap.
    c.bench_function("mem/segment_churn_fragmented", |b| {
        let mut a = SegmentAllocator::new(1 << 24, AllocPolicy::FirstFit);
        let mut rng = SimRng::new(5);
        let mut live = Vec::new();
        for _ in 0..500 {
            if let Ok(s) = a.alloc(rng.gen_range_inclusive(64, 8192)) {
                live.push(s);
            }
        }
        // Free every other to fragment.
        for s in live.iter().step_by(2) {
            a.free(*s).expect("live");
        }
        b.iter(|| {
            if let Ok(s) = a.alloc(black_box(1000)) {
                a.free(s).expect("live");
            }
        })
    });
}

fn bench_noc(c: &mut Criterion) {
    c.bench_function("noc/tick_idle_8x8", |b| {
        let mut noc = Noc::new(NocConfig::soft(8, 8));
        b.iter(|| noc.step())
    });
    c.bench_function("noc/message_corner_to_corner_4x4", |b| {
        b.iter_batched_ref(
            || Noc::new(NocConfig::soft(4, 4)),
            |noc| {
                let msg = Message::new(NodeId(0), NodeId(15), TrafficClass::Request, vec![0; 64]);
                noc.try_inject(NodeId(0), msg).expect("space");
                noc.run_until_quiescent(10_000);
                black_box(noc.poll_eject(NodeId(15)));
            },
            BatchSize::SmallInput,
        )
    });
    c.bench_function("noc/tick_loaded_4x4", |b| {
        let mut noc = Noc::new(NocConfig::soft(4, 4));
        let mut rng = SimRng::new(9);
        b.iter(|| {
            for src in 0..16u16 {
                if rng.gen_bool(0.2) {
                    let dst = (src + 1 + rng.gen_range(15) as u16) % 16;
                    let _ = noc.try_inject(
                        NodeId(src),
                        Message::new(NodeId(src), NodeId(dst), TrafficClass::Request, vec![0; 16]),
                    );
                }
            }
            noc.step();
            for n in 0..16u16 {
                noc.drain_eject(NodeId(n));
            }
        })
    });
}

fn bench_codecs(c: &mut Criterion) {
    use apiary_accel::codec::{lz, video};
    let frame = video::Frame::test_pattern(64, 64, 3);
    c.bench_function("codec/video_encode_64x64", |b| {
        b.iter(|| black_box(video::encode(black_box(&frame), 0)))
    });
    let encoded = video::encode(&frame, 0);
    c.bench_function("codec/video_decode_64x64", |b| {
        b.iter(|| black_box(video::decode(black_box(&encoded))).expect("well formed"))
    });
    let text = b"the quick brown fox jumps over the lazy dog ".repeat(100);
    c.bench_function("codec/lz_compress_4k5", |b| {
        b.iter(|| black_box(lz::compress(black_box(&text))))
    });
    let packed = lz::compress(&text);
    c.bench_function("codec/lz_decompress_4k5", |b| {
        b.iter(|| black_box(lz::decompress(black_box(&packed))).expect("well formed"))
    });
}

fn bench_system(c: &mut Criterion) {
    use apiary_accel::apps::echo::echo;
    c.bench_function("system/tick_4x4", |b| {
        let (mut sys, _cap) = client_server(
            SystemConfig::default(),
            NodeId(0),
            NodeId(5),
            Box::new(echo(4)),
        );
        b.iter(|| sys.tick())
    });
    c.bench_function("system/request_response_roundtrip", |b| {
        b.iter_batched(
            || {
                client_server(
                    SystemConfig::default(),
                    NodeId(0),
                    NodeId(5),
                    Box::new(echo(4)),
                )
            },
            |(mut sys, cap)| {
                let mut client = MonitorClient::new(NodeId(0), cap, 32).max_requests(1);
                drive(&mut sys, &mut [&mut client], 100_000);
                assert!(client.done());
            },
            BatchSize::SmallInput,
        )
    });
}

criterion_group!(
    benches,
    bench_cap_check,
    bench_allocators,
    bench_noc,
    bench_codecs,
    bench_system
);
criterion_main!(benches);
