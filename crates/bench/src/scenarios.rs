//! Shared system builders and load-driving harnesses for the experiments.

use apiary_accel::apps::idle::idle;
use apiary_cap::CapRef;
use apiary_core::{AppId, FaultPolicy, System, SystemConfig};
use apiary_monitor::{wire, SendError};
use apiary_noc::{NodeId, TrafficClass};
use apiary_sim::{clock_mode, ClockMode, Cycle, Histogram, Payload};
use std::collections::HashMap;

/// A closed-loop request driver attached directly to a tile's monitor —
/// the harness stand-in for request-issuing accelerator logic. It keeps
/// `outstanding` requests in flight toward one capability and records
/// round-trip latency.
pub struct MonitorClient {
    /// The tile this client drives.
    pub node: NodeId,
    /// The capability requests go through.
    pub cap: CapRef,
    /// In-flight window.
    pub outstanding: u32,
    /// Think time after each completion.
    pub think: u64,
    /// Traffic class for requests.
    pub class: TrafficClass,
    /// Stop after this many requests.
    pub max_requests: u64,
    /// Payload generator, called with the request tag.
    pub payload: Box<dyn FnMut(u64) -> Vec<u8>>,
    next_tag: u64,
    in_flight: u32,
    next_fire: Cycle,
    sent_at: HashMap<u64, Cycle>,
    /// Requests issued.
    pub issued: u64,
    /// Responses received.
    pub completed: u64,
    /// Error responses received (not included in the RTT histogram).
    pub errors: u64,
    /// Sends refused by the monitor (rate limit, backpressure).
    pub refused: u64,
    /// Requests abandoned after `timeout` cycles without a response.
    pub lost: u64,
    /// Per-request timeout in cycles (0 = wait forever).
    pub timeout: u64,
    /// Completions to discard before recording RTTs (warmup; hides the
    /// initial window-fill burst).
    pub warmup: u64,
    /// Round-trip latency histogram.
    pub rtt: Histogram,
    /// Response payloads kept for verification (bounded).
    pub kept: Vec<(u64, Payload)>,
    /// How many response payloads to keep.
    pub keep: usize,
    /// Tag namespace offset so co-resident clients don't collide.
    pub tag_base: u64,
}

impl MonitorClient {
    /// Creates a client with a fixed payload.
    pub fn new(node: NodeId, cap: CapRef, payload_bytes: usize) -> MonitorClient {
        MonitorClient::with_payload(node, cap, Box::new(move |_| vec![0x5A; payload_bytes]))
    }

    /// Creates a client with a payload generator.
    pub fn with_payload(
        node: NodeId,
        cap: CapRef,
        payload: Box<dyn FnMut(u64) -> Vec<u8>>,
    ) -> MonitorClient {
        MonitorClient {
            node,
            cap,
            outstanding: 1,
            think: 0,
            class: TrafficClass::Request,
            max_requests: u64::MAX,
            payload,
            next_tag: 0,
            in_flight: 0,
            next_fire: Cycle::ZERO,
            sent_at: HashMap::new(),
            issued: 0,
            completed: 0,
            errors: 0,
            refused: 0,
            lost: 0,
            timeout: 0,
            warmup: 0,
            rtt: Histogram::new(),
            kept: Vec::new(),
            keep: 0,
            tag_base: 0,
        }
    }

    /// Builder: in-flight window.
    pub fn window(mut self, n: u32) -> MonitorClient {
        self.outstanding = n;
        self
    }

    /// Builder: request budget.
    pub fn max_requests(mut self, n: u64) -> MonitorClient {
        self.max_requests = n;
        self
    }

    /// Builder: keep the first `n` response payloads for verification.
    pub fn keep_responses(mut self, n: usize) -> MonitorClient {
        self.keep = n;
        self
    }

    /// Returns `true` if `tag` belongs to this client's namespace.
    pub fn owns_tag(&self, tag: u64) -> bool {
        tag & TAG_BASE_MASK == self.tag_base
    }

    /// Expires timed-out requests (lost to a faulted service).
    fn expire(&mut self, now: Cycle) {
        if self.timeout > 0 {
            let deadline = self.timeout;
            let before = self.sent_at.len();
            self.sent_at.retain(|_, sent| now - *sent < deadline);
            let expired = before - self.sent_at.len();
            self.lost += expired as u64;
            self.in_flight = self.in_flight.saturating_sub(expired as u32);
        }
    }

    /// Accounts one delivered message addressed to this client.
    fn absorb(&mut self, d: apiary_noc::Delivered, now: Cycle) {
        let Some(sent) = self.sent_at.remove(&d.msg.tag) else {
            return;
        };
        self.in_flight = self.in_flight.saturating_sub(1);
        self.completed += 1;
        if d.msg.kind == wire::KIND_ERROR {
            self.errors += 1;
        } else {
            if self.completed > self.warmup {
                self.rtt.record(now - sent);
            }
            if self.kept.len() < self.keep {
                self.kept.push((d.msg.tag, d.msg.payload));
            }
        }
        self.next_fire = now + self.think;
    }

    /// Drives one cycle for a client that is alone on its tile: collect
    /// responses, then refill the window. Call once per [`System::tick`].
    /// Co-resident clients must use [`pump_group`] instead.
    pub fn pump(&mut self, sys: &mut System) {
        let now = sys.now();
        self.expire(now);
        while let Some(d) = sys.tile_mut(self.node).monitor.recv() {
            self.absorb(d, now);
        }
        self.refill(sys);
    }

    /// Refills the request window.
    pub fn refill(&mut self, sys: &mut System) {
        let now = sys.now();
        while self.in_flight < self.outstanding
            && self.issued < self.max_requests
            && self.next_fire <= now
        {
            let tag = self.tag_base + self.next_tag;
            let body = (self.payload)(tag);
            let res = sys.tile_mut(self.node).monitor.send(
                self.cap,
                wire::KIND_REQUEST,
                tag,
                self.class,
                body,
                now,
            );
            match res {
                Ok(()) => {
                    self.next_tag += 1;
                    self.issued += 1;
                    self.in_flight += 1;
                    self.sent_at.insert(tag, now);
                }
                Err(SendError::Backpressure | SendError::RateLimited) => {
                    self.refused += 1;
                    break;
                }
                Err(e) => panic!("client send failed: {e}"),
            }
        }
    }

    /// All requests issued and completed.
    pub fn done(&self) -> bool {
        self.issued >= self.max_requests && self.in_flight == 0
    }

    /// When this client next needs a [`MonitorClient::pump`]: immediately
    /// if a response is already waiting at its monitor, at the earliest
    /// request-timeout expiry, or whenever it could attempt a send (which
    /// must be retried every cycle while the window is open — dense ticking
    /// counts each refused attempt, and the event clock must match).
    /// `Cycle::MAX` means "only a message can wake me".
    pub fn next_wakeup(&self, sys: &System) -> Cycle {
        let next = sys.now().saturating_add(1);
        if sys.tile(self.node).monitor.inbox_len() > 0 {
            return next;
        }
        let mut due = Cycle::MAX;
        if self.timeout > 0 {
            if let Some(expiry) = self
                .sent_at
                .values()
                .map(|s| s.saturating_add(self.timeout))
                .min()
            {
                due = due.min(expiry.max(next));
            }
        }
        if self.in_flight < self.outstanding && self.issued < self.max_requests {
            due = due.min(self.next_fire.max(next));
        }
        due
    }
}

/// High bits of the tag reserved for the client namespace (see
/// [`MonitorClient::tag_base`]).
pub const TAG_BASE_MASK: u64 = 0xFFFF << 48;

/// Drives one cycle for several clients sharing one tile: responses are
/// dispatched to their owning client by tag namespace.
pub fn pump_group(sys: &mut System, node: NodeId, clients: &mut [MonitorClient]) {
    let now = sys.now();
    for c in clients.iter_mut() {
        debug_assert_eq!(c.node, node, "grouped clients share a tile");
        c.expire(now);
    }
    while let Some(d) = sys.tile_mut(node).monitor.recv() {
        if let Some(c) = clients.iter_mut().find(|c| c.owns_tag(d.msg.tag)) {
            c.absorb(d, now);
        }
    }
    for c in clients.iter_mut() {
        c.refill(sys);
    }
}

/// Builds a system with an idle client tile and one serving tile, wired
/// bidirectionally. Returns `(system, client_cap)`.
pub fn client_server(
    cfg: SystemConfig,
    client: NodeId,
    server: NodeId,
    accel: Box<dyn apiary_accel::Accelerator>,
) -> (System, CapRef) {
    let mut sys = System::new(cfg);
    sys.install(client, Box::new(idle()), AppId(1), FaultPolicy::FailStop)
        .expect("client slot free");
    sys.install(server, accel, AppId(1), FaultPolicy::FailStop)
        .expect("server slot free");
    let cap = sys.connect(client, server, false).expect("same app");
    sys.connect(server, client, false).expect("reply path");
    (sys, cap)
}

/// Runs the system, pumping every client as needed, until all clients are
/// done or `max_cycles` pass. Returns the cycles consumed.
///
/// Under [`ClockMode::Dense`] every cycle ticks and every client is pumped
/// every cycle. Under [`ClockMode::Event`] the system jumps between
/// wakeups and clients are pumped only on cycles where a pump can act:
/// when mail is waiting, a timeout expires, or a send could be attempted.
/// Both stop on the same cycle with identical client statistics.
pub fn drive(sys: &mut System, clients: &mut [&mut MonitorClient], max_cycles: u64) -> u64 {
    let start = sys.now();
    if clock_mode() == ClockMode::Dense {
        for _ in 0..max_cycles {
            sys.tick();
            for c in clients.iter_mut() {
                c.pump(sys);
            }
            if clients.iter().all(|c| c.done()) {
                break;
            }
        }
        return sys.now() - start;
    }
    let end = start.saturating_add(max_cycles);
    while sys.now() < end {
        // Dense checks `done` after every tick, so if the clients are
        // already done it consumes exactly one cycle before breaking.
        let mut due = if clients.iter().all(|c| c.done()) {
            sys.now().saturating_add(1)
        } else {
            end
        };
        for c in clients.iter() {
            due = due.min(c.next_wakeup(sys));
        }
        loop {
            sys.advance_toward(due);
            let now = sys.now();
            if now >= due
                || now >= end
                || clients
                    .iter()
                    .any(|c| sys.tile(c.node).monitor.inbox_len() > 0)
            {
                break;
            }
        }
        for c in clients.iter_mut() {
            c.pump(sys);
        }
        if clients.iter().all(|c| c.done()) {
            break;
        }
    }
    sys.now() - start
}

#[cfg(test)]
mod tests {
    use super::*;
    use apiary_accel::apps::echo::echo;

    #[test]
    fn monitor_client_completes_closed_loop() {
        let (mut sys, cap) = client_server(
            SystemConfig::default(),
            NodeId(0),
            NodeId(5),
            Box::new(echo(4)),
        );
        let mut client = MonitorClient::new(NodeId(0), cap, 32)
            .window(2)
            .max_requests(25)
            .keep_responses(3);
        let cycles = drive(&mut sys, &mut [&mut client], 100_000);
        assert!(client.done(), "only {} of 25 done", client.completed);
        assert_eq!(client.completed, 25);
        assert_eq!(client.errors, 0);
        assert_eq!(client.kept.len(), 3);
        assert_eq!(client.kept[0].1, vec![0x5A; 32]);
        assert!(client.rtt.min() > 0);
        assert!(cycles > 0);
    }

    #[test]
    fn think_time_slows_issue_rate() {
        let (mut sys, cap) = client_server(
            SystemConfig::default(),
            NodeId(0),
            NodeId(5),
            Box::new(echo(1)),
        );
        let mut fast = MonitorClient::new(NodeId(0), cap, 8).max_requests(10);
        let fast_cycles = drive(&mut sys, &mut [&mut fast], 100_000);

        let (mut sys2, cap2) = client_server(
            SystemConfig::default(),
            NodeId(0),
            NodeId(5),
            Box::new(echo(1)),
        );
        let mut slow = MonitorClient::new(NodeId(0), cap2, 8).max_requests(10);
        slow.think = 500;
        let slow_cycles = drive(&mut sys2, &mut [&mut slow], 100_000);
        assert!(slow_cycles > fast_cycles + 9 * 400);
    }
}
