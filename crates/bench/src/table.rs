//! Plain-text table rendering for experiment reports.

use core::fmt::Write;

/// A simple aligned text table.
///
/// # Examples
///
/// ```
/// use apiary_bench::TextTable;
///
/// let mut t = TextTable::new(&["part", "cells"]);
/// t.row(&["VU3P", "862000"]);
/// let s = t.render();
/// assert!(s.contains("VU3P"));
/// ```
#[derive(Debug, Clone)]
pub struct TextTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new(headers: &[&str]) -> TextTable {
        TextTable {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header count).
    ///
    /// # Panics
    ///
    /// Panics if the column count differs from the header count.
    pub fn row(&mut self, cells: &[&str]) {
        assert_eq!(cells.len(), self.headers.len(), "column count mismatch");
        self.rows
            .push(cells.iter().map(|s| s.to_string()).collect());
    }

    /// Appends a row of owned strings.
    ///
    /// # Panics
    ///
    /// Panics if the column count differs from the header count.
    pub fn row_owned(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "column count mismatch");
        self.rows.push(cells);
    }

    /// Renders with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut width = vec![0usize; cols];
        for (i, h) in self.headers.iter().enumerate() {
            width[i] = h.len();
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                width[i] = width[i].max(c.len());
            }
        }
        let mut out = String::new();
        let line = |out: &mut String, cells: &[String]| {
            for (i, c) in cells.iter().enumerate() {
                let _ = write!(out, "| {:<w$} ", c, w = width[i]);
            }
            let _ = writeln!(out, "|");
        };
        line(&mut out, &self.headers);
        for (i, w) in width.iter().enumerate() {
            let _ = write!(out, "|{:-<w$}", "", w = w + 2);
            if i == cols - 1 {
                let _ = writeln!(out, "|");
            }
        }
        for row in &self.rows {
            line(&mut out, row);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = TextTable::new(&["a", "bee"]);
        t.row(&["longer", "1"]);
        t.row(&["x", "22"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        // All lines have equal width.
        assert!(lines.iter().all(|l| l.len() == lines[0].len()));
        assert!(s.contains("longer"));
    }

    #[test]
    #[should_panic(expected = "column count mismatch")]
    fn row_width_checked() {
        let mut t = TextTable::new(&["a", "b"]);
        t.row(&["only one"]);
    }
}
