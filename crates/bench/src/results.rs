//! Writing result artifacts under `results/`.
//!
//! Every result-writing binary goes through [`write_result`] (creates the
//! parent directory) and [`write_result_or_exit`] (non-zero exit on
//! failure) so CI can never "pass" with a missing artifact. Experiments
//! use [`write_report_or_exit`], which lands both artifacts — the
//! structured `results/<slug>.json` and the rendered `results/<slug>.txt`
//! — so every experiment's table is browsable without re-running it.

use crate::harness;
use crate::report::ExperimentReport;
use std::io;
use std::path::Path;

/// Writes `contents` to `path`, creating the parent directory first.
pub fn write_result(path: impl AsRef<Path>, contents: &str) -> io::Result<()> {
    let path = path.as_ref();
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    std::fs::write(path, contents)
}

/// [`write_result`], but prints the outcome and exits non-zero on failure —
/// a missing artifact must fail the run, not be a footnote on stderr.
pub fn write_result_or_exit(path: impl AsRef<Path>, contents: &str) {
    let path = path.as_ref();
    match write_result(path, contents) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => {
            eprintln!("failed to write {}: {e}", path.display());
            std::process::exit(1);
        }
    }
}

/// Writes one experiment's artifact pair: `results/<slug>.json` (the
/// structured report) and `results/<slug>.txt` (the rendered text).
/// Exits non-zero if either write fails.
pub fn write_report_or_exit(report: &ExperimentReport) {
    let json_path = harness::result_file(report.id);
    write_result_or_exit(&json_path, &report.to_json());
    let txt_path = json_path
        .strip_suffix(".json")
        .map(|stem| format!("{stem}.txt"))
        .unwrap_or_else(|| format!("{json_path}.txt"));
    write_result_or_exit(&txt_path, &report.rendered);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn creates_missing_parent_dirs() {
        let dir = std::env::temp_dir().join(format!("apiary_results_test_{}", std::process::id()));
        let path = dir.join("nested").join("out.json");
        write_result(&path, "{}").expect("write with created parents");
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "{}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn bare_filename_needs_no_parent() {
        // A path with no directory component must not trip create_dir_all.
        let cwd_file =
            std::env::temp_dir().join(format!("apiary_results_bare_{}.json", std::process::id()));
        write_result(&cwd_file, "1").expect("bare write");
        std::fs::remove_file(&cwd_file).ok();
    }
}
