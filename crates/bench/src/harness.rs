//! The suite harness: runs E1..E19 on a scoped thread pool.
//!
//! Every experiment owns its own seeded `SimRng`, so experiments are
//! independent and can run concurrently. Determinism contract: for any
//! `jobs` value the per-experiment [`ExperimentReport`]s are byte-identical
//! (rendered text, metrics, sim_cycles) — only `wall_ms` varies. Results
//! are always returned (and printed) in E1..E19 order regardless of which
//! worker finished first.

use crate::experiments as e;
use crate::report::ExperimentReport;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// An experiment entry point: `quick` → structured report.
pub type ExperimentFn = fn(bool) -> ExperimentReport;

/// The full suite, in output order.
pub const SUITE: &[ExperimentFn] = &[
    e::e01_table1::report,
    e::e02_figure1::report,
    e::e03_monitor_overhead::report,
    e::e04_direct_vs_host::report,
    e::e05_isolation_cost::report,
    e::e06_rate_limiting::report,
    e::e07_segments_vs_pages::report,
    e::e08_fault_handling::report,
    e::e09_noc_scaling::report,
    e::e10_video_pipeline::report,
    e::e11_multi_tenant::report,
    e::e12_remote_service::report,
    e::e13_noc_ablation::report,
    e::e14_reconfig_churn::report,
    e::e15_memory_service::report,
    e::e16_chaos::report,
    e::e17_cluster_scaleout::report,
    e::e18_serverless::report,
    e::e19_checkpoint::report,
];

/// Default worker count: the machine's available cores.
pub fn default_jobs() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Per-experiment result file path (matches the module and bin names so
/// `results/e09_noc_scaling.json` sits beside `results/e09_noc_scaling.txt`).
pub fn result_file(id: &str) -> String {
    let slug = match id {
        "E1" => "e01_table1",
        "E2" => "e02_figure1",
        "E3" => "e03_monitor_overhead",
        "E4" => "e04_direct_vs_host",
        "E5" => "e05_isolation_cost",
        "E6" => "e06_rate_limiting",
        "E7" => "e07_segments_vs_pages",
        "E8" => "e08_fault_handling",
        "E9" => "e09_noc_scaling",
        "E10" => "e10_video_pipeline",
        "E11" => "e11_multi_tenant",
        "E12" => "e12_remote_service",
        "E13" => "e13_noc_ablation",
        "E14" => "e14_reconfig_churn",
        "E15" => "e15_memory_service",
        "E16" => "e16_chaos",
        "E17" => "e17_cluster_scaleout",
        "E18" => "e18_serverless",
        "E19" => "e19_checkpoint",
        other => return format!("results/{}.json", other.to_ascii_lowercase()),
    };
    format!("results/{slug}.json")
}

/// Runs one experiment and stamps its wall time.
pub fn run_one(f: ExperimentFn, quick: bool) -> ExperimentReport {
    let t0 = Instant::now();
    let mut report = f(quick);
    report.wall_ms = t0.elapsed().as_secs_f64() * 1000.0;
    report
}

/// Runs the whole suite on `jobs` scoped workers (clamped to [1, suite
/// size]) and returns the reports in suite order.
pub fn run_suite(quick: bool, jobs: usize) -> Vec<ExperimentReport> {
    let jobs = jobs.clamp(1, SUITE.len());
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<ExperimentReport>>> =
        SUITE.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..jobs {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(&f) = SUITE.get(i) else { break };
                let report = run_one(f, quick);
                *slots[i].lock().unwrap() = Some(report);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .unwrap()
                .expect("worker filled every slot")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_ids_are_ordered() {
        // Cheap structural check: the two cheapest experiments sit where
        // the suite order says they do.
        let e1 = run_one(SUITE[0], true);
        assert_eq!(e1.id, "E1");
        let e2 = run_one(SUITE[1], true);
        assert_eq!(e2.id, "E2");
    }
}
