//! E19 — Checkpoint/restore plane: warm recovery, live migration, and
//! preemptive tile sharing (DESIGN.md §4b).
//!
//! Three cells exercise the checkpoint plane end to end:
//!
//! - **migration**: a KV replica preloaded with N entries is live-migrated
//!   between two boards while a client keeps probing it by name. The
//!   blackout window (snapshot to restored) must scale with state size —
//!   quiesce is fixed, but fabric serialization and the ICAP restore are
//!   charged per byte — and the replica must answer post-migration
//!   requests at the new board without any client-side cap churn.
//! - **recovery**: a supervised single-board KV service is killed twice
//!   mid-run. With periodic checkpointing the restart restores the latest
//!   snapshot (bounded staleness: at most one interval of writes lost), so
//!   contents written before the first checkpoint survive every kill; with
//!   checkpointing off the restart is factory-fresh and retains nothing.
//! - **sharing**: two KV tenants time-multiplex one tile via
//!   [`apiary_core::System::swap_context`] on a fixed slice, against a
//!   static-partitioning baseline that gives each tenant its own tile.
//!   Sharing halves the tiles; the price is per-swap partial-reconfig
//!   downtime (charged on the combined snapshot bytes) and slice-boundary
//!   waits that show up in tenant p99.

use crate::report::{round3, ExperimentReport, Json};
use crate::scenarios::MonitorClient;
use crate::table::TextTable;
use apiary_accel::apps::idle::idle;
use apiary_accel::apps::kv::{self, kv_store, KvStoreAccel};
use apiary_cap::ServiceId;
use apiary_cluster::{run_clients, ClusterClient, ClusterConfig, ClusterSystem};
use apiary_core::fault::preemption_downtime;
use apiary_core::supervisor::SupervisorConfig;
use apiary_core::{AppId, FaultPolicy, System, SystemConfig};
use apiary_monitor::TileState;
use apiary_net::Workload;
use apiary_noc::NodeId;
use core::fmt::Write;

const SVC: ServiceId = ServiceId(19);
const REPLICA_NODE: NodeId = NodeId(5);
const BITSTREAM: u64 = 4096; // 1024 cycles over the default 4 B/cycle ICAP.
const KILL_CODE: u32 = 0xC4A0_0019;
/// Tenant badge used for direct preloads (distinct from client badges).
const PRELOAD_TENANT: u64 = 9;

// --- Cell 1: cross-board live migration -----------------------------------

/// One migration cell: N preloaded entries, one live migration 0 -> 1.
#[derive(Debug, Clone, PartialEq)]
pub struct MigrationCell {
    /// KV entries preloaded before migration (32-byte values).
    pub entries: u64,
    /// Snapshot bytes that crossed the fabric.
    pub state_bytes: u64,
    /// Blackout window: snapshot taken to service restored (cycles).
    pub blackout: u64,
    /// The destination restored from the snapshot (not factory-fresh).
    pub warm: bool,
    /// Preloaded entries present at the destination after migration.
    pub retained: u64,
    /// Client round-trips completed before the migration started.
    pub ok_before: u64,
    /// Client round-trips completed after (proves the name still resolves
    /// without the client re-attaching or re-minting capabilities).
    pub ok_after: u64,
    /// Stale gateway caps for the old home revoked at finalize.
    pub caps_revoked: u64,
    /// Migrations that failed (must be 0).
    pub failed: u64,
    /// The post-run drain reached quiescence.
    pub drained: bool,
    /// Simulated cycles at the end of the run.
    pub sim_cycles: u64,
}

/// Drives one migration cell.
pub fn run_migration(entries: u64, duration: u64) -> MigrationCell {
    let mut c = ClusterSystem::new(ClusterConfig {
        boards: 2,
        request_timeout: 8_000,
        ..ClusterConfig::default()
    });
    c.deploy_replica(
        0,
        "ckpt-kv",
        SVC,
        REPLICA_NODE,
        AppId(1),
        FaultPolicy::FailStop,
        BITSTREAM,
        Box::new(|| Box::new(kv_store())),
    )
    .expect("replica tile free");
    c.tick_n(2_000); // bitstream load + one gossip round
    let accel = c
        .board_mut(0)
        .accel_as_mut::<KvStoreAccel>(REPLICA_NODE)
        .expect("kv installed");
    for i in 0..entries {
        accel
            .service_mut()
            .insert(PRELOAD_TENANT, &(i as u32).to_le_bytes(), &[0x5A; 32]);
    }

    // One client on the *other* board probes the service by name for the
    // whole run. Its zero payloads earn MALFORMED status replies — the
    // probe measures round-trips (liveness through the migration), not KV
    // hits. It never re-attaches: post-migration completions prove the
    // late-bound name and re-minted gateway caps did all the rewiring.
    let mut clients = vec![ClusterClient::new(
        1,
        1,
        "ckpt-kv",
        16,
        Workload::Open {
            mean_interarrival: 300.0,
        },
        0xE19_0001,
    )];
    run_clients(&mut c, &mut clients, duration / 5, |_, _| false);
    let ok_before = clients[0].gen.stats.completed - clients[0].gen.stats.errors;

    c.migrate_replica(
        "ckpt-kv",
        0,
        1,
        REPLICA_NODE,
        Box::new(|| Box::new(kv_store())),
    )
    .expect("migration starts");
    run_clients(&mut c, &mut clients, duration - duration / 5, |_, _| false);

    for cl in &mut clients {
        cl.gen.max_requests = cl.gen.stats.issued;
    }
    // Stamp simulated work at load end: the drain below may start on an
    // already-quiescent cluster, where the dense clock notices after one
    // cycle but the event clock only at the next background wakeup — the
    // post-drain `now` is the one quantity that is not clock-stable.
    let sim_cycles = c.now().as_u64();
    let drained = run_clients(&mut c, &mut clients, 120_000, |c, _| c.quiescent());

    let outcome = c.migration_outcomes().first().cloned();
    let retained = c
        .board(1)
        .accel_as::<KvStoreAccel>(REPLICA_NODE)
        .map_or(0, |a| a.service().tenant_len(PRELOAD_TENANT)) as u64;
    let ok_total = clients[0].gen.stats.completed - clients[0].gen.stats.errors;
    MigrationCell {
        entries,
        state_bytes: outcome.as_ref().map_or(0, |o| o.state_bytes),
        blackout: outcome.as_ref().map_or(0, |o| o.blackout()),
        warm: outcome.as_ref().is_some_and(|o| o.warm),
        retained,
        ok_before,
        ok_after: ok_total - ok_before,
        caps_revoked: c.caps_revoked,
        failed: c.migrations_failed,
        drained,
        sim_cycles,
    }
}

// --- Cell 2: warm vs cold recovery under kills -----------------------------

const HOME: NodeId = NodeId(5);
const CLIENT: NodeId = NodeId(0);
const SPARES: [NodeId; 2] = [NodeId(10), NodeId(12)];

/// One recovery cell: supervised KV under tile kills, warm or cold.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryCell {
    /// Checkpoint interval in cycles (0 = checkpointing off, cold restarts).
    pub interval: u64,
    /// Tile kills injected.
    pub kills: u64,
    /// KV entries preloaded before the first checkpoint.
    pub preloaded: u64,
    /// Preloaded entries still present after the run (and its kills).
    pub retained: u64,
    /// Successful client responses.
    pub completed_ok: u64,
    /// Checkpoints taken by the supervisor.
    pub checkpoints_taken: u64,
    /// Recoveries that restored a snapshot.
    pub warm_restores: u64,
    /// Mean recovery time of supervised incidents (cycles).
    pub mttr_mean: u64,
    /// The post-run drain reached quiescence.
    pub drained: bool,
    /// Simulated cycles at the end of the run.
    pub sim_cycles: u64,
}

/// Drives one recovery cell: a closed-loop writer against a supervised KV
/// service, with two deterministic tile kills when `kill` is set.
pub fn run_recovery(interval: u64, preloaded: u64, kill: bool, duration: u64) -> RecoveryCell {
    let mut sys = System::new(SystemConfig {
        supervisor: SupervisorConfig {
            enabled: true,
            max_restarts: 2,
            restart_backoff: 128,
            spare_nodes: SPARES.to_vec(),
            checkpoint_interval: interval,
        },
        ..SystemConfig::default()
    });
    sys.install(CLIENT, Box::new(idle()), AppId(1), FaultPolicy::FailStop)
        .expect("free");
    sys.deploy_service(
        SVC,
        HOME,
        AppId(1),
        FaultPolicy::FailStop,
        BITSTREAM,
        Box::new(|| Box::new(kv_store())),
    )
    .expect("free");
    let cap = sys.attach_client(CLIENT, SVC).expect("wired");
    for _ in 0..2_000 {
        sys.tick(); // bitstream load; preload lands before the 1st checkpoint
    }
    let accel = sys
        .accel_as_mut::<KvStoreAccel>(HOME)
        .expect("kv installed");
    for i in 0..preloaded {
        accel
            .service_mut()
            .insert(PRELOAD_TENANT, &(i as u32).to_le_bytes(), &[0x5A; 24]);
    }

    // The client writes a rolling window of keys under its own badge; the
    // preload tenant is only ever touched by checkpoints and restores.
    let mut vc = MonitorClient::with_payload(
        CLIENT,
        cap,
        Box::new(|tag| kv::put_req(&((tag % 64) as u32).to_le_bytes(), &[0x42; 24])),
    )
    .window(2);
    vc.timeout = 400;

    let kills_at = if kill {
        vec![duration / 3, 2 * duration / 3]
    } else {
        Vec::new()
    };
    let mut kills = 0u64;
    let mut next = 0usize;
    for _ in 0..duration {
        sys.tick();
        vc.pump(&mut sys);
        let now = sys.now().as_u64();
        if next < kills_at.len() && now >= 2_000 + kills_at[next] {
            if let Some(home) = sys.service_home(SVC) {
                if sys.tile(home).monitor.state() == TileState::Running {
                    sys.inject_fault(home, KILL_CODE);
                    kills += 1;
                    next += 1;
                }
            }
        }
    }
    vc.max_requests = vc.issued;
    let mut drained = false;
    for _ in 0..3 {
        drained = sys.run_until_idle(2_000_000);
        vc.pump(&mut sys);
        if drained {
            break;
        }
    }

    let retained = sys
        .service_home(SVC)
        .and_then(|home| sys.accel_as::<KvStoreAccel>(home))
        .map_or(0, |a| a.service().tenant_len(PRELOAD_TENANT)) as u64;
    let mttr = sys.mttr_samples();
    RecoveryCell {
        interval,
        kills,
        preloaded,
        retained,
        completed_ok: vc.completed - vc.errors,
        checkpoints_taken: sys.checkpoint_store().taken,
        warm_restores: sys.checkpoint_store().warm_restores,
        mttr_mean: if mttr.is_empty() {
            0
        } else {
            mttr.iter().sum::<u64>() / mttr.len() as u64
        },
        drained,
        sim_cycles: sys.now().as_u64(),
    }
}

// --- Cell 3: preemptive tile sharing vs static partitioning ----------------

const SHARED: NodeId = NodeId(5);
const STATIC_B: NodeId = NodeId(6);
const CA: NodeId = NodeId(0);
const CB: NodeId = NodeId(3);
/// Cycles each tenant holds the shared tile.
const SLICE: u64 = 2_500;
/// The active tenant stops issuing this long before the slice boundary so
/// in-flight requests drain before the swap (an RTT is ~30 cycles).
const GUARD: u64 = 300;

/// One sharing cell: two KV tenants, shared tile or static partitioning.
#[derive(Debug, Clone, PartialEq)]
pub struct SharingCell {
    /// `true` = one tile time-multiplexed; `false` = one tile per tenant.
    pub shared: bool,
    /// Tiles consumed by the two tenants.
    pub tiles: u64,
    /// Tenant A successful responses.
    pub a_ok: u64,
    /// Tenant B successful responses.
    pub b_ok: u64,
    /// Tenant A response-time p50/p99 (cycles).
    pub a_p50: u64,
    pub a_p99: u64,
    /// Tenant B response-time p50/p99 (cycles).
    pub b_p50: u64,
    pub b_p99: u64,
    /// Context swaps executed during the measured window.
    pub swaps: u64,
    /// Total partial-reconfig downtime charged for those swaps (cycles).
    pub swap_downtime: u64,
    /// Simulated cycles at the end of the run.
    pub sim_cycles: u64,
}

/// Drives one sharing cell: each tenant's client writes a rolling window
/// of keys, so every swap carries both tenants' real KV state.
pub fn run_sharing(shared: bool, duration: u64) -> SharingCell {
    let mut sys = System::new(SystemConfig::default());
    sys.install(CA, Box::new(idle()), AppId(1), FaultPolicy::FailStop)
        .expect("free");
    sys.install(CB, Box::new(idle()), AppId(2), FaultPolicy::FailStop)
        .expect("free");
    sys.install(
        SHARED,
        Box::new(kv_store()),
        AppId(1),
        FaultPolicy::FailStop,
    )
    .expect("free");
    let cap_a = sys.connect(CA, SHARED, false).expect("same app");
    sys.connect(SHARED, CA, false).expect("reply path");
    let (cap_b, tiles) = if shared {
        sys.install_shared(
            SHARED,
            Box::new(kv_store()),
            AppId(2),
            FaultPolicy::FailStop,
        )
        .expect("second tenant parks");
        // `connect` checks app identity against the *active* tenant, so B
        // is swapped in for its wiring and back out before the run.
        sys.swap_context(SHARED).expect("kv is preemptible");
        let cb = sys.connect(CB, SHARED, false).expect("same app");
        sys.connect(SHARED, CB, false).expect("reply path");
        sys.swap_context(SHARED).expect("swap back");
        (cb, 1)
    } else {
        sys.install(
            STATIC_B,
            Box::new(kv_store()),
            AppId(2),
            FaultPolicy::FailStop,
        )
        .expect("free");
        let cb = sys.connect(CB, STATIC_B, false).expect("same app");
        sys.connect(STATIC_B, CB, false).expect("reply path");
        (cb, 2)
    };

    let mk = |node, cap| {
        let mut cl = MonitorClient::with_payload(
            node,
            cap,
            Box::new(|tag: u64| kv::put_req(&((tag % 32) as u32).to_le_bytes(), &[0x6B; 16])),
        )
        .window(2);
        cl.timeout = 0; // the slice gate bounds waiting; never abandon
        cl
    };
    let mut ca = mk(CA, cap_a);
    let mut cb = mk(CB, cap_b);

    let mut swaps = 0u64;
    let mut swap_downtime = 0u64;
    if shared {
        // A starts active; B's client is gated until its first slice.
        cb.max_requests = 0;
        let t0 = sys.now().as_u64();
        let mut a_active = true;
        let mut next_swap = t0 + SLICE;
        while sys.now().as_u64() < t0 + duration {
            sys.tick();
            let now = sys.now().as_u64();
            if now + GUARD >= next_swap {
                let act = if a_active { &mut ca } else { &mut cb };
                act.max_requests = act.issued;
            }
            ca.pump(&mut sys);
            cb.pump(&mut sys);
            if now >= next_swap {
                if let Ok((out, inn)) = sys.swap_context(SHARED) {
                    swaps += 1;
                    swap_downtime += preemption_downtime(out + inn);
                    a_active = !a_active;
                    let act = if a_active { &mut ca } else { &mut cb };
                    act.max_requests = u64::MAX;
                }
                next_swap = now + SLICE;
            }
        }
    } else {
        for _ in 0..duration {
            sys.tick();
            ca.pump(&mut sys);
            cb.pump(&mut sys);
        }
    }
    ca.max_requests = ca.issued;
    cb.max_requests = cb.issued;
    for _ in 0..3 {
        let drained = sys.run_until_idle(2_000_000);
        ca.pump(&mut sys);
        cb.pump(&mut sys);
        if drained {
            break;
        }
    }

    SharingCell {
        shared,
        tiles,
        a_ok: ca.completed - ca.errors,
        b_ok: cb.completed - cb.errors,
        a_p50: ca.rtt.p50(),
        a_p99: ca.rtt.p99(),
        b_p50: cb.rtt.p50(),
        b_p99: cb.rtt.p99(),
        swaps,
        swap_downtime,
        sim_cycles: sys.now().as_u64(),
    }
}

// --- The experiment --------------------------------------------------------

/// The whole experiment: migration sweep, recovery cells, sharing cells.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckpointReport {
    /// Migration cells, one per preload size.
    pub migrations: Vec<MigrationCell>,
    /// Recovery cells: fault-free baseline, cold, warm.
    pub recovery: Vec<RecoveryCell>,
    /// Sharing cells: static partitioning, then shared.
    pub sharing: Vec<SharingCell>,
}

/// Executes every cell.
pub fn execute(quick: bool) -> CheckpointReport {
    let mig_duration: u64 = if quick { 50_000 } else { 80_000 };
    let rec_duration: u64 = if quick { 36_000 } else { 90_000 };
    let share_duration: u64 = if quick { 30_000 } else { 80_000 };
    let interval: u64 = 4_000;
    let preloaded: u64 = 200;

    let migrations: Vec<MigrationCell> = [64u64, 512, 2048]
        .iter()
        .map(|&n| run_migration(n, mig_duration))
        .collect();
    for m in &migrations {
        assert!(
            m.drained,
            "migration cell ({} entries) failed to drain",
            m.entries
        );
        assert_eq!(m.failed, 0, "a migration failed");
    }
    let recovery = vec![
        run_recovery(0, preloaded, false, rec_duration), // fault-free baseline
        run_recovery(0, preloaded, true, rec_duration),  // cold restarts
        run_recovery(interval, preloaded, true, rec_duration), // warm restores
    ];
    for r in &recovery {
        assert!(
            r.drained,
            "recovery cell (interval {}) failed to drain",
            r.interval
        );
    }
    let sharing = vec![
        run_sharing(false, share_duration),
        run_sharing(true, share_duration),
    ];
    CheckpointReport {
        migrations,
        recovery,
        sharing,
    }
}

impl CheckpointReport {
    /// Fraction of preloaded KV contents surviving a recovery cell.
    pub fn retention(r: &RecoveryCell) -> f64 {
        r.retained as f64 / r.preloaded.max(1) as f64
    }

    /// Human-readable report.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "E19: Checkpoint/restore plane — warm recovery, live migration, tile sharing\n"
        );

        let mut t = TextTable::new(&[
            "preload",
            "state bytes",
            "blackout (cyc)",
            "warm",
            "retained",
            "ok before",
            "ok after",
            "caps revoked",
        ]);
        for m in &self.migrations {
            t.row_owned(vec![
                m.entries.to_string(),
                m.state_bytes.to_string(),
                m.blackout.to_string(),
                m.warm.to_string(),
                format!("{}/{}", m.retained, m.entries),
                m.ok_before.to_string(),
                m.ok_after.to_string(),
                m.caps_revoked.to_string(),
            ]);
        }
        let _ = writeln!(out, "Live migration (board 0 -> 1):\n{}", t.render());

        let mut t = TextTable::new(&[
            "policy",
            "kills",
            "kv retention",
            "ok responses",
            "checkpoints",
            "warm restores",
            "mean MTTR (cyc)",
        ]);
        for r in &self.recovery {
            let policy = if r.kills == 0 {
                "baseline (no kills)".to_string()
            } else if r.interval == 0 {
                "cold restart".to_string()
            } else {
                format!("checkpoint every {}", r.interval)
            };
            t.row_owned(vec![
                policy,
                r.kills.to_string(),
                format!("{:.1}%", Self::retention(r) * 100.0),
                r.completed_ok.to_string(),
                r.checkpoints_taken.to_string(),
                r.warm_restores.to_string(),
                r.mttr_mean.to_string(),
            ]);
        }
        let _ = writeln!(
            out,
            "Warm vs cold recovery (supervised KV, 2 kills):\n{}",
            t.render()
        );

        let mut t = TextTable::new(&[
            "layout",
            "tiles",
            "A ok",
            "B ok",
            "A p50/p99",
            "B p50/p99",
            "swaps",
            "swap downtime (cyc)",
        ]);
        for s in &self.sharing {
            t.row_owned(vec![
                if s.shared {
                    "shared (preemptive)"
                } else {
                    "static (2 tiles)"
                }
                .to_string(),
                s.tiles.to_string(),
                s.a_ok.to_string(),
                s.b_ok.to_string(),
                format!("{}/{}", s.a_p50, s.a_p99),
                format!("{}/{}", s.b_p50, s.b_p99),
                s.swaps.to_string(),
                s.swap_downtime.to_string(),
            ]);
        }
        let _ = writeln!(
            out,
            "Preemptive sharing vs static partitioning:\n{}",
            t.render()
        );

        let _ = writeln!(
            out,
            "Reading: blackout grows with state size (fixed quiesce + per-byte fabric\n\
             serialization + per-byte ICAP restore) while the client keeps resolving the\n\
             service by name — zero re-attach. Checkpointed restarts restore the latest\n\
             snapshot, so the preload survives every kill; cold restarts retain nothing.\n\
             Sharing one tile halves the tile budget at the cost of per-swap\n\
             partial-reconfig downtime and slice-boundary waits in tenant p99."
        );
        out
    }
}

/// Builds the structured report.
pub fn report(quick: bool) -> ExperimentReport {
    let r = execute(quick);
    let sim_cycles: u64 = r.migrations.iter().map(|m| m.sim_cycles).sum::<u64>()
        + r.recovery.iter().map(|c| c.sim_cycles).sum::<u64>()
        + r.sharing.iter().map(|c| c.sim_cycles).sum::<u64>();

    let migrations: Vec<Json> = r
        .migrations
        .iter()
        .map(|m| {
            Json::obj()
                .set("entries", m.entries)
                .set("state_bytes", m.state_bytes)
                .set("blackout_cycles", m.blackout)
                .set("warm", m.warm)
                .set("retained", m.retained)
                .set(
                    "retention",
                    round3(m.retained as f64 / m.entries.max(1) as f64),
                )
                .set("ok_before", m.ok_before)
                .set("ok_after", m.ok_after)
                .set("caps_revoked", m.caps_revoked)
                .set("drained", m.drained)
                .set("sim_cycles", m.sim_cycles)
        })
        .collect();
    let recovery: Vec<Json> = r
        .recovery
        .iter()
        .map(|c| {
            Json::obj()
                .set("checkpoint_interval", c.interval)
                .set("kills", c.kills)
                .set("preloaded", c.preloaded)
                .set("retained", c.retained)
                .set("kv_retention", round3(CheckpointReport::retention(c)))
                .set("completed_ok", c.completed_ok)
                .set("checkpoints_taken", c.checkpoints_taken)
                .set("warm_restores", c.warm_restores)
                .set("mttr_mean", c.mttr_mean)
                .set("drained", c.drained)
                .set("sim_cycles", c.sim_cycles)
        })
        .collect();
    let sharing: Vec<Json> = r
        .sharing
        .iter()
        .map(|s| {
            Json::obj()
                .set("layout", if s.shared { "shared" } else { "static" })
                .set("tiles", s.tiles)
                .set("a_ok", s.a_ok)
                .set("b_ok", s.b_ok)
                .set("a_p50", s.a_p50)
                .set("a_p99", s.a_p99)
                .set("b_p50", s.b_p50)
                .set("b_p99", s.b_p99)
                .set("swaps", s.swaps)
                .set("swap_downtime_cycles", s.swap_downtime)
                .set("sim_cycles", s.sim_cycles)
        })
        .collect();
    let mut metrics = Json::obj();
    metrics.put("migrations", Json::Arr(migrations));
    metrics.put("recovery", Json::Arr(recovery));
    metrics.put("sharing", Json::Arr(sharing));
    ExperimentReport::new(
        "E19",
        "Checkpoint/restore plane: warm recovery, live migration, tile sharing",
        sim_cycles,
        metrics,
        r.render(),
    )
}

/// Runs the experiment; returns the report text.
pub fn run(quick: bool) -> String {
    execute(quick).render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blackout_scales_and_migration_is_warm() {
        let d = 50_000;
        let small = run_migration(64, d);
        let large = run_migration(2048, d);
        assert!(small.warm && large.warm, "both migrations restore warm");
        assert_eq!(small.retained, 64);
        assert_eq!(large.retained, 2048);
        assert!(
            large.blackout > small.blackout,
            "blackout must scale with state: {} !> {}",
            large.blackout,
            small.blackout
        );
        assert!(small.ok_after > 0, "post-migration requests answered");
        assert!(small.caps_revoked > 0, "stale gateway caps revoked");
    }

    #[test]
    fn warm_recovery_retains_kv_cold_does_not() {
        let d = 36_000;
        let cold = run_recovery(0, 200, true, d);
        let warm = run_recovery(4_000, 200, true, d);
        assert_eq!(cold.kills, 2);
        assert_eq!(warm.kills, 2);
        assert_eq!(cold.retained, 0, "cold restart is factory-fresh");
        assert!(
            CheckpointReport::retention(&warm) >= 0.99,
            "warm retention {:.3} below 99%",
            CheckpointReport::retention(&warm)
        );
        assert!(warm.checkpoints_taken >= 2);
        assert_eq!(warm.warm_restores, 2, "both kills restored a snapshot");
        assert_eq!(cold.warm_restores, 0);
    }

    #[test]
    fn sharing_trades_tiles_for_latency() {
        let d = 30_000;
        let fixed = run_sharing(false, d);
        let shared = run_sharing(true, d);
        assert_eq!(fixed.tiles, 2);
        assert_eq!(shared.tiles, 1);
        assert!(shared.swaps >= 8, "swaps ran: {}", shared.swaps);
        assert!(shared.swap_downtime > 0);
        assert!(shared.a_ok > 0 && shared.b_ok > 0, "both tenants served");
        assert!(
            shared.a_p99 > fixed.a_p99,
            "sharing shows up in p99: {} !> {}",
            shared.a_p99,
            fixed.a_p99
        );
    }

    #[test]
    fn cells_are_deterministic() {
        assert_eq!(run_migration(256, 40_000), run_migration(256, 40_000));
        assert_eq!(
            run_recovery(4_000, 100, true, 30_000),
            run_recovery(4_000, 100, true, 30_000)
        );
        assert_eq!(run_sharing(true, 20_000), run_sharing(true, 20_000));
    }
}
