//! E11 — Mutually distrusting tenants on one board (§2, §4.1).
//!
//! The paper's multi-tenant scenario: a KV-store application co-located
//! with the video-pipeline application, sharing only the NoC and OS
//! services. We measure the KV tenant's latency:
//!
//! 1. alone on the board,
//! 2. co-located with the (well-behaved) video pipeline,
//! 3. co-located with a *misbehaving* tenant flooding the KV store,
//! 4. same, with the monitor rate limit on the attacker.
//!
//! Expected shape: honest co-location costs almost nothing (separate tiles,
//! mostly disjoint NoC paths); an undefended flood wrecks the KV tenant;
//! the monitor restores it. Cross-tenant data isolation is also asserted:
//! the KV store namespaces by capability badge, so the attacker reads
//! nothing of the victim's data even while connected to the same store.

use crate::report::{ExperimentReport, Json};
use crate::scenarios::{drive, MonitorClient};
use crate::table::TextTable;
use apiary_accel::apps::compress::compressor;
use apiary_accel::apps::flood::flooder;
use apiary_accel::apps::idle::idle;
use apiary_accel::apps::kv::{self, KvStoreAccel};
use apiary_accel::apps::video::{encode_request, video_encoder};
use apiary_accel::codec::video::Frame;
use apiary_core::{AppId, FaultPolicy, System, SystemConfig};
use apiary_monitor::{Monitor, MonitorConfig};
use apiary_noc::NodeId;
use core::fmt::Write;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Scenario {
    KvAlone,
    WithVideo,
    WithFlood,
    WithFloodDefended,
}

struct Outcome {
    kv_p50: u64,
    kv_p99: u64,
    kv_errors: u64,
    video_frames: u64,
    tenant_isolation_held: bool,
    cycles: u64,
}

fn run_scenario(s: Scenario, requests: u64) -> Outcome {
    let kv_client = NodeId(0);
    let kv_node = NodeId(5);
    let vid_client = NodeId(3);
    let enc = NodeId(7);
    let comp = NodeId(11);
    let attacker = NodeId(10);
    let mut sys = System::new(SystemConfig::default());

    // Tenant A: the KV store application.
    sys.install(kv_client, Box::new(idle()), AppId(1), FaultPolicy::Preempt)
        .expect("free");
    sys.install(
        kv_node,
        Box::new(kv::kv_store()),
        AppId(1),
        FaultPolicy::Preempt,
    )
    .expect("free");
    let kv_cap = sys
        .connect_badged(kv_client, kv_node, 0xA, false)
        .expect("same app");
    sys.connect(kv_node, kv_client, false).expect("reply path");

    // Tenant B: the video pipeline (honest neighbour).
    let with_video = matches!(
        s,
        Scenario::WithVideo | Scenario::WithFlood | Scenario::WithFloodDefended
    );
    let mut vid = None;
    if with_video {
        sys.install(
            vid_client,
            Box::new(idle()),
            AppId(2),
            FaultPolicy::FailStop,
        )
        .expect("free");
        sys.install(
            enc,
            Box::new(video_encoder(0)),
            AppId(2),
            FaultPolicy::FailStop,
        )
        .expect("free");
        sys.install(
            comp,
            Box::new(compressor()),
            AppId(2),
            FaultPolicy::FailStop,
        )
        .expect("free");
        let to_enc = sys.connect(vid_client, enc, false).expect("same app");
        sys.connect_env(enc, comp, "next", false).expect("same app");
        sys.connect_env(comp, vid_client, "next", false)
            .expect("same app");
        vid = Some(
            MonitorClient::with_payload(
                vid_client,
                to_enc,
                Box::new(|tag| encode_request(&Frame::test_pattern(32, 32, tag))),
            )
            .window(2),
        );
    }

    // Tenant C: a misbehaving tenant of the same KV store.
    if matches!(s, Scenario::WithFlood | Scenario::WithFloodDefended) {
        let mut f = flooder(64);
        // The attacker is a legitimate-but-abusive tenant: it sends valid
        // PUTs, which cost the store real work per message.
        f.service_mut().template = Some(kv::put_req(b"flood-key", &[0x55; 40]).into());
        sys.install(attacker, Box::new(f), AppId(3), FaultPolicy::FailStop)
            .expect("free");
        if s == Scenario::WithFloodDefended {
            sys.tile_mut(attacker).monitor = Monitor::new(
                attacker,
                MonitorConfig {
                    rate: Some((50, 512)),
                    ..MonitorConfig::default()
                },
            );
        }
        // Badged connection: the store attributes the attacker's keys to
        // badge 0xB, fully separate from the victim's namespace.
        let target = sys
            .connect_badged(attacker, kv_node, 0xB, true)
            .expect("explicit cross-app");
        sys.grant_env(attacker, "target", target);
        sys.connect(kv_node, attacker, true).expect("reply path");
    }

    // Victim workload: PUT then GET per pair of requests.
    let mut kvc = MonitorClient::with_payload(
        kv_client,
        kv_cap,
        Box::new(|tag| {
            let key = format!("key-{}", tag / 2);
            if tag % 2 == 0 {
                kv::put_req(key.as_bytes(), b"victim-secret")
            } else {
                kv::get_req(key.as_bytes())
            }
        }),
    )
    .window(1)
    .max_requests(requests);
    kvc.timeout = 200_000;

    match vid.as_mut() {
        Some(v) => {
            // The video tenant pushes a fixed number of frames; the run
            // ends when both tenants finish, so the KV measurements overlap
            // the video activity.
            v.max_requests = (requests / 4).max(4);
            let mut clients = [&mut kvc, v];
            for _ in 0..100_000_000u64 {
                sys.tick();
                // Separate tiles, so individual pumps are safe.
                for c in clients.iter_mut() {
                    c.pump(&mut sys);
                }
                if clients.iter().all(|c| c.done()) {
                    break;
                }
            }
        }
        None => {
            drive(&mut sys, &mut [&mut kvc], 100_000_000);
        }
    }
    assert!(kvc.done(), "KV tenant never finished");

    // Isolation check: every victim key lives under badge 0xA and the
    // attacker's writes never leak into that namespace (its own keys sit
    // under badge 0xB). Victim PUTs use distinct keys, so the count is
    // exactly the number of successful PUTs.
    let store = sys
        .accel_as::<KvStoreAccel>(kv_node)
        .expect("store installed");
    let victim_keys = store.service().tenant_len(0xA_u64);
    let expected_victim_keys = requests.div_ceil(2) as usize;
    let flood_present = matches!(s, Scenario::WithFlood | Scenario::WithFloodDefended);
    let attacker_keys = store.service().tenant_len(0xB_u64);
    let isolation = victim_keys <= expected_victim_keys
        && victim_keys > 0
        && (attacker_keys <= 1)
        && (flood_present || attacker_keys == 0);

    Outcome {
        kv_p50: kvc.rtt.p50(),
        kv_p99: kvc.rtt.p99(),
        kv_errors: kvc.errors + kvc.lost,
        video_frames: vid.map(|v| v.completed).unwrap_or(0),
        tenant_isolation_held: isolation,
        cycles: sys.now().as_u64(),
    }
}

/// Runs the experiment; returns the structured report.
pub fn report(quick: bool) -> ExperimentReport {
    let requests = if quick { 30 } else { 200 };
    let mut out = String::new();
    let _ = writeln!(
        out,
        "E11: Multi-tenant board — KV store + video pipeline + a misbehaving tenant\n"
    );
    let mut t = TextTable::new(&[
        "scenario",
        "KV p50",
        "KV p99",
        "KV errors/lost",
        "video frames",
        "data isolation",
    ]);
    let mut sim_cycles = 0u64;
    let mut metrics = Json::obj().set("requests", requests);
    for (name, s) in [
        ("KV alone", Scenario::KvAlone),
        ("KV + video pipeline", Scenario::WithVideo),
        ("KV + video + flooding tenant", Scenario::WithFlood),
        (
            "KV + video + flooder rate-limited",
            Scenario::WithFloodDefended,
        ),
    ] {
        let o = run_scenario(s, requests);
        sim_cycles += o.cycles;
        let key = match s {
            Scenario::KvAlone => "kv_alone",
            Scenario::WithVideo => "with_video",
            Scenario::WithFlood => "with_flood",
            Scenario::WithFloodDefended => "flood_defended",
        };
        metrics.put(
            key,
            Json::obj()
                .set("kv_p50", o.kv_p50)
                .set("kv_p99", o.kv_p99)
                .set("isolation_held", o.tenant_isolation_held),
        );
        t.row_owned(vec![
            name.to_string(),
            o.kv_p50.to_string(),
            o.kv_p99.to_string(),
            o.kv_errors.to_string(),
            o.video_frames.to_string(),
            o.tenant_isolation_held.to_string(),
        ]);
    }
    let _ = writeln!(out, "{}", t.render());
    let _ = writeln!(
        out,
        "Reading: honest co-location is nearly free (distinct tiles, mostly disjoint\n\
         paths). A flooding co-tenant of the *same store* is the §2 threat — and the\n\
         monitor's rate limit restores the victim while badge-namespacing keeps the\n\
         attacker's reads away from the victim's keys throughout."
    );
    ExperimentReport::new(
        "E11",
        "Mutually distrusting tenants: co-location, attack, defense",
        sim_cycles,
        metrics,
        out,
    )
}

/// Runs the experiment; returns the report text.
pub fn run(quick: bool) -> String {
    report(quick).rendered
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn honest_colocation_is_cheap() {
        let alone = run_scenario(Scenario::KvAlone, 20);
        let shared = run_scenario(Scenario::WithVideo, 20);
        assert!(
            shared.kv_p50 < alone.kv_p50 * 3,
            "video neighbour tripled KV latency: {} vs {}",
            shared.kv_p50,
            alone.kv_p50
        );
        assert!(shared.video_frames > 0);
        assert!(alone.tenant_isolation_held);
    }

    #[test]
    fn flood_hurts_then_rate_limit_heals() {
        let flooded = run_scenario(Scenario::WithFlood, 20);
        let defended = run_scenario(Scenario::WithFloodDefended, 20);
        assert!(
            defended.kv_p99 < flooded.kv_p99,
            "defended {} vs flooded {}",
            defended.kv_p99,
            flooded.kv_p99
        );
        assert!(
            flooded.tenant_isolation_held,
            "badges must hold under attack"
        );
    }

    #[test]
    fn report_renders() {
        let out = run(true);
        assert!(out.contains("KV alone"));
        assert!(out.contains("flooder rate-limited"));
    }
}
