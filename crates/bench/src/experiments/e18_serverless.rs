//! E18 — Serverless orchestration: cold starts, warm pools, autoscaling,
//! scale-to-zero (DESIGN.md §6).
//!
//! An open-loop invocation storm drives a [`FaasSystem`] over a four-board
//! fleet: two base tenants issue Poisson arrivals against eight functions
//! with Zipf-distributed popularity, a ninth "idle" function is touched a
//! few times and then abandoned, and mid-run a flash-crowd tenant hammers
//! the hottest function at several times its admitted allowance. The cell
//! must show, in one run:
//!
//! - **Cold vs warm**: invocations arriving with zero live replicas pay
//!   the measured cold start (store fetch on a cache miss, ICAP load,
//!   republish, gossip) — their p99 must sit well above the warm p99.
//! - **Autoscaling**: the hot function's pool grows toward one replica
//!   per board as the flash crowd deepens its queue, then shrinks back.
//! - **Scale-to-zero**: the idle function's replicas drop to zero by the
//!   75% mark and a re-invocation at 80% succeeds with a measured cold
//!   start.
//! - **Goodput retention**: per-tenant admission sheds the flash tenant at
//!   the front door, so the base tenants' ok-rate during the crowd stays
//!   close to their pre-crowd rate.
//!
//! Reported: cold/warm p50+p99, goodput retention, the replica/queue
//! timeline sampled at every autoscale boundary, per-function lifecycle
//! counters, bitstream-cache hits/misses/evictions, and admission sheds.

use crate::report::{round3, ExperimentReport, Json};
use crate::table::TextTable;
use apiary_accel::apps::echo::echo;
use apiary_cluster::ClusterConfig;
use apiary_core::AppId;
use apiary_faas::{AdmissionConfig, FaasConfig, FaasStats, FaasSystem, FunctionSpec};
use apiary_resources::Area;
use apiary_sim::{Cycle, SimRng};
use core::fmt::Write;
use std::rc::Rc;

const BOARDS: u16 = 4;
/// Zipf-popular functions; index 0 is the hottest.
const FUNCTIONS: usize = 8;
const ZIPF_THETA: f64 = 0.9;
/// Service cost per invocation, busy cycles.
const ECHO_COST: u64 = 50;
/// Per-base-tenant mean interarrival (two tenants → 0.04 inv/cycle).
const BASE_INTERARRIVAL: f64 = 50.0;
/// Flash-crowd mean interarrival — ~2.5x one tenant's admitted allowance,
/// all aimed at the hottest function.
const FLASH_INTERARRIVAL: f64 = 8.0;
/// Cycles between autoscaler boundaries (and timeline samples).
const AUTOSCALE_INTERVAL: u64 = 2_000;
/// Absolute cycles at which the idle function is touched before being
/// abandoned (its last pre-abandonment activity ends well before the
/// first autoscale idle window).
const IDLE_TOUCHES: [u64; 3] = [200, 2_200, 4_200];
const DRAIN_LIMIT: u64 = 400_000;
const SEED: u64 = 0xE18_0001;

/// One timeline sample, taken at an autoscale boundary.
#[derive(Debug, Clone, Copy)]
pub struct Sample {
    /// Sample cycle.
    pub cycle: u64,
    /// Live replicas, all functions.
    pub live: usize,
    /// Live replicas of the hottest function.
    pub hot_live: usize,
    /// Live replicas of the idle function.
    pub idle_live: usize,
    /// Queued invocations, all functions.
    pub queued: usize,
    /// Mean elastic-area utilisation across boards.
    pub mean_util: f64,
}

/// Aggregated bitstream-cache counters across the fleet.
#[derive(Debug, Clone, Copy)]
pub struct CacheTotals {
    pub hits: u64,
    pub misses: u64,
    pub evictions: u64,
    pub bytes_evicted: u64,
}

/// The whole cell's measurements.
#[derive(Debug, Clone)]
pub struct ServerlessReport {
    /// Cycles of driven load.
    pub duration: u64,
    /// Flash-crowd window `[start, end)`.
    pub flash: (u64, u64),
    /// Cold-start latency (p50, p99) of successful cold arrivals.
    pub cold: (u64, u64),
    /// Warm latency (p50, p99) of successful warm arrivals.
    pub warm: (u64, u64),
    /// Invocations that arrived cold / warm (admitted only).
    pub cold_count: u64,
    pub warm_count: u64,
    /// Base tenants' ok-rate during the flash window over their pre-flash
    /// ok-rate (arrival-classified).
    pub goodput_retention: f64,
    /// Base-tenant ok completions arriving before / during the flash.
    pub pre_ok: u64,
    pub flash_ok: u64,
    /// Flash-tenant invocations shed at admission / admitted.
    pub flash_shed: u64,
    pub flash_admitted: u64,
    /// Live replicas of the idle function at the 75% mark (must be 0).
    pub idle_replicas_at_75: usize,
    /// Measured cold-start latency of the idle function's re-invocation at
    /// the 80% mark (0 if it failed — the test rejects that).
    pub idle_reinvoke_latency: u64,
    /// Peak live replicas of the hot function (autoscaling evidence).
    pub hot_peak_live: usize,
    /// Per-function end-of-run stats, `FUNCTIONS` entries then the idle fn.
    pub fn_stats: Vec<FaasStats>,
    /// Replica/queue timeline at every autoscale boundary.
    pub timeline: Vec<Sample>,
    pub cache: CacheTotals,
    /// Scale-ups denied for want of a tile or area.
    pub scale_up_denied: u64,
    /// Queue flushes deferred by gateway backpressure.
    pub refusals: u64,
    /// Invocations expired waiting for a replica.
    pub expired: u64,
    /// Replica deploys / reclaims, all functions.
    pub deploys: u64,
    pub reclaims: u64,
    /// The post-load drain reached quiescence (must always be true).
    pub drained: bool,
    /// Simulated cycles at the end of the run.
    pub sim_cycles: u64,
}

fn build(duration: u64) -> (FaasSystem, usize) {
    let mut s = FaasSystem::new(FaasConfig {
        cluster: ClusterConfig {
            boards: BOARDS,
            // Mild (~1.1x) transient overload during the flash ramp: a
            // generous cluster timeout keeps queued-then-submitted work
            // alive while the pool grows.
            request_timeout: 12_000,
            ..ClusterConfig::default()
        },
        // Small enough that a board hosting a few functions evicts: the
        // eight bitstreams sum to ~57 KiB.
        cache_bytes: 12 << 10,
        autoscale_interval: AUTOSCALE_INTERVAL,
        idle_intervals_to_zero: 3,
        queue_timeout: 10_000,
        // 0.05 inv/cycle sustained per tenant: both base tenants fit with
        // 2x headroom; the flash tenant (0.125 offered) is mostly shed.
        admission: AdmissionConfig {
            rate_milli_inv_per_cycle: 50,
            burst_invocations: 16,
        },
        seed: SEED,
        ..FaasConfig::default()
    });
    for i in 0..FUNCTIONS {
        // Popularity rank i: hotter functions get smaller bitstreams, so
        // the tail's rare cold starts carry the biggest fetches.
        s.register(FunctionSpec {
            name: format!("fn{i}"),
            footprint: Area::logic(90_000 + 8_000 * i as u64, 100_000),
            bitstream_bytes: 3_000 + 1_250 * i as u64,
            app: AppId(10 + i as u32),
            factory: Rc::new(|| Box::new(echo(ECHO_COST))),
        });
    }
    let idle_fn = s.register(FunctionSpec {
        name: "fn-idle".to_string(),
        footprint: Area::logic(90_000, 100_000),
        bitstream_bytes: 4_096,
        app: AppId(30),
        factory: Rc::new(|| Box::new(echo(ECHO_COST))),
    });
    let _ = duration;
    (s, idle_fn)
}

/// Drives the storm and collects the cell's measurements.
pub fn execute(quick: bool) -> ServerlessReport {
    let duration: u64 = if quick { 60_000 } else { 150_000 };
    let flash_start = duration * 2 / 5;
    let flash_end = duration * 3 / 5;
    let idle_check_at = duration * 3 / 4;
    let idle_reinvoke_at = duration * 4 / 5;

    let (mut s, idle_fn) = build(duration);
    let mut rng = SimRng::new(SEED ^ 0x5707);
    let draw = |r: &mut SimRng, mean: f64| (r.gen_exp(mean).ceil() as u64).max(1);

    // Absolute next-arrival cycles per stream. Every one of these is a
    // step_toward horizon, so both clocks execute the exact same schedule.
    let mut next_base = [
        draw(&mut rng, BASE_INTERARRIVAL),
        draw(&mut rng, BASE_INTERARRIVAL),
    ];
    let mut next_flash = flash_start;
    let mut next_sample = 0u64;
    let mut idle_i = 0usize;
    let mut idle_checked = false;
    let mut idle_reinvoked = false;
    let mut idle_replicas_at_75 = usize::MAX;
    let mut origin_rr = 0u64;
    let mut timeline = Vec::new();
    let mut hot_peak_live = 0usize;

    while s.now().as_u64() < duration {
        let now = s.now().as_u64();
        if next_sample <= now {
            let live: usize = (0..s.function_count()).map(|f| s.stats(f).live).sum();
            let queued: usize = (0..s.function_count())
                .map(|f| s.stats(f).queue_depth)
                .sum();
            let util: f64 =
                (0..BOARDS).map(|b| s.board_utilisation(b)).sum::<f64>() / BOARDS as f64;
            let hot_live = s.live_replicas(0);
            hot_peak_live = hot_peak_live.max(hot_live);
            timeline.push(Sample {
                cycle: now,
                live,
                hot_live,
                idle_live: s.live_replicas(idle_fn),
                queued,
                mean_util: util,
            });
            next_sample += AUTOSCALE_INTERVAL;
        }
        if !idle_checked && idle_check_at <= now {
            idle_replicas_at_75 = s.live_replicas(idle_fn);
            idle_checked = true;
        }
        if !idle_reinvoked && idle_reinvoke_at <= now {
            s.invoke(
                idle_fn,
                0,
                (origin_rr % BOARDS as u64) as u16,
                vec![0u8; 32],
            );
            origin_rr += 1;
            idle_reinvoked = true;
        }
        while idle_i < IDLE_TOUCHES.len() && IDLE_TOUCHES[idle_i] <= now {
            s.invoke(
                idle_fn,
                0,
                (origin_rr % BOARDS as u64) as u16,
                vec![0u8; 32],
            );
            origin_rr += 1;
            idle_i += 1;
        }
        for (t, next) in next_base.iter_mut().enumerate() {
            while *next <= now {
                let f = rng.gen_zipf(FUNCTIONS, ZIPF_THETA);
                s.invoke(
                    f,
                    t as u32,
                    (origin_rr % BOARDS as u64) as u16,
                    vec![0u8; 32],
                );
                origin_rr += 1;
                *next += draw(&mut rng, BASE_INTERARRIVAL);
            }
        }
        if now >= flash_start && now < flash_end {
            while next_flash <= now {
                s.invoke(0, 2, (origin_rr % BOARDS as u64) as u16, vec![0u8; 32]);
                origin_rr += 1;
                next_flash += draw(&mut rng, FLASH_INTERARRIVAL);
            }
        }

        let mut horizon = duration.min(next_sample);
        if !idle_checked {
            horizon = horizon.min(idle_check_at);
        }
        if !idle_reinvoked {
            horizon = horizon.min(idle_reinvoke_at);
        }
        if idle_i < IDLE_TOUCHES.len() {
            horizon = horizon.min(IDLE_TOUCHES[idle_i]);
        }
        horizon = horizon.min(next_base[0]).min(next_base[1]);
        if now < flash_end {
            horizon = horizon.min(next_flash.max(flash_start));
        }
        s.step_toward(Cycle(horizon));
    }

    // Stop issuing and drain: the storm may expire queued work, never
    // wedge the plane.
    let drained = s.run_until(DRAIN_LIMIT, |s| s.quiescent());
    assert!(drained, "serverless plane failed to drain");
    let sim_cycles = s.now().as_u64();

    // Arrival-classified phase accounting from the exact per-invocation
    // records (histogram quantiles are bucketed; these are not).
    let finished = s.take_finished();
    let mut pre_ok = 0u64;
    let mut flash_ok = 0u64;
    let mut idle_reinvoke_latency = 0u64;
    for f in &finished {
        let at = f.arrival.as_u64();
        if f.ok && f.tenant < 2 {
            if at < flash_start {
                pre_ok += 1;
            } else if at < flash_end {
                flash_ok += 1;
            }
        }
        if f.ok && f.fn_idx == idle_fn && at >= idle_reinvoke_at {
            idle_reinvoke_latency = f.finished_at - f.arrival;
        }
    }
    let pre_rate = pre_ok as f64 / flash_start.max(1) as f64;
    let flash_rate = flash_ok as f64 / (flash_end - flash_start).max(1) as f64;
    let goodput_retention = if pre_rate > 0.0 {
        flash_rate / pre_rate
    } else {
        0.0
    };

    let fn_stats: Vec<FaasStats> = (0..s.function_count()).map(|f| s.stats(f)).collect();
    let mut cache = CacheTotals {
        hits: 0,
        misses: 0,
        evictions: 0,
        bytes_evicted: 0,
    };
    for b in 0..BOARDS {
        let c = s.cache(b);
        cache.hits += c.hits;
        cache.misses += c.misses;
        cache.evictions += c.evictions;
        cache.bytes_evicted += c.bytes_evicted;
    }
    let cold_count: u64 = fn_stats.iter().map(|st| st.cold_invocations).sum();
    let warm_count: u64 = fn_stats
        .iter()
        .map(|st| st.invocations - st.cold_invocations)
        .sum();

    ServerlessReport {
        duration,
        flash: (flash_start, flash_end),
        cold: (
            s.cold_latency.histogram().p50(),
            s.cold_latency.histogram().p99(),
        ),
        warm: (
            s.warm_latency.histogram().p50(),
            s.warm_latency.histogram().p99(),
        ),
        cold_count,
        warm_count,
        goodput_retention,
        pre_ok,
        flash_ok,
        flash_shed: s.admission().shed_for(2),
        // Every admitted invocation finishes by the drain, so the finished
        // log is the exact admitted count per tenant.
        flash_admitted: finished.iter().filter(|f| f.tenant == 2).count() as u64,
        idle_replicas_at_75,
        idle_reinvoke_latency,
        hot_peak_live,
        fn_stats,
        timeline,
        cache,
        scale_up_denied: s.scale_up_denied,
        refusals: s.refusals,
        expired: (0..s.function_count()).map(|f| s.stats(f).expired).sum(),
        deploys: (0..s.function_count()).map(|f| s.stats(f).deploys).sum(),
        reclaims: (0..s.function_count()).map(|f| s.stats(f).reclaims).sum(),
        drained,
        sim_cycles,
    }
}

impl ServerlessReport {
    /// Human-readable report.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "E18: Serverless orchestration — cold starts, warm pools, scale-to-zero\n\
             ({} cycles of open-loop load on {BOARDS} boards: {FUNCTIONS} Zipf({ZIPF_THETA}) \
             functions + 1 idle fn, echo cost {ECHO_COST}, flash crowd on fn0 in \
             [{}, {}))\n",
            self.duration, self.flash.0, self.flash.1
        );
        let mut t = TextTable::new(&[
            "fn", "invoked", "cold", "ok", "err", "expired", "deploys", "reclaims", "live@end",
        ]);
        for (i, st) in self.fn_stats.iter().enumerate() {
            let name = if i < FUNCTIONS {
                format!("fn{i}")
            } else {
                "fn-idle".to_string()
            };
            t.row_owned(vec![
                name,
                st.invocations.to_string(),
                st.cold_invocations.to_string(),
                st.completed_ok.to_string(),
                st.completed_err.to_string(),
                st.expired.to_string(),
                st.deploys.to_string(),
                st.reclaims.to_string(),
                st.live.to_string(),
            ]);
        }
        out.push_str(&t.render());
        let _ = writeln!(
            out,
            "\nCold starts: {} invocations, p50 {} / p99 {} cycles\n\
             Warm path:   {} invocations, p50 {} / p99 {} cycles",
            self.cold_count, self.cold.0, self.cold.1, self.warm_count, self.warm.0, self.warm.1
        );
        let _ = writeln!(
            out,
            "Flash crowd: {} shed at admission; base-tenant goodput retention {:.1}% \
             ({} ok before vs {} ok during, rate-normalised)",
            self.flash_shed,
            self.goodput_retention * 100.0,
            self.pre_ok,
            self.flash_ok
        );
        let _ = writeln!(
            out,
            "Scale-to-zero: idle fn at 75% mark had {} live replicas; re-invoke at 80% \
             completed cold in {} cycles",
            self.idle_replicas_at_75, self.idle_reinvoke_latency
        );
        let _ = writeln!(
            out,
            "Autoscaler: hot fn peaked at {} live replicas; {} deploys, {} reclaims, \
             {} scale-ups denied",
            self.hot_peak_live, self.deploys, self.reclaims, self.scale_up_denied
        );
        let _ = writeln!(
            out,
            "Bitstream cache: {} hits / {} misses, {} evictions ({} bytes re-fetch debt)",
            self.cache.hits, self.cache.misses, self.cache.evictions, self.cache.bytes_evicted
        );
        let step = (self.timeline.len() / 15).max(1);
        let mut tl = TextTable::new(&["cycle", "live", "hot", "idle-fn", "queued", "mean util"]);
        for sm in self.timeline.iter().step_by(step) {
            tl.row_owned(vec![
                sm.cycle.to_string(),
                sm.live.to_string(),
                sm.hot_live.to_string(),
                sm.idle_live.to_string(),
                sm.queued.to_string(),
                format!("{:.3}", sm.mean_util),
            ]);
        }
        let _ = writeln!(out, "\nReplica timeline (every {step} boundaries):");
        out.push_str(&tl.render());
        out
    }
}

/// Builds the structured report.
pub fn report(quick: bool) -> ExperimentReport {
    let r = execute(quick);
    let mut metrics = Json::obj()
        .set("duration_cycles", r.duration)
        .set("boards", BOARDS as u64)
        .set("functions", FUNCTIONS as u64)
        .set("zipf_theta", ZIPF_THETA)
        .set(
            "flash_window",
            Json::Arr(vec![Json::U64(r.flash.0), Json::U64(r.flash.1)]),
        )
        .set("cold_count", r.cold_count)
        .set("cold_p50", r.cold.0)
        .set("cold_p99", r.cold.1)
        .set("warm_count", r.warm_count)
        .set("warm_p50", r.warm.0)
        .set("warm_p99", r.warm.1)
        .set(
            "goodput_retention",
            (r.goodput_retention * 10_000.0).round() / 10_000.0,
        )
        .set("pre_flash_ok", r.pre_ok)
        .set("flash_ok", r.flash_ok)
        .set("flash_shed", r.flash_shed)
        .set("flash_admitted", r.flash_admitted)
        .set("idle_replicas_at_75pct", r.idle_replicas_at_75 as u64)
        .set("idle_reinvoke_cold_latency", r.idle_reinvoke_latency)
        .set("hot_peak_live", r.hot_peak_live as u64)
        .set("deploys", r.deploys)
        .set("reclaims", r.reclaims)
        .set("expired", r.expired)
        .set("scale_up_denied", r.scale_up_denied)
        .set("refusals", r.refusals)
        .set(
            "cache",
            Json::obj()
                .set("hits", r.cache.hits)
                .set("misses", r.cache.misses)
                .set("evictions", r.cache.evictions)
                .set("bytes_evicted", r.cache.bytes_evicted),
        )
        .set("drained", r.drained);
    let mut fns = Vec::new();
    for (i, st) in r.fn_stats.iter().enumerate() {
        let name = if i < FUNCTIONS {
            format!("fn{i}")
        } else {
            "fn-idle".to_string()
        };
        fns.push(
            Json::obj()
                .set("name", name)
                .set("invocations", st.invocations)
                .set("cold_invocations", st.cold_invocations)
                .set("completed_ok", st.completed_ok)
                .set("completed_err", st.completed_err)
                .set("expired", st.expired)
                .set("deploys", st.deploys)
                .set("reclaims", st.reclaims)
                .set("live_at_end", st.live as u64),
        );
    }
    metrics.put("functions", Json::Arr(fns));
    let timeline: Vec<Json> = r
        .timeline
        .iter()
        .map(|sm| {
            Json::obj()
                .set("cycle", sm.cycle)
                .set("live", sm.live as u64)
                .set("hot_live", sm.hot_live as u64)
                .set("idle_live", sm.idle_live as u64)
                .set("queued", sm.queued as u64)
                .set("mean_util", round3(sm.mean_util))
        })
        .collect();
    metrics.put("timeline", Json::Arr(timeline));
    ExperimentReport::new(
        "E18",
        "Serverless orchestration: cold starts, warm pools, scale-to-zero",
        r.sim_cycles,
        metrics,
        r.render(),
    )
}

/// Runs the experiment; returns the report text.
pub fn run(quick: bool) -> String {
    execute(quick).render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cold_exceeds_warm_and_scale_to_zero_works() {
        let r = execute(true);
        assert!(r.drained);
        assert!(
            r.cold.1 > r.warm.1,
            "cold p99 {} must exceed warm p99 {}",
            r.cold.1,
            r.warm.1
        );
        assert!(r.cold_count > 0 && r.warm_count > r.cold_count);
        // Scale-to-zero: the abandoned function's pool emptied, and the
        // re-invocation paid a real, measured cold start.
        assert_eq!(r.idle_replicas_at_75, 0, "idle fn not reclaimed");
        assert!(
            r.idle_reinvoke_latency > 1_000,
            "re-invoke after scale-to-zero must pay a cold start, got {}",
            r.idle_reinvoke_latency
        );
        // The flash crowd was shed at the door, not absorbed by the base
        // tenants' goodput.
        assert!(r.flash_shed > 0, "flash tenant never shed");
        assert!(
            r.goodput_retention >= 0.7,
            "base goodput retention {:.2} under flash crowd",
            r.goodput_retention
        );
        // The autoscaler actually grew the hot pool.
        assert!(r.hot_peak_live >= 2, "hot fn never scaled out");
        assert!(r.reclaims > 0, "nothing ever scaled back down");
        assert!(r.cache.misses > 0);
    }

    #[test]
    fn same_inputs_same_report() {
        let a = report(true);
        let b = report(true);
        assert_eq!(a.deterministic_bytes(), b.deterministic_bytes());
    }
}
