//! E3 — "What is the overhead of the per-tile monitor?" (§6, Q1).
//!
//! Two sides of the answer:
//!
//! 1. **Area**: price the monitor's feature set, then floor-plan real
//!    parts at increasing tile counts and report the fraction of the
//!    device consumed by the Apiary framework (monitors + routers + I/O
//!    shell).
//! 2. **Cycles**: sweep the monitor's per-message check pipeline depth and
//!    measure the end-to-end request latency it adds.

use crate::report::{ExperimentReport, Json};
use crate::scenarios::{client_server, drive, MonitorClient};
use crate::table::TextTable;
use apiary_accel::apps::echo::echo;
use apiary_core::SystemConfig;
use apiary_monitor::{MonitorAreaModel, MonitorConfig, MonitorFeatures};
use apiary_noc::NodeId;
use apiary_resources::{FloorPlanner, PARTS};
use core::fmt::Write;

/// Runs the experiment; returns the structured report.
pub fn report(quick: bool) -> ExperimentReport {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "E3: Per-tile monitor overhead (paper §6, open question 1)\n"
    );

    // Part A: monitor area by feature set.
    let model = MonitorAreaModel::default();
    let mut t = TextTable::new(&["feature set", "LUTs", "FFs", "BRAM36"]);
    for (name, f) in [
        ("minimal (caps only)", MonitorFeatures::minimal()),
        ("default", MonitorFeatures::default()),
        ("full (+trace ring)", MonitorFeatures::full()),
    ] {
        let a = model.area(&f);
        t.row_owned(vec![
            name.to_string(),
            a.luts.to_string(),
            a.ffs.to_string(),
            a.bram36.to_string(),
        ]);
    }
    let _ = writeln!(out, "Monitor area by feature set:\n{}", t.render());

    // Part B: framework fraction vs tile count, per part.
    let monitor = model.area(&MonitorFeatures::default());
    let tile_counts: &[u64] = if quick {
        &[4, 16, 64]
    } else {
        &[4, 9, 16, 36, 64, 100]
    };
    let mut t = TextTable::new(&[
        "part",
        "tiles",
        "framework LUTs",
        "framework %",
        "per-tile slot LUTs",
    ]);
    for part in PARTS {
        for &tiles in tile_counts {
            let planner = FloorPlanner {
                tiles,
                monitor,
                router: if part.hardened_noc {
                    FloorPlanner::HARD_ROUTER
                } else {
                    FloorPlanner::SOFT_ROUTER
                },
                io_shell: FloorPlanner::IO_SHELL,
            };
            match planner.plan(part) {
                Ok(plan) => t.row_owned(vec![
                    part.number.to_string(),
                    tiles.to_string(),
                    plan.framework.luts.to_string(),
                    format!("{:.1}%", plan.framework_fraction() * 100.0),
                    plan.tile_slot.luts.to_string(),
                ]),
                Err(_) => t.row_owned(vec![
                    part.number.to_string(),
                    tiles.to_string(),
                    "-".to_string(),
                    "does not fit".to_string(),
                    "-".to_string(),
                ]),
            }
        }
    }
    let _ = writeln!(
        out,
        "Framework share of device vs tile count:\n{}",
        t.render()
    );

    // Part C: cycle overhead of the monitor's message-path checks.
    let requests = if quick { 20 } else { 200 };
    let mut t = TextTable::new(&["check cycles", "RTT p50", "RTT p99", "added vs 0"]);
    let mut base_p50 = 0;
    let mut deep_p50 = 0;
    let mut sim_cycles = 0u64;
    for check in [0u64, 1, 2, 4, 8] {
        let cfg = SystemConfig {
            monitor: MonitorConfig {
                check_cycles: check,
                // This sweep prices the *per-message* check pipeline; the
                // flow-verdict cache would hide it behind the first request
                // (E5 measures that effect).
                flow_cache: false,
                ..MonitorConfig::default()
            },
            ..SystemConfig::default()
        };
        let (mut sys, cap) = client_server(cfg, NodeId(0), NodeId(5), Box::new(echo(4)));
        let mut client = MonitorClient::new(NodeId(0), cap, 32).max_requests(requests);
        sim_cycles += drive(&mut sys, &mut [&mut client], 2_000_000);
        assert!(client.done(), "E3 load did not complete");
        let p50 = client.rtt.p50();
        if check == 0 {
            base_p50 = p50;
        }
        deep_p50 = p50;
        t.row_owned(vec![
            check.to_string(),
            p50.to_string(),
            client.rtt.p99().to_string(),
            format!("+{}", p50.saturating_sub(base_p50)),
        ]);
    }
    let _ = writeln!(
        out,
        "Message-path latency vs monitor pipeline depth (request+response each cross 2 monitors):\n{}",
        t.render()
    );
    let _ = writeln!(
        out,
        "Conclusion: a firewall-class monitor (~{} LUTs) at 64 tiles consumes under a third of a\n\
         VU9P-class device and adds ~4 cycles per one-cycle-check hop pair to request latency.",
        monitor.luts
    );
    let metrics = Json::obj()
        .set("monitor_luts_default", monitor.luts)
        .set("rtt_p50_check0", base_p50)
        .set("rtt_p50_check8", deep_p50)
        .set("added_p50_check8", deep_p50.saturating_sub(base_p50));
    ExperimentReport::new(
        "E3",
        "Per-tile monitor overhead: area and message-path cycles",
        sim_cycles,
        metrics,
        out,
    )
}

/// Runs the experiment; returns the report text.
pub fn run(quick: bool) -> String {
    report(quick).rendered
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_has_all_three_parts() {
        let out = run(true);
        assert!(out.contains("feature set"));
        assert!(out.contains("framework %"));
        assert!(out.contains("check cycles"));
        assert!(out.contains("VU9P"));
    }

    #[test]
    fn deeper_checks_cost_more_latency() {
        let out = run(true);
        // Extract p50 columns for check=0 and check=8.
        let p50 = |needle: &str| -> u64 {
            out.lines()
                .find(|l| l.starts_with(&format!("| {needle} ")))
                .and_then(|l| {
                    l.split('|')
                        .nth(2)
                        .map(|c| c.trim().parse::<u64>().expect("numeric"))
                })
                .expect("row present")
        };
        assert!(p50("8") > p50("0"), "{out}");
    }
}
