//! E1 — Table 1: logic-cell counts across FPGA generations.
//!
//! Regenerates the paper's only table verbatim from the part catalog, plus
//! the growth factors the surrounding text quotes ("about 50%" for the
//! smallest parts, "3x" for the largest — the exact quotient is 4.3).

use crate::report::{ExperimentReport, Json};
use crate::table::TextTable;
use apiary_resources::catalog::{table1_growth_factors, table1_rows};

/// Runs the experiment; returns the structured report.
pub fn report(_quick: bool) -> ExperimentReport {
    let mut t = TextTable::new(&["Family", "Year Released", "Part Number", "Logic Cells"]);
    let rows = table1_rows();
    for p in &rows {
        t.row_owned(vec![
            p.family.name().to_string(),
            p.year.to_string(),
            p.number.to_string(),
            format_cells(p.logic_cells),
        ]);
    }
    let (small, large) = table1_growth_factors();
    let rendered = format!(
        "E1 / Table 1: Logic cell counts, smallest and largest parts per generation\n\n{}\n\
         Growth, smallest parts (XC7V585T -> VU3P):  {:.2}x  (paper: \"about 50%\")\n\
         Growth, largest parts  (XC7VH870T -> VU29P): {:.2}x  (paper: \"3x\")\n",
        t.render(),
        small,
        large
    );
    let metrics = Json::obj()
        .set("parts", rows.len())
        .set(
            "max_logic_cells",
            rows.iter().map(|p| p.logic_cells).max().unwrap_or(0),
        )
        .set("growth_smallest", (small * 100.0).round() / 100.0)
        .set("growth_largest", (large * 100.0).round() / 100.0);
    ExperimentReport::new(
        "E1",
        "Table 1: logic-cell counts across FPGA generations",
        0,
        metrics,
        rendered,
    )
}

/// Runs the experiment; returns the report text.
pub fn run(quick: bool) -> String {
    report(quick).rendered
}

fn format_cells(n: u64) -> String {
    // Thousands separators, as in the paper.
    let s = n.to_string();
    let mut out = String::new();
    for (i, c) in s.chars().enumerate() {
        if i > 0 && (s.len() - i).is_multiple_of(3) {
            out.push(',');
        }
        out.push(c);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproduces_paper_values() {
        let out = run(true);
        for needle in [
            "582,720",
            "876,160",
            "862,000",
            "3,780,000",
            "XC7V585T",
            "VU29P",
            "Virtex 7",
            "Virtex Ultrascale+",
        ] {
            assert!(out.contains(needle), "missing {needle} in:\n{out}");
        }
    }

    #[test]
    fn growth_factors_reported() {
        let out = run(true);
        assert!(out.contains("1.48x"));
        assert!(out.contains("4.31x"));
    }
}
