//! E15 — Memory-service characterization.
//!
//! Every §2 scenario leans on the shared memory service; this experiment
//! measures what an accelerator actually gets from it: read bandwidth and
//! latency as a function of access pattern (sequential / strided / random)
//! and of outstanding requests, plus the DRAM row-buffer behaviour behind
//! the numbers. The architectural claim being checked: the message-passing
//! path to memory (monitor check -> NoC -> DRAM -> NoC) pipelines — an
//! accelerator that keeps requests in flight hides most of the round trip.

use crate::report::{ExperimentReport, Json};
use crate::table::TextTable;
use apiary_accel::apps::idle::idle;
use apiary_cap::CapRef;
use apiary_core::memsvc::MemoryService;
use apiary_core::{AppId, FaultPolicy, System, SystemConfig};
use apiary_mem::AccessKind;
use apiary_monitor::{wire, SendError};
use apiary_noc::NodeId;
use apiary_sim::SimRng;
use core::fmt::Write;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Pattern {
    Sequential,
    Strided,
    Random,
}

impl Pattern {
    fn name(&self) -> &'static str {
        match self {
            Pattern::Sequential => "sequential",
            Pattern::Strided => "strided (8 KiB)",
            Pattern::Random => "random",
        }
    }

    fn offset(&self, i: u64, span: u64, read: u64, rng: &mut SimRng) -> u64 {
        match self {
            Pattern::Sequential => (i * read) % (span - read),
            Pattern::Strided => (i * 8192) % (span - read),
            Pattern::Random => rng.gen_range(span - read),
        }
    }
}

struct Outcome {
    bytes_per_cycle: f64,
    mean_latency: f64,
    row_hit_pct: f64,
    cycles: u64,
}

/// Issues `count` reads of `read` bytes with `window` outstanding from a
/// driver tile, returns achieved bandwidth and latency.
fn measure(pattern: Pattern, window: usize, count: u64) -> Outcome {
    const SPAN: u64 = 4 << 20;
    const READ: u64 = 1024;
    let client = NodeId(0);
    let mut sys = System::new(SystemConfig::default());
    sys.install(client, Box::new(idle()), AppId(1), FaultPolicy::FailStop)
        .expect("free");
    let mem_cap: CapRef = sys.grant_memory(client, SPAN).expect("space");
    let svc = sys.tile(client).env.get("mem-service").expect("wired");

    let mut rng = SimRng::new(42);
    let mut issued = 0u64;
    let mut completed = 0u64;
    let mut in_flight = 0usize;
    let mut sent_at = std::collections::HashMap::new();
    let mut latency_sum = 0u64;
    let start = sys.now();
    for _ in 0..200_000_000u64 {
        // Refill the window.
        while in_flight < window && issued < count {
            let off = pattern.offset(issued, SPAN, READ, &mut rng);
            let now = sys.now();
            match sys.tile_mut(client).monitor.send_mem(
                mem_cap,
                svc,
                AccessKind::Read,
                off,
                READ,
                &[],
                issued,
                now,
            ) {
                Ok(()) => {
                    sent_at.insert(issued, now);
                    issued += 1;
                    in_flight += 1;
                }
                Err(SendError::Backpressure) => break,
                Err(e) => panic!("mem read refused: {e}"),
            }
        }
        sys.tick();
        let now = sys.now();
        while let Some(d) = sys.tile_mut(client).monitor.recv() {
            assert_eq!(d.msg.kind, wire::KIND_MEM_REPLY);
            assert_eq!(d.msg.payload.len() as u64, READ);
            let t0 = sent_at.remove(&d.msg.tag).expect("tracked");
            latency_sum += now - t0;
            completed += 1;
            in_flight -= 1;
        }
        if completed == count {
            break;
        }
    }
    assert_eq!(completed, count, "memory run stalled");
    let cycles = (sys.now() - start).max(1);
    let memsvc = sys
        .accel_as::<MemoryService>(sys.mem_node())
        .expect("boot service");
    let (hits, misses, conflicts) = memsvc.dram_stats();
    Outcome {
        bytes_per_cycle: (completed * READ) as f64 / cycles as f64,
        mean_latency: latency_sum as f64 / completed as f64,
        row_hit_pct: 100.0 * hits as f64 / (hits + misses + conflicts).max(1) as f64,
        cycles,
    }
}

/// Runs the experiment; returns the structured report.
pub fn report(quick: bool) -> ExperimentReport {
    let count = if quick { 40 } else { 300 };
    let mut out = String::new();
    let _ = writeln!(
        out,
        "E15: Memory service characterization (1 KiB reads over a 4 MiB segment)\n"
    );
    let mut t = TextTable::new(&[
        "pattern",
        "outstanding",
        "bandwidth (B/cyc)",
        "mean latency (cyc)",
        "DRAM row hits",
    ]);
    let windows: &[usize] = if quick { &[1, 8] } else { &[1, 2, 4, 8] };
    let mut sim_cycles = 0u64;
    let mut peak_bw = 0.0f64;
    let mut seq_row_hits = 0.0;
    for pattern in [Pattern::Sequential, Pattern::Strided, Pattern::Random] {
        for &w in windows {
            let o = measure(pattern, w, count);
            sim_cycles += o.cycles;
            peak_bw = peak_bw.max(o.bytes_per_cycle);
            if pattern == Pattern::Sequential && w == *windows.last().unwrap() {
                seq_row_hits = o.row_hit_pct;
            }
            t.row_owned(vec![
                pattern.name().to_string(),
                w.to_string(),
                format!("{:.2}", o.bytes_per_cycle),
                format!("{:.0}", o.mean_latency),
                format!("{:.0}%", o.row_hit_pct),
            ]);
        }
    }
    let _ = writeln!(out, "{}", t.render());
    let _ = writeln!(
        out,
        "Reading: one outstanding read leaves the path idle most of the time; a small\n\
         window pipelines monitor checks, NoC transit and DRAM access until the NoC's\n\
         bulk-transfer serialisation becomes the ceiling. Sequential streams keep the\n\
         row buffer hot; random access pays misses but bank interleave still overlaps\n\
         them. The §2 accelerators get near-wire memory bandwidth with a handful of\n\
         outstanding requests — no shared-virtual-memory machinery required (§4.6)."
    );
    let metrics = Json::obj()
        .set("reads_per_point", count)
        .set("peak_bytes_per_cycle", (peak_bw * 100.0).round() / 100.0)
        .set("seq_row_hit_pct", (seq_row_hits * 10.0).round() / 10.0);
    ExperimentReport::new(
        "E15",
        "Memory-service bandwidth, latency, and DRAM row behaviour",
        sim_cycles,
        metrics,
        out,
    )
}

/// Runs the experiment; returns the report text.
pub fn run(quick: bool) -> String {
    report(quick).rendered
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_pipelines_bandwidth() {
        let one = measure(Pattern::Sequential, 1, 30);
        let eight = measure(Pattern::Sequential, 8, 30);
        // The ceiling is the NoC's reply serialisation (~16 B/cycle for
        // 16 B flits on one ejection port); window 8 should reach it.
        assert!(
            eight.bytes_per_cycle > one.bytes_per_cycle * 1.5,
            "window 8 {:.2} vs window 1 {:.2}",
            eight.bytes_per_cycle,
            one.bytes_per_cycle
        );
        assert!(eight.bytes_per_cycle > 14.0, "{:.2}", eight.bytes_per_cycle);
    }

    #[test]
    fn sequential_beats_random_on_row_hits() {
        let seq = measure(Pattern::Sequential, 4, 30);
        let rand = measure(Pattern::Random, 4, 30);
        assert!(
            seq.row_hit_pct > rand.row_hit_pct,
            "seq {:.0}% vs random {:.0}%",
            seq.row_hit_pct,
            rand.row_hit_pct
        );
    }

    #[test]
    fn report_renders() {
        let out = run(true);
        assert!(out.contains("sequential"));
        assert!(out.contains("row hits"));
    }
}
