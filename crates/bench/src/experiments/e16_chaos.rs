//! E16 — Chaos: availability under injected faults (§4.4 stressed).
//!
//! The chaos plane injects NoC faults (transient/permanent link outages,
//! router stalls, flit corruption) from a seeded schedule while tile-kill
//! events repeatedly fault the service's accelerator. Two recovery
//! policies face the same fault sequence:
//!
//! - **no-recovery**: fail-stop only; the first tile kill is permanent.
//! - **supervisor**: the kernel supervisor restarts the service in place
//!   (backoff + partial reconfiguration), escalating to migration onto a
//!   spare tile, and rewires clients after every recovery.
//!
//! Reported per `(fault rate, policy)` cell: goodput retention against a
//! fault-free baseline, the MTTR distribution of supervised recoveries,
//! and the blast radius (tiles with any fault on record). Every run must
//! drain — an injected fault may cost packets, never the network.

use crate::report::{ExperimentReport, Json};
use crate::scenarios::MonitorClient;
use crate::table::TextTable;
use apiary_accel::apps::echo::echo;
use apiary_accel::apps::idle::idle;
use apiary_cap::ServiceId;
use apiary_core::supervisor::SupervisorConfig;
use apiary_core::{AppId, FaultPolicy, System, SystemConfig};
use apiary_monitor::TileState;
use apiary_noc::{FaultPlane, FaultPlaneConfig, NodeId};
use apiary_sim::SimRng;
use core::fmt::Write;

const SVC: ServiceId = ServiceId(16);
const CLIENT: NodeId = NodeId(0);
const HOME: NodeId = NodeId(5);
const B_CLIENT: NodeId = NodeId(3);
const B_SERVER: NodeId = NodeId(6);
const SPARES: [NodeId; 2] = [NodeId(10), NodeId(12)];
const BITSTREAM: u64 = 4096; // 1024 cycles over the default 4 B/cycle ICAP.
const KILL_CODE: u32 = 0xC4A0_0016;

/// One `(fault rate, policy)` cell's measurements.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// Per-cycle disruptive-event probability driven into the fault plane.
    pub fault_rate: f64,
    /// `true` when the supervisor was enabled.
    pub recovery: bool,
    /// Successful (non-error) responses at the driven client.
    pub completed_ok: u64,
    /// Error responses (outage replies).
    pub errors: u64,
    /// Requests abandoned on timeout (dropped by NoC faults).
    pub lost: u64,
    /// Successful responses at the bystander pair.
    pub bystander_ok: u64,
    /// Tile kills injected.
    pub kills: u64,
    /// Supervisor incidents opened / abandoned.
    pub incidents: u64,
    /// Incidents the supervisor gave up on.
    pub abandoned: u64,
    /// MTTR (cycles) of every recovered incident.
    pub mttr: Vec<u64>,
    /// Distinct tiles with at least one fault on record (blast radius).
    pub blast_tiles: u64,
    /// Flits the chaos plane corrupted (detected at ejection).
    pub corrupted_flits: u64,
    /// Packets the NoC dropped (corrupt + unreachable + flushed).
    pub noc_dropped: u64,
    /// Link faults applied (transient + permanent).
    pub link_faults: u64,
    /// Router stalls applied.
    pub router_stalls: u64,
    /// The post-run drain reached quiescence (must always be true).
    pub drained: bool,
    /// Simulated cycles at the end of the run (load + drain).
    pub sim_cycles: u64,
}

impl RunOutcome {
    fn mttr_mean(&self) -> u64 {
        if self.mttr.is_empty() {
            0
        } else {
            self.mttr.iter().sum::<u64>() / self.mttr.len() as u64
        }
    }
}

/// The whole experiment: a fault-free baseline plus the sweep grid.
#[derive(Debug, Clone)]
pub struct ChaosReport {
    /// Successful responses of the fault-free, recovery-off baseline.
    pub baseline_ok: u64,
    /// Cycles of driven load per run.
    pub duration: u64,
    /// Sweep cells, in `(rate, policy)` order.
    pub runs: Vec<RunOutcome>,
}

/// Drives one cell: `duration` cycles of closed-loop load against a
/// supervised echo service while the chaos plane and the tile-killer run.
pub fn run_one(seed: u64, fault_rate: f64, recovery: bool, duration: u64) -> RunOutcome {
    let mut sys = System::new(SystemConfig {
        supervisor: SupervisorConfig {
            enabled: recovery,
            max_restarts: 2,
            restart_backoff: 128,
            spare_nodes: SPARES.to_vec(),
            checkpoint_interval: 0,
        },
        ..SystemConfig::default()
    });
    sys.install(CLIENT, Box::new(idle()), AppId(1), FaultPolicy::FailStop)
        .expect("free");
    sys.deploy_service(
        SVC,
        HOME,
        AppId(1),
        FaultPolicy::FailStop,
        BITSTREAM,
        Box::new(|| Box::new(echo(1))),
    )
    .expect("free");
    let cap = sys.attach_client(CLIENT, SVC).expect("wired");
    // A bystander pair on unrelated tiles measures collateral damage.
    sys.install(B_CLIENT, Box::new(idle()), AppId(2), FaultPolicy::FailStop)
        .expect("free");
    sys.install(B_SERVER, Box::new(echo(1)), AppId(2), FaultPolicy::FailStop)
        .expect("free");
    let bcap = sys.connect(B_CLIENT, B_SERVER, false).expect("same app");
    sys.connect(B_SERVER, B_CLIENT, false).expect("reply path");

    if fault_rate > 0.0 {
        sys.noc_mut()
            .install_fault_plane(FaultPlane::new(FaultPlaneConfig::with_rate(
                seed, fault_rate,
            )));
    }

    // The fault-free RTT is ~20 cycles; 250 clears any stall/detour pile-up
    // while keeping a dropped request from wedging its window slot long.
    let mut vc = MonitorClient::new(CLIENT, cap, 32).window(4);
    vc.timeout = 250;
    let mut bc = MonitorClient::new(B_CLIENT, bcap, 32).window(2);
    bc.timeout = 250;

    // Tile kills arrive on a jittered schedule, independent of the NoC
    // plane's RNG, only while faults are enabled at all.
    let mut killer = SimRng::new(seed ^ 0x9E37_79B9_7F4A_7C15);
    let kill_interval = duration / 4;
    let mut next_kill = if fault_rate > 0.0 {
        kill_interval + killer.gen_range(kill_interval / 2)
    } else {
        u64::MAX
    };
    let mut kills = 0u64;

    for _ in 0..duration {
        sys.tick();
        vc.pump(&mut sys);
        bc.pump(&mut sys);
        let now = sys.now().as_u64();
        if now >= next_kill {
            if let Some(home) = sys.service_home(SVC) {
                if sys.tile(home).monitor.state() == TileState::Running {
                    sys.inject_fault(home, KILL_CODE);
                    kills += 1;
                }
            }
            next_kill = now + kill_interval + killer.gen_range(kill_interval / 2);
        }
    }
    // Stop issuing and drain: no injected fault may wedge the network.
    vc.max_requests = vc.issued;
    bc.max_requests = bc.issued;
    let mut drained = false;
    for _ in 0..3 {
        drained = sys.run_until_idle(2_000_000);
        vc.pump(&mut sys);
        bc.pump(&mut sys);
        if drained {
            break;
        }
    }

    let blast_tiles = (0..sys.noc().mesh().nodes())
        .filter(|&i| !sys.tile(NodeId(i as u16)).faults.is_empty())
        .count() as u64;
    let st = sys.noc().stats().clone();
    RunOutcome {
        fault_rate,
        recovery,
        completed_ok: vc.completed - vc.errors,
        errors: vc.errors,
        lost: vc.lost,
        bystander_ok: bc.completed - bc.errors,
        kills,
        incidents: sys.incidents().len() as u64,
        abandoned: sys.incidents().iter().filter(|i| i.abandoned()).count() as u64,
        mttr: sys.mttr_samples(),
        blast_tiles,
        corrupted_flits: st.corrupted_flits,
        noc_dropped: st.dropped(),
        link_faults: st.link_faults,
        router_stalls: st.router_stalls,
        drained,
        sim_cycles: sys.now().as_u64(),
    }
}

/// Executes the sweep.
pub fn execute(quick: bool) -> ChaosReport {
    let seed = 0xE16;
    let duration: u64 = if quick { 120_000 } else { 400_000 };
    let rates = [0.0005, 0.002, 0.01];
    let baseline = run_one(seed, 0.0, false, duration);
    assert!(baseline.drained, "fault-free baseline must drain");
    let mut runs = Vec::new();
    for &rate in &rates {
        for recovery in [false, true] {
            let o = run_one(seed, rate, recovery, duration);
            assert!(
                o.drained,
                "chaos run (rate {rate}, recovery {recovery}) failed to drain"
            );
            runs.push(o);
        }
    }
    ChaosReport {
        baseline_ok: baseline.completed_ok,
        duration,
        runs,
    }
}

impl ChaosReport {
    /// Goodput retention of a cell against the fault-free baseline.
    pub fn retention(&self, o: &RunOutcome) -> f64 {
        o.completed_ok as f64 / self.baseline_ok.max(1) as f64
    }

    /// Human-readable report.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "E16: Chaos — goodput retention and MTTR under injected faults\n\
             ({} cycles of closed-loop load per cell; fault-free baseline {} ok responses)\n",
            self.duration, self.baseline_ok
        );
        let mut t = TextTable::new(&[
            "fault rate",
            "policy",
            "goodput retention",
            "errors",
            "lost",
            "kills",
            "incidents",
            "mean MTTR (cyc)",
            "blast tiles",
            "noc dropped",
        ]);
        for o in &self.runs {
            t.row_owned(vec![
                format!("{}", o.fault_rate),
                if o.recovery {
                    "supervisor"
                } else {
                    "no-recovery"
                }
                .to_string(),
                format!("{:.1}%", self.retention(o) * 100.0),
                o.errors.to_string(),
                o.lost.to_string(),
                o.kills.to_string(),
                format!("{} ({} abandoned)", o.incidents, o.abandoned),
                o.mttr_mean().to_string(),
                o.blast_tiles.to_string(),
                o.noc_dropped.to_string(),
            ]);
        }
        let _ = writeln!(out, "{}", t.render());
        let _ = writeln!(
            out,
            "Reading: without recovery the first tile kill is fatal — goodput is capped\n\
             by whenever it lands. The supervisor holds goodput near baseline by paying a\n\
             bounded MTTR (backoff + bitstream) per kill; NoC-level faults cost only the\n\
             packets they touch (checksummed drops + timeouts), never the network: every\n\
             run drains to quiescence. Blast radius stays at the killed tile — monitors\n\
             contain faults (§4.4)."
        );
        out
    }

    /// Machine-readable results (hand-rolled JSON; no serde offline).
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        let _ = writeln!(s, "  \"experiment\": \"e16_chaos\",");
        let _ = writeln!(s, "  \"duration_cycles\": {},", self.duration);
        let _ = writeln!(s, "  \"baseline_ok\": {},", self.baseline_ok);
        s.push_str("  \"runs\": [\n");
        for (i, o) in self.runs.iter().enumerate() {
            let mttr = o
                .mttr
                .iter()
                .map(|m| m.to_string())
                .collect::<Vec<_>>()
                .join(", ");
            let _ = write!(
                s,
                "    {{\"fault_rate\": {}, \"policy\": \"{}\", \"completed_ok\": {}, \
                 \"goodput_retention\": {:.4}, \"errors\": {}, \"lost\": {}, \
                 \"bystander_ok\": {}, \"kills\": {}, \"incidents\": {}, \
                 \"abandoned\": {}, \"mttr_cycles\": [{}], \"mttr_mean\": {}, \
                 \"blast_radius_tiles\": {}, \"corrupted_flits\": {}, \
                 \"noc_dropped\": {}, \"link_faults\": {}, \"router_stalls\": {}, \
                 \"drained\": {}}}",
                o.fault_rate,
                if o.recovery {
                    "supervisor"
                } else {
                    "no-recovery"
                },
                o.completed_ok,
                self.retention(o),
                o.errors,
                o.lost,
                o.bystander_ok,
                o.kills,
                o.incidents,
                o.abandoned,
                mttr,
                o.mttr_mean(),
                o.blast_tiles,
                o.corrupted_flits,
                o.noc_dropped,
                o.link_faults,
                o.router_stalls,
                o.drained,
            );
            s.push_str(if i + 1 < self.runs.len() { ",\n" } else { "\n" });
        }
        s.push_str("  ]\n}\n");
        s
    }
}

/// Runs the experiment; returns the structured report.
pub fn report(quick: bool) -> ExperimentReport {
    let r = execute(quick);
    let sim_cycles = r.duration + r.runs.iter().map(|o| o.sim_cycles).sum::<u64>();
    let mut metrics = Json::obj()
        .set("duration_cycles", r.duration)
        .set("baseline_ok", r.baseline_ok);
    let mut cells = Vec::new();
    for o in &r.runs {
        cells.push(
            Json::obj()
                .set("fault_rate", o.fault_rate)
                .set(
                    "policy",
                    if o.recovery {
                        "supervisor"
                    } else {
                        "no-recovery"
                    },
                )
                .set(
                    "goodput_retention",
                    (r.retention(o) * 10_000.0).round() / 10_000.0,
                )
                .set("incidents", o.incidents)
                .set("mttr_mean", {
                    if o.mttr.is_empty() {
                        0u64
                    } else {
                        o.mttr.iter().sum::<u64>() / o.mttr.len() as u64
                    }
                })
                .set("drained", o.drained),
        );
    }
    metrics.put("runs", Json::Arr(cells));
    ExperimentReport::new(
        "E16",
        "Chaos: goodput retention and MTTR under injected faults",
        sim_cycles,
        metrics,
        r.render(),
    )
}

/// Runs the experiment; returns the report text.
pub fn run(quick: bool) -> String {
    execute(quick).render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn supervisor_retains_goodput_no_recovery_does_not() {
        let r = execute(true);
        // The lowest sweep rate is the "moderate" cell (~10% link-outage
        // duty cycle plus periodic tile kills); the others are harsher.
        let moderate: Vec<&RunOutcome> = r
            .runs
            .iter()
            .filter(|o| (o.fault_rate - 0.0005).abs() < 1e-9)
            .collect();
        let no_rec = moderate.iter().find(|o| !o.recovery).expect("cell");
        let sup = moderate.iter().find(|o| o.recovery).expect("cell");
        assert!(
            r.retention(sup) >= 0.90,
            "supervised retention {:.3} below 90%",
            r.retention(sup)
        );
        assert!(
            r.retention(no_rec) < 0.90,
            "no-recovery retention {:.3} unexpectedly high",
            r.retention(no_rec)
        );
        assert!(sup.incidents > 0 && !sup.mttr.is_empty());
        assert_eq!(no_rec.incidents, 0, "supervisor off records no incidents");
    }

    #[test]
    fn chaos_runs_are_deterministic() {
        let a = run_one(7, 0.002, true, 60_000);
        let b = run_one(7, 0.002, true, 60_000);
        assert_eq!(a.completed_ok, b.completed_ok);
        assert_eq!(a.mttr, b.mttr);
        assert_eq!(a.corrupted_flits, b.corrupted_flits);
        assert_eq!(a.noc_dropped, b.noc_dropped);
        assert_eq!(a.kills, b.kills);
    }

    #[test]
    fn json_is_well_formed_enough() {
        let r = execute(true);
        let j = r.to_json();
        assert!(j.contains("\"experiment\": \"e16_chaos\""));
        assert_eq!(j.matches("\"policy\"").count(), 6, "3 rates x 2 policies");
        assert_eq!(j.matches('{').count(), j.matches('}').count());
    }
}
