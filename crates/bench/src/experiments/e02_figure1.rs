//! E2 — Figure 1: Apiary's architecture, instantiated.
//!
//! The paper's Figure 1 shows two applications, each of several
//! accelerators, on a mesh of tiles where every tile holds a NoC router, a
//! trusted monitor, and an untrusted accelerator slot. This experiment
//! builds exactly that configuration, renders the tile map, and audits the
//! properties the figure caption claims: monitors and routers on every
//! tile, per-application capability wiring, and no authority between the
//! two applications.

use crate::report::{ExperimentReport, Json};
use apiary_accel::apps::compress::compressor;
use apiary_accel::apps::idle::idle;
use apiary_accel::apps::kv::kv_store;
use apiary_accel::apps::video::video_encoder;
use apiary_core::{AppId, FaultPolicy, System, SystemConfig};
use apiary_noc::NodeId;
use core::fmt::Write;

/// Builds the Figure-1 configuration: application 1 is the §2 video
/// pipeline (ingress + encoder + compressor), application 2 is an
/// independent KV store with its own client. Returns the system.
pub fn build() -> System {
    let mut sys = System::new(SystemConfig::default());
    // Application 1: video pipeline across three tiles.
    let ingress = NodeId(0);
    let enc = NodeId(1);
    let comp = NodeId(2);
    sys.install(ingress, Box::new(idle()), AppId(1), FaultPolicy::FailStop)
        .expect("free");
    sys.install(
        enc,
        Box::new(video_encoder(0)),
        AppId(1),
        FaultPolicy::FailStop,
    )
    .expect("free");
    sys.install(
        comp,
        Box::new(compressor()),
        AppId(1),
        FaultPolicy::FailStop,
    )
    .expect("free");
    sys.connect(ingress, enc, false).expect("same app");
    sys.connect_env(enc, comp, "next", false).expect("same app");
    sys.connect_env(comp, ingress, "next", false)
        .expect("same app");
    sys.grant_memory(enc, 1 << 20).expect("space");

    // Application 2: a KV store and its client, elsewhere on the mesh.
    let kv_client = NodeId(8);
    let kv = NodeId(9);
    sys.install(kv_client, Box::new(idle()), AppId(2), FaultPolicy::Preempt)
        .expect("free");
    sys.install(kv, Box::new(kv_store()), AppId(2), FaultPolicy::Preempt)
        .expect("free");
    sys.connect_badged(kv_client, kv, 0xA11CE, false)
        .expect("same app");
    sys.connect(kv, kv_client, false).expect("reply path");
    sys.grant_memory(kv, 1 << 20).expect("space");
    sys
}

/// Runs the experiment; returns the structured report.
pub fn report(_quick: bool) -> ExperimentReport {
    let sys = build();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "E2 / Figure 1: Apiary architecture — two applications on a 4x4 mesh\n"
    );
    out.push_str(&sys.render_map());

    let _ = writeln!(out, "\nCapability audit (who can talk to whom):");
    let mesh = sys.noc().mesh();
    let mut cross_app_caps = 0u64;
    let mut endpoint_caps = 0u64;
    for i in 0..mesh.nodes() {
        let node = NodeId(i as u16);
        let tile = sys.tile(node);
        let Some(app) = tile.app else { continue };
        for (_, cap) in tile.monitor.caps().iter_live() {
            if let apiary_cap::CapKind::Endpoint(e) = cap.kind {
                endpoint_caps += 1;
                let peer = NodeId(e.0 as u16);
                let peer_app = sys.tile(peer).app;
                let _ = writeln!(
                    out,
                    "  {node} ({app}) --SEND--> {peer} ({})",
                    peer_app.map(|a| a.to_string()).unwrap_or_default()
                );
                let os_app = apiary_core::process::OS_APP;
                if peer_app != Some(app) && peer_app != Some(os_app) && app != os_app {
                    cross_app_caps += 1;
                }
            }
        }
    }
    let _ = writeln!(
        out,
        "\nCross-application endpoint capabilities (must be 0): {cross_app_caps}"
    );
    let _ = writeln!(
        out,
        "Every tile carries a monitor + router in the static region; \
         accelerator slots are dynamically reconfigurable."
    );
    let metrics = Json::obj()
        .set("mesh_nodes", mesh.nodes())
        .set("endpoint_caps", endpoint_caps)
        .set("cross_app_caps", cross_app_caps);
    ExperimentReport::new(
        "E2",
        "Figure 1: the Apiary architecture, instantiated and audited",
        sys.now().as_u64(),
        metrics,
        out,
    )
}

/// Runs the experiment; returns the report text.
pub fn run(quick: bool) -> String {
    report(quick).rendered
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure_contains_both_applications() {
        let out = run(true);
        assert!(out.contains("video-encoder"));
        assert!(out.contains("compressor"));
        assert!(out.contains("kv-store"));
        assert!(out.contains("memory-service"));
        assert!(out.contains("app1"));
        assert!(out.contains("app2"));
    }

    #[test]
    fn no_cross_app_authority() {
        let out = run(true);
        assert!(out.contains("(must be 0): 0"), "{out}");
    }

    #[test]
    fn built_system_runs() {
        let mut sys = build();
        sys.run(100);
        assert_eq!(sys.now().as_u64(), 100);
    }
}
