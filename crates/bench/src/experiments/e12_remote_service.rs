//! E12 — "Can we reasonably completely avoid an on-node hosting CPU?"
//! (§6, open question 3).
//!
//! The paper's answer sketch: put rare/complex functionality on *any
//! remote CPU over the network*, keeping the FPGA host-free. This
//! experiment quantifies the trade: the same service is offered
//!
//! - **in fabric** (an accelerator tile: fast, but it costs a tile and
//!   logic area forever, §3's simplicity concern), and
//! - **on a remote CPU** behind a proxy tile (zero fabric beyond the
//!   proxy, but each call pays two wire crossings and CPU queueing).
//!
//! The latency gap is the *price of area savings*; the table sweeps the
//! invocation rate to show when remote hosting stops being acceptable
//! (queueing blows up the tail).

use crate::report::{ExperimentReport, Json};
use crate::scenarios::MonitorClient;
use crate::table::TextTable;
use apiary_accel::apps::echo::echo;
use apiary_accel::apps::idle::idle;
use apiary_core::{AppId, FaultPolicy, System, SystemConfig};
use apiary_net::proxy::{RemoteConfig, RemoteCpuProxy};
use apiary_noc::NodeId;
use core::fmt::Write;

/// The modelled function costs ~2000 CPU cycles (or equivalent fabric
/// time when implemented as an accelerator).
const FUNC_CYCLES: u64 = 2_000;

struct Point {
    p50: u64,
    p99: u64,
    cycles: u64,
}

fn measure(remote: bool, think: u64, window: u32, requests: u64) -> Point {
    let client = NodeId(0);
    let server = NodeId(5);
    let mut sys = System::new(SystemConfig::default());
    sys.install(client, Box::new(idle()), AppId(1), FaultPolicy::FailStop)
        .expect("free");
    if remote {
        sys.install(
            server,
            Box::new(RemoteCpuProxy::new(RemoteConfig {
                wire_latency: 500,
                cpu_cores: 1,
                cpu_cycles: FUNC_CYCLES,
            })),
            AppId(1),
            FaultPolicy::FailStop,
        )
        .expect("free");
    } else {
        sys.install(
            server,
            Box::new(echo(FUNC_CYCLES)),
            AppId(1),
            FaultPolicy::FailStop,
        )
        .expect("free");
    }
    let cap = sys.connect(client, server, false).expect("same app");
    sys.connect(server, client, false).expect("reply path");

    let mut c = MonitorClient::new(client, cap, 64)
        .window(window)
        .max_requests(requests);
    c.think = think;
    // Discard the initial window-fill burst so steady-state rates are
    // compared, not the cold start.
    c.warmup = window as u64;
    let cycles = crate::scenarios::drive(&mut sys, &mut [&mut c], 200_000_000);
    assert!(c.done(), "E12 load did not complete");
    Point {
        p50: c.rtt.p50(),
        p99: c.rtt.p99(),
        cycles,
    }
}

/// Runs the experiment; returns the structured report.
pub fn report(quick: bool) -> ExperimentReport {
    let requests = if quick { 15 } else { 100 };
    // (think, window, label): rare callers are serial; hot callers pipeline.
    let patterns: &[(u64, u32, &str)] = if quick {
        &[(5_000, 1, "rare (serial)"), (0, 4, "hot (pipelined x4)")]
    } else {
        &[
            (20_000, 1, "very rare (serial)"),
            (10_000, 1, "rare (serial)"),
            (3_000, 1, "occasional (serial)"),
            (0, 2, "busy (pipelined x2)"),
            (0, 4, "hot (pipelined x4)"),
        ]
    };
    let mut out = String::new();
    let _ = writeln!(
        out,
        "E12: In-fabric service vs remote-CPU service (function cost {FUNC_CYCLES} cycles)\n\
         (closed loop, window 4; 'think' is the client's idle gap between calls)\n"
    );
    let mut t = TextTable::new(&[
        "invocation pattern",
        "think/window",
        "fabric p50",
        "fabric p99",
        "remote p50",
        "remote p99",
        "remote penalty p50",
    ]);
    let mut sim_cycles = 0u64;
    let mut serial_penalty = 0.0;
    for &(think, window, label) in patterns {
        let fab = measure(false, think, window, requests);
        let rem = measure(true, think, window, requests);
        sim_cycles += fab.cycles + rem.cycles;
        if window == 1 && serial_penalty == 0.0 {
            serial_penalty = rem.p50 as f64 / fab.p50 as f64;
        }
        t.row_owned(vec![
            label.to_string(),
            format!("{think}/{window}"),
            fab.p50.to_string(),
            fab.p99.to_string(),
            rem.p50.to_string(),
            rem.p99.to_string(),
            format!("{:.2}x", rem.p50 as f64 / fab.p50 as f64),
        ]);
    }
    let _ = writeln!(out, "{}", t.render());
    let _ = writeln!(
        out,
        "Reading: serial (rare) callers pay the remote path a fixed ~1000-cycle wire\n\
         penalty (1.5x here) — a fine trade for freeing a tile and its logic area.\n\
         Under pipelined load both implementations saturate at the function's\n\
         service rate and the wire hides under queueing — but scaling past that\n\
         point means renting remote cores versus adding fabric replicas the kernel\n\
         wires in for free (E10). Either way the FPGA never needed a host of its\n\
         own (§6 Q3)."
    );
    let metrics = Json::obj()
        .set("func_cycles", FUNC_CYCLES)
        .set("patterns", patterns.len())
        .set(
            "remote_penalty_p50_serial",
            (serial_penalty * 100.0).round() / 100.0,
        );
    ExperimentReport::new(
        "E12",
        "In-fabric vs remote-CPU service hosting",
        sim_cycles,
        metrics,
        out,
    )
}

/// Runs the experiment; returns the report text.
pub fn run(quick: bool) -> String {
    report(quick).rendered
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn remote_costs_wire_when_rare() {
        let fab = measure(false, 5_000, 1, 12);
        let rem = measure(true, 5_000, 1, 12);
        // Two 500-cycle crossings, minus fabric's NoC hops.
        assert!(
            rem.p50 > fab.p50 + 800,
            "remote {} fabric {}",
            rem.p50,
            fab.p50
        );
        assert!(rem.p50 < fab.p50 + 2_000, "penalty should be bounded");
    }

    #[test]
    fn remote_tail_blows_up_when_frequent() {
        let rare = measure(true, 5_000, 1, 12);
        let hot = measure(true, 0, 4, 12);
        assert!(hot.p99 > rare.p99 * 2, "hot {} rare {}", hot.p99, rare.p99);
    }

    #[test]
    fn report_renders() {
        let out = run(true);
        assert!(out.contains("remote penalty"));
    }
}
