//! E8 — Fault handling: fail-stop vs preemption (§4.4).
//!
//! A service that faults mid-stream is driven under steady load with the
//! two policies the paper defines:
//!
//! - **fail-stop** (concurrent accelerator): the monitor seals the tile;
//!   every request until the kernel reconfigures the tile bounces with
//!   `TARGET_FAILED`. Recovery = partial reconfiguration time.
//! - **preempt** (preemptible accelerator): the kernel swaps the faulted
//!   context out and back; recovery = state save/restore time, and the
//!   tile's data survives.
//!
//! Either way, a bystander application on another tile must be untouched —
//! the containment property itself.

use crate::report::{ExperimentReport, Json};
use crate::scenarios::{drive, MonitorClient};
use crate::table::TextTable;
use apiary_accel::apps::echo::echo;
use apiary_accel::apps::faulty::faulty;
use apiary_accel::apps::idle::idle;
use apiary_core::fault::FaultAction;
use apiary_core::{AppId, FaultPolicy, System, SystemConfig};
use apiary_monitor::TileState;
use apiary_noc::NodeId;
use core::fmt::Write;

struct Outcome {
    ok_before_recovery: u64,
    errors: u64,
    recovery_cycles: u64,
    served_total: u64,
    bystander_ok: u64,
    victim_alive_after: bool,
    cycles: u64,
}

const BITSTREAM_BYTES: u64 = 512 << 10; // A tile-sized partial bitstream.

fn run_policy(policy: FaultPolicy, requests: u64) -> Outcome {
    let client = NodeId(0);
    let victim = NodeId(5);
    let bclient = NodeId(3);
    let bystander = NodeId(6);
    let mut sys = System::new(SystemConfig::default());
    sys.install(client, Box::new(idle()), AppId(1), FaultPolicy::FailStop)
        .expect("free");
    sys.install(victim, Box::new(faulty(10)), AppId(1), policy)
        .expect("free");
    sys.install(bclient, Box::new(idle()), AppId(2), FaultPolicy::FailStop)
        .expect("free");
    sys.install(
        bystander,
        Box::new(echo(2)),
        AppId(2),
        FaultPolicy::FailStop,
    )
    .expect("free");
    let cap = sys.connect(client, victim, false).expect("same app");
    sys.connect(victim, client, false).expect("reply path");
    let bcap = sys.connect(bclient, bystander, false).expect("same app");
    sys.connect(bystander, bclient, false).expect("reply path");

    let mut vc = MonitorClient::new(client, cap, 32).max_requests(requests);
    vc.timeout = 30_000; // Abandon requests swallowed by the fault.
    let mut bc = MonitorClient::new(bclient, bcap, 32).max_requests(requests);

    // Run until the fault lands, reconfigure on fail-stop, and re-wire the
    // fresh accelerator's reply capability once it comes up (the kernel
    // re-runs the application's connection setup after reconfiguration).
    let mut recovery_cycles = 0;
    let mut reconfigured = false;
    let mut rewired = false;
    for _ in 0..20_000_000u64 {
        sys.tick();
        vc.pump(&mut sys);
        bc.pump(&mut sys);
        if !reconfigured
            && policy == FaultPolicy::FailStop
            && sys.tile(victim).monitor.state() == TileState::FailStopped
        {
            let started = sys.now();
            let done = sys
                .reconfigure(
                    victim,
                    Box::new(faulty(u64::MAX)),
                    AppId(1),
                    policy,
                    BITSTREAM_BYTES,
                )
                .expect("first reconfig");
            recovery_cycles = done - started;
            reconfigured = true;
        }
        if reconfigured && !rewired && sys.tile(victim).monitor.state() == TileState::Running {
            sys.connect(victim, client, false)
                .expect("re-wire reply path");
            rewired = true;
        }
        if vc.done() && bc.done() {
            break;
        }
    }
    // Preemption downtime from the fault record.
    if policy == FaultPolicy::Preempt {
        if let Some(rec) = sys.tile(victim).faults.first() {
            if let FaultAction::Preempted { downtime } = rec.action {
                recovery_cycles = downtime;
            }
        }
    }
    // Let any stragglers settle, and let an in-flight reconfiguration
    // land so the tile's final state reflects the recovery.
    drive(&mut sys, &mut [&mut vc, &mut bc], 2_000_000);
    if reconfigured && !rewired {
        sys.run(200_000);
    }
    Outcome {
        ok_before_recovery: vc.completed - vc.errors,
        errors: vc.errors,
        recovery_cycles,
        served_total: vc.completed,
        bystander_ok: bc.completed - bc.errors,
        victim_alive_after: sys.tile(victim).monitor.state() == TileState::Running,
        cycles: sys.now().as_u64(),
    }
}

/// Runs the experiment; returns the structured report.
pub fn report(quick: bool) -> ExperimentReport {
    let requests = if quick { 40 } else { 200 };
    let mut out = String::new();
    let _ = writeln!(
        out,
        "E8: Fault containment — a service faults on its 10th request under load\n"
    );
    let mut t = TextTable::new(&[
        "policy",
        "ok responses",
        "error responses",
        "recovery (cycles)",
        "bystander ok",
        "tile alive after",
    ]);
    let mut sim_cycles = 0u64;
    let mut metrics = Json::obj().set("requests", requests);
    for (name, policy) in [
        ("fail-stop + reconfigure", FaultPolicy::FailStop),
        ("preempt (context swap)", FaultPolicy::Preempt),
    ] {
        let o = run_policy(policy, requests);
        sim_cycles += o.cycles;
        let key = if policy == FaultPolicy::FailStop {
            "fail_stop"
        } else {
            "preempt"
        };
        metrics.put(
            key,
            Json::obj()
                .set("ok", o.ok_before_recovery)
                .set("errors", o.errors)
                .set("recovery_cycles", o.recovery_cycles)
                .set("bystander_ok", o.bystander_ok)
                .set("tile_alive_after", o.victim_alive_after),
        );
        t.row_owned(vec![
            name.to_string(),
            o.ok_before_recovery.to_string(),
            o.errors.to_string(),
            o.recovery_cycles.to_string(),
            o.bystander_ok.to_string(),
            o.victim_alive_after.to_string(),
        ]);
        assert_eq!(
            o.bystander_ok, requests,
            "containment violated: bystander lost requests"
        );
        let _ = o.served_total;
    }
    let _ = writeln!(out, "{}", t.render());
    let _ = writeln!(
        out,
        "Reading: fail-stop answers every request during the outage with an error and\n\
         pays a bitstream-load recovery (~{} cycles at 4 B/cycle for a 512 KiB partial\n\
         bitstream); preemption recovers in tens of cycles and keeps the tile's state.\n\
         In both cases the bystander application never loses a request — faults do not\n\
         propagate past the monitor (§4.4's fail-stop guarantee).",
        BITSTREAM_BYTES / 4
    );
    ExperimentReport::new(
        "E8",
        "Fault containment: fail-stop vs preemption under load",
        sim_cycles,
        metrics,
        out,
    )
}

/// Runs the experiment; returns the report text.
pub fn run(quick: bool) -> String {
    report(quick).rendered
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preemption_recovers_much_faster_than_reconfig() {
        let fs = run_policy(FaultPolicy::FailStop, 30);
        let pr = run_policy(FaultPolicy::Preempt, 30);
        assert!(
            fs.recovery_cycles > pr.recovery_cycles * 100,
            "fail-stop {} vs preempt {}",
            fs.recovery_cycles,
            pr.recovery_cycles
        );
        assert!(pr.victim_alive_after);
        // Fail-stop produced error replies during the outage.
        assert!(fs.errors > 0);
    }

    #[test]
    fn bystander_is_never_affected() {
        let fs = run_policy(FaultPolicy::FailStop, 30);
        assert_eq!(fs.bystander_ok, 30);
    }

    #[test]
    fn report_renders() {
        let out = run(true);
        assert!(out.contains("fail-stop + reconfigure"));
        assert!(out.contains("preempt (context swap)"));
    }
}
