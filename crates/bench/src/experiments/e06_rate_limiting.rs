//! E6 — Rate limiting a misbehaving accelerator (§4.5).
//!
//! A flooder shares an echo service with a legitimate client. Policies:
//!
//! - **no defense**: the flooder sends unmetered in the victim's own
//!   traffic class — the service queue saturates and the victim's latency
//!   explodes (late requests bounce with OVERLOAD errors);
//! - **NoC QoS only**: the flood is demoted to the bulk class. Priority
//!   arbitration protects the victim *in the network*, but the service's
//!   shared inbox is still swamped — an honest negative result: NoC QoS is
//!   not endpoint admission control;
//! - **monitor rate limit**: the flooder's own monitor meters its egress
//!   to a trickle, and the victim returns to baseline.

use crate::report::{ExperimentReport, Json};
use crate::scenarios::{drive, MonitorClient};
use crate::table::TextTable;
use apiary_accel::apps::echo::echo;
use apiary_accel::apps::flood::{flooder, FlooderAccel};
use apiary_accel::apps::idle::idle;
use apiary_core::{AppId, FaultPolicy, System, SystemConfig};
use apiary_monitor::{Monitor, MonitorConfig};
use apiary_noc::{NodeId, TrafficClass};
use core::fmt::Write;

struct Outcome {
    victim_p50: u64,
    victim_p99: u64,
    victim_errors: u64,
    flood_sent: u64,
    flood_denied: u64,
    cycles: u64,
}

/// Service compute cost: slower than the unmetered flood arrival rate, so
/// an undefended flood saturates the service.
const SERVICE_COST: u64 = 8;
/// Flood message payload (small enough to arrive faster than service).
const FLOOD_BYTES: usize = 64;

fn run_policy(
    attacker_present: bool,
    flood_class: TrafficClass,
    flooder_rate: Option<(u64, u64)>,
    requests: u64,
) -> Outcome {
    let client = NodeId(0);
    let service = NodeId(5);
    let attacker = NodeId(10);
    let mut sys = System::new(SystemConfig::default());
    sys.install(client, Box::new(idle()), AppId(1), FaultPolicy::FailStop)
        .expect("free");
    sys.install(
        service,
        Box::new(echo(SERVICE_COST)),
        AppId(1),
        FaultPolicy::FailStop,
    )
    .expect("free");
    // Give the service a deeper inbox so queueing (not just overflow) is
    // visible. Monitor policy is set before any capability is installed.
    sys.tile_mut(service).monitor = Monitor::new(
        service,
        MonitorConfig {
            inbox_depth: 256,
            ..MonitorConfig::default()
        },
    );
    if attacker_present {
        let mut f = flooder(FLOOD_BYTES);
        f.service_mut().class = flood_class;
        sys.install(attacker, Box::new(f), AppId(2), FaultPolicy::FailStop)
            .expect("free");
        if let Some((rate, burst)) = flooder_rate {
            sys.tile_mut(attacker).monitor = Monitor::new(
                attacker,
                MonitorConfig {
                    rate: Some((rate, burst)),
                    ..MonitorConfig::default()
                },
            );
        }
        sys.connect_env(attacker, service, "target", true)
            .expect("explicit cross-app");
        sys.connect(service, attacker, true).expect("reply path");
    }
    let cap = sys.connect(client, service, false).expect("same app");
    sys.connect(service, client, false).expect("reply path");

    let mut victim = MonitorClient::new(client, cap, 64)
        .window(1)
        .max_requests(requests);
    let cycles = drive(&mut sys, &mut [&mut victim], 50_000_000);
    assert!(victim.done(), "victim never finished ({cycles} cycles)");
    let (flood_sent, flood_denied) = sys
        .accel_as::<FlooderAccel>(attacker)
        .map(|a| (a.service().sent, a.service().rate_limited))
        .unwrap_or((0, 0));
    Outcome {
        victim_p50: victim.rtt.p50(),
        victim_p99: victim.rtt.p99(),
        victim_errors: victim.errors,
        flood_sent,
        flood_denied,
        cycles,
    }
}

/// Runs the experiment; returns the structured report.
pub fn report(quick: bool) -> ExperimentReport {
    let requests = if quick { 30 } else { 200 };
    let mut out = String::new();
    let _ = writeln!(
        out,
        "E6: Protecting a shared service from a flooding accelerator\n\
         (victim: closed-loop echo client; attacker floods the same service)\n"
    );
    let mut t = TextTable::new(&[
        "policy",
        "victim p50 (ok)",
        "victim p99 (ok)",
        "victim errors",
        "flood msgs",
        "flood denials",
    ]);
    let rows: Vec<(&str, Outcome)> = vec![
        (
            "no attacker (baseline)",
            run_policy(false, TrafficClass::Request, None, requests),
        ),
        (
            "no defense",
            run_policy(true, TrafficClass::Request, None, requests),
        ),
        (
            "NoC QoS only (flood demoted to bulk)",
            run_policy(true, TrafficClass::Bulk, None, requests),
        ),
        (
            "monitor rate limit (0.05 B/cyc)",
            run_policy(true, TrafficClass::Request, Some((50, 512)), requests),
        ),
    ];
    for (name, o) in &rows {
        t.row_owned(vec![
            name.to_string(),
            o.victim_p50.to_string(),
            o.victim_p99.to_string(),
            o.victim_errors.to_string(),
            o.flood_sent.to_string(),
            o.flood_denied.to_string(),
        ]);
    }
    let _ = writeln!(out, "{}", t.render());
    let _ = writeln!(
        out,
        "Reading: the unmetered flood saturates the service queue — NoC QoS alone\n\
         cannot fix that (it protects transit, not the endpoint), while the\n\
         monitor's egress rate limit restores the victim to baseline. Endpoint\n\
         admission control belongs in the monitor, exactly where §4.5 puts it."
    );
    let sim_cycles = rows.iter().map(|(_, o)| o.cycles).sum();
    let baseline = &rows[0].1;
    let flooded = &rows[1].1;
    let limited = &rows[3].1;
    let metrics = Json::obj()
        .set("baseline_p99", baseline.victim_p99)
        .set("flooded_p99", flooded.victim_p99)
        .set("rate_limited_p99", limited.victim_p99)
        .set("flood_denials_under_limit", limited.flood_denied);
    ExperimentReport::new(
        "E6",
        "Rate-limiting a flooding accelerator at its monitor",
        sim_cycles,
        metrics,
        out,
    )
}

/// Runs the experiment; returns the report text.
pub fn run(quick: bool) -> String {
    report(quick).rendered
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flood_hurts_and_rate_limit_heals() {
        let quiet = run_policy(false, TrafficClass::Request, None, 25);
        let bad = run_policy(true, TrafficClass::Request, None, 25);
        let healed = run_policy(true, TrafficClass::Request, Some((50, 512)), 25);
        assert!(
            bad.victim_p99 > quiet.victim_p99 * 2,
            "flood p99 {} vs quiet {}",
            bad.victim_p99,
            quiet.victim_p99
        );
        assert!(
            healed.victim_p99 < bad.victim_p99 / 2,
            "healed {} vs flooded {}",
            healed.victim_p99,
            bad.victim_p99
        );
        assert!(healed.flood_denied > 0);
        assert_eq!(quiet.victim_errors, 0);
    }

    #[test]
    fn report_renders() {
        let out = run(true);
        assert!(out.contains("no defense"));
        assert!(out.contains("monitor rate limit"));
    }
}
