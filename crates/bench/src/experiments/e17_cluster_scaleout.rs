//! E17 — Cluster scale-out: goodput and latency across boards (DESIGN.md §5).
//!
//! A fixed open-loop offered load (eight clients, one per entry board,
//! Poisson arrivals) is driven against an echo service replicated on every
//! board of a 1/2/4/8-board cluster. One board cannot absorb the load —
//! goodput should scale with board count until the offered rate is met,
//! then plateau. Two chaos cells stress the eight-board configuration:
//!
//! - **board-kill**: one board of eight dies mid-run. Lease expiry removes
//!   its directory entries everywhere, its remote caps are revoked, and
//!   in-flight requests time out and retry onto live replicas. The cluster
//!   must retain ≥ 80% of the fault-free eight-board goodput.
//! - **link-cut**: one board's uplink drops for a window, then heals. The
//!   fabric ARQ retransmits across the cut; no request may be lost.
//!
//! Reported per cell: goodput (ok responses per kilocycle), end-to-end
//! p50/p99, and the per-hop breakdown (fabric out / on-board / fabric
//! back) that separates wire time from service time. Every cell must
//! drain — chaos may cost requests, never wedge the cluster.

use crate::report::{round3, ExperimentReport, Json};
use crate::table::TextTable;
use apiary_accel::apps::echo::echo;
use apiary_cap::ServiceId;
use apiary_cluster::{run_clients, ClusterClient, ClusterConfig, ClusterSystem};
use apiary_core::{AppId, FaultPolicy};
use apiary_net::Workload;
use apiary_noc::NodeId;
use core::fmt::Write;

const SVC: ServiceId = ServiceId(17);
const REPLICA_NODE: NodeId = NodeId(5);
const BITSTREAM: u64 = 4096; // 1024 cycles over the default 4 B/cycle ICAP.
const ECHO_COST: u64 = 60; // busy cycles per request => ~16.6 req/kcycle/board
const CLIENTS: u32 = 8;
/// Per-client mean interarrival. Eight clients at 80 offer 0.1 req/cycle
/// in total — several times what one replica can serve, so goodput keeps
/// climbing until about four boards share the load.
const INTERARRIVAL: f64 = 80.0;
const WARMUP: u64 = 2_000; // bitstream load + one gossip round
const CUT_WINDOW: u64 = 3_000;
const DRAIN_LIMIT: u64 = 120_000;

/// The chaos applied to a cell, if any.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Chaos {
    /// Fault-free.
    None,
    /// Kill the highest-numbered board at `duration / 2`.
    KillBoard,
    /// Cut the highest-numbered board's uplink at `duration / 2` for
    /// [`CUT_WINDOW`] cycles, then restore it.
    CutLink,
}

impl Chaos {
    fn label(self) -> &'static str {
        match self {
            Chaos::None => "none",
            Chaos::KillBoard => "kill-board",
            Chaos::CutLink => "cut-link",
        }
    }
}

/// One `(boards, chaos)` cell's measurements.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// Boards in the cluster.
    pub boards: u16,
    /// Chaos applied.
    pub chaos: Chaos,
    /// Requests issued across all clients (retries excluded).
    pub issued: u64,
    /// Successful (non-error) responses.
    pub completed_ok: u64,
    /// Error responses (timeouts, refusals, dead-origin submissions).
    pub errors: u64,
    /// Client-level retries.
    pub retries: u64,
    /// Requests that timed out at the cluster layer.
    pub timeouts: u64,
    /// Submissions served by a replica on the origin board.
    pub local_submitted: u64,
    /// Submissions forwarded over the fabric.
    pub remote_submitted: u64,
    /// Fabric ARQ retransmissions.
    pub retransmissions: u64,
    /// Frames dropped on downed links.
    pub cut_drops: u64,
    /// Remote caps revoked after lease expiry.
    pub caps_revoked: u64,
    /// End-to-end latency of successful requests (p50, p99).
    pub e2e: (u64, u64),
    /// Per-hop p50s: fabric out, on-board, fabric back.
    pub hops_p50: (u64, u64, u64),
    /// The post-run drain reached quiescence (must always be true).
    pub drained: bool,
    /// Simulated cycles at the end of the run (warm-up + load + drain).
    pub sim_cycles: u64,
}

impl RunOutcome {
    /// Successful responses per thousand cycles of driven load.
    pub fn goodput_per_kcycle(&self, duration: u64) -> f64 {
        self.completed_ok as f64 * 1000.0 / duration.max(1) as f64
    }
}

/// The whole experiment: the scale-out sweep plus the chaos cells.
#[derive(Debug, Clone)]
pub struct ScaleoutReport {
    /// Cycles of driven load per cell.
    pub duration: u64,
    /// Cells: boards ∈ {1, 2, 4, 8} fault-free, then the chaos cells.
    pub runs: Vec<RunOutcome>,
}

/// Drives one cell: `duration` cycles of fixed open-loop load against a
/// `boards`-wide cluster with one echo replica per board.
pub fn run_one(boards: u16, chaos: Chaos, duration: u64) -> RunOutcome {
    let mut c = ClusterSystem::new(ClusterConfig {
        boards,
        // At 3x overload a full queue (replica inbox + NoC + gateway
        // outbox) is worth ~5k cycles of wait; 8k separates "slow" from
        // "dead" without writing off every queued request.
        request_timeout: 8_000,
        ..ClusterConfig::default()
    });
    for b in 0..boards {
        c.deploy_replica(
            b,
            "kv",
            SVC,
            REPLICA_NODE,
            AppId(1),
            FaultPolicy::FailStop,
            BITSTREAM,
            Box::new(|| Box::new(echo(ECHO_COST))),
        )
        .expect("replica tile free");
    }
    c.tick_n(WARMUP);

    let mut clients: Vec<ClusterClient> = (0..CLIENTS)
        .map(|i| {
            ClusterClient::new(
                i + 1,
                i as u16 % boards,
                "kv",
                64,
                Workload::Open {
                    mean_interarrival: INTERARRIVAL,
                },
                0xE17_0000 + i as u64,
            )
        })
        .collect();

    // The load phase runs in segments bounded by the chaos boundaries so
    // the event clock treats them as wakeup deadlines: chaos lands on the
    // same cycle it would under a dense per-cycle check of `now >= at`.
    let victim = boards - 1;
    let end_load = c.now().as_u64() + duration;
    run_clients(&mut c, &mut clients, duration / 2, |_, _| false);
    let mut restore_at = u64::MAX;
    match chaos {
        Chaos::None => {}
        Chaos::KillBoard => c.kill_board(victim),
        Chaos::CutLink => {
            c.cut_link(victim, None);
            restore_at = c.now().as_u64() + CUT_WINDOW;
        }
    }
    if restore_at <= end_load {
        let win = restore_at - c.now().as_u64();
        run_clients(&mut c, &mut clients, win, |_, _| false);
        c.restore_link(victim, None);
    }
    let rest = end_load - c.now().as_u64();
    run_clients(&mut c, &mut clients, rest, |_, _| false);

    // Stop issuing and drain: chaos may cost requests, never the cluster.
    for cl in &mut clients {
        cl.gen.max_requests = cl.gen.stats.issued;
    }
    let drained = run_clients(&mut c, &mut clients, DRAIN_LIMIT, |c, _| c.quiescent());

    let issued: u64 = clients.iter().map(|cl| cl.gen.stats.issued).sum();
    let completed: u64 = clients.iter().map(|cl| cl.gen.stats.completed).sum();
    let errors: u64 = clients.iter().map(|cl| cl.gen.stats.errors).sum();
    let retries: u64 = clients.iter().map(|cl| cl.gen.stats.retries).sum();
    let fs = c.fabric().stats();
    RunOutcome {
        boards,
        chaos,
        issued,
        completed_ok: completed - errors,
        errors,
        retries,
        timeouts: c.timeouts,
        local_submitted: c.local_submitted,
        remote_submitted: c.remote_submitted,
        retransmissions: fs.retransmissions,
        cut_drops: fs.cut_drops,
        caps_revoked: c.caps_revoked,
        e2e: (
            c.end_to_end.histogram().p50(),
            c.end_to_end.histogram().p99(),
        ),
        hops_p50: (
            c.fabric_out.histogram().p50(),
            c.on_board.histogram().p50(),
            c.fabric_back.histogram().p50(),
        ),
        drained,
        sim_cycles: c.now().as_u64(),
    }
}

/// Executes the sweep.
pub fn execute(quick: bool) -> ScaleoutReport {
    let duration: u64 = if quick { 25_000 } else { 80_000 };
    let mut runs = Vec::new();
    for boards in [1u16, 2, 4, 8] {
        runs.push(run_one(boards, Chaos::None, duration));
    }
    runs.push(run_one(8, Chaos::KillBoard, duration));
    runs.push(run_one(8, Chaos::CutLink, duration));
    for o in &runs {
        assert!(
            o.drained,
            "cell ({} boards, {}) failed to drain",
            o.boards,
            o.chaos.label()
        );
    }
    ScaleoutReport { duration, runs }
}

impl ScaleoutReport {
    /// The fault-free cell at `boards`.
    pub fn fault_free(&self, boards: u16) -> &RunOutcome {
        self.runs
            .iter()
            .find(|o| o.boards == boards && o.chaos == Chaos::None)
            .expect("fault-free cell present")
    }

    /// Goodput retention of a chaos cell against the fault-free cell at
    /// the same board count.
    pub fn retention(&self, o: &RunOutcome) -> f64 {
        o.completed_ok as f64 / self.fault_free(o.boards).completed_ok.max(1) as f64
    }

    /// Human-readable report.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "E17: Cluster scale-out — goodput and latency across boards\n\
             ({} cycles of fixed open-loop load per cell: {} clients, \
             mean interarrival {} cycles, echo cost {} cycles)\n",
            self.duration, CLIENTS, INTERARRIVAL, ECHO_COST
        );
        let mut t = TextTable::new(&[
            "boards",
            "chaos",
            "issued",
            "ok",
            "errors",
            "goodput/kcyc",
            "e2e p50",
            "e2e p99",
            "fabric p50 (out/back)",
            "on-board p50",
            "retx",
            "timeouts",
        ]);
        for o in &self.runs {
            t.row_owned(vec![
                o.boards.to_string(),
                o.chaos.label().to_string(),
                o.issued.to_string(),
                o.completed_ok.to_string(),
                o.errors.to_string(),
                format!("{:.1}", o.goodput_per_kcycle(self.duration)),
                o.e2e.0.to_string(),
                o.e2e.1.to_string(),
                format!("{}/{}", o.hops_p50.0, o.hops_p50.2),
                o.hops_p50.1.to_string(),
                o.retransmissions.to_string(),
                o.timeouts.to_string(),
            ]);
        }
        out.push_str(&t.render());
        let g1 = self.fault_free(1).goodput_per_kcycle(self.duration);
        let g8 = self.fault_free(8).goodput_per_kcycle(self.duration);
        let _ = writeln!(
            out,
            "\nScale-out: {:.1} -> {:.1} ok/kcycle (1 -> 8 boards, {:.2}x)",
            g1,
            g8,
            g8 / g1.max(1e-9)
        );
        for o in self.runs.iter().filter(|o| o.chaos != Chaos::None) {
            let _ = writeln!(
                out,
                "Chaos {}: {:.1}% goodput retention, {} timeouts, {} caps revoked, {} retransmissions",
                o.chaos.label(),
                self.retention(o) * 100.0,
                o.timeouts,
                o.caps_revoked,
                o.retransmissions
            );
        }
        out
    }
}

/// Builds the structured report.
pub fn report(quick: bool) -> ExperimentReport {
    let r = execute(quick);
    let sim_cycles: u64 = r.runs.iter().map(|o| o.sim_cycles).sum();
    let mut metrics = Json::obj()
        .set("duration_cycles", r.duration)
        .set("clients", CLIENTS as u64)
        .set("mean_interarrival", INTERARRIVAL)
        .set(
            "scaleout_1_to_8",
            round3(
                r.fault_free(8).completed_ok as f64 / r.fault_free(1).completed_ok.max(1) as f64,
            ),
        );
    let mut cells = Vec::new();
    for o in &r.runs {
        cells.push(
            Json::obj()
                .set("boards", o.boards as u64)
                .set("chaos", o.chaos.label())
                .set("issued", o.issued)
                .set("completed_ok", o.completed_ok)
                .set("errors", o.errors)
                .set("retries", o.retries)
                .set("timeouts", o.timeouts)
                .set(
                    "goodput_per_kcycle",
                    round3(o.goodput_per_kcycle(r.duration)),
                )
                .set("e2e_p50", o.e2e.0)
                .set("e2e_p99", o.e2e.1)
                .set("fabric_out_p50", o.hops_p50.0)
                .set("on_board_p50", o.hops_p50.1)
                .set("fabric_back_p50", o.hops_p50.2)
                .set("local_submitted", o.local_submitted)
                .set("remote_submitted", o.remote_submitted)
                .set("retransmissions", o.retransmissions)
                .set("cut_drops", o.cut_drops)
                .set("caps_revoked", o.caps_revoked)
                .set(
                    "goodput_retention",
                    (r.retention(o) * 10_000.0).round() / 10_000.0,
                )
                .set("drained", o.drained),
        );
    }
    metrics.put("runs", Json::Arr(cells));
    ExperimentReport::new(
        "E17",
        "Cluster scale-out: goodput and latency across boards",
        sim_cycles,
        metrics,
        r.render(),
    )
}

/// Runs the experiment; returns the report text.
pub fn run(quick: bool) -> String {
    execute(quick).render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn goodput_scales_and_chaos_retains_80_percent() {
        let r = execute(true);
        let (g1, g2, g4) = (
            r.fault_free(1).completed_ok,
            r.fault_free(2).completed_ok,
            r.fault_free(4).completed_ok,
        );
        assert!(g2 as f64 > g1 as f64 * 1.2, "2 boards beat 1: {g1} -> {g2}");
        assert!(g4 as f64 > g2 as f64 * 1.2, "4 boards beat 2: {g2} -> {g4}");
        for o in r.runs.iter().filter(|o| o.chaos != Chaos::None) {
            assert!(
                r.retention(o) >= 0.8,
                "chaos {} retained {:.1}%",
                o.chaos.label(),
                r.retention(o) * 100.0
            );
        }
        // The kill cell actually exercised failover machinery.
        let kill = r
            .runs
            .iter()
            .find(|o| o.chaos == Chaos::KillBoard)
            .expect("kill cell");
        assert!(kill.timeouts > 0, "in-flight requests to the dead board");
        assert!(kill.caps_revoked > 0, "lease expiry revoked its caps");
        // The cut cell exercised the ARQ.
        let cut = r
            .runs
            .iter()
            .find(|o| o.chaos == Chaos::CutLink)
            .expect("cut cell");
        assert!(cut.cut_drops > 0 && cut.retransmissions > 0);
    }

    #[test]
    fn same_inputs_same_cell() {
        let a = run_one(2, Chaos::None, 6_000);
        let b = run_one(2, Chaos::None, 6_000);
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
    }
}
