//! E7 — Segments vs pages for FPGA memory isolation (§4.6).
//!
//! The paper's claim: segments with capabilities beat paging for Apiary's
//! needs — arbitrary allocation sizes (no stranding/rounding waste) and a
//! one-cycle bounds check instead of TLB + page walks. This experiment runs
//! the same allocation/access trace through four designs:
//!
//! - segment allocator, first-fit and best-fit,
//! - buddy allocator (power-of-two segments),
//! - a paged MMU at 4 KiB and at 2 MiB pages (with a 32-entry TLB).
//!
//! Reported: success rate, wasted bytes (internal fragmentation +
//! unusable-free stranding), and mean translation/check latency under a
//! working set larger than the TLB reach.

use crate::report::{ExperimentReport, Json};
use crate::table::TextTable;
use apiary_cap::MemRange;
use apiary_mem::{AllocPolicy, BuddyAllocator, PagedMmu, SegmentAllocator};
use apiary_sim::SimRng;
use core::fmt::Write;

const CAPACITY: u64 = 64 << 20;

/// A mixed allocation-size distribution modelled on accelerator buffers:
/// mostly small descriptors, some frame-sized buffers, occasional large
/// model/table regions — with sizes that are *not* page multiples.
fn sample_size(rng: &mut SimRng) -> u64 {
    match rng.gen_range(10) {
        0..=3 => rng.gen_range_inclusive(64, 4096), // Descriptors.
        4..=7 => rng.gen_range_inclusive(10_000, 300_000), // Frames.
        _ => rng.gen_range_inclusive(1 << 20, 6 << 20), // Models.
    }
}

#[derive(Debug, Default)]
struct Outcome {
    attempts: u64,
    failures: u64,
    requested_live: u64,
    physical_live: u64,
    /// Mean cycles per access check/translation.
    access_cycles: f64,
}

trait Arena {
    fn alloc(&mut self, len: u64) -> Option<MemRange>;
    fn free(&mut self, r: MemRange);
    fn physical_live(&self) -> u64;
    /// Cycles to validate/translate one access at `addr` within a live
    /// allocation.
    fn access(&mut self, r: &MemRange, off: u64) -> u64;
}

struct SegArena(SegmentAllocator);

impl Arena for SegArena {
    fn alloc(&mut self, len: u64) -> Option<MemRange> {
        self.0.alloc(len).ok()
    }
    fn free(&mut self, r: MemRange) {
        self.0.free(r).expect("live");
    }
    fn physical_live(&self) -> u64 {
        self.0.stats().used
    }
    fn access(&mut self, _r: &MemRange, _off: u64) -> u64 {
        // Base + bounds comparators: single cycle, always.
        1
    }
}

struct BuddyArena(BuddyAllocator);

impl Arena for BuddyArena {
    fn alloc(&mut self, len: u64) -> Option<MemRange> {
        self.0.alloc(len).ok()
    }
    fn free(&mut self, r: MemRange) {
        self.0.free(r).expect("live");
    }
    fn physical_live(&self) -> u64 {
        self.0.total() - self.0.free_bytes()
    }
    fn access(&mut self, _r: &MemRange, _off: u64) -> u64 {
        1
    }
}

struct PageArena(PagedMmu);

impl Arena for PageArena {
    fn alloc(&mut self, len: u64) -> Option<MemRange> {
        self.0.map(len).ok()
    }
    fn free(&mut self, r: MemRange) {
        self.0.unmap(r).expect("live");
    }
    fn physical_live(&self) -> u64 {
        self.0.mapped_bytes()
    }
    fn access(&mut self, r: &MemRange, off: u64) -> u64 {
        let (_pa, lat) = self
            .0
            .translate(r.base + off % r.len.max(1))
            .expect("mapped");
        lat
    }
}

fn run_trace(arena: &mut dyn Arena, ops: u64, seed: u64) -> Outcome {
    let mut rng = SimRng::new(seed);
    // (granted range, bytes actually requested) — the buddy allocator
    // hands back rounded ranges, so the request size must be tracked
    // separately to account waste honestly.
    let mut live: Vec<(MemRange, u64)> = Vec::new();
    let mut o = Outcome::default();
    let mut access_total = 0u64;
    let mut accesses = 0u64;
    for _ in 0..ops {
        // 55% alloc / 45% free keeps pressure rising toward capacity.
        if live.is_empty() || rng.gen_bool(0.55) {
            let len = sample_size(&mut rng);
            o.attempts += 1;
            match arena.alloc(len) {
                Some(r) => live.push((r, len)),
                None => o.failures += 1,
            }
        } else {
            let i = rng.gen_range(live.len() as u64) as usize;
            let (r, _) = live.swap_remove(i);
            arena.free(r);
        }
        // Touch a few random live allocations (working set > TLB reach).
        for _ in 0..4 {
            if live.is_empty() {
                break;
            }
            let (r, _) = live[rng.gen_range(live.len() as u64) as usize];
            access_total += arena.access(&r, rng.gen_range(r.len.max(1)));
            accesses += 1;
        }
    }
    o.requested_live = live.iter().map(|(_, req)| req).sum();
    o.physical_live = arena.physical_live();
    o.access_cycles = access_total as f64 / accesses.max(1) as f64;
    o
}

/// Runs the experiment; returns the structured report.
pub fn report(quick: bool) -> ExperimentReport {
    let ops = if quick { 2_000 } else { 20_000 };
    let mut out = String::new();
    let _ = writeln!(
        out,
        "E7: Segments vs pages — {} alloc/free/access operations over a {} MiB arena\n",
        ops,
        CAPACITY >> 20
    );
    let mut t = TextTable::new(&[
        "design",
        "alloc failures",
        "waste (phys-req)",
        "waste %",
        "access cyc (mean)",
    ]);
    let designs: Vec<(&str, Box<dyn Arena>)> = vec![
        (
            "segments, first-fit",
            Box::new(SegArena(SegmentAllocator::new(
                CAPACITY,
                AllocPolicy::FirstFit,
            ))),
        ),
        (
            "segments, best-fit",
            Box::new(SegArena(SegmentAllocator::new(
                CAPACITY,
                AllocPolicy::BestFit,
            ))),
        ),
        (
            "buddy (pow2 segments)",
            Box::new(BuddyArena(BuddyAllocator::new(256, 18))), // 64 MiB.
        ),
        (
            "paging, 4 KiB + TLB32",
            Box::new(PageArena(PagedMmu::new(4096, CAPACITY / 4096, 32, 60))),
        ),
        (
            "paging, 2 MiB + TLB32",
            Box::new(PageArena(PagedMmu::new(
                2 << 20,
                CAPACITY / (2 << 20),
                32,
                60,
            ))),
        ),
    ];
    let mut metrics = Json::obj().set("ops", ops).set("arena_mib", CAPACITY >> 20);
    let mut designs_json = Vec::new();
    for (name, mut arena) in designs {
        let o = run_trace(arena.as_mut(), ops, 1234);
        let waste = o.physical_live.saturating_sub(o.requested_live);
        designs_json.push(
            Json::obj()
                .set("design", name)
                .set("alloc_failures", o.failures)
                .set("waste_bytes", waste)
                .set(
                    "access_cycles_mean",
                    (o.access_cycles * 100.0).round() / 100.0,
                ),
        );
        t.row_owned(vec![
            name.to_string(),
            format!("{} / {}", o.failures, o.attempts),
            format!("{} KiB", waste >> 10),
            format!(
                "{:.1}%",
                100.0 * waste as f64 / o.physical_live.max(1) as f64
            ),
            format!("{:.2}", o.access_cycles),
        ]);
    }
    let _ = writeln!(out, "{}", t.render());
    let _ = writeln!(
        out,
        "Reading: segments serve exact sizes (zero rounding waste) and check in one\n\
         cycle. Buddy pays power-of-two rounding; 4 KiB paging pays TLB misses on a\n\
         large working set; 2 MiB paging trades misses for massive internal\n\
         fragmentation — the §4.6 design point in one table."
    );
    metrics.put("designs", Json::Arr(designs_json));
    ExperimentReport::new(
        "E7",
        "Segments vs pages: waste and translation latency",
        0,
        metrics,
        out,
    )
}

/// Runs the experiment; returns the report text.
pub fn run(quick: bool) -> String {
    report(quick).rendered
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn segments_have_zero_waste_and_unit_access() {
        let mut a = SegArena(SegmentAllocator::new(CAPACITY, AllocPolicy::FirstFit));
        let o = run_trace(&mut a, 1_000, 7);
        assert_eq!(o.physical_live, o.requested_live);
        assert_eq!(o.access_cycles, 1.0);
    }

    #[test]
    fn paging_wastes_and_slows() {
        let mut seg = SegArena(SegmentAllocator::new(CAPACITY, AllocPolicy::FirstFit));
        let s = run_trace(&mut seg, 1_000, 7);
        let mut pg = PageArena(PagedMmu::new(4096, CAPACITY / 4096, 32, 60));
        let p = run_trace(&mut pg, 1_000, 7);
        assert!(p.physical_live > p.requested_live, "pages round up");
        assert!(p.access_cycles > s.access_cycles, "TLB misses cost");
    }

    #[test]
    fn huge_pages_waste_more() {
        let mut p4 = PageArena(PagedMmu::new(4096, CAPACITY / 4096, 32, 60));
        let a = run_trace(&mut p4, 1_000, 7);
        let mut p2m = PageArena(PagedMmu::new(2 << 20, CAPACITY / (2 << 20), 32, 60));
        let b = run_trace(&mut p2m, 1_000, 7);
        let waste4 = a.physical_live - a.requested_live;
        let waste2m = b.physical_live.saturating_sub(b.requested_live);
        // Huge pages either waste far more physical memory or fail far
        // more allocations (capacity exhausted by rounding).
        assert!(waste2m > waste4 || b.failures > a.failures * 2);
    }

    #[test]
    fn report_renders() {
        let out = run(true);
        assert!(out.contains("segments, first-fit"));
        assert!(out.contains("paging, 4 KiB"));
    }
}
