//! E13 — NoC design ablations (DESIGN.md §4's design choices, measured).
//!
//! Four knobs of the interconnect, one at a time, under moderate uniform
//! load on a 4x4 mesh:
//!
//! - **VC buffer depth** — deeper buffers absorb bursts (credit stalls
//!   fall) at BRAM cost;
//! - **flit width** — wider links serialise big messages faster; this is
//!   most of what a hardened NoC buys;
//! - **per-hop pipeline latency** — the soft-logic router tax;
//! - **soft vs hardened preset** — the §4.3 argument for hardened NoCs in
//!   one row.

use crate::report::{ExperimentReport, Json};
use crate::table::TextTable;
use apiary_noc::{Message, Noc, NocConfig, NodeId, TrafficClass};
use apiary_sim::SimRng;
use core::fmt::Write;

struct Point {
    p50: u64,
    p99: u64,
    delivered_per_cycle: f64,
    cycles: u64,
}

/// Uniform random traffic, mixed message sizes, fixed offered load.
fn measure(cfg: NocConfig, cycles: u64, seed: u64) -> Point {
    let mut noc = Noc::new(cfg);
    let nodes = noc.mesh().nodes() as u16;
    let mut rng = SimRng::new(seed);
    for _ in 0..cycles {
        for src in 0..nodes {
            if rng.gen_bool(0.04) {
                let mut dst = rng.gen_range(nodes as u64) as u16;
                if dst == src {
                    dst = (dst + 1) % nodes;
                }
                // Mixed sizes: mostly small control-ish, some bulk.
                let bytes = if rng.gen_bool(0.2) { 512 } else { 32 };
                let _ = noc.try_inject(
                    NodeId(src),
                    Message::new(
                        NodeId(src),
                        NodeId(dst),
                        TrafficClass::Request,
                        vec![0; bytes],
                    ),
                );
            }
        }
        noc.step();
        for n in 0..nodes {
            noc.drain_eject(NodeId(n));
        }
    }
    let measured = noc.stats().cycles;
    noc.run_until_quiescent(5_000_000);
    let st = noc.stats();
    Point {
        p50: st.latency.p50(),
        p99: st.latency.p99(),
        delivered_per_cycle: st.delivered as f64 / measured as f64,
        cycles: st.cycles,
    }
}

/// Runs the experiment; returns the structured report.
pub fn report(quick: bool) -> ExperimentReport {
    let cycles = if quick { 4_000 } else { 30_000 };
    let mut out = String::new();
    let _ = writeln!(
        out,
        "E13: NoC design ablations (4x4 mesh, uniform traffic, mixed 32 B/512 B messages)\n"
    );

    let base = NocConfig::soft(4, 4);
    let mut t = TextTable::new(&["variant", "p50", "p99", "delivered msg/cyc"]);
    let mut sim_cycles = 0u64;
    let mut variants = Vec::new();
    let mut add = |name: String, cfg: NocConfig, t: &mut TextTable| {
        let p = measure(cfg, cycles, 1234);
        sim_cycles += p.cycles;
        variants.push(
            Json::obj()
                .set("variant", name.clone())
                .set("p50", p.p50)
                .set("p99", p.p99),
        );
        t.row_owned(vec![
            name,
            p.p50.to_string(),
            p.p99.to_string(),
            format!("{:.3}", p.delivered_per_cycle),
        ]);
    };

    for depth in [1usize, 2, 4, 8] {
        add(
            format!("vc_buffer = {depth}"),
            NocConfig {
                vc_buffer: depth,
                ..base
            },
            &mut t,
        );
    }
    for flit in [8usize, 16, 32, 64] {
        add(
            format!("flit_bytes = {flit}"),
            NocConfig {
                flit_bytes: flit,
                ..base
            },
            &mut t,
        );
    }
    for hop in [0u64, 1, 2, 4] {
        add(
            format!("hop_latency = {hop}"),
            NocConfig {
                hop_latency: hop,
                ..base
            },
            &mut t,
        );
    }
    add("preset: soft".to_string(), base, &mut t);
    add(
        "preset: hardened".to_string(),
        NocConfig::hardened(4, 4),
        &mut t,
    );
    let _ = writeln!(out, "{}", t.render());
    let _ = writeln!(
        out,
        "Reading: buffer depth mainly trims the tail (credit stalls); flit width cuts\n\
         serialisation of bulk messages (the dominant term for 512 B payloads); hop\n\
         pipeline latency is a flat per-hop tax. The hardened preset combines wide\n\
         flits and zero-bubble hops — the quantitative case for §4.3's preference\n\
         for hardened NoCs."
    );
    let soft_p50 = variants
        .iter()
        .find(|v| v.get("variant") == Some(&Json::Str("preset: soft".into())))
        .and_then(|v| v.get("p50").cloned())
        .unwrap_or(Json::Null);
    let hard_p50 = variants
        .iter()
        .find(|v| v.get("variant") == Some(&Json::Str("preset: hardened".into())))
        .and_then(|v| v.get("p50").cloned())
        .unwrap_or(Json::Null);
    let metrics = Json::obj()
        .set("soft_p50", soft_p50)
        .set("hardened_p50", hard_p50)
        .set("variants", Json::Arr(variants));
    ExperimentReport::new(
        "E13",
        "NoC design ablations: buffers, flit width, hop latency, presets",
        sim_cycles,
        metrics,
        out,
    )
}

/// Runs the experiment; returns the report text.
pub fn run(quick: bool) -> String {
    report(quick).rendered
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wider_flits_cut_latency() {
        let narrow = measure(
            NocConfig {
                flit_bytes: 8,
                ..NocConfig::soft(4, 4)
            },
            4_000,
            7,
        );
        let wide = measure(
            NocConfig {
                flit_bytes: 64,
                ..NocConfig::soft(4, 4)
            },
            4_000,
            7,
        );
        assert!(
            wide.p50 < narrow.p50,
            "wide {} narrow {}",
            wide.p50,
            narrow.p50
        );
    }

    #[test]
    fn hop_latency_is_a_flat_tax() {
        let fast = measure(
            NocConfig {
                hop_latency: 0,
                ..NocConfig::soft(4, 4)
            },
            4_000,
            8,
        );
        let slow = measure(
            NocConfig {
                hop_latency: 4,
                ..NocConfig::soft(4, 4)
            },
            4_000,
            8,
        );
        assert!(slow.p50 > fast.p50);
    }

    #[test]
    fn hardened_beats_soft() {
        let soft = measure(NocConfig::soft(4, 4), 4_000, 9);
        let hard = measure(NocConfig::hardened(4, 4), 4_000, 9);
        assert!(hard.p50 < soft.p50);
        assert!(hard.p99 <= soft.p99);
    }

    #[test]
    fn report_renders() {
        let out = run(true);
        assert!(out.contains("vc_buffer = 1"));
        assert!(out.contains("preset: hardened"));
    }
}
