//! E4 — Direct-attached vs host-mediated (§1's motivating claim).
//!
//! The same request stream — closed-loop clients, same wire, same
//! accelerator compute cost — is served three ways:
//!
//! - **Apiary (direct)**: frames hit the FPGA's MAC tile and are steered
//!   over the NoC to the accelerator; no CPU anywhere.
//! - **Coyote-like (hosted, spatial)**: every request crosses the host
//!   CPU and PCIe in both directions.
//! - **AmorphOS-like (hosted, time-sliced)**: as Coyote, plus waiting for
//!   the application's fabric time slice.
//!
//! Reported: client-observed RTT (p50/p99) and the energy proxy per
//! request. Expectation from the paper: direct wins on latency, tail, and
//! energy; the gap narrows as compute dominates.

use crate::report::{ExperimentReport, Json};
use crate::table::TextTable;
use apiary_accel::apps::echo::echo;
use apiary_core::{AppId, FaultPolicy, System, SystemConfig};
use apiary_host::{EnergyModel, HostConfig, HostMode, HostSim};
use apiary_net::{EthernetTile, NetConfig, RequestGen, Workload};
use apiary_noc::NodeId;
use core::fmt::Write;

/// Direct-attached measurement: RTT histogram + FPGA busy cycles +
/// NoC bytes + simulated cycles driven.
fn run_direct(compute: u64, requests: u64) -> (apiary_sim::Histogram, u64, u64, u64) {
    let mut sys = System::new(SystemConfig::default());
    let mac_node = NodeId(0);
    let svc_node = NodeId(5);
    let mut mac = EthernetTile::new(NetConfig::default());
    mac.add_client(
        RequestGen::new(
            1,
            80,
            64,
            Workload::Closed {
                outstanding: 1,
                think_cycles: 0,
            },
            42,
        )
        .with_max_requests(requests),
    );
    sys.install(
        mac_node,
        Box::new(mac),
        apiary_core::process::OS_APP,
        FaultPolicy::FailStop,
    )
    .expect("free");
    sys.install(
        svc_node,
        Box::new(echo(compute)),
        AppId(1),
        FaultPolicy::FailStop,
    )
    .expect("free");
    let cap = sys.connect(mac_node, svc_node, false).expect("OS app");
    sys.connect(svc_node, mac_node, false).expect("reply path");
    sys.accel_as_mut::<EthernetTile>(mac_node)
        .expect("installed")
        .bind_flow(80, cap);

    let finished = sys.run_until(200_000_000, |s| {
        s.accel_as::<EthernetTile>(mac_node)
            .expect("installed")
            .all_done()
    });
    debug_assert!(finished);
    let mac = sys.accel_as::<EthernetTile>(mac_node).expect("installed");
    let stats = mac.client(0).stats.clone();
    assert_eq!(stats.completed, requests, "direct path did not finish");
    // FPGA busy cycles: compute per request; NoC bytes: request+response.
    let fpga_busy = compute * requests;
    let noc_bytes = requests * (64 + 64 + 32); // payloads + headers.
    (stats.rtt, fpga_busy, noc_bytes, sys.now().as_u64())
}

fn run_host(compute: u64, requests: u64, mode: HostMode) -> (apiary_sim::Histogram, u64, u64) {
    let cfg = HostConfig {
        fpga_compute_cycles: compute,
        mode,
        ..HostConfig::default()
    };
    let mut sim = HostSim::new(cfg, 7);
    let apps = match mode {
        HostMode::AmorphOs { apps, .. } => apps,
        HostMode::Coyote => 1,
    };
    sim.run_closed_loop(requests, 1, apps);
    let s = sim.stats().clone();
    (s.rtt, s.cpu_busy_cycles, s.fpga_busy_cycles)
}

/// Runs the experiment; returns the structured report.
pub fn report(quick: bool) -> ExperimentReport {
    let requests: u64 = if quick { 30 } else { 300 };
    let computes: &[u64] = if quick {
        &[256, 4096]
    } else {
        &[64, 256, 1024, 4096, 16384]
    };
    let energy = EnergyModel::new();
    let amorphos = HostMode::AmorphOs {
        slice_period: 50_000,
        switch_cost: 10_000,
        apps: 4,
    };

    let mut t = TextTable::new(&[
        "compute (cyc)",
        "direct p50",
        "direct p99",
        "coyote p50",
        "coyote p99",
        "amorphos p50",
        "speedup v coyote",
        "energy ratio (host/direct)",
    ]);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "E4: Direct-attached Apiary vs host-mediated baselines\n\
         (closed loop, 1 client, 64 B requests, {} requests per point)\n",
        requests
    );
    let mut sim_cycles = 0u64;
    let mut first_speedup = 0.0;
    let mut first_energy_ratio = 0.0;
    for &compute in computes {
        let (d_rtt, d_fpga, d_noc, cyc) = run_direct(compute, requests);
        sim_cycles += cyc;
        let (c_rtt, c_cpu, c_fpga) = run_host(compute, requests, HostMode::Coyote);
        let (a_rtt, _, _) = run_host(compute, requests, amorphos);
        let direct_energy = energy.direct_energy(d_fpga, d_noc) / requests as f64;
        let host_energy = energy.host_energy(c_cpu, c_fpga, requests * 128) / requests as f64;
        if compute == computes[0] {
            first_speedup = c_rtt.p50() as f64 / d_rtt.p50() as f64;
            first_energy_ratio = host_energy / direct_energy;
        }
        t.row_owned(vec![
            compute.to_string(),
            d_rtt.p50().to_string(),
            d_rtt.p99().to_string(),
            c_rtt.p50().to_string(),
            c_rtt.p99().to_string(),
            a_rtt.p50().to_string(),
            format!("{:.2}x", c_rtt.p50() as f64 / d_rtt.p50() as f64),
            format!("{:.2}x", host_energy / direct_energy),
        ]);
    }
    let _ = writeln!(out, "{}", t.render());
    let _ = writeln!(
        out,
        "All latencies in 250 MHz cycles (4 ns each). The direct path saves the CPU\n\
         mediation (~850 CPU cycles/request) and two PCIe crossings; the advantage is\n\
         largest for small compute and persists (energy) even when compute dominates."
    );
    let metrics = Json::obj()
        .set("requests_per_point", requests)
        .set("compute_points", computes.len())
        .set(
            "speedup_vs_coyote_smallest_compute",
            (first_speedup * 100.0).round() / 100.0,
        )
        .set(
            "energy_ratio_smallest_compute",
            (first_energy_ratio * 100.0).round() / 100.0,
        );
    ExperimentReport::new(
        "E4",
        "Direct-attached vs host-mediated request serving",
        sim_cycles,
        metrics,
        out,
    )
}

/// Runs the experiment; returns the report text.
pub fn run(quick: bool) -> String {
    report(quick).rendered
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn direct_beats_coyote_at_small_compute() {
        let requests = 20;
        let (d, _, _, _) = run_direct(256, requests);
        let (c, _, _) = run_host(256, requests, HostMode::Coyote);
        assert!(
            c.p50() > d.p50(),
            "coyote p50 {} should exceed direct p50 {}",
            c.p50(),
            d.p50()
        );
    }

    #[test]
    fn amorphos_is_worst() {
        let requests = 20;
        let (c, _, _) = run_host(256, requests, HostMode::Coyote);
        let (a, _, _) = run_host(
            256,
            requests,
            HostMode::AmorphOs {
                slice_period: 50_000,
                switch_cost: 10_000,
                apps: 4,
            },
        );
        assert!(a.mean() > c.mean());
    }

    #[test]
    fn report_renders() {
        let out = run(true);
        assert!(out.contains("speedup"));
        assert!(out.contains("energy ratio"));
    }
}
