//! E9 — NoC scaling (§3 scalability goal, §4.3 physical interconnect).
//!
//! The NoC is the one physical interface every tile shares; Apiary scales
//! only if the NoC does. We sweep mesh size and traffic pattern, raising
//! offered load until latency diverges, and report throughput at
//! saturation:
//!
//! - **uniform random**: every node sends to every node — the canonical
//!   bisection-limited pattern;
//! - **hotspot**: everyone hammers one service tile — the §2 shared-service
//!   shape and the worst case for endpoint queues;
//! - **neighbour**: nearest-neighbour pipelines — the composition shape,
//!   nearly contention-free.

use crate::report::{ExperimentReport, Json};
use crate::table::TextTable;
use apiary_noc::{Message, Noc, NocConfig, NodeId, TrafficClass};
use apiary_sim::SimRng;
use core::fmt::Write;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Pattern {
    Uniform,
    Hotspot,
    Neighbor,
}

impl Pattern {
    fn dest(&self, src: u16, nodes: u16, rng: &mut SimRng) -> u16 {
        match self {
            Pattern::Uniform => {
                let mut d = rng.gen_range(nodes as u64) as u16;
                if d == src {
                    d = (d + 1) % nodes;
                }
                d
            }
            Pattern::Hotspot => 0,
            Pattern::Neighbor => (src + 1) % nodes,
        }
    }

    fn name(&self) -> &'static str {
        match self {
            Pattern::Uniform => "uniform",
            Pattern::Hotspot => "hotspot",
            Pattern::Neighbor => "neighbour",
        }
    }
}

struct Point {
    delivered_per_node_cycle: f64,
    p50: u64,
    p99: u64,
    cycles: u64,
}

/// Drives the raw NoC at a Bernoulli injection rate (messages per node per
/// cycle) for `cycles`, then drains.
fn measure(size: u8, pattern: Pattern, rate: f64, cycles: u64, seed: u64) -> Point {
    let mut noc = Noc::new(NocConfig::soft(size, size));
    let nodes = noc.mesh().nodes() as u16;
    let mut rng = SimRng::new(seed);
    // One-flit payloads isolate routing behaviour from serialisation.
    let payload = 8usize;
    for _ in 0..cycles {
        for src in 0..nodes {
            if rng.gen_bool(rate) {
                let dst = pattern.dest(src, nodes, &mut rng);
                if src == dst {
                    continue;
                }
                let msg = Message::new(
                    NodeId(src),
                    NodeId(dst),
                    TrafficClass::Request,
                    vec![0; payload],
                );
                let _ = noc.try_inject(NodeId(src), msg);
            }
        }
        noc.step();
        for n in 0..nodes {
            noc.drain_eject(NodeId(n));
        }
    }
    let measured_cycles = noc.stats().cycles;
    noc.run_until_quiescent(5_000_000);
    for n in 0..nodes {
        noc.drain_eject(NodeId(n));
    }
    let st = noc.stats();
    Point {
        delivered_per_node_cycle: st.delivered as f64 / (measured_cycles as f64 * nodes as f64),
        p50: st.latency.p50(),
        p99: st.latency.p99(),
        cycles: st.cycles,
    }
}

/// Runs the experiment; returns the structured report.
pub fn report(quick: bool) -> ExperimentReport {
    let cycles = if quick { 3_000 } else { 20_000 };
    let sizes: &[u8] = if quick { &[2, 4] } else { &[2, 4, 6, 8] };
    let rates: &[f64] = if quick {
        &[0.02, 0.10, 0.30]
    } else {
        &[0.01, 0.02, 0.05, 0.10, 0.20, 0.30, 0.50]
    };
    let mut out = String::new();
    let _ = writeln!(
        out,
        "E9: NoC scaling — delivered throughput and latency vs offered load\n\
         (single-flit messages, soft NoC, XY routing, 3 VCs)\n"
    );
    let mut sim_cycles = 0u64;
    let mut metrics = Json::obj().set("cycles_per_point", cycles).set(
        "mesh_sizes",
        sizes.iter().map(|&s| s as u64).collect::<Vec<_>>(),
    );
    for pattern in [Pattern::Uniform, Pattern::Hotspot, Pattern::Neighbor] {
        let mut t = TextTable::new(&[
            "mesh",
            "offered (msg/node/cyc)",
            "delivered (msg/node/cyc)",
            "p50",
            "p99",
        ]);
        let mut peak = 0.0f64;
        for &size in sizes {
            for &rate in rates {
                let p = measure(size, pattern, rate, cycles, 99);
                sim_cycles += p.cycles;
                peak = peak.max(p.delivered_per_node_cycle);
                t.row_owned(vec![
                    format!("{size}x{size}"),
                    format!("{rate:.2}"),
                    format!("{:.3}", p.delivered_per_node_cycle),
                    p.p50.to_string(),
                    p.p99.to_string(),
                ]);
            }
        }
        metrics.put(
            format!("peak_delivered_{}", pattern.name()),
            (peak * 1000.0).round() / 1000.0,
        );
        let _ = writeln!(out, "pattern: {}\n{}", pattern.name(), t.render());
    }
    let _ = writeln!(
        out,
        "Reading: neighbour traffic scales linearly with mesh size; uniform traffic\n\
         saturates at the bisection; hotspot throughput is capped by the single\n\
         ejection port regardless of mesh size — shared services need replication\n\
         (E10) or admission control (E6), not a bigger network."
    );
    ExperimentReport::new(
        "E9",
        "NoC scaling: throughput and latency vs offered load",
        sim_cycles,
        metrics,
        out,
    )
}

/// Runs the experiment; returns the report text.
pub fn run(quick: bool) -> String {
    report(quick).rendered
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn neighbour_beats_uniform_beats_hotspot_at_high_load() {
        let n = measure(4, Pattern::Neighbor, 0.3, 3_000, 7);
        let u = measure(4, Pattern::Uniform, 0.3, 3_000, 7);
        let h = measure(4, Pattern::Hotspot, 0.3, 3_000, 7);
        assert!(n.delivered_per_node_cycle > u.delivered_per_node_cycle);
        assert!(u.delivered_per_node_cycle > h.delivered_per_node_cycle);
    }

    #[test]
    fn latency_rises_with_load() {
        let low = measure(4, Pattern::Uniform, 0.01, 3_000, 8);
        let high = measure(4, Pattern::Uniform, 0.5, 3_000, 8);
        assert!(high.p99 > low.p99 * 2, "{} vs {}", high.p99, low.p99);
    }

    #[test]
    fn hotspot_caps_at_ejection_rate() {
        // Total hotspot delivery can never exceed ~1 message per cycle
        // (single ejection port at the hot node).
        let h = measure(4, Pattern::Hotspot, 0.5, 3_000, 9);
        let total_per_cycle = h.delivered_per_node_cycle * 16.0;
        assert!(total_per_cycle <= 1.05, "{total_per_cycle}");
    }

    #[test]
    fn report_renders() {
        let out = run(true);
        assert!(out.contains("pattern: uniform"));
        assert!(out.contains("pattern: hotspot"));
        assert!(out.contains("pattern: neighbour"));
    }
}
