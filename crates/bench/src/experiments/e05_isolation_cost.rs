//! E5 — What does capability enforcement cost? (§4.5/§4.6)
//!
//! Isolation must hold *and* be affordable. This experiment shows both:
//!
//! 1. **Enforcement**: a tile with no (or a revoked) capability cannot get
//!    a single message to its target; denials are counted at the monitor.
//! 2. **Cost**: throughput of a capability-checked message stream as the
//!    check pipeline deepens, against an unchecked (`check_cycles = 0`,
//!    rate limiter off) configuration.

use crate::report::{ExperimentReport, Json};
use crate::scenarios::{client_server, drive, MonitorClient};
use crate::table::TextTable;
use apiary_accel::apps::echo::echo;
use apiary_cap::{CapError, Rights};
use apiary_core::SystemConfig;
use apiary_monitor::{MonitorConfig, SendError};
use apiary_noc::{NodeId, TrafficClass};
use core::fmt::Write;

/// Runs the experiment; returns the structured report.
pub fn report(quick: bool) -> ExperimentReport {
    let mut out = String::new();
    let _ = writeln!(out, "E5: Capability enforcement and its cost\n");

    // Part A: enforcement is absolute.
    let (mut sys, cap) = client_server(
        SystemConfig::default(),
        NodeId(0),
        NodeId(5),
        Box::new(echo(1)),
    );
    let now = sys.now();
    // A forged handle fails.
    let forged = apiary_cap::CapRef {
        index: 31,
        generation: 0,
    };
    let err = sys
        .tile_mut(NodeId(0))
        .monitor
        .send(forged, 1, 0, TrafficClass::Request, vec![], now)
        .expect_err("forged handle");
    let _ = writeln!(out, "Forged capability handle     -> {err}");
    // A derived, RECV-only capability cannot send.
    let weak = sys
        .tile_mut(NodeId(0))
        .monitor
        .derive_cap(cap, Rights::NONE, None);
    // The grant right is absent on plain connects, so even deriving fails:
    let _ = writeln!(
        out,
        "Derive from no-GRANT cap     -> {}",
        match weak {
            Err(e) => e.to_string(),
            Ok(_) => "unexpectedly allowed".to_string(),
        }
    );
    // Revocation cuts a live flow.
    sys.tile_mut(NodeId(0))
        .monitor
        .revoke_cap(cap)
        .expect("live");
    let err = sys
        .tile_mut(NodeId(0))
        .monitor
        .send(cap, 1, 0, TrafficClass::Request, vec![], now)
        .expect_err("revoked");
    let _ = writeln!(out, "Send through revoked cap     -> {err}");
    let denied = sys.tile(NodeId(0)).monitor.stats().denied;
    let _ = writeln!(out, "Monitor denial counter       -> {denied}\n");
    assert!(matches!(err, SendError::Cap(CapError::StaleRef)));

    // Part B: the cost of checking.
    let requests: u64 = if quick { 40 } else { 400 };
    let mut t = TextTable::new(&[
        "config",
        "RTT p50 (cyc)",
        "throughput (msg/kcyc)",
        "overhead vs unchecked",
    ]);
    let mut base_thr = 0.0;
    let mut realistic_thr = 0.0;
    let mut sim_cycles = 0u64;
    for (name, check) in [
        ("unchecked (0-cycle)", 0u64),
        ("checked (1-cycle, realistic)", 1),
        ("checked (4-cycle)", 4),
        ("checked (8-cycle)", 8),
    ] {
        let cfg = SystemConfig {
            monitor: MonitorConfig {
                check_cycles: check,
                ..MonitorConfig::default()
            },
            ..SystemConfig::default()
        };
        let (mut sys, cap) = client_server(cfg, NodeId(0), NodeId(5), Box::new(echo(1)));
        let mut client = MonitorClient::new(NodeId(0), cap, 16)
            .window(4)
            .max_requests(requests);
        let cycles = drive(&mut sys, &mut [&mut client], 10_000_000);
        sim_cycles += cycles;
        assert!(client.done(), "E5 load did not complete");
        let thr = requests as f64 / cycles as f64 * 1000.0;
        if check == 0 {
            base_thr = thr;
        }
        if check == 1 {
            realistic_thr = thr;
        }
        t.row_owned(vec![
            name.to_string(),
            client.rtt.p50().to_string(),
            format!("{thr:.2}"),
            format!("{:.1}%", (1.0 - thr / base_thr) * 100.0),
        ]);
    }
    let _ = writeln!(
        out,
        "Throughput cost of the capability check:\n{}",
        t.render()
    );
    let gap_pct = (1.0 - realistic_thr / base_thr) * 100.0;
    let _ = writeln!(
        out,
        "Checked-vs-unchecked gap: {gap_pct:.2}% — the flow-verdict cache batches the\n\
         capability check per flow, so steady-state checked throughput tracks unchecked\n\
         and interposition is effectively free next to NoC transit and service time."
    );
    let metrics = Json::obj()
        .set("denials", denied)
        .set(
            "throughput_unchecked_msg_per_kcyc",
            (base_thr * 100.0).round() / 100.0,
        )
        .set(
            "throughput_1cycle_msg_per_kcyc",
            (realistic_thr * 100.0).round() / 100.0,
        )
        .set(
            "overhead_1cycle_pct",
            ((1.0 - realistic_thr / base_thr) * 1000.0).round() / 10.0,
        )
        .set(
            "checked_vs_unchecked_gap_pct",
            (gap_pct * 100.0).round() / 100.0,
        );
    ExperimentReport::new(
        "E5",
        "Capability enforcement: absolute denial, near-zero cost",
        sim_cycles,
        metrics,
        out,
    )
}

/// Runs the experiment; returns the report text.
pub fn run(quick: bool) -> String {
    report(quick).rendered
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enforcement_section_present() {
        let out = run(true);
        assert!(out.contains("invalid capability reference"));
        assert!(out.contains("stale capability reference"));
        assert!(out.contains("Monitor denial counter       -> 2"));
    }

    #[test]
    fn one_cycle_check_is_cheap() {
        let out = run(true);
        // The realistic row's overhead column should be small; just check
        // the row exists and the table rendered.
        assert!(out.contains("checked (1-cycle, realistic)"));
        assert!(out.contains("throughput (msg/kcyc)"));
        assert!(out.contains("Checked-vs-unchecked gap:"));
    }

    #[test]
    fn flow_cache_closes_the_gap() {
        // The acceptance bar for the batched-verdict path: checked
        // throughput within 2% of unchecked.
        let r = report(true);
        let gap = match r.metrics.get("checked_vs_unchecked_gap_pct") {
            Some(crate::report::Json::F64(x)) => *x,
            other => panic!("metric missing or mistyped: {other:?}"),
        };
        assert!(
            gap.abs() < 2.0,
            "checked-vs-unchecked gap {gap:.2}% exceeds 2%"
        );
    }
}
