//! E14 — Partial-reconfiguration churn (§4.1's dynamic tiles; the
//! multiplexing substrate AmorphOS/Coyote schedule over).
//!
//! Apiary defers *scheduling* of reconfiguration to prior work but its
//! tiles must make swapping cheap and contained. Three measurements:
//!
//! 1. **Swap latency** vs bitstream size through a 4 B/cycle ICAP — the
//!    fixed cost any scheduler pays.
//! 2. **ICAP serialisation**: K tiles swapped at once queue behind one
//!    configuration port.
//! 3. **Availability under churn**: a service tile is reconfigured every
//!    T cycles while a client hammers it; errors per reconfiguration show
//!    the outage a swap inflicts on live traffic (bounded, fail-stop
//!    semantics — never a hang).

use crate::report::{ExperimentReport, Json};
use crate::scenarios::MonitorClient;
use crate::table::TextTable;
use apiary_accel::apps::echo::echo;
use apiary_accel::apps::idle::idle;
use apiary_core::reconfig::ReconfigController;
use apiary_core::{AppId, FaultPolicy, System, SystemConfig};
use apiary_noc::NodeId;
use apiary_sim::Cycle;
use core::fmt::Write;

/// Runs the experiment; returns the structured report.
pub fn report(quick: bool) -> ExperimentReport {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "E14: Partial-reconfiguration churn (ICAP at 4 B/cycle)\n"
    );
    let mut metrics = Json::obj();

    // Part 1: swap latency vs bitstream size.
    let mut t = TextTable::new(&[
        "bitstream",
        "swap cycles",
        "swap time @250 MHz",
        "max swaps/s",
    ]);
    for (label, bytes) in [
        ("64 KiB", 64u64 << 10),
        ("256 KiB", 256 << 10),
        ("1 MiB", 1 << 20),
        ("4 MiB", 4 << 20),
    ] {
        let mut rc = ReconfigController::new(4);
        let done = rc.start(
            Cycle::ZERO,
            NodeId(1),
            Box::new(idle()),
            AppId(1),
            FaultPolicy::FailStop,
            bytes,
        );
        let cycles = done.as_u64();
        if bytes == 256 << 10 {
            metrics.put("swap_cycles_256kib", cycles);
        }
        let us = cycles as f64 * 0.004;
        t.row_owned(vec![
            label.to_string(),
            cycles.to_string(),
            format!("{us:.0} us"),
            format!("{:.0}", 1e6 / us),
        ]);
    }
    let _ = writeln!(out, "Swap latency vs bitstream size:\n{}", t.render());

    // Part 2: ICAP serialisation.
    let mut t = TextTable::new(&["simultaneous swaps", "first done", "last done"]);
    for k in [1u64, 2, 4, 8] {
        let mut rc = ReconfigController::new(4);
        let mut last = Cycle::ZERO;
        let mut first = Cycle::MAX;
        for i in 0..k {
            let done = rc.start(
                Cycle::ZERO,
                NodeId(i as u16),
                Box::new(idle()),
                AppId(1),
                FaultPolicy::FailStop,
                256 << 10,
            );
            first = first.min(done);
            last = last.max(done);
        }
        t.row_owned(vec![
            k.to_string(),
            first.as_u64().to_string(),
            last.as_u64().to_string(),
        ]);
    }
    let _ = writeln!(
        out,
        "One configuration port serialises concurrent swaps (256 KiB each):\n{}",
        t.render()
    );

    // Part 3: availability under churn.
    let requests: u64 = if quick { 60 } else { 400 };
    let mut t = TextTable::new(&[
        "reconfig period (cyc)",
        "reconfigs",
        "ok",
        "errors+lost",
        "availability",
    ]);
    let mut sim_cycles = 0u64;
    let mut availabilities = Vec::new();
    for period in [200_000u64, 400_000, 800_000] {
        let client = NodeId(0);
        let server = NodeId(5);
        let mut sys = System::new(SystemConfig::default());
        sys.install(client, Box::new(idle()), AppId(1), FaultPolicy::FailStop)
            .expect("free");
        sys.install(server, Box::new(echo(8)), AppId(1), FaultPolicy::FailStop)
            .expect("free");
        let cap = sys.connect(client, server, false).expect("same app");
        sys.connect(server, client, false).expect("reply path");

        let mut c = MonitorClient::new(client, cap, 32).max_requests(requests);
        c.think = 1_000; // Spread the load across the churn window.
        c.timeout = 100_000;
        let mut reconfigs = 0u64;
        let mut next_swap = period;
        for _ in 0..200_000_000u64 {
            sys.tick();
            c.pump(&mut sys);
            if sys.now().as_u64() >= next_swap {
                next_swap += period;
                if sys
                    .reconfigure(
                        server,
                        Box::new(echo(8)),
                        AppId(1),
                        FaultPolicy::FailStop,
                        64 << 10,
                    )
                    .is_ok()
                {
                    reconfigs += 1;
                }
            }
            // Re-wire the reply path the moment the swap lands.
            if sys.tile(server).monitor.state() == apiary_monitor::TileState::Running
                && sys.tile(server).monitor.find_endpoint_cap(client).is_none()
            {
                sys.connect(server, client, false).expect("re-wire");
            }
            if c.done() {
                break;
            }
        }
        assert!(c.done(), "churn run stalled");
        sim_cycles += sys.now().as_u64();
        let ok = c.completed - c.errors;
        let bad = c.errors + c.lost;
        let avail = 100.0 * ok as f64 / (ok + bad) as f64;
        availabilities.push(
            Json::obj()
                .set("period", period)
                .set("availability_pct", (avail * 10.0).round() / 10.0),
        );
        t.row_owned(vec![
            period.to_string(),
            reconfigs.to_string(),
            ok.to_string(),
            bad.to_string(),
            format!("{avail:.1}%"),
        ]);
    }
    let _ = writeln!(
        out,
        "Service availability while its tile is repeatedly reconfigured\n\
         (64 KiB bitstream = 16384-cycle outage per swap; client sends every ~1000 cyc):\n{}",
        t.render()
    );
    let _ = writeln!(
        out,
        "Reading: a swap costs bitstream/4 cycles of tile downtime, during which every\n\
         request is answered with a clean error (fail-stop, never a hang); availability\n\
         is simply uptime/(uptime+outage). Schedulers in the AmorphOS/Coyote tradition\n\
         can multiplex Apiary tiles with exactly these constants."
    );
    metrics.put("availability_under_churn", Json::Arr(availabilities));
    ExperimentReport::new(
        "E14",
        "Partial-reconfiguration churn: swap latency, ICAP serialisation, availability",
        sim_cycles,
        metrics,
        out,
    )
}

/// Runs the experiment; returns the report text.
pub fn run(quick: bool) -> String {
    report(quick).rendered
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_covers_all_parts() {
        let out = run(true);
        assert!(out.contains("Swap latency"));
        assert!(out.contains("serialises concurrent swaps"));
        assert!(out.contains("availability"));
    }

    #[test]
    fn longer_periods_mean_higher_availability() {
        let out = run(true);
        // Extract the availability column values in order.
        let avail: Vec<f64> = out
            .lines()
            .filter(|l| l.contains('%') && l.starts_with("| "))
            .filter_map(|l| {
                l.split('|')
                    .rfind(|c| c.contains('%'))
                    .and_then(|c| c.trim().trim_end_matches('%').parse::<f64>().ok())
            })
            .collect();
        assert!(avail.len() >= 3, "{out}");
        let n = avail.len();
        assert!(
            avail[n - 1] >= avail[n - 3],
            "availability should improve with period: {avail:?}"
        );
    }
}
