//! E10 — The §2 video pipeline: composition and scale-out.
//!
//! Frames flow ingress -> video encoder -> third-party compressor ->
//! egress, entirely over capabilities (the compressor knows nothing about
//! video, the encoder nothing about compression). We then replicate the
//! pipeline to show the §3 scalability goal: adding encoder/compressor
//! pairs scales throughput without touching either accelerator's code —
//! the kernel just wires more tiles.
//!
//! Every frame is verified end-to-end: decompress + decode must equal the
//! original (lossless settings), so throughput numbers are for real work.

use crate::report::{ExperimentReport, Json};
use crate::scenarios::{pump_group, MonitorClient};
use crate::table::TextTable;
use apiary_accel::apps::compress::compressor;
use apiary_accel::apps::video::{encode_request, video_encoder};
use apiary_accel::codec::{lz, video};
use apiary_core::{AppId, FaultPolicy, System, SystemConfig};
use apiary_noc::{NocConfig, NodeId};
use core::fmt::Write;

const FRAME_W: u32 = 48;
const FRAME_H: u32 = 32;

struct PipelineRun {
    frames: u64,
    cycles: u64,
    bytes_in: u64,
    bytes_out: u64,
    verified: bool,
}

/// Builds `replicas` parallel encoder->compressor lanes on a 4x4 mesh and
/// pushes `frames` frames through them round-robin from one ingress tile.
fn run_pipeline(replicas: usize, frames: u64) -> PipelineRun {
    assert!(replicas <= 4, "a 4x4 mesh fits four lanes");
    let cfg = SystemConfig {
        noc: NocConfig::soft(4, 4),
        ..SystemConfig::default()
    };
    let mut sys = System::new(cfg);
    let ingress = NodeId(0);
    sys.install(
        ingress,
        Box::new(apiary_accel::apps::idle::idle()),
        AppId(1),
        FaultPolicy::FailStop,
    )
    .expect("free");
    // Lane i: encoder at row i+... place encoder and compressor adjacent.
    let mut lane_caps = Vec::new();
    for i in 0..replicas {
        let enc = NodeId((1 + i * 2) as u16);
        let comp = NodeId((2 + i * 2) as u16);
        sys.install(
            enc,
            Box::new(video_encoder(0)),
            AppId(1),
            FaultPolicy::FailStop,
        )
        .expect("free");
        sys.install(
            comp,
            Box::new(compressor()),
            AppId(1),
            FaultPolicy::FailStop,
        )
        .expect("free");
        let to_enc = sys.connect(ingress, enc, false).expect("same app");
        sys.connect_env(enc, comp, "next", false).expect("same app");
        sys.connect_env(comp, ingress, "next", false)
            .expect("same app");
        lane_caps.push(to_enc);
    }

    // Round-robin the frames over lanes: one MonitorClient per lane, each
    // getting an equal share and a distinct tag namespace.
    let share = frames / replicas as u64;
    let mut clients: Vec<MonitorClient> = lane_caps
        .iter()
        .enumerate()
        .map(|(i, &cap)| {
            let mut c = MonitorClient::with_payload(
                ingress,
                cap,
                Box::new(move |tag| {
                    let frame = video::Frame::test_pattern(FRAME_W, FRAME_H, tag);
                    encode_request(&frame)
                }),
            )
            .window(2)
            .max_requests(share)
            .keep_responses(4);
            c.tag_base = (i as u64) << 48;
            c
        })
        .collect();

    let start = sys.now();
    for _ in 0..500_000_000u64 {
        sys.tick();
        pump_group(&mut sys, ingress, &mut clients);
        if clients.iter().all(|c| c.done()) {
            break;
        }
    }
    let cycles = sys.now() - start;
    // Verify kept responses decode back to the original frames.
    let mut verified = true;
    let mut bytes_out = 0u64;
    let mut done_frames = 0u64;
    for c in &clients {
        assert!(c.done(), "pipeline stalled");
        done_frames += c.completed - c.errors;
        for (tag, compressed) in &c.kept {
            bytes_out += compressed.len() as u64;
            let stream = lz::decompress(compressed).expect("compressor output");
            let frame = video::decode(&stream).expect("encoder output");
            let original = video::Frame::test_pattern(FRAME_W, FRAME_H, *tag);
            if frame != original {
                verified = false;
            }
        }
    }
    PipelineRun {
        frames: done_frames,
        cycles,
        bytes_in: done_frames * (FRAME_W as u64 * FRAME_H as u64),
        bytes_out,
        verified,
    }
}

/// Runs the experiment; returns the structured report.
pub fn report(quick: bool) -> ExperimentReport {
    let frames: u64 = if quick { 8 } else { 64 };
    let mut out = String::new();
    let _ = writeln!(
        out,
        "E10: Video pipeline (encode -> third-party compress) and scale-out\n\
         ({}x{} frames, lossless settings, every kept frame verified end-to-end)\n",
        FRAME_W, FRAME_H
    );
    let mut t = TextTable::new(&[
        "lanes",
        "frames",
        "cycles",
        "frames / Mcycle",
        "speedup",
        "verified",
    ]);
    let mut base = 0.0;
    let mut sim_cycles = 0u64;
    let mut all_verified = true;
    let mut speedup4 = 0.0;
    for replicas in [1usize, 2, 4] {
        let r = run_pipeline(replicas, frames);
        sim_cycles += r.cycles;
        all_verified &= r.verified;
        let fpm = r.frames as f64 / r.cycles as f64 * 1e6;
        if replicas == 1 {
            base = fpm;
        }
        if replicas == 4 {
            speedup4 = fpm / base;
        }
        t.row_owned(vec![
            replicas.to_string(),
            r.frames.to_string(),
            r.cycles.to_string(),
            format!("{fpm:.1}"),
            format!("{:.2}x", fpm / base),
            r.verified.to_string(),
        ]);
        let _ = (r.bytes_in, r.bytes_out);
    }
    let _ = writeln!(out, "{}", t.render());
    let _ = writeln!(
        out,
        "Reading: lanes scale near-linearly until the shared ingress tile's single\n\
         injection port becomes the bottleneck — the §3 scalability story, including\n\
         its limit. Composition needed no changes to either accelerator: the kernel\n\
         re-pointed 'next' capabilities."
    );
    let metrics = Json::obj()
        .set("frames_per_lane_run", frames)
        .set("frames_per_mcycle_1lane", (base * 10.0).round() / 10.0)
        .set("speedup_4lane", (speedup4 * 100.0).round() / 100.0)
        .set("all_verified", all_verified);
    ExperimentReport::new(
        "E10",
        "Video pipeline composition and scale-out, verified losslessly",
        sim_cycles,
        metrics,
        out,
    )
}

/// Runs the experiment; returns the report text.
pub fn run(quick: bool) -> String {
    report(quick).rendered
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipeline_verifies_end_to_end() {
        let r = run_pipeline(1, 4);
        assert_eq!(r.frames, 4);
        assert!(r.verified, "frame corrupted in flight");
        assert!(r.bytes_out > 0);
    }

    #[test]
    fn two_lanes_beat_one() {
        let one = run_pipeline(1, 8);
        let two = run_pipeline(2, 8);
        let f1 = one.frames as f64 / one.cycles as f64;
        let f2 = two.frames as f64 / two.cycles as f64;
        assert!(f2 > f1 * 1.3, "1 lane {f1:.2e}, 2 lanes {f2:.2e}");
    }

    #[test]
    fn report_renders() {
        let out = run(true);
        assert!(out.contains("lanes"));
        assert!(out.contains("verified"));
    }
}
