//! Regenerates experiment e12_remote_service (see DESIGN.md §3). Pass `--quick` for a
//! scaled-down run.

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    print!(
        "{}",
        apiary_bench::experiments::e12_remote_service::run(quick)
    );
}
