//! Regenerates experiment e07_segments_vs_pages (see DESIGN.md §3). Pass `--quick` for a
//! scaled-down run.

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    print!(
        "{}",
        apiary_bench::experiments::e07_segments_vs_pages::run(quick)
    );
}
