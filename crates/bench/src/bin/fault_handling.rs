//! Regenerates experiment e08_fault_handling (see DESIGN.md §3). Pass `--quick` for a
//! scaled-down run.

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    print!(
        "{}",
        apiary_bench::experiments::e08_fault_handling::run(quick)
    );
}
