//! Regenerates experiment e14_reconfig_churn (see DESIGN.md §3). Pass
//! `--quick` for a scaled-down run.

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    print!(
        "{}",
        apiary_bench::experiments::e14_reconfig_churn::run(quick)
    );
}
