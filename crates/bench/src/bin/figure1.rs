//! Regenerates experiment e02_figure1 (see DESIGN.md §3). Pass `--quick` for a
//! scaled-down run.

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    print!("{}", apiary_bench::experiments::e02_figure1::run(quick));
}
