//! Ad-hoc NoC hot-path profiler: times injection vs tick vs drain for a
//! few representative E9/E13 points. Not part of the suite; a scratch tool
//! for performance work on the interconnect.

use apiary_noc::{Message, Noc, NocConfig, NodeId, TrafficClass};
use apiary_sim::SimRng;
use std::time::Instant;

fn point(size: u8, rate: f64, cycles: u64, payload: usize, label: &str) {
    let mut noc = Noc::new(NocConfig::soft(size, size));
    let nodes = noc.mesh().nodes() as u16;
    let mut rng = SimRng::new(99);
    let mut t_inject = 0.0f64;
    let mut t_tick = 0.0f64;
    let mut t_drain_eject = 0.0f64;
    for _ in 0..cycles {
        let t0 = Instant::now();
        for src in 0..nodes {
            if rng.gen_bool(rate) {
                let mut d = rng.gen_range(nodes as u64) as u16;
                if d == src {
                    d = (d + 1) % nodes;
                }
                if src == d {
                    continue;
                }
                let msg = Message::new(
                    NodeId(src),
                    NodeId(d),
                    TrafficClass::Request,
                    vec![0; payload],
                );
                let _ = noc.try_inject(NodeId(src), msg);
            }
        }
        let t1 = Instant::now();
        noc.step();
        let t2 = Instant::now();
        for n in 0..nodes {
            noc.drain_eject(NodeId(n));
        }
        let t3 = Instant::now();
        t_inject += (t1 - t0).as_secs_f64();
        t_tick += (t2 - t1).as_secs_f64();
        t_drain_eject += (t3 - t2).as_secs_f64();
    }
    let t0 = Instant::now();
    noc.run_until_quiescent(5_000_000);
    let t_drain = t0.elapsed().as_secs_f64();
    let st = noc.stats();
    println!(
        "{label}: inject {:.3}s tick {:.3}s eject {:.3}s drain {:.3}s ({} cyc total, {:.2}us/tick)",
        t_inject,
        t_tick,
        t_drain_eject,
        t_drain,
        st.cycles,
        t_tick * 1e6 / cycles as f64
    );
}

fn main() {
    point(8, 0.50, 20_000, 8, "8x8 u0.50 1-flit");
    point(8, 0.05, 20_000, 8, "8x8 u0.05 1-flit");
    point(4, 0.04, 30_000, 512, "4x4 u0.04 512B (E13-ish)");
}
