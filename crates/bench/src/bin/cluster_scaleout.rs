//! Regenerates experiment e17_cluster_scaleout (see DESIGN.md §3). Pass
//! `--quick` for a scaled-down run. Writes the structured result to
//! `results/e17_cluster_scaleout.json` (the parent directory is created;
//! a failed write exits non-zero).

use apiary_bench::{harness, results};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let r = harness::run_one(
        apiary_bench::experiments::e17_cluster_scaleout::report,
        quick,
    );
    print!("{}", r.rendered);
    results::write_report_or_exit(&r);
}
