//! Regenerates experiment e06_rate_limiting (see DESIGN.md §3). Pass `--quick` for a
//! scaled-down run.

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    print!(
        "{}",
        apiary_bench::experiments::e06_rate_limiting::run(quick)
    );
}
