//! Regenerates experiment e01_table1 (see DESIGN.md §3). Pass `--quick` for a
//! scaled-down run.

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    print!("{}", apiary_bench::experiments::e01_table1::run(quick));
}
