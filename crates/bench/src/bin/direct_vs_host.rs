//! Regenerates experiment e04_direct_vs_host (see DESIGN.md §3). Pass `--quick` for a
//! scaled-down run.

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    print!(
        "{}",
        apiary_bench::experiments::e04_direct_vs_host::run(quick)
    );
}
