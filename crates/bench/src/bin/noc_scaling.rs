//! Regenerates experiment e09_noc_scaling (see DESIGN.md §3). Pass `--quick` for a
//! scaled-down run.

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    print!("{}", apiary_bench::experiments::e09_noc_scaling::run(quick));
}
