//! Regenerates experiment e16_chaos (see DESIGN.md §3). Pass `--quick` for a
//! scaled-down run. Writes machine-readable results to
//! `results/e16_chaos.json` (next to the repo's other result files).

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let report = apiary_bench::experiments::e16_chaos::execute(quick);
    print!("{}", report.render());
    let path = std::path::Path::new("results");
    let out = if path.is_dir() {
        path.join("e16_chaos.json")
    } else {
        std::path::PathBuf::from("e16_chaos.json")
    };
    match std::fs::write(&out, report.to_json()) {
        Ok(()) => println!("\nwrote {}", out.display()),
        Err(e) => eprintln!("\nfailed to write {}: {e}", out.display()),
    }
}
