//! Regenerates experiment e10_video_pipeline (see DESIGN.md §3). Pass `--quick` for a
//! scaled-down run.

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    print!(
        "{}",
        apiary_bench::experiments::e10_video_pipeline::run(quick)
    );
}
