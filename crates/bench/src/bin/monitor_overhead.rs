//! Regenerates experiment e03_monitor_overhead (see DESIGN.md §3). Pass `--quick` for a
//! scaled-down run.

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    print!(
        "{}",
        apiary_bench::experiments::e03_monitor_overhead::run(quick)
    );
}
