//! Regenerates experiment e13_noc_ablation (see DESIGN.md §3). Pass `--quick` for a
//! scaled-down run.

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    print!(
        "{}",
        apiary_bench::experiments::e13_noc_ablation::run(quick)
    );
}
