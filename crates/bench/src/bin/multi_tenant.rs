//! Regenerates experiment e11_multi_tenant (see DESIGN.md §3). Pass `--quick` for a
//! scaled-down run.

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    print!(
        "{}",
        apiary_bench::experiments::e11_multi_tenant::run(quick)
    );
}
