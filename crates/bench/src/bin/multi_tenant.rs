//! Regenerates experiment e11_multi_tenant (see DESIGN.md §3). Pass `--quick` for a
//! scaled-down run. Writes the structured result to `results/e11_multi_tenant.json`
//! (the parent directory is created; a failed write exits non-zero).

use apiary_bench::{harness, results};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let r = harness::run_one(apiary_bench::experiments::e11_multi_tenant::report, quick);
    print!("{}", r.rendered);
    results::write_report_or_exit(&r);
}
