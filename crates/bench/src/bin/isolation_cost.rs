//! Regenerates experiment e05_isolation_cost (see DESIGN.md §3). Pass `--quick` for a
//! scaled-down run.

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    print!(
        "{}",
        apiary_bench::experiments::e05_isolation_cost::run(quick)
    );
}
