//! Runs every experiment (quick mode by default; pass `--full` for the
//! complete sweeps) and prints all reports — the one-command artifact
//! regeneration entry point.

use apiary_bench::experiments as e;

type Experiment = (&'static str, fn(bool) -> String);

fn main() {
    let quick = !std::env::args().any(|a| a == "--full");
    let experiments: Vec<Experiment> = vec![
        ("E1", e::e01_table1::run),
        ("E2", e::e02_figure1::run),
        ("E3", e::e03_monitor_overhead::run),
        ("E4", e::e04_direct_vs_host::run),
        ("E5", e::e05_isolation_cost::run),
        ("E6", e::e06_rate_limiting::run),
        ("E7", e::e07_segments_vs_pages::run),
        ("E8", e::e08_fault_handling::run),
        ("E9", e::e09_noc_scaling::run),
        ("E10", e::e10_video_pipeline::run),
        ("E11", e::e11_multi_tenant::run),
        ("E12", e::e12_remote_service::run),
        ("E13", e::e13_noc_ablation::run),
        ("E14", e::e14_reconfig_churn::run),
        ("E15", e::e15_memory_service::run),
        ("E16", e::e16_chaos::run),
    ];
    for (id, run) in experiments {
        println!("==================== {id} ====================");
        print!("{}", run(quick));
        println!();
    }
}
