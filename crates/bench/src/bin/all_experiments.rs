//! Runs every experiment (quick mode by default; pass `--full` for the
//! complete sweeps) on a scoped thread pool and writes the perf baseline.
//!
//! - `--jobs N` sets the worker count (default: available cores). Output is
//!   byte-identical for any N: reports print in E1..E19 order and only
//!   `wall_ms` varies run to run.
//! - `--det-check` runs the suite a second time on a single worker and
//!   fails (exit 1) unless every report's deterministic portion is
//!   byte-identical to the parallel run — the contract CI enforces.
//! - `--det-check=event-vs-dense` replays the suite under the dense
//!   per-cycle reference clock and fails (exit 1) unless every report is
//!   byte-identical to the event-clock run. The wall-time ratio between
//!   the two runs is the event-core speedup, recorded in the baseline.
//! - `--bench-guard` compares this run's aggregate `sim_cycles_per_sec`
//!   against the committed `results/BENCH_apiary.json` *before* overwriting
//!   it and fails (exit 1) on a drop of more than 10% — the perf-regression
//!   tripwire CI runs. Baselines from a different mode (quick vs full) are
//!   skipped with a warning rather than compared.
//! - Each experiment's structured result lands in `results/eNN_<name>.json`;
//!   the aggregate (wall time, simulated cycles/sec, headline metrics, and
//!   the measured NoC active-set speedup) in `results/BENCH_apiary.json`.

use apiary_bench::harness;
use apiary_bench::report::{round3, Json};
use apiary_bench::results;
use apiary_noc::{Message, Noc, NocConfig, NodeId, TrafficClass};
use apiary_sim::{set_clock_mode, ClockMode};
use std::time::Instant;

/// Measures the NoC active-set scheduling speedup: the same sparse workload
/// (a few busy nodes on a mostly idle 8x8 mesh — the common case for a
/// kernel driving a handful of tiles) with the optimisation off, then on.
/// Stats must match exactly; only wall time may differ.
fn bench_active_set() -> Json {
    let run = |active: bool| {
        let mut noc = Noc::new(NocConfig::soft(8, 8));
        noc.set_active_set(active);
        let t0 = Instant::now();
        for round in 0..3_000u64 {
            // Two hotspot pairs keep a trickle in flight; 62 nodes idle.
            for &(s, d) in &[(0u16, 9u16), (54u16, 63u16)] {
                if round % 8 == 0 {
                    let _ = noc.try_inject(
                        NodeId(s),
                        Message::new(NodeId(s), NodeId(d), TrafficClass::Request, vec![0; 64]),
                    );
                }
            }
            noc.step();
            for n in [9u16, 63u16] {
                noc.drain_eject(NodeId(n));
            }
        }
        noc.run_until_quiescent(100_000);
        let wall_ms = t0.elapsed().as_secs_f64() * 1000.0;
        let st = noc.stats().clone();
        (
            wall_ms,
            (
                st.delivered,
                st.flit_hops,
                st.latency.p50(),
                st.latency.p99(),
            ),
        )
    };
    let (dense_ms, dense_stats) = run(false);
    let (active_ms, active_stats) = run(true);
    assert_eq!(
        dense_stats, active_stats,
        "active-set scheduling changed simulation results"
    );
    Json::obj()
        .set("workload", "8x8 soft mesh, 2 hotspot pairs, 3000 cycles")
        .set("dense_ms", round3(dense_ms))
        .set("active_set_ms", round3(active_ms))
        .set("speedup", round3(dense_ms / active_ms.max(1e-9)))
        .set("stats_identical", true)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = !args.iter().any(|a| a == "--full");
    let det_check = args
        .iter()
        .any(|a| a == "--det-check" || a == "--det-check=jobs");
    let det_check_clock = args.iter().any(|a| a == "--det-check=event-vs-dense");
    let bench_guard = args.iter().any(|a| a == "--bench-guard");
    let mut jobs = harness::default_jobs();
    if let Some(i) = args.iter().position(|a| a == "--jobs") {
        match args.get(i + 1).and_then(|v| v.parse::<usize>().ok()) {
            Some(n) if n >= 1 => jobs = n,
            _ => {
                eprintln!(
                    "usage: all_experiments [--full] [--jobs N] [--det-check[=jobs]] \
                     [--det-check=event-vs-dense] [--bench-guard]"
                );
                std::process::exit(2);
            }
        }
    }

    let suite_t0 = Instant::now();
    let reports = harness::run_suite(quick, jobs);
    let suite_wall_ms = suite_t0.elapsed().as_secs_f64() * 1000.0;

    let mut clock_check: Option<Json> = None;
    if det_check_clock {
        // Replay under the dense per-cycle reference clock: the event core
        // must be an invisible optimisation, so every report's
        // deterministic portion must match byte for byte. The wall-time
        // ratio is the measured event-core speedup on this workload.
        set_clock_mode(ClockMode::Dense);
        let dense_t0 = Instant::now();
        let dense = harness::run_suite(quick, jobs);
        let dense_wall_ms = dense_t0.elapsed().as_secs_f64() * 1000.0;
        set_clock_mode(ClockMode::Event);
        let mut mismatches = 0;
        for (e, d) in reports.iter().zip(dense.iter()) {
            if e.deterministic_bytes() != d.deterministic_bytes() {
                eprintln!("det-check: {} differs between event and dense clocks", e.id);
                mismatches += 1;
            }
        }
        if mismatches > 0 {
            eprintln!("det-check FAILED: {mismatches} report(s) not byte-identical");
            std::process::exit(1);
        }
        let speedup = dense_wall_ms / suite_wall_ms.max(1e-9);
        println!(
            "det-check OK: {} reports byte-identical across event and dense clocks \
             (event {suite_wall_ms:.0} ms, dense {dense_wall_ms:.0} ms, {speedup:.2}x)",
            reports.len()
        );
        clock_check = Some(
            Json::obj()
                .set("reports_identical", true)
                .set("dense_wall_ms", round3(dense_wall_ms))
                .set("event_wall_ms", round3(suite_wall_ms))
                .set("event_speedup", round3(speedup)),
        );
    }

    if det_check {
        // Replay at a different worker count: every report must match the
        // first run byte for byte (wall_ms excluded — the only timing
        // field). On a single-core box the replay still uses two workers,
        // so the check always crosses job counts.
        let alt_jobs = if jobs == 1 { 2 } else { 1 };
        let replay = harness::run_suite(quick, alt_jobs);
        let mut mismatches = 0;
        for (p, s) in reports.iter().zip(replay.iter()) {
            if p.deterministic_bytes() != s.deterministic_bytes() {
                eprintln!(
                    "det-check: {} differs between --jobs {jobs} and --jobs {alt_jobs}",
                    p.id
                );
                mismatches += 1;
            }
        }
        if mismatches > 0 {
            eprintln!("det-check FAILED: {mismatches} report(s) not byte-identical");
            std::process::exit(1);
        }
        println!(
            "det-check OK: {} reports byte-identical across --jobs {jobs} and --jobs {alt_jobs}",
            reports.len()
        );
    }

    for r in &reports {
        println!("==================== {} ====================", r.id);
        print!("{}", r.rendered);
        println!();
    }
    for r in &reports {
        results::write_report_or_exit(r);
    }

    let noc_active_set = bench_active_set();

    let total_sim_cycles: u64 = reports.iter().map(|r| r.sim_cycles).sum();
    let cycles_per_sec = total_sim_cycles as f64 / (suite_wall_ms / 1000.0).max(1e-9);

    if bench_guard {
        // Compare against the *committed* baseline before it is overwritten
        // below. The baseline is hand-parsed (no serde in this workspace):
        // the first "sim_cycles_per_sec" in the file is the top-level
        // aggregate — the per-experiment copies live inside the
        // "experiments" array, which renders after it.
        let field = |text: &str, key: &str| -> Option<String> {
            text.lines().find_map(|l| {
                l.trim()
                    .strip_prefix(&format!("\"{key}\":"))
                    .map(|v| v.trim().trim_end_matches(',').trim_matches('"').to_string())
            })
        };
        match std::fs::read_to_string("results/BENCH_apiary.json") {
            Ok(old) => {
                let old_mode = field(&old, "mode");
                let baseline =
                    field(&old, "sim_cycles_per_sec").and_then(|v| v.parse::<f64>().ok());
                match (old_mode.as_deref(), baseline) {
                    (Some(m), _) if m != if quick { "quick" } else { "full" } => eprintln!(
                        "bench-guard: baseline mode `{m}` differs from this run; skipping comparison"
                    ),
                    (_, Some(base)) if base > 0.0 => {
                        let ratio = cycles_per_sec / base;
                        if ratio < 0.9 {
                            eprintln!(
                                "bench-guard FAILED: sim_cycles_per_sec {cycles_per_sec:.0} is \
                                 {:.1}% below the committed baseline {base:.0} (>10% regression)",
                                (1.0 - ratio) * 100.0
                            );
                            std::process::exit(1);
                        }
                        println!(
                            "bench-guard OK: sim_cycles_per_sec {cycles_per_sec:.0} vs baseline \
                             {base:.0} ({:+.1}%)",
                            (ratio - 1.0) * 100.0
                        );
                    }
                    _ => eprintln!(
                        "bench-guard: no parsable sim_cycles_per_sec in baseline; skipping"
                    ),
                }
            }
            Err(_) => eprintln!("bench-guard: no committed baseline; skipping comparison"),
        }
    }
    let experiments: Vec<Json> = reports
        .iter()
        .map(|r| {
            Json::obj()
                .set("experiment", r.id)
                .set("title", r.title)
                .set("wall_ms", round3(r.wall_ms))
                .set("sim_cycles", r.sim_cycles)
                .set("sim_cycles_per_sec", round3(r.cycles_per_sec()))
                .set("metrics", r.metrics.clone())
        })
        .collect();
    let mut bench = Json::obj()
        .set("schema", "apiary-bench-v1")
        .set("mode", if quick { "quick" } else { "full" })
        .set("clock", "event")
        .set("jobs", jobs)
        .set("suite_wall_ms", round3(suite_wall_ms))
        .set("total_sim_cycles", total_sim_cycles)
        .set("sim_cycles_per_sec", round3(cycles_per_sec))
        .set("noc_active_set", noc_active_set)
        .set("experiments", Json::Arr(experiments));
    if let Some(cc) = clock_check {
        bench = bench.set("event_vs_dense", cc);
    }
    results::write_result_or_exit("results/BENCH_apiary.json", &bench.render_pretty());
}
