//! Structured experiment reports.
//!
//! Every experiment produces an [`ExperimentReport`]: the rendered prose
//! (unchanged from the original `fn(bool) -> String` era), a machine-readable
//! `metrics` value, and the simulated-cycle count behind it. Wall-clock time
//! is stamped by the harness, never by the experiment, so it is the only
//! non-deterministic field — everything else must be byte-identical run to
//! run regardless of `--jobs`.
//!
//! The workspace builds offline (no serde), so [`Json`] is a minimal
//! order-preserving JSON value with a deterministic renderer.

use core::fmt::Write;

/// A JSON value. Object keys keep insertion order so rendered output is
/// stable across runs and job counts.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    U64(u64),
    I64(i64),
    F64(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An empty object, ready for [`Json::set`] chaining.
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Inserts (or replaces) `key`, preserving first-insertion order.
    /// Panics if `self` is not an object — that is a programming error.
    pub fn put(&mut self, key: impl Into<String>, value: impl Into<Json>) {
        let Json::Obj(entries) = self else {
            panic!("Json::put on a non-object");
        };
        let key = key.into();
        let value = value.into();
        if let Some(e) = entries.iter_mut().find(|(k, _)| *k == key) {
            e.1 = value;
        } else {
            entries.push((key, value));
        }
    }

    /// Builder-style [`Json::put`].
    pub fn set(mut self, key: impl Into<String>, value: impl Into<Json>) -> Json {
        self.put(key, value);
        self
    }

    /// Looks up `key` in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Renders compactly (no whitespace), deterministically.
    pub fn render(&self) -> String {
        let mut s = String::new();
        self.write(&mut s, None, 0);
        s
    }

    /// Renders with two-space indentation, deterministically.
    pub fn render_pretty(&self) -> String {
        let mut s = String::new();
        self.write(&mut s, Some(2), 0);
        s.push('\n');
        s
    }

    fn write(&self, s: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => s.push_str("null"),
            Json::Bool(b) => s.push_str(if *b { "true" } else { "false" }),
            Json::U64(n) => {
                let _ = write!(s, "{n}");
            }
            Json::I64(n) => {
                let _ = write!(s, "{n}");
            }
            Json::F64(x) => write_f64(s, *x),
            Json::Str(v) => write_escaped(s, v),
            Json::Arr(items) => {
                s.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        s.push(',');
                    }
                    newline_indent(s, indent, depth + 1);
                    item.write(s, indent, depth + 1);
                }
                if !items.is_empty() {
                    newline_indent(s, indent, depth);
                }
                s.push(']');
            }
            Json::Obj(entries) => {
                s.push('{');
                for (i, (k, v)) in entries.iter().enumerate() {
                    if i > 0 {
                        s.push(',');
                    }
                    newline_indent(s, indent, depth + 1);
                    write_escaped(s, k);
                    s.push(':');
                    if indent.is_some() {
                        s.push(' ');
                    }
                    v.write(s, indent, depth + 1);
                }
                if !entries.is_empty() {
                    newline_indent(s, indent, depth);
                }
                s.push('}');
            }
        }
    }
}

fn newline_indent(s: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(w) = indent {
        s.push('\n');
        for _ in 0..w * depth {
            s.push(' ');
        }
    }
}

/// JSON has no NaN/Inf; map them to null. Finite floats use Rust's
/// shortest-round-trip `Display`, which is deterministic.
fn write_f64(s: &mut String, x: f64) {
    if !x.is_finite() {
        s.push_str("null");
        return;
    }
    let start = s.len();
    let _ = write!(s, "{x}");
    // `1.0` renders as `1`; keep it a JSON number either way (fine), but
    // make integral floats unambiguous for round-tripping tools.
    if !s[start..].contains(['.', 'e', 'E']) {
        s.push_str(".0");
    }
}

fn write_escaped(s: &mut String, v: &str) {
    s.push('"');
    for c in v.chars() {
        match c {
            '"' => s.push_str("\\\""),
            '\\' => s.push_str("\\\\"),
            '\n' => s.push_str("\\n"),
            '\r' => s.push_str("\\r"),
            '\t' => s.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(s, "\\u{:04x}", c as u32);
            }
            c => s.push(c),
        }
    }
    s.push('"');
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}
impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::U64(v)
    }
}
impl From<u32> for Json {
    fn from(v: u32) -> Json {
        Json::U64(v as u64)
    }
}
impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::U64(v as u64)
    }
}
impl From<i64> for Json {
    fn from(v: i64) -> Json {
        Json::I64(v)
    }
}
impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::F64(v)
    }
}
impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_string())
    }
}
impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}
impl<T: Into<Json>> From<Vec<T>> for Json {
    fn from(v: Vec<T>) -> Json {
        Json::Arr(v.into_iter().map(Into::into).collect())
    }
}

/// One experiment's structured result.
#[derive(Debug, Clone)]
pub struct ExperimentReport {
    /// Short identifier, `"E1"` .. `"E17"`.
    pub id: &'static str,
    /// One-line human title.
    pub title: &'static str,
    /// Wall-clock milliseconds, stamped by the harness (0 until then).
    /// The only non-deterministic field — excluded from determinism checks.
    pub wall_ms: f64,
    /// Total simulated cycles driven by the experiment (0 when the
    /// experiment is analytic and drives no clock).
    pub sim_cycles: u64,
    /// Headline metrics, machine-readable.
    pub metrics: Json,
    /// The human-readable report, unchanged from the legacy `run` output.
    pub rendered: String,
}

impl ExperimentReport {
    /// A report with everything but the harness-stamped wall time.
    pub fn new(
        id: &'static str,
        title: &'static str,
        sim_cycles: u64,
        metrics: Json,
        rendered: String,
    ) -> ExperimentReport {
        ExperimentReport {
            id,
            title,
            wall_ms: 0.0,
            sim_cycles,
            metrics,
            rendered,
        }
    }

    /// Simulated cycles per wall-clock second (0 when either is unknown).
    pub fn cycles_per_sec(&self) -> f64 {
        if self.wall_ms <= 0.0 {
            0.0
        } else {
            self.sim_cycles as f64 / (self.wall_ms / 1000.0)
        }
    }

    /// The deterministic portion of the report (everything except
    /// `wall_ms`): byte-identical across runs and `--jobs` values.
    pub fn deterministic_bytes(&self) -> String {
        format!(
            "{}\n{}\n{}\n{}\n{}",
            self.id,
            self.title,
            self.sim_cycles,
            self.metrics.render(),
            self.rendered
        )
    }

    /// Per-experiment result file contents (`results/<file>.json`).
    pub fn to_json(&self) -> String {
        Json::obj()
            .set("experiment", self.id)
            .set("title", self.title)
            .set("wall_ms", round3(self.wall_ms))
            .set("sim_cycles", self.sim_cycles)
            .set("sim_cycles_per_sec", round3(self.cycles_per_sec()))
            .set("metrics", self.metrics.clone())
            .render_pretty()
    }
}

/// Rounds to 3 decimals so wall-clock noise doesn't produce 17-digit floats.
pub fn round3(x: f64) -> f64 {
    (x * 1000.0).round() / 1000.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_scalars() {
        assert_eq!(Json::Null.render(), "null");
        assert_eq!(Json::from(true).render(), "true");
        assert_eq!(Json::from(42u64).render(), "42");
        assert_eq!(Json::from(-7i64).render(), "-7");
        assert_eq!(Json::from(1.5).render(), "1.5");
        assert_eq!(Json::from(2.0).render(), "2.0");
        assert_eq!(Json::F64(f64::NAN).render(), "null");
        assert_eq!(Json::from("a\"b\nc").render(), "\"a\\\"b\\nc\"");
    }

    #[test]
    fn object_preserves_insertion_order_and_replaces() {
        let mut o = Json::obj().set("b", 1u64).set("a", 2u64);
        o.put("b", 3u64);
        assert_eq!(o.render(), "{\"b\":3,\"a\":2}");
        assert_eq!(o.get("a"), Some(&Json::U64(2)));
    }

    #[test]
    fn arrays_and_nesting() {
        let v = Json::obj()
            .set("xs", vec![1u64, 2, 3])
            .set("inner", Json::obj().set("ok", true));
        assert_eq!(v.render(), "{\"xs\":[1,2,3],\"inner\":{\"ok\":true}}");
        let pretty = v.render_pretty();
        assert!(pretty.contains("  \"xs\": [\n    1,"));
        assert!(pretty.ends_with("}\n"));
    }

    #[test]
    fn report_json_has_schema_fields() {
        let mut r = ExperimentReport::new(
            "E0",
            "test",
            1000,
            Json::obj().set("k", 1u64),
            "body".into(),
        );
        r.wall_ms = 2.0;
        let j = r.to_json();
        for needle in [
            "\"experiment\": \"E0\"",
            "\"wall_ms\": 2.0",
            "\"sim_cycles\": 1000",
            "\"sim_cycles_per_sec\": 500000.0",
            "\"metrics\": {",
        ] {
            assert!(j.contains(needle), "missing {needle} in:\n{j}");
        }
    }

    #[test]
    fn deterministic_bytes_excludes_wall_ms() {
        let mut a = ExperimentReport::new("E0", "t", 5, Json::obj(), "r".into());
        let mut b = a.clone();
        a.wall_ms = 1.0;
        b.wall_ms = 99.0;
        assert_eq!(a.deterministic_bytes(), b.deterministic_bytes());
    }
}
