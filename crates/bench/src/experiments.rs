//! One module per experiment (see DESIGN.md §3 for the index).

pub mod e01_table1;
pub mod e02_figure1;
pub mod e03_monitor_overhead;
pub mod e04_direct_vs_host;
pub mod e05_isolation_cost;
pub mod e06_rate_limiting;
pub mod e07_segments_vs_pages;
pub mod e08_fault_handling;
pub mod e09_noc_scaling;
pub mod e10_video_pipeline;
pub mod e11_multi_tenant;
pub mod e12_remote_service;
pub mod e13_noc_ablation;
pub mod e14_reconfig_churn;
pub mod e15_memory_service;
pub mod e16_chaos;
pub mod e17_cluster_scaleout;
pub mod e18_serverless;
pub mod e19_checkpoint;
