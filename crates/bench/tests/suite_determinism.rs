//! The harness determinism contract: for any `--jobs` value the suite
//! produces byte-identical reports (rendered text, metrics JSON, simulated
//! cycle counts) in E1..E17 order. Only `wall_ms` may differ, and it is
//! excluded from `deterministic_bytes`.

use apiary_bench::harness;

#[test]
fn jobs_1_and_jobs_8_are_byte_identical() {
    let serial = harness::run_suite(true, 1);
    let parallel = harness::run_suite(true, 8);
    assert_eq!(serial.len(), parallel.len());
    for (i, (a, b)) in serial.iter().zip(&parallel).enumerate() {
        assert_eq!(a.id, format!("E{}", i + 1), "suite order");
        assert_eq!(a.id, b.id);
        assert_eq!(
            a.deterministic_bytes(),
            b.deterministic_bytes(),
            "{} differs between --jobs 1 and --jobs 8",
            a.id
        );
        assert_eq!(
            a.metrics.render(),
            b.metrics.render(),
            "{} metrics JSON differs across job counts",
            a.id
        );
    }
}
