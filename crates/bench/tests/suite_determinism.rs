//! The harness determinism contract: for any `--jobs` value the suite
//! produces byte-identical reports (rendered text, metrics JSON, simulated
//! cycle counts) in E1..E19 order. Only `wall_ms` may differ, and it is
//! excluded from `deterministic_bytes`.

use apiary_bench::harness;

#[test]
fn jobs_1_and_jobs_8_are_byte_identical() {
    let serial = harness::run_suite(true, 1);
    let parallel = harness::run_suite(true, 8);
    assert_eq!(serial.len(), parallel.len());
    let mut last_num = 0u32;
    for (a, b) in serial.iter().zip(&parallel) {
        // Suite order: numeric experiment ids strictly ascending.
        let num: u32 = a.id.trim_start_matches('E').parse().expect("E<n> id");
        assert!(num > last_num, "suite order: {} after E{last_num}", a.id);
        last_num = num;
        assert_eq!(a.id, b.id);
        assert_eq!(
            a.deterministic_bytes(),
            b.deterministic_bytes(),
            "{} differs between --jobs 1 and --jobs 8",
            a.id
        );
        assert_eq!(
            a.metrics.render(),
            b.metrics.render(),
            "{} metrics JSON differs across job counts",
            a.id
        );
    }
}
