//! Dense-vs-event clock equivalence under random workloads.
//!
//! The event core's contract (`DESIGN.md` §"Event-driven clock") is that
//! skipping idle cycles is an invisible optimisation: every statistic a
//! workload can observe — counts, latencies, end cycles — must match a
//! dense per-cycle run byte for byte. These tests generate random
//! client/server workloads (window sizes, think times, payload sizes,
//! request timeouts, service costs), run each under both clocks, and
//! compare the resulting [`ExperimentReport`] digests.
//!
//! The clock mode is process-global, so every test here serialises on one
//! mutex and restores [`ClockMode::Event`] (the default) before returning.

use apiary_accel::apps::echo::echo;
use apiary_accel::apps::idle::idle;
use apiary_bench::scenarios::{drive, MonitorClient};
use apiary_bench::{ExperimentReport, Json};
use apiary_core::{AppId, FaultPolicy, System, SystemConfig};
use apiary_noc::NodeId;
use apiary_sim::{set_clock_mode, ClockMode};
use proptest::prelude::*;
use std::sync::Mutex;

/// Serialises tests in this binary: the clock mode is process-global.
static CLOCK: Mutex<()> = Mutex::new(());

#[derive(Debug, Clone)]
struct ClientParams {
    payload: usize,
    outstanding: u32,
    think: u64,
    max_requests: u64,
    timeout: u64,
}

#[derive(Debug, Clone)]
struct Params {
    echo_cost: u64,
    clients: Vec<ClientParams>,
}

fn arb_client() -> impl Strategy<Value = ClientParams> {
    (
        1usize..200,
        1u32..6,
        0u64..40,
        1u64..50,
        // 0 = wait forever; small timeouts exercise abandonment racing
        // the reply, large ones never fire on an echo service.
        prop_oneof![Just(0u64), 60u64..5_000],
    )
        .prop_map(
            |(payload, outstanding, think, max_requests, timeout)| ClientParams {
                payload,
                outstanding,
                think,
                max_requests,
                timeout,
            },
        )
}

fn arb_params() -> impl Strategy<Value = Params> {
    (0u64..80, prop::collection::vec(arb_client(), 1..3))
        .prop_map(|(echo_cost, clients)| Params { echo_cost, clients })
}

/// Runs the workload under `mode` and returns a deterministic digest of
/// everything a client can observe.
fn run_system(mode: ClockMode, p: &Params) -> String {
    set_clock_mode(mode);
    let spots = [(NodeId(0), NodeId(5)), (NodeId(3), NodeId(6))];
    let mut sys = System::new(SystemConfig::default());
    let mut clients: Vec<MonitorClient> = Vec::new();
    for (i, cp) in p.clients.iter().enumerate() {
        let (cn, sn) = spots[i];
        let app = AppId(i as u32 + 1);
        sys.install(cn, Box::new(idle()), app, FaultPolicy::FailStop)
            .expect("client slot free");
        sys.install(sn, Box::new(echo(p.echo_cost)), app, FaultPolicy::FailStop)
            .expect("server slot free");
        let cap = sys.connect(cn, sn, false).expect("same app");
        sys.connect(sn, cn, false).expect("reply path");
        let mut c = MonitorClient::new(cn, cap, cp.payload).max_requests(cp.max_requests);
        c.outstanding = cp.outstanding;
        c.think = cp.think;
        c.timeout = cp.timeout;
        c.tag_base = (i as u64) << 48;
        clients.push(c);
    }
    let mut refs: Vec<&mut MonitorClient> = clients.iter_mut().collect();
    let consumed = drive(&mut sys, &mut refs, 400_000);
    let mut metrics = Json::obj()
        .set("cycles_consumed", consumed)
        .set("end_cycle", sys.now().as_u64());
    for (i, c) in clients.iter().enumerate() {
        metrics = metrics.set(
            format!("client{i}"),
            Json::obj()
                .set("issued", c.issued)
                .set("completed", c.completed)
                .set("errors", c.errors)
                .set("refused", c.refused)
                .set("lost", c.lost)
                .set("rtt_p50", c.rtt.p50())
                .set("rtt_p99", c.rtt.p99()),
        );
    }
    ExperimentReport::new(
        "PROP",
        "dense-vs-event equivalence",
        sys.now().as_u64(),
        metrics,
        String::new(),
    )
    .deterministic_bytes()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn dense_and_event_clocks_agree(p in arb_params()) {
        let _guard = CLOCK.lock().unwrap();
        let event = run_system(ClockMode::Event, &p);
        let dense = run_system(ClockMode::Dense, &p);
        set_clock_mode(ClockMode::Event);
        prop_assert_eq!(event, dense);
    }
}

/// The cluster path (fabric ARQ, gossip, request timeouts, chaos windows)
/// must agree too — E17's link-cut cell end to end under both clocks.
#[test]
fn cluster_cell_clocks_agree() {
    use apiary_bench::experiments::e17_cluster_scaleout::{run_one, Chaos};
    let _guard = CLOCK.lock().unwrap();
    let run = |mode| {
        set_clock_mode(mode);
        format!("{:?}", run_one(2, Chaos::CutLink, 6_000))
    };
    let event = run(ClockMode::Event);
    let dense = run(ClockMode::Dense);
    set_clock_mode(ClockMode::Event);
    assert_eq!(event, dense, "cluster cell diverged between clocks");
}

/// A live migration (quiesce deadline, fabric snapshot transfer, ICAP
/// restore, republish) lands on identical cycles under both clocks.
#[test]
fn live_migration_clocks_agree() {
    use apiary_accel::apps::kv::{kv_store, KvStoreAccel};
    use apiary_cap::ServiceId;
    use apiary_cluster::{ClusterConfig, ClusterSystem};

    let _guard = CLOCK.lock().unwrap();
    let run = |mode| {
        set_clock_mode(mode);
        let mut c = ClusterSystem::new(ClusterConfig {
            boards: 2,
            ..ClusterConfig::default()
        });
        c.deploy_replica(
            0,
            "kv",
            ServiceId(40),
            NodeId(5),
            AppId(1),
            FaultPolicy::FailStop,
            4096,
            Box::new(|| Box::new(kv_store())),
        )
        .expect("deploy kv");
        let accel = c
            .board_mut(0)
            .accel_as_mut::<KvStoreAccel>(NodeId(5))
            .expect("installed");
        for i in 0..80u32 {
            let key = i.to_le_bytes();
            accel.service_mut().insert(7, &key, &[0xAB; 32]);
        }
        c.tick_n(2_000);
        c.migrate_replica("kv", 0, 1, NodeId(5), Box::new(|| Box::new(kv_store())))
            .expect("migration starts");
        c.tick_n(30_000);
        format!(
            "{:?} kv_len={}",
            c.migration_outcomes(),
            c.board(1)
                .accel_as::<KvStoreAccel>(NodeId(5))
                .map_or(0, |a| a.service().len())
        )
    };
    let event = run(ClockMode::Event);
    let dense = run(ClockMode::Dense);
    set_clock_mode(ClockMode::Event);
    assert_eq!(event, dense, "migration diverged between clocks");
}

/// The serverless plane (bitstream fetch timers, queue deadlines,
/// autoscale boundaries, scale-to-zero reclaims) must agree too: a burst,
/// an idle window deep enough to reclaim, and a cold re-invoke land on
/// identical cycles under both clocks.
#[test]
fn serverless_plane_clocks_agree() {
    use apiary_cluster::ClusterConfig;
    use apiary_faas::{FaasConfig, FaasSystem, FunctionSpec};
    use apiary_resources::Area;
    use std::rc::Rc;

    let _guard = CLOCK.lock().unwrap();
    let run = |mode| {
        set_clock_mode(mode);
        let mut s = FaasSystem::new(FaasConfig {
            cluster: ClusterConfig {
                boards: 2,
                ..ClusterConfig::default()
            },
            autoscale_interval: 1_000,
            idle_intervals_to_zero: 2,
            ..FaasConfig::default()
        });
        for (name, luts, bytes) in [("f", 60_000u64, 4_096u64), ("g", 90_000, 6_000)] {
            s.register(FunctionSpec {
                name: name.to_string(),
                footprint: Area::logic(luts, luts),
                bitstream_bytes: bytes,
                app: AppId(1),
                factory: Rc::new(|| Box::new(echo(40))),
            });
        }
        for i in 0u32..20 {
            s.invoke((i % 3 == 0) as usize, i % 2, (i % 2) as u16, vec![0u8; 24]);
            s.run(211);
        }
        s.run_until(200_000, |s| s.quiescent());
        s.run(8_000); // idle across reclaim boundaries → scale to zero
        s.invoke(0, 0, 0, vec![0u8; 24]); // cold re-invoke
        s.run_until(200_000, |s| s.quiescent());
        format!(
            "{:?}|{:?}|{}|{}|{:?}",
            s.stats(0),
            s.stats(1),
            s.cold_latency.histogram().p99(),
            s.warm_latency.histogram().p99(),
            s.now()
        )
    };
    let event = run(ClockMode::Event);
    let dense = run(ClockMode::Dense);
    set_clock_mode(ClockMode::Event);
    assert_eq!(event, dense, "serverless plane diverged between clocks");
}
