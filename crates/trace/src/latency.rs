//! Tag-correlated latency measurement.

use apiary_sim::{Cycle, Histogram};
use std::collections::HashMap;

/// Measures request/response latency by correlation tag.
///
/// A span is opened when a request leaves and closed when its response
/// (same tag) returns; the duration lands in a histogram. Unmatched
/// responses are counted rather than silently dropped because in Apiary an
/// unmatched response usually means a buggy or malicious accelerator is
/// forging tags.
///
/// # Examples
///
/// ```
/// use apiary_sim::Cycle;
/// use apiary_trace::LatencyTracker;
///
/// let mut lt = LatencyTracker::new();
/// lt.start(7, Cycle(100));
/// assert_eq!(lt.finish(7, Cycle(150)), Some(50));
/// assert_eq!(lt.histogram().count(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct LatencyTracker {
    open: HashMap<u64, Cycle>,
    hist: Histogram,
    unmatched: u64,
}

impl LatencyTracker {
    /// Creates an empty tracker.
    pub fn new() -> LatencyTracker {
        LatencyTracker::default()
    }

    /// Opens a span for `tag` at time `at`. Re-opening an existing tag
    /// restarts it (the earlier request is counted as unmatched).
    pub fn start(&mut self, tag: u64, at: Cycle) {
        if self.open.insert(tag, at).is_some() {
            self.unmatched += 1;
        }
    }

    /// Closes the span for `tag`, returning its latency in cycles, or `None`
    /// (and counting it) if no span was open.
    ///
    /// A response timestamped *before* its request is a forged or reordered
    /// tag, not a zero-cycle round trip: it counts as unmatched and stays
    /// out of the histogram (Cycle subtraction saturates, so `at - start`
    /// would otherwise record a silent bogus 0).
    pub fn finish(&mut self, tag: u64, at: Cycle) -> Option<u64> {
        match self.open.remove(&tag) {
            Some(start) if at >= start => {
                let lat = at - start;
                self.hist.record(lat);
                Some(lat)
            }
            Some(_) | None => {
                self.unmatched += 1;
                None
            }
        }
    }

    /// The completed-span latency histogram.
    pub fn histogram(&self) -> &Histogram {
        &self.hist
    }

    /// Spans currently open.
    pub fn open_count(&self) -> usize {
        self.open.len()
    }

    /// Responses without a request, plus restarted requests.
    pub fn unmatched(&self) -> u64 {
        self.unmatched
    }

    /// Abandons all open spans (e.g. when a tile fail-stops) and returns how
    /// many were dropped.
    pub fn abandon_open(&mut self) -> usize {
        let n = self.open.len();
        self.open.clear();
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_latency() {
        let mut lt = LatencyTracker::new();
        lt.start(1, Cycle(10));
        lt.start(2, Cycle(20));
        assert_eq!(lt.finish(2, Cycle(25)), Some(5));
        assert_eq!(lt.finish(1, Cycle(110)), Some(100));
        assert_eq!(lt.histogram().count(), 2);
        assert_eq!(lt.histogram().max(), 100);
        assert_eq!(lt.open_count(), 0);
    }

    #[test]
    fn unmatched_response_counted() {
        let mut lt = LatencyTracker::new();
        assert_eq!(lt.finish(9, Cycle(5)), None);
        assert_eq!(lt.unmatched(), 1);
    }

    #[test]
    fn restarted_tag_counted() {
        let mut lt = LatencyTracker::new();
        lt.start(1, Cycle(1));
        lt.start(1, Cycle(5));
        assert_eq!(lt.unmatched(), 1);
        // Latency measured from the restart.
        assert_eq!(lt.finish(1, Cycle(9)), Some(4));
    }

    #[test]
    fn out_of_order_response_is_unmatched_not_zero() {
        let mut lt = LatencyTracker::new();
        lt.start(1, Cycle(100));
        // Response "arrives" before the request was sent: a forged or
        // reordered tag. It must not record a 0-cycle latency.
        assert_eq!(lt.finish(1, Cycle(50)), None);
        assert_eq!(lt.unmatched(), 1);
        assert_eq!(lt.histogram().count(), 0);
        assert_eq!(lt.open_count(), 0, "the bogus span is still closed");
    }

    #[test]
    fn abandon_open_drops_spans() {
        let mut lt = LatencyTracker::new();
        lt.start(1, Cycle(1));
        lt.start(2, Cycle(2));
        assert_eq!(lt.abandon_open(), 2);
        assert_eq!(lt.open_count(), 0);
        assert_eq!(lt.finish(1, Cycle(10)), None);
    }
}
