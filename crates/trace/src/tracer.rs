//! The event ring buffer.

use apiary_sim::Cycle;
use core::fmt;
use std::collections::VecDeque;

/// What happened at a monitor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EventKind {
    /// A message left a tile (passed the monitor's outbound checks).
    MsgSend {
        /// Destination tile.
        dst: u16,
        /// Message kind word.
        kind: u16,
        /// Correlation tag.
        tag: u64,
        /// Payload bytes (u64: bulk checkpoint-sized payloads must not
        /// truncate the per-delivery byte accounting).
        bytes: u64,
    },
    /// A message was delivered into a tile.
    MsgRecv {
        /// Source tile.
        src: u16,
        /// Message kind word.
        kind: u16,
        /// Correlation tag.
        tag: u64,
        /// Payload bytes (u64, matching [`EventKind::MsgSend`]).
        bytes: u64,
    },
    /// The monitor denied an outbound message (capability failure).
    SendDenied {
        /// Attempted destination.
        dst: u16,
    },
    /// The monitor delayed or dropped traffic due to rate limiting.
    RateLimited {
        /// Attempted destination.
        dst: u16,
    },
    /// The tile raised a fault.
    Fault {
        /// Implementation-defined fault code.
        code: u32,
    },
    /// The monitor fail-stopped the tile (drained and sealed it).
    FailStop,
    /// A process context was preempted and swapped out.
    Preempt {
        /// Context index within the tile.
        context: u16,
    },
    /// A capability operation (mint/derive/revoke) completed.
    CapOp {
        /// Human-readable operation name.
        op: &'static str,
    },
    /// The tile's dynamic region was reconfigured.
    Reconfig,
    /// Free-form annotation from an accelerator or service.
    Note(String),
    /// A remote (cross-board) invocation phase at this board's gateway:
    /// `"send"` (forwarded onto the fabric), `"retransmit"` (link-layer ARQ
    /// resent it), `"reply"` (response returned from the fabric) or
    /// `"breaker-open"` (the end-to-end circuit breaker tripped).
    Remote {
        /// Phase name (see above).
        phase: &'static str,
        /// The remote board involved.
        board: u16,
        /// End-to-end correlation tag (0 when the phase is not tied to one
        /// request, e.g. `breaker-open`).
        tag: u64,
    },
}

impl EventKind {
    /// A stable small index for per-kind counting.
    fn counter_slot(&self) -> usize {
        match self {
            EventKind::MsgSend { .. } => 0,
            EventKind::MsgRecv { .. } => 1,
            EventKind::SendDenied { .. } => 2,
            EventKind::RateLimited { .. } => 3,
            EventKind::Fault { .. } => 4,
            EventKind::FailStop => 5,
            EventKind::Preempt { .. } => 6,
            EventKind::CapOp { .. } => 7,
            EventKind::Reconfig => 8,
            EventKind::Note(_) => 9,
            EventKind::Remote { .. } => 10,
        }
    }

    /// Human-readable kind name.
    pub fn name(&self) -> &'static str {
        const NAMES: [&str; 11] = [
            "send",
            "recv",
            "denied",
            "rate-limited",
            "fault",
            "fail-stop",
            "preempt",
            "cap-op",
            "reconfig",
            "note",
            "remote",
        ];
        NAMES[self.counter_slot()]
    }
}

/// A timestamped, tile-attributed event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// When it happened.
    pub at: Cycle,
    /// Which tile's monitor observed it.
    pub tile: u16,
    /// What happened.
    pub kind: EventKind,
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{:>8}] tile {:>3} {:<12} ",
            self.at,
            self.tile,
            self.kind.name()
        )?;
        match &self.kind {
            EventKind::MsgSend {
                dst,
                kind,
                tag,
                bytes,
            } => {
                write!(f, "-> tile {dst} kind={kind} tag={tag} {bytes}B")
            }
            EventKind::MsgRecv {
                src,
                kind,
                tag,
                bytes,
            } => {
                write!(f, "<- tile {src} kind={kind} tag={tag} {bytes}B")
            }
            EventKind::SendDenied { dst } => write!(f, "-> tile {dst}"),
            EventKind::RateLimited { dst } => write!(f, "-> tile {dst}"),
            EventKind::Fault { code } => write!(f, "code={code}"),
            EventKind::Preempt { context } => write!(f, "ctx={context}"),
            EventKind::CapOp { op } => write!(f, "{op}"),
            EventKind::Note(s) => write!(f, "{s}"),
            EventKind::Remote { phase, board, tag } => {
                write!(f, "{phase} board {board} tag={tag}")
            }
            EventKind::FailStop | EventKind::Reconfig => Ok(()),
        }
    }
}

/// A bounded, overwrite-oldest trace buffer with per-kind counters.
///
/// Counters are never lost to ring eviction, so security-relevant tallies
/// (denials, rate-limit hits) stay exact even when the event log wraps.
///
/// # Examples
///
/// ```
/// use apiary_sim::Cycle;
/// use apiary_trace::{EventKind, Tracer};
///
/// let mut t = Tracer::new(128);
/// t.record(Cycle(5), 2, EventKind::FailStop);
/// assert_eq!(t.count(&EventKind::FailStop), 1);
/// assert_eq!(t.events().count(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct Tracer {
    ring: VecDeque<Event>,
    capacity: usize,
    counts: [u64; 11],
    enabled: bool,
    dropped: u64,
}

impl Tracer {
    /// Creates a tracer holding up to `capacity` events.
    pub fn new(capacity: usize) -> Tracer {
        Tracer {
            ring: VecDeque::with_capacity(capacity.min(4096)),
            capacity,
            counts: [0; 11],
            enabled: true,
            dropped: 0,
        }
    }

    /// A tracer that counts but stores no events (production mode).
    pub fn counters_only() -> Tracer {
        Tracer::new(0)
    }

    /// Enables or disables recording entirely (counting included).
    pub fn set_enabled(&mut self, on: bool) {
        self.enabled = on;
    }

    /// Records an event.
    pub fn record(&mut self, at: Cycle, tile: u16, kind: EventKind) {
        if !self.enabled {
            return;
        }
        self.counts[kind.counter_slot()] += 1;
        if self.capacity == 0 {
            return;
        }
        if self.ring.len() == self.capacity {
            self.ring.pop_front();
            self.dropped += 1;
        }
        self.ring.push_back(Event { at, tile, kind });
    }

    /// Exact count of events of the same kind-variant as `probe`
    /// (field values in `probe` are ignored).
    pub fn count(&self, probe: &EventKind) -> u64 {
        self.counts[probe.counter_slot()]
    }

    /// Events currently buffered, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &Event> {
        self.ring.iter()
    }

    /// Buffered events observed at one tile.
    pub fn events_for_tile(&self, tile: u16) -> impl Iterator<Item = &Event> {
        self.ring.iter().filter(move |e| e.tile == tile)
    }

    /// Events evicted from the ring so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Renders the buffer as text, one event per line.
    pub fn render(&self) -> String {
        use core::fmt::Write;
        let mut out = String::new();
        for e in &self.ring {
            let _ = writeln!(out, "{e}");
        }
        out
    }

    /// Clears buffered events (counters are kept).
    pub fn clear(&mut self) {
        self.ring.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn send(dst: u16) -> EventKind {
        EventKind::MsgSend {
            dst,
            kind: 1,
            tag: 9,
            bytes: 64,
        }
    }

    #[test]
    fn records_and_counts() {
        let mut t = Tracer::new(16);
        t.record(Cycle(1), 0, send(1));
        t.record(Cycle(2), 0, send(2));
        t.record(Cycle(3), 1, EventKind::SendDenied { dst: 0 });
        assert_eq!(t.count(&send(0)), 2, "field values ignored in counting");
        assert_eq!(t.count(&EventKind::SendDenied { dst: 99 }), 1);
        assert_eq!(t.events().count(), 3);
    }

    #[test]
    fn ring_evicts_oldest_but_keeps_counts() {
        let mut t = Tracer::new(2);
        for i in 0..5 {
            t.record(Cycle(i), 0, send(i as u16));
        }
        assert_eq!(t.events().count(), 2);
        assert_eq!(t.count(&send(0)), 5);
        assert_eq!(t.dropped(), 3);
        // Oldest two were evicted; the buffer holds events 3 and 4.
        let dsts: Vec<u16> = t
            .events()
            .map(|e| match e.kind {
                EventKind::MsgSend { dst, .. } => dst,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(dsts, vec![3, 4]);
    }

    #[test]
    fn counters_only_mode() {
        let mut t = Tracer::counters_only();
        t.record(Cycle(1), 0, EventKind::FailStop);
        assert_eq!(t.count(&EventKind::FailStop), 1);
        assert_eq!(t.events().count(), 0);
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let mut t = Tracer::new(8);
        t.set_enabled(false);
        t.record(Cycle(1), 0, EventKind::Reconfig);
        assert_eq!(t.count(&EventKind::Reconfig), 0);
        assert_eq!(t.events().count(), 0);
    }

    #[test]
    fn tile_filter() {
        let mut t = Tracer::new(16);
        t.record(Cycle(1), 0, send(1));
        t.record(Cycle(2), 7, send(1));
        t.record(Cycle(3), 7, EventKind::Fault { code: 3 });
        assert_eq!(t.events_for_tile(7).count(), 2);
        assert_eq!(t.events_for_tile(0).count(), 1);
        assert_eq!(t.events_for_tile(5).count(), 0);
    }

    #[test]
    fn remote_events_count_and_render() {
        let mut t = Tracer::new(8);
        t.record(
            Cycle(1),
            0,
            EventKind::Remote {
                phase: "send",
                board: 2,
                tag: 77,
            },
        );
        t.record(
            Cycle(9),
            0,
            EventKind::Remote {
                phase: "reply",
                board: 2,
                tag: 77,
            },
        );
        assert_eq!(
            t.count(&EventKind::Remote {
                phase: "",
                board: 0,
                tag: 0
            }),
            2
        );
        let s = t.render();
        assert!(s.contains("remote"));
        assert!(s.contains("send board 2 tag=77"));
        assert!(s.contains("reply board 2 tag=77"));
    }

    #[test]
    fn render_contains_fields() {
        let mut t = Tracer::new(4);
        t.record(Cycle(42), 3, send(9));
        let s = t.render();
        assert!(s.contains("tile   3"));
        assert!(s.contains("tag=9"));
        assert!(s.contains("64B"));
    }
}
