//! Message-layer tracing and debugging for Apiary.
//!
//! The paper's programmability goal (§3) calls for "debugging and tracing
//! support at the message passing layer": because every inter-accelerator
//! interaction crosses a monitor, the OS can observe, timestamp and filter
//! all of it without accelerator cooperation — the hardware analogue of
//! `strace`. This crate provides:
//!
//! - [`Tracer`]: a bounded ring buffer of timestamped [`Event`]s with
//!   per-kind counters and simple filtering/rendering,
//! - [`LatencyTracker`]: tag-correlated request/response latency
//!   measurement, the building block for per-service latency breakdowns.

pub mod latency;
pub mod tracer;

pub use latency::LatencyTracker;
pub use tracer::{Event, EventKind, Tracer};
