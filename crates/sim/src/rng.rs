//! A small, fast, seedable PRNG for reproducible simulations.
//!
//! Apiary simulations must be bit-for-bit reproducible from a single seed, so
//! this module implements its own generator (xoshiro256++ seeded through
//! SplitMix64) rather than depending on platform entropy. The generator is
//! *not* cryptographic; it exists to drive workloads and traffic patterns.

/// A deterministic pseudo-random number generator (xoshiro256++).
///
/// # Examples
///
/// ```
/// use apiary_sim::SimRng;
///
/// let mut a = SimRng::new(42);
/// let mut b = SimRng::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    s: [u64; 4],
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> SimRng {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        SimRng { s }
    }

    /// Derives an independent child generator; useful for giving each
    /// component its own stream so adding a component does not perturb the
    /// draws of the others.
    pub fn fork(&mut self) -> SimRng {
        SimRng::new(self.next_u64())
    }

    /// Returns the next 64 random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Returns a uniform value in `[0, bound)`.
    ///
    /// Uses Lemire's multiply-shift rejection method, so the distribution is
    /// unbiased for every bound.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn gen_range(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "gen_range bound must be positive");
        loop {
            let x = self.next_u64();
            let m = (x as u128).wrapping_mul(bound as u128);
            let lo = m as u64;
            if lo >= bound || lo >= (bound.wrapping_neg() % bound) {
                return (m >> 64) as u64;
            }
        }
    }

    /// Returns a uniform value in the inclusive range `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn gen_range_inclusive(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "empty range {lo}..={hi}");
        let span = hi - lo;
        if span == u64::MAX {
            return self.next_u64();
        }
        lo + self.gen_range(span + 1)
    }

    /// Returns a uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn gen_f64(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }

    /// Samples an exponential distribution with the given mean.
    ///
    /// Used for Poisson inter-arrival times in open-loop load generators.
    pub fn gen_exp(&mut self, mean: f64) -> f64 {
        let u = self.gen_f64();
        // Guard against ln(0).
        -mean * (1.0 - u).max(f64::MIN_POSITIVE).ln()
    }

    /// Samples a (truncated, discrete) Zipf distribution over `[0, n)` with
    /// exponent `theta`, via inverse-CDF on precomputable weights done
    /// directly. `theta == 0` degenerates to uniform.
    ///
    /// This is an O(n) cold path; callers that sample heavily should build a
    /// [`ZipfTable`] once instead.
    pub fn gen_zipf(&mut self, n: usize, theta: f64) -> usize {
        ZipfTable::new(n, theta).sample(self)
    }

    /// Fisher–Yates shuffles a slice in place.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.gen_range(i as u64 + 1) as usize;
            xs.swap(i, j);
        }
    }

    /// Picks a uniform random element of a non-empty slice.
    ///
    /// # Panics
    ///
    /// Panics if the slice is empty.
    pub fn pick<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        assert!(!xs.is_empty(), "pick from empty slice");
        &xs[self.gen_range(xs.len() as u64) as usize]
    }

    /// Fills `buf` with random bytes.
    pub fn fill_bytes(&mut self, buf: &mut [u8]) {
        for chunk in buf.chunks_mut(8) {
            let v = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&v[..chunk.len()]);
        }
    }
}

/// A precomputed table for fast Zipf sampling (popularity-skewed workloads,
/// e.g. key-value store key choice).
#[derive(Debug, Clone)]
pub struct ZipfTable {
    cdf: Vec<f64>,
}

impl ZipfTable {
    /// Builds the cumulative distribution for `n` items with exponent
    /// `theta`. `theta == 0` is uniform; larger values are more skewed.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize, theta: f64) -> ZipfTable {
        assert!(n > 0, "Zipf over zero items");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for i in 0..n {
            acc += 1.0 / ((i + 1) as f64).powf(theta);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        ZipfTable { cdf }
    }

    /// Draws one sample in `[0, n)`.
    pub fn sample(&self, rng: &mut SimRng) -> usize {
        let u = rng.gen_f64();
        match self
            .cdf
            .binary_search_by(|p| p.partial_cmp(&u).expect("CDF is finite"))
        {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }

    /// Number of items in the distribution.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Returns `true` if the table is empty (never true post-construction).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_from_seed() {
        let mut a = SimRng::new(7);
        let mut b = SimRng::new(7);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..100).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 5);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = SimRng::new(3);
        for bound in [1u64, 2, 3, 7, 100, 1 << 40] {
            for _ in 0..200 {
                assert!(rng.gen_range(bound) < bound);
            }
        }
    }

    #[test]
    fn gen_range_inclusive_covers_endpoints() {
        let mut rng = SimRng::new(4);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..1000 {
            match rng.gen_range_inclusive(5, 7) {
                5 => seen_lo = true,
                7 => seen_hi = true,
                6 => {}
                other => panic!("out of range: {other}"),
            }
        }
        assert!(seen_lo && seen_hi);
    }

    #[test]
    fn gen_f64_is_unit_interval() {
        let mut rng = SimRng::new(5);
        for _ in 0..10_000 {
            let x = rng.gen_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn exp_mean_is_roughly_right() {
        let mut rng = SimRng::new(6);
        let n = 50_000;
        let mean = 40.0;
        let sum: f64 = (0..n).map(|_| rng.gen_exp(mean)).sum();
        let measured = sum / n as f64;
        assert!(
            (measured - mean).abs() < mean * 0.05,
            "measured {measured}, expected ~{mean}"
        );
    }

    #[test]
    fn zipf_is_skewed() {
        let mut rng = SimRng::new(8);
        let table = ZipfTable::new(100, 0.99);
        let mut counts = [0usize; 100];
        for _ in 0..50_000 {
            counts[table.sample(&mut rng)] += 1;
        }
        // Item 0 should dominate item 99 heavily under theta ~ 1.
        assert!(counts[0] > counts[99] * 10);
        // Uniform theta = 0 should not.
        let uni = ZipfTable::new(100, 0.0);
        let mut counts = [0usize; 100];
        for _ in 0..50_000 {
            counts[uni.sample(&mut rng)] += 1;
        }
        assert!(counts[0] < counts[99] * 3);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SimRng::new(9);
        let mut xs: Vec<u32> = (0..64).collect();
        rng.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..64).collect::<Vec<_>>());
    }

    #[test]
    fn fork_streams_are_independent() {
        let mut root = SimRng::new(10);
        let mut a = root.fork();
        let mut b = root.fork();
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn fill_bytes_fills_every_length() {
        let mut rng = SimRng::new(11);
        for len in [0usize, 1, 7, 8, 9, 31] {
            let mut buf = vec![0u8; len];
            rng.fill_bytes(&mut buf);
            if len >= 8 {
                assert!(buf.iter().any(|&b| b != 0));
            }
        }
    }
}
