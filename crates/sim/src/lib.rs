//! Discrete-event / cycle-level simulation kernel for Apiary.
//!
//! This crate is the substrate every other Apiary subsystem builds on. It
//! provides:
//!
//! - [`Cycle`], a newtype for simulated clock cycles, with saturating
//!   arithmetic helpers,
//! - [`EventQueue`], a deterministic time-ordered event queue with
//!   cancellation handles — the public scheduling API of the event core,
//! - [`Wakeup`] and [`Schedulable`], the wakeup-scheduling contract that
//!   replaced per-cycle ticking: components report when they next need to
//!   run and the drivers jump the clock between wakeups,
//! - [`ClockMode`], the process-wide dense/event switch used by
//!   `--det-check=event-vs-dense`,
//! - [`SimRng`], a small, seedable PRNG so every run is reproducible from a
//!   single seed,
//! - [`FxHashMap`]/[`FxHashSet`], fast deterministic hashing for
//!   simulator-internal maps,
//! - [`stats`], counters, histograms and running statistics used by the
//!   benchmark harness and by the tracing layer.
//!
//! The simulator is *event-resolved with cycle-exact semantics*: every
//! component behaves as if ticked each cycle, but the drivers skip cycles
//! no component scheduled a wakeup for. Dense per-cycle ticking remains
//! available ([`ClockMode::Dense`]) as the reference behaviour; the two
//! must be bit-identical.

pub mod clock;
pub mod event;
pub mod fxmap;
pub mod payload;
pub mod rng;
pub mod sched;
pub mod stats;

pub use clock::{Clock, Cycle};
pub use event::{EventHandle, EventQueue};
pub use fxmap::{FxHashMap, FxHashSet};
pub use payload::Payload;
pub use rng::SimRng;
pub use sched::{clock_mode, set_clock_mode, ClockMode, Schedulable, Wakeup};
pub use stats::{Counter, Histogram, RunningStats};
