//! Discrete-event / cycle-level simulation kernel for Apiary.
//!
//! This crate is the substrate every other Apiary subsystem builds on. It
//! provides:
//!
//! - [`Cycle`], a newtype for simulated clock cycles, with saturating
//!   arithmetic helpers,
//! - [`EventQueue`], a deterministic time-ordered event queue,
//! - [`SimRng`], a small, seedable PRNG so every run is reproducible from a
//!   single seed,
//! - [`stats`], counters, histograms and running statistics used by the
//!   benchmark harness and by the tracing layer.
//!
//! The simulator is *cycle-resolved*: components such as NoC routers and
//! per-tile monitors advance once per cycle, while coarser components (host
//! CPU models, external clients) schedule timed events on an [`EventQueue`].

pub mod clock;
pub mod event;
pub mod rng;
pub mod stats;

pub use clock::{Clock, Cycle};
pub use event::EventQueue;
pub use rng::SimRng;
pub use stats::{Counter, Histogram, RunningStats};
