//! A fast, deterministic hasher for simulator-internal maps.
//!
//! `std`'s default SipHash is DoS-resistant but costs tens of nanoseconds
//! per lookup — real money when the NoC touches per-packet maps hundreds of
//! times per simulated cycle. Simulation state is never attacker-controlled,
//! so a multiply-xor hash (the FxHash construction from rustc) is safe and
//! several times faster. The hash is fully deterministic (no per-process
//! random seed), which also keeps iteration order stable across runs —
//! though simulation code must still never iterate a hash map where order
//! reaches results.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiply-xor hasher (FxHash): one multiply per word, no finalizer.
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.add(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add(v as u64);
    }
}

/// A `HashMap` using [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// A `HashSet` using [`FxHasher`].
pub type FxHashSet<K> = HashSet<K, BuildHasherDefault<FxHasher>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_roundtrip() {
        let mut m: FxHashMap<u64, &str> = FxHashMap::default();
        for k in 0..1000u64 {
            m.insert(k, "v");
        }
        assert_eq!(m.len(), 1000);
        for k in 0..1000u64 {
            assert!(m.contains_key(&k));
        }
        assert!(!m.contains_key(&1000));
    }

    #[test]
    fn hash_is_deterministic_and_spreads() {
        let h = |v: u64| {
            let mut hh = FxHasher::default();
            hh.write_u64(v);
            hh.finish()
        };
        assert_eq!(h(42), h(42));
        // Sequential keys must land in distinct buckets of a small table.
        let buckets: HashSet<u64> = (0..64).map(|v| h(v) >> 57).collect();
        assert!(buckets.len() > 16, "only {} of 64 buckets", buckets.len());
    }

    #[test]
    fn byte_writes_match_length() {
        let mut a = FxHasher::default();
        a.write(b"hello world, this is a longer key");
        let mut b = FxHasher::default();
        b.write(b"hello world, this is a longer kez");
        assert_ne!(a.finish(), b.finish());
    }
}
