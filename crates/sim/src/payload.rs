//! Shared, immutable payload buffers for the zero-copy message path.
//!
//! Every layer of the stack used to own its bytes: the monitor cloned the
//! payload out of the outbox to inject it, the ARQ cloned it into the
//! unacked ring *and* into each (re)transmitted packet, the fabric cloned
//! it from the egress backlog into the ARQ window. [`Payload`] replaces
//! those copies with a reference-counted handle: cloning is an `Arc`
//! bump, and the bytes themselves are written exactly once, by whoever
//! built the `Vec<u8>`.
//!
//! Ownership rules:
//!
//! - A `Payload` is **immutable**. Producers build a `Vec<u8>` and convert
//!   it (`Vec<u8>: Into<Payload>`, zero-copy); consumers read through
//!   `Deref<Target = [u8]>`.
//! - [`Payload::to_vec`] is the explicit escape hatch back to owned bytes
//!   (it copies); [`Payload::make_mut`] gives in-place mutation with
//!   copy-on-write semantics for the rare test that patches a byte.
//! - Cost-model invariance: a `Payload` has the same `len()` as the
//!   `Vec<u8>` it came from, so wire-byte accounting (NoC flit counts,
//!   frame serialisation, ARQ deadlines) is unchanged by construction.

use std::borrow::Borrow;
use std::ops::Deref;
use std::sync::Arc;

/// A cheaply clonable, immutable byte buffer (see module docs).
///
/// # Examples
///
/// ```
/// use apiary_sim::Payload;
///
/// let p: Payload = vec![1u8, 2, 3].into();
/// let q = p.clone(); // refcount bump, no copy
/// assert_eq!(&p[..], &[1, 2, 3]);
/// assert_eq!(p, q);
/// assert_eq!(p.len(), 3);
/// ```
#[derive(Clone, Default)]
pub struct Payload(Arc<Vec<u8>>);

impl Payload {
    /// An empty payload.
    pub fn empty() -> Payload {
        Payload::default()
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// `true` when there are no bytes.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// The bytes as a slice (also available through `Deref`).
    pub fn as_slice(&self) -> &[u8] {
        self.0.as_slice()
    }

    /// Copies the bytes back into an owned `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.0.as_ref().clone()
    }

    /// Mutable access with copy-on-write semantics: sole owners mutate in
    /// place, shared handles get a private copy first.
    pub fn make_mut(&mut self) -> &mut Vec<u8> {
        Arc::make_mut(&mut self.0)
    }
}

impl From<Vec<u8>> for Payload {
    fn from(v: Vec<u8>) -> Payload {
        Payload(Arc::new(v))
    }
}

impl From<&[u8]> for Payload {
    fn from(v: &[u8]) -> Payload {
        Payload(Arc::new(v.to_vec()))
    }
}

impl<const N: usize> From<[u8; N]> for Payload {
    fn from(v: [u8; N]) -> Payload {
        Payload(Arc::new(v.to_vec()))
    }
}

impl Deref for Payload {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.0.as_slice()
    }
}

impl AsRef<[u8]> for Payload {
    fn as_ref(&self) -> &[u8] {
        self.0.as_slice()
    }
}

impl Borrow<[u8]> for Payload {
    fn borrow(&self) -> &[u8] {
        self.0.as_slice()
    }
}

impl PartialEq for Payload {
    fn eq(&self, other: &Payload) -> bool {
        // Pointer equality first: clones of the same buffer are common.
        Arc::ptr_eq(&self.0, &other.0) || self.0 == other.0
    }
}

impl Eq for Payload {}

impl std::hash::Hash for Payload {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.0.as_slice().hash(state);
    }
}

impl PartialEq<[u8]> for Payload {
    fn eq(&self, other: &[u8]) -> bool {
        self.0.as_slice() == other
    }
}

impl PartialEq<&[u8]> for Payload {
    fn eq(&self, other: &&[u8]) -> bool {
        self.0.as_slice() == *other
    }
}

impl PartialEq<Vec<u8>> for Payload {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.0.as_ref() == other
    }
}

impl PartialEq<Payload> for Vec<u8> {
    fn eq(&self, other: &Payload) -> bool {
        self == other.0.as_ref()
    }
}

impl<const N: usize> PartialEq<[u8; N]> for Payload {
    fn eq(&self, other: &[u8; N]) -> bool {
        self.0.as_slice() == other
    }
}

impl<const N: usize> PartialEq<Payload> for [u8; N] {
    fn eq(&self, other: &Payload) -> bool {
        self == other.0.as_slice()
    }
}

impl<const N: usize> PartialEq<&[u8; N]> for Payload {
    fn eq(&self, other: &&[u8; N]) -> bool {
        self.0.as_slice() == *other
    }
}

impl<const N: usize> PartialEq<Payload> for &[u8; N] {
    fn eq(&self, other: &Payload) -> bool {
        *self == other.0.as_slice()
    }
}

impl core::fmt::Debug for Payload {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        core::fmt::Debug::fmt(self.0.as_slice(), f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clone_shares_the_buffer() {
        let p: Payload = vec![1, 2, 3].into();
        let q = p.clone();
        assert!(Arc::ptr_eq(&p.0, &q.0));
        assert_eq!(p, q);
    }

    #[test]
    fn deref_and_comparisons() {
        let p: Payload = vec![5u8; 4].into();
        assert_eq!(p.len(), 4);
        assert!(!p.is_empty());
        assert_eq!(p[0], 5);
        assert_eq!(p, vec![5u8; 4]);
        assert_eq!(vec![5u8; 4], p);
        assert_eq!(p, [5u8; 4]);
        assert_eq!(&p[..], &[5u8, 5, 5, 5]);
        assert_eq!(p.to_vec(), vec![5u8; 4]);
        assert_ne!(p, Payload::empty());
        assert!(Payload::empty().is_empty());
    }

    #[test]
    fn make_mut_is_copy_on_write() {
        let mut p: Payload = vec![0u8; 3].into();
        let q = p.clone();
        p.make_mut()[0] = 9;
        assert_eq!(p[0], 9, "owner sees the write");
        assert_eq!(q[0], 0, "shared clone is untouched");
    }
}
