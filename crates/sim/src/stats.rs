//! Measurement primitives: counters, running statistics, and histograms.
//!
//! Every Apiary experiment reports through these types so that the benchmark
//! harness can print consistent tables. [`Histogram`] uses HDR-style
//! log-linear buckets: cheap to update on the simulation fast path, while
//! still giving accurate tail percentiles.

use core::fmt;

/// A monotonically increasing event counter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counter(u64);

impl Counter {
    /// Creates a counter at zero.
    pub const fn new() -> Counter {
        Counter(0)
    }

    /// Adds one.
    #[inline]
    pub fn inc(&mut self) {
        self.0 += 1;
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// Returns the current count.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Streaming mean/variance/min/max via Welford's algorithm.
///
/// # Examples
///
/// ```
/// use apiary_sim::RunningStats;
///
/// let mut s = RunningStats::new();
/// for v in [2.0, 4.0, 6.0] {
///     s.record(v);
/// }
/// assert_eq!(s.mean(), 4.0);
/// assert_eq!(s.min(), 2.0);
/// assert_eq!(s.max(), 6.0);
/// ```
#[derive(Debug, Clone)]
pub struct RunningStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Default for RunningStats {
    fn default() -> Self {
        Self::new()
    }
}

impl RunningStats {
    /// Creates an empty accumulator.
    pub fn new() -> RunningStats {
        RunningStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (zero when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (zero for fewer than two samples).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Population standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest sample (zero when empty).
    pub fn min(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest sample (zero when empty).
    pub fn max(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Merges another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &RunningStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n = self.n + other.n;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.n as f64 / n as f64;
        let m2 = self.m2 + other.m2 + delta * delta * (self.n as f64 * other.n as f64) / n as f64;
        self.n = n;
        self.mean = mean;
        self.m2 = m2;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Number of linear sub-buckets per power-of-two bucket. 16 gives ~6%
/// worst-case relative error on reported quantiles.
const SUB_BUCKETS: usize = 16;
const SUB_BITS: u32 = 4; // log2(SUB_BUCKETS)

/// A log-linear histogram of `u64` samples (HdrHistogram-style).
///
/// Values are bucketed with a relative precision of about 1/16; updates are
/// O(1) and quantile queries are O(buckets). Suits latency distributions with
/// long tails.
///
/// # Examples
///
/// ```
/// use apiary_sim::Histogram;
///
/// let mut h = Histogram::new();
/// for v in 1..=1000u64 {
///     h.record(v);
/// }
/// let p50 = h.quantile(0.5);
/// assert!((450..=560).contains(&p50), "p50 was {p50}");
/// ```
#[derive(Debug, Clone)]
pub struct Histogram {
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

#[inline]
fn bucket_index(value: u64) -> usize {
    if value < SUB_BUCKETS as u64 {
        return value as usize;
    }
    // Position of the highest set bit determines the power-of-two bucket;
    // the next SUB_BITS bits pick the linear sub-bucket.
    let msb = 63 - value.leading_zeros();
    let shift = msb - SUB_BITS;
    let sub = ((value >> shift) & (SUB_BUCKETS as u64 - 1)) as usize;
    let major = (msb - SUB_BITS + 1) as usize;
    major * SUB_BUCKETS + sub
}

#[inline]
fn bucket_low(index: usize) -> u64 {
    if index < SUB_BUCKETS {
        return index as u64;
    }
    let major = (index / SUB_BUCKETS) as u32;
    let sub = (index % SUB_BUCKETS) as u64;
    ((SUB_BUCKETS as u64) + sub) << (major - 1)
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            buckets: Vec::new(),
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        let idx = bucket_index(value);
        if idx >= self.buckets.len() {
            self.buckets.resize(idx + 1, 0);
        }
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean of samples (zero when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Smallest recorded sample (zero when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded sample (zero when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Returns an approximation of the `q`-quantile (`0.0 ..= 1.0`) as the
    /// lower bound of the bucket containing it. Relative error is bounded by
    /// the bucket width (~6%).
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let target = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return bucket_low(i).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Median shorthand.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 99th-percentile shorthand.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        if other.buckets.len() > self.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// One-line summary for report tables.
    pub fn summary(&self) -> String {
        format!(
            "n={} mean={:.1} p50={} p99={} max={}",
            self.count,
            self.mean(),
            self.p50(),
            self.p99(),
            self.max()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_counts() {
        let mut c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
    }

    #[test]
    fn running_stats_basics() {
        let mut s = RunningStats::new();
        for v in [1.0, 2.0, 3.0, 4.0] {
            s.record(v);
        }
        assert_eq!(s.count(), 4);
        assert!((s.mean() - 2.5).abs() < 1e-12);
        assert!((s.variance() - 1.25).abs() < 1e-12);
        assert_eq!(s.min(), 1.0);
        assert_eq!(s.max(), 4.0);
    }

    #[test]
    fn running_stats_merge_matches_sequential() {
        let mut all = RunningStats::new();
        let mut a = RunningStats::new();
        let mut b = RunningStats::new();
        for i in 0..100 {
            let v = (i * 37 % 13) as f64;
            all.record(v);
            if i % 2 == 0 {
                a.record(v)
            } else {
                b.record(v)
            }
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert!((a.mean() - all.mean()).abs() < 1e-9);
        assert!((a.variance() - all.variance()).abs() < 1e-9);
    }

    #[test]
    fn histogram_exact_for_small_values() {
        let mut h = Histogram::new();
        for v in 0..16u64 {
            h.record(v);
        }
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 15);
        assert_eq!(h.quantile(0.0), 0);
        assert_eq!(h.quantile(1.0), 15);
    }

    #[test]
    fn histogram_quantiles_are_close() {
        let mut h = Histogram::new();
        for v in 1..=100_000u64 {
            h.record(v);
        }
        for (q, expect) in [(0.5, 50_000.0), (0.9, 90_000.0), (0.99, 99_000.0)] {
            let got = h.quantile(q) as f64;
            let err = (got - expect).abs() / expect;
            assert!(err < 0.10, "q={q}: got {got}, expected ~{expect}");
        }
    }

    #[test]
    fn histogram_merge_adds_counts() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(10);
        b.record(1_000_000);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.min(), 10);
        assert_eq!(a.max(), 1_000_000);
    }

    #[test]
    fn histogram_empty_is_zeroed() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.p50(), 0);
        assert_eq!(h.min(), 0);
    }

    #[test]
    fn bucket_index_monotonic() {
        let mut last = 0;
        for v in 0..1_000_000u64 {
            let idx = bucket_index(v);
            assert!(idx >= last);
            last = idx;
        }
    }

    #[test]
    fn bucket_low_is_lower_bound() {
        for v in [0u64, 1, 15, 16, 17, 255, 1024, 123_456_789] {
            let idx = bucket_index(v);
            assert!(bucket_low(idx) <= v, "value {v} bucket low too high");
            if idx + 1 < usize::MAX {
                assert!(bucket_low(idx + 1) > v, "value {v} next bucket low too low");
            }
        }
    }
}
