//! Simulated time: cycles and the global clock.

use core::fmt;
use core::ops::{Add, AddAssign, Sub};

/// A point in simulated time, measured in clock cycles since boot.
///
/// `Cycle` is an absolute timestamp; durations are plain `u64` cycle counts.
/// All arithmetic saturates rather than wrapping so that sentinel values such
/// as [`Cycle::MAX`] stay in range.
///
/// # Examples
///
/// ```
/// use apiary_sim::Cycle;
///
/// let t = Cycle::ZERO + 10;
/// assert_eq!(t.as_u64(), 10);
/// assert_eq!(t - Cycle::ZERO, 10);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Cycle(pub u64);

impl Cycle {
    /// Time zero: the boot instant of the simulation.
    pub const ZERO: Cycle = Cycle(0);

    /// The largest representable time; used as an "infinitely far" sentinel.
    pub const MAX: Cycle = Cycle(u64::MAX);

    /// Returns the raw cycle count.
    #[inline]
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// Returns the cycle count that is `d` cycles later, saturating at
    /// [`Cycle::MAX`].
    #[inline]
    pub const fn saturating_add(self, d: u64) -> Cycle {
        Cycle(self.0.saturating_add(d))
    }

    /// Returns the number of cycles elapsed since `earlier`, or zero if
    /// `earlier` is in the future.
    #[inline]
    pub const fn saturating_since(self, earlier: Cycle) -> u64 {
        self.0.saturating_sub(earlier.0)
    }

    /// Converts this cycle count to nanoseconds at the given clock frequency.
    ///
    /// Useful when comparing FPGA-side cycle counts (e.g. at 250 MHz) against
    /// host-side costs quoted in wall-clock time.
    #[inline]
    pub fn as_nanos(self, freq_mhz: u64) -> u64 {
        // cycles / (MHz * 1e6) seconds = cycles * 1000 / MHz nanoseconds.
        // The multiply goes through u128: above ~1.8e16 cycles a u64
        // `cycles * 1000` saturates and quietly caps the result.
        let nanos = (self.0 as u128 * 1000) / freq_mhz.max(1) as u128;
        u64::try_from(nanos).unwrap_or(u64::MAX)
    }
}

impl fmt::Debug for Cycle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cyc:{}", self.0)
    }
}

impl fmt::Display for Cycle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl Add<u64> for Cycle {
    type Output = Cycle;

    #[inline]
    fn add(self, rhs: u64) -> Cycle {
        self.saturating_add(rhs)
    }
}

impl AddAssign<u64> for Cycle {
    #[inline]
    fn add_assign(&mut self, rhs: u64) {
        *self = self.saturating_add(rhs);
    }
}

impl Sub<Cycle> for Cycle {
    type Output = u64;

    #[inline]
    fn sub(self, rhs: Cycle) -> u64 {
        self.saturating_since(rhs)
    }
}

/// The global simulation clock.
///
/// A `Clock` only ever moves forward. Components read the current time via
/// [`Clock::now`]; the top-level simulation driver advances it with
/// [`Clock::tick`].
#[derive(Debug, Clone, Default)]
pub struct Clock {
    now: Cycle,
}

impl Clock {
    /// Creates a clock at time zero.
    pub fn new() -> Clock {
        Clock { now: Cycle::ZERO }
    }

    /// Returns the current simulated time.
    #[inline]
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// Advances the clock by one cycle and returns the new time.
    #[inline]
    pub fn tick(&mut self) -> Cycle {
        self.now += 1;
        self.now
    }

    /// Advances the clock directly to `t`.
    ///
    /// # Panics
    ///
    /// Panics if `t` is earlier than the current time; simulated time is
    /// monotonic.
    pub fn advance_to(&mut self, t: Cycle) {
        assert!(
            t >= self.now,
            "clock moved backwards: {} -> {}",
            self.now,
            t
        );
        self.now = t;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycle_arithmetic_saturates() {
        assert_eq!(Cycle::MAX + 1, Cycle::MAX);
        assert_eq!(Cycle::ZERO - Cycle::MAX, 0);
        assert_eq!(Cycle(7) - Cycle(3), 4);
    }

    #[test]
    fn cycle_ordering() {
        assert!(Cycle(1) < Cycle(2));
        assert_eq!(Cycle(5).max(Cycle(9)), Cycle(9));
    }

    #[test]
    fn nanos_conversion() {
        // 250 cycles at 250 MHz is 1000 ns.
        assert_eq!(Cycle(250).as_nanos(250), 1000);
        // Zero frequency must not divide by zero.
        assert_eq!(Cycle(250).as_nanos(0), 250_000);
    }

    #[test]
    fn nanos_conversion_does_not_saturate_early() {
        // 2^60 cycles at 1000 MHz is 2^60 ns — representable, but the old
        // u64 `cycles * 1000` multiply saturated and returned a wrong cap.
        let big = 1u64 << 60;
        assert_eq!(Cycle(big).as_nanos(1000), big);
        // At 250 MHz the true value (big * 4) overflows u64: clamp to MAX
        // instead of returning a garbage quotient.
        assert_eq!(Cycle(u64::MAX).as_nanos(250), u64::MAX);
        // Boundary just below the old saturation point still exact.
        assert_eq!(Cycle(u64::MAX / 1000).as_nanos(1000), u64::MAX / 1000);
    }

    #[test]
    fn clock_ticks_forward() {
        let mut c = Clock::new();
        assert_eq!(c.now(), Cycle::ZERO);
        assert_eq!(c.tick(), Cycle(1));
        c.advance_to(Cycle(100));
        assert_eq!(c.now(), Cycle(100));
    }

    #[test]
    #[should_panic(expected = "clock moved backwards")]
    fn clock_rejects_time_travel() {
        let mut c = Clock::new();
        c.advance_to(Cycle(10));
        c.advance_to(Cycle(5));
    }
}
