//! The wakeup-scheduling contract: components tell the driver when they
//! next need CPU instead of being polled every cycle.
//!
//! The old world ticked every component every cycle; a quiescent DMA engine
//! or an accelerator waiting on a DRAM row burned host time doing nothing.
//! Under the event-driven core a component's step function returns a
//! [`Wakeup`] describing the *next* cycle it could possibly do work, and the
//! driver (see `System` / `ClusterSystem`) advances the clock straight to
//! the earliest pending wakeup. Message arrival implicitly re-arms
//! [`Wakeup::OnMessage`] sleepers, so request/response components stay
//! latency-exact without busy-polling.
//!
//! # Determinism rules
//!
//! Event-driven execution must be bit-identical to dense per-cycle ticking.
//! That holds iff every wakeup is *conservative*: a component may be woken
//! earlier than it asked (it must no-op gracefully) but never later than the
//! first cycle at which its dense-ticked twin would have changed state.
//! Ties between components woken on the same cycle are broken by the fixed
//! phase order of the driver, exactly as in the dense loop — the event core
//! only decides *which cycles run*, never the order within a cycle.

use crate::clock::Cycle;
use core::sync::atomic::{AtomicU8, Ordering};

/// When a component next needs to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Wakeup {
    /// Wake at the given absolute cycle (a timer: DRAM ready, ARQ retry,
    /// reconfig completion, supervisor backoff, lease expiry...).
    At(Cycle),
    /// Wake when a message arrives at the component's inbox; the driver
    /// re-arms this implicitly on delivery.
    OnMessage,
    /// Wake at the given cycle *or* earlier if a message arrives first —
    /// a timer guarding a receive (timeout + inbox).
    AtOrMessage(Cycle),
    /// Nothing pending: do not wake again until external state changes
    /// (the driver still re-checks after deliveries and faults).
    Idle,
}

impl Wakeup {
    /// A wakeup `delay` cycles after `now`.
    #[inline]
    pub fn after(now: Cycle, delay: u64) -> Wakeup {
        Wakeup::At(now.saturating_add(delay))
    }

    /// The earlier of two wakeups. `OnMessage` and `Idle` carry no time;
    /// combining a timed wakeup with `OnMessage` yields `AtOrMessage`.
    pub fn earliest(self, other: Wakeup) -> Wakeup {
        use Wakeup::*;
        match (self, other) {
            (Idle, w) | (w, Idle) => w,
            (OnMessage, OnMessage) => OnMessage,
            (OnMessage, At(t)) | (At(t), OnMessage) => AtOrMessage(t),
            (OnMessage, AtOrMessage(t)) | (AtOrMessage(t), OnMessage) => AtOrMessage(t),
            (At(a), At(b)) => At(a.min(b)),
            (At(a), AtOrMessage(b)) | (AtOrMessage(b), At(a)) => AtOrMessage(a.min(b)),
            (AtOrMessage(a), AtOrMessage(b)) => AtOrMessage(a.min(b)),
        }
    }

    /// The absolute deadline this wakeup imposes on the driver's clock jump:
    /// the latest cycle the driver may skip to without missing this
    /// component. `OnMessage` / `Idle` impose none ([`Cycle::MAX`]).
    #[inline]
    pub fn deadline(self) -> Cycle {
        match self {
            Wakeup::At(t) | Wakeup::AtOrMessage(t) => t,
            Wakeup::OnMessage | Wakeup::Idle => Cycle::MAX,
        }
    }

    /// Whether a message arrival should wake this sleeper early.
    #[inline]
    pub fn wakes_on_message(self) -> bool {
        matches!(self, Wakeup::OnMessage | Wakeup::AtOrMessage(_))
    }
}

/// The unified step contract all ticked components converge on.
///
/// `Ctx` is whatever the component needs handed in per step — `()` for
/// self-contained engines like the NoC, an OS handle for accelerators, an
/// output sink for the cluster fabric. `wake` performs one cycle's worth of
/// work at `now` and returns when it next needs to run.
///
/// Implementations must tolerate spurious wakeups (being called earlier
/// than requested) by no-opping; the driver exploits this to keep wakeups
/// conservative.
pub trait Schedulable<Ctx = ()> {
    /// Runs the component at `now`; returns the next wakeup.
    fn wake(&mut self, now: Cycle, ctx: &mut Ctx) -> Wakeup;
}

/// How the simulation drivers advance time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClockMode {
    /// Tick every cycle (the legacy loop; reference behaviour).
    Dense,
    /// Jump between scheduled wakeups (default; bit-identical by
    /// construction, validated by `--det-check=event-vs-dense`).
    Event,
}

static CLOCK_MODE: AtomicU8 = AtomicU8::new(1);

/// The process-wide clock mode. Defaults to [`ClockMode::Event`].
pub fn clock_mode() -> ClockMode {
    if CLOCK_MODE.load(Ordering::Relaxed) == 0 {
        ClockMode::Dense
    } else {
        ClockMode::Event
    }
}

/// Sets the process-wide clock mode. Used by `--det-check=event-vs-dense`
/// to replay the suite under both clocks; tests that toggle it must restore
/// the previous mode (and not run concurrently with mode-sensitive tests).
pub fn set_clock_mode(mode: ClockMode) {
    CLOCK_MODE.store(matches!(mode, ClockMode::Event) as u8, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn earliest_combines_times_and_messages() {
        use Wakeup::*;
        assert_eq!(At(Cycle(5)).earliest(At(Cycle(9))), At(Cycle(5)));
        assert_eq!(Idle.earliest(At(Cycle(9))), At(Cycle(9)));
        assert_eq!(OnMessage.earliest(Idle), OnMessage);
        assert_eq!(OnMessage.earliest(At(Cycle(9))), AtOrMessage(Cycle(9)));
        assert_eq!(
            AtOrMessage(Cycle(7)).earliest(At(Cycle(3))),
            AtOrMessage(Cycle(3))
        );
        assert_eq!(Idle.earliest(Idle), Idle);
    }

    #[test]
    fn deadline_and_message_flags() {
        assert_eq!(Wakeup::At(Cycle(4)).deadline(), Cycle(4));
        assert_eq!(Wakeup::Idle.deadline(), Cycle::MAX);
        assert_eq!(Wakeup::OnMessage.deadline(), Cycle::MAX);
        assert!(Wakeup::OnMessage.wakes_on_message());
        assert!(Wakeup::AtOrMessage(Cycle(1)).wakes_on_message());
        assert!(!Wakeup::At(Cycle(1)).wakes_on_message());
        assert_eq!(Wakeup::after(Cycle(10), 5), Wakeup::At(Cycle(15)));
    }

    #[test]
    fn schedulable_is_object_safe() {
        struct Pulse(u64);
        impl Schedulable for Pulse {
            fn wake(&mut self, now: Cycle, _ctx: &mut ()) -> Wakeup {
                self.0 += 1;
                Wakeup::after(now, 10)
            }
        }
        let mut p = Pulse(0);
        let dynp: &mut dyn Schedulable = &mut p;
        assert_eq!(dynp.wake(Cycle(0), &mut ()), Wakeup::At(Cycle(10)));
        assert_eq!(p.0, 1);
    }
}
