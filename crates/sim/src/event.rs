//! A deterministic, time-ordered event queue — the public scheduling API of
//! the event-driven core.

use crate::clock::Cycle;
use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashSet};

/// An entry in the queue: events sort by time, then by insertion order so
/// that two events scheduled for the same cycle pop in FIFO order. This makes
/// runs bit-for-bit reproducible regardless of heap internals.
struct Entry<E> {
    at: Cycle,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest event is on top.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A ticket for a scheduled event, returned by [`EventQueue::schedule`] and
/// redeemable with [`EventQueue::cancel`]. Handles are unique per queue and
/// never reused.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventHandle(u64);

/// A deterministic future-event list.
///
/// Events are popped in nondecreasing time order; ties break in insertion
/// order (FIFO). The queue never invents times: popping hands back the
/// scheduled [`Cycle`] together with the event. Cancellation is O(1) via
/// tombstones: cancelled entries stay in the heap but are skipped (and
/// discarded) when they surface.
///
/// # Examples
///
/// ```
/// use apiary_sim::{Cycle, EventQueue};
///
/// let mut q = EventQueue::new();
/// q.schedule(Cycle(20), "later");
/// q.schedule(Cycle(10), "sooner");
/// assert_eq!(q.pop(), Some((Cycle(10), "sooner")));
/// assert_eq!(q.pop(), Some((Cycle(20), "later")));
/// assert_eq!(q.pop(), None);
/// ```
///
/// Relative scheduling and cancellation:
///
/// ```
/// use apiary_sim::{Cycle, EventQueue};
///
/// let mut q = EventQueue::new();
/// let retry = q.schedule_in(100, "retry");
/// q.schedule_in(30, "timer");
/// assert!(q.cancel(retry), "pending events cancel");
/// assert_eq!(q.pop(), Some((Cycle(30), "timer")));
/// assert_eq!(q.pop(), None, "cancelled event never fires");
/// assert!(!q.cancel(retry), "second cancel is a no-op");
/// ```
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
    /// Sequence numbers of entries still in the heap and not cancelled.
    live: HashSet<u64>,
    /// Sequence numbers of cancelled-but-not-yet-popped entries.
    tombstones: HashSet<u64>,
    /// Time cursor for [`EventQueue::schedule_in`]: the latest time ever
    /// popped (or set via [`EventQueue::set_now`]).
    now: Cycle,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> EventQueue<E> {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            live: HashSet::new(),
            tombstones: HashSet::new(),
            now: Cycle::ZERO,
        }
    }

    /// Schedules `event` to fire at absolute time `at`; returns a handle
    /// for [`EventQueue::cancel`].
    pub fn schedule(&mut self, at: Cycle, event: E) -> EventHandle {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { at, seq, event });
        self.live.insert(seq);
        EventHandle(seq)
    }

    /// Schedules `event` to fire `delay` cycles after the queue's current
    /// time (the time of the last popped event, or [`EventQueue::set_now`]).
    pub fn schedule_in(&mut self, delay: u64, event: E) -> EventHandle {
        self.schedule(self.now.saturating_add(delay), event)
    }

    /// Cancels a pending event. Returns `true` if the event was still
    /// pending (it will never fire), `false` if it already fired or was
    /// already cancelled. O(1); the slot is reclaimed lazily.
    pub fn cancel(&mut self, handle: EventHandle) -> bool {
        // Only tombstone handles that still sit in the heap: an entry that
        // already popped (or one issued by another queue) must not leave a
        // stale tombstone behind to poison an unrelated future event.
        if self.live.remove(&handle.0) {
            self.tombstones.insert(handle.0);
            true
        } else {
            false
        }
    }

    /// The queue's current time cursor (drives [`EventQueue::schedule_in`]).
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// Advances the time cursor. Popping an event later than the cursor
    /// also advances it; the cursor never moves backwards.
    pub fn set_now(&mut self, now: Cycle) {
        self.now = self.now.max(now);
    }

    /// Returns the time of the earliest pending (non-cancelled) event.
    pub fn peek_time(&mut self) -> Option<Cycle> {
        self.skim();
        self.heap.peek().map(|e| e.at)
    }

    /// Removes and returns the earliest event together with its time.
    pub fn pop(&mut self) -> Option<(Cycle, E)> {
        self.skim();
        self.heap.pop().map(|e| {
            self.live.remove(&e.seq);
            self.now = self.now.max(e.at);
            (e.at, e.event)
        })
    }

    /// Removes and returns the earliest event only if it is due at or before
    /// `now`.
    pub fn pop_due(&mut self, now: Cycle) -> Option<(Cycle, E)> {
        if self.peek_time().is_some_and(|t| t <= now) {
            self.pop()
        } else {
            None
        }
    }

    /// Removes and returns every event due at or before `now`, in firing
    /// order (time, then FIFO within a cycle) — the same-cycle batch drain
    /// the drivers use to run all of a cycle's events under one clock value.
    ///
    /// ```
    /// use apiary_sim::{Cycle, EventQueue};
    ///
    /// let mut q = EventQueue::new();
    /// q.schedule(Cycle(5), "a");
    /// q.schedule(Cycle(5), "b");
    /// q.schedule(Cycle(9), "c");
    /// assert_eq!(q.pop_batch(Cycle(5)), vec![(Cycle(5), "a"), (Cycle(5), "b")]);
    /// assert_eq!(q.len(), 1);
    /// ```
    pub fn pop_batch(&mut self, now: Cycle) -> Vec<(Cycle, E)> {
        let mut batch = Vec::new();
        while let Some(ev) = self.pop_due(now) {
            batch.push(ev);
        }
        batch
    }

    /// Discards cancelled entries sitting at the top of the heap.
    fn skim(&mut self) {
        while let Some(top) = self.heap.peek() {
            if self.tombstones.remove(&top.seq) {
                self.heap.pop();
            } else {
                break;
            }
        }
    }

    /// Returns the number of pending (non-cancelled) events.
    pub fn len(&self) -> usize {
        self.live.len()
    }

    /// Returns `true` if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
        self.live.clear();
        self.tombstones.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(Cycle(30), 3);
        q.schedule(Cycle(10), 1);
        q.schedule(Cycle(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(Cycle(5), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn pop_due_respects_now() {
        let mut q = EventQueue::new();
        q.schedule(Cycle(10), "a");
        q.schedule(Cycle(20), "b");
        assert_eq!(q.pop_due(Cycle(5)), None);
        assert_eq!(q.pop_due(Cycle(10)), Some((Cycle(10), "a")));
        assert_eq!(q.pop_due(Cycle(15)), None);
        assert_eq!(q.pop_due(Cycle(25)), Some((Cycle(20), "b")));
    }

    #[test]
    fn len_and_clear() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.schedule(Cycle(1), ());
        q.schedule(Cycle(2), ());
        assert_eq!(q.len(), 2);
        q.clear();
        assert!(q.is_empty());
    }

    #[test]
    fn interleaved_schedule_and_pop_stays_ordered() {
        let mut q = EventQueue::new();
        q.schedule(Cycle(10), "x");
        q.schedule(Cycle(30), "z");
        assert_eq!(q.pop(), Some((Cycle(10), "x")));
        q.schedule(Cycle(20), "y");
        assert_eq!(q.pop(), Some((Cycle(20), "y")));
        assert_eq!(q.pop(), Some((Cycle(30), "z")));
    }

    #[test]
    fn cancel_skips_the_event_and_updates_len() {
        let mut q = EventQueue::new();
        let a = q.schedule(Cycle(10), "a");
        let b = q.schedule(Cycle(20), "b");
        q.schedule(Cycle(30), "c");
        assert!(q.cancel(b));
        assert_eq!(q.len(), 2);
        assert!(!q.cancel(b), "double cancel reports not-pending");
        assert_eq!(q.pop(), Some((Cycle(10), "a")));
        assert!(!q.cancel(a), "popped events cannot be cancelled");
        assert_eq!(q.pop(), Some((Cycle(30), "c")));
        assert!(q.is_empty());
        assert_eq!(q.tombstones.len(), 0, "tombstones are reclaimed");
    }

    #[test]
    fn cancel_earliest_updates_peek() {
        let mut q = EventQueue::new();
        let a = q.schedule(Cycle(10), "a");
        q.schedule(Cycle(20), "b");
        assert!(q.cancel(a));
        assert_eq!(q.peek_time(), Some(Cycle(20)));
        assert_eq!(q.pop(), Some((Cycle(20), "b")));
    }

    #[test]
    fn foreign_handle_rejected() {
        let mut q1: EventQueue<&str> = EventQueue::new();
        let mut q2 = EventQueue::new();
        q2.schedule(Cycle(1), "x");
        q2.schedule(Cycle(2), "y");
        let h2 = q2.schedule(Cycle(3), "z");
        // q1 never issued seq 2: reject instead of poisoning future events.
        assert!(!q1.cancel(h2));
        q1.schedule(Cycle(9), "later");
        assert_eq!(q1.pop(), Some((Cycle(9), "later")));
    }

    #[test]
    fn schedule_in_tracks_popped_time() {
        let mut q = EventQueue::new();
        q.schedule(Cycle(50), "base");
        assert_eq!(q.pop(), Some((Cycle(50), "base")));
        assert_eq!(q.now(), Cycle(50));
        q.schedule_in(25, "rel");
        assert_eq!(q.pop(), Some((Cycle(75), "rel")));
        q.set_now(Cycle(100));
        q.set_now(Cycle(90)); // Never backwards.
        assert_eq!(q.now(), Cycle(100));
        q.schedule_in(5, "after-set");
        assert_eq!(q.pop(), Some((Cycle(105), "after-set")));
    }

    #[test]
    fn pop_batch_drains_same_cycle_fifo() {
        let mut q = EventQueue::new();
        q.schedule(Cycle(7), 1);
        q.schedule(Cycle(5), 2);
        let cancelled = q.schedule(Cycle(5), 3);
        q.schedule(Cycle(5), 4);
        q.schedule(Cycle(12), 5);
        q.cancel(cancelled);
        assert_eq!(
            q.pop_batch(Cycle(7)),
            vec![(Cycle(5), 2), (Cycle(5), 4), (Cycle(7), 1)]
        );
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop_batch(Cycle(11)), vec![]);
        assert_eq!(q.pop_batch(Cycle(12)), vec![(Cycle(12), 5)]);
    }

    #[test]
    fn cancellation_under_interleaving_stays_ordered() {
        // Schedule a lattice of events, cancel every third, and check the
        // survivors pop in exact (time, insertion) order.
        let mut q = EventQueue::new();
        let mut handles = Vec::new();
        for i in 0..60u64 {
            handles.push((i, q.schedule(Cycle(i % 10), i)));
        }
        for (i, h) in &handles {
            if i % 3 == 0 {
                assert!(q.cancel(*h));
            }
        }
        assert_eq!(q.len(), 40);
        let mut expect: Vec<(u64, u64)> = (0..60)
            .filter(|i| i % 3 != 0)
            .map(|i| (i % 10, i))
            .collect();
        expect.sort(); // (time, insertion order) — insertion == value here.
        let got: Vec<(u64, u64)> =
            std::iter::from_fn(|| q.pop().map(|(t, e)| (t.as_u64(), e))).collect();
        assert_eq!(got, expect);
    }
}
