//! A deterministic, time-ordered event queue.

use crate::clock::Cycle;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// An entry in the queue: events sort by time, then by insertion order so
/// that two events scheduled for the same cycle pop in FIFO order. This makes
/// runs bit-for-bit reproducible regardless of heap internals.
struct Entry<E> {
    at: Cycle,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest event is on top.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic future-event list.
///
/// Events are popped in nondecreasing time order; ties break in insertion
/// order (FIFO). The queue never invents times: popping hands back the
/// scheduled [`Cycle`] together with the event.
///
/// # Examples
///
/// ```
/// use apiary_sim::{Cycle, EventQueue};
///
/// let mut q = EventQueue::new();
/// q.schedule(Cycle(20), "later");
/// q.schedule(Cycle(10), "sooner");
/// assert_eq!(q.pop(), Some((Cycle(10), "sooner")));
/// assert_eq!(q.pop(), Some((Cycle(20), "later")));
/// assert_eq!(q.pop(), None);
/// ```
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> EventQueue<E> {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Schedules `event` to fire at absolute time `at`.
    pub fn schedule(&mut self, at: Cycle, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { at, seq, event });
    }

    /// Returns the time of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<Cycle> {
        self.heap.peek().map(|e| e.at)
    }

    /// Removes and returns the earliest event together with its time.
    pub fn pop(&mut self) -> Option<(Cycle, E)> {
        self.heap.pop().map(|e| (e.at, e.event))
    }

    /// Removes and returns the earliest event only if it is due at or before
    /// `now`.
    pub fn pop_due(&mut self, now: Cycle) -> Option<(Cycle, E)> {
        if self.peek_time().is_some_and(|t| t <= now) {
            self.pop()
        } else {
            None
        }
    }

    /// Returns the number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Returns `true` if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drops all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(Cycle(30), 3);
        q.schedule(Cycle(10), 1);
        q.schedule(Cycle(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(Cycle(5), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn pop_due_respects_now() {
        let mut q = EventQueue::new();
        q.schedule(Cycle(10), "a");
        q.schedule(Cycle(20), "b");
        assert_eq!(q.pop_due(Cycle(5)), None);
        assert_eq!(q.pop_due(Cycle(10)), Some((Cycle(10), "a")));
        assert_eq!(q.pop_due(Cycle(15)), None);
        assert_eq!(q.pop_due(Cycle(25)), Some((Cycle(20), "b")));
    }

    #[test]
    fn len_and_clear() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.schedule(Cycle(1), ());
        q.schedule(Cycle(2), ());
        assert_eq!(q.len(), 2);
        q.clear();
        assert!(q.is_empty());
    }

    #[test]
    fn interleaved_schedule_and_pop_stays_ordered() {
        let mut q = EventQueue::new();
        q.schedule(Cycle(10), "x");
        q.schedule(Cycle(30), "z");
        assert_eq!(q.pop(), Some((Cycle(10), "x")));
        q.schedule(Cycle(20), "y");
        assert_eq!(q.pop(), Some((Cycle(20), "y")));
        assert_eq!(q.pop(), Some((Cycle(30), "z")));
    }
}
