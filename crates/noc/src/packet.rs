//! Messages, packets and flits.

use crate::topology::NodeId;
use apiary_sim::{Cycle, Payload};
use core::fmt;

/// Traffic class, mapped one-to-one onto virtual channels.
///
/// Lower classes win arbitration. The OS reserves [`TrafficClass::Control`]
/// for monitor/kernel traffic so that a flooded data network can never choke
/// fault handling — one of the isolation levers of §4.5.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum TrafficClass {
    /// OS control-plane traffic (capability ops, fault notices).
    Control = 0,
    /// Latency-sensitive request/response traffic.
    #[default]
    Request = 1,
    /// Bulk data movement.
    Bulk = 2,
}

impl TrafficClass {
    /// All classes, highest priority first.
    pub const ALL: [TrafficClass; 3] = [
        TrafficClass::Control,
        TrafficClass::Request,
        TrafficClass::Bulk,
    ];

    /// The virtual-channel index this class rides on.
    pub const fn vc(self) -> usize {
        self as usize
    }
}

/// A unique packet identifier, assigned at injection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PacketId(pub u64);

/// An application-level message, the unit handed to and from the NoC.
///
/// `kind`, `tag` and `badge` are opaque to the NoC; higher layers (the
/// monitor and kernel) give them meaning. The NoC charges `header_bytes +
/// payload.len()` bytes of link capacity for the message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Message {
    /// Source node (stamped by the injecting monitor; untrusted logic cannot
    /// forge it).
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// Traffic class / virtual channel.
    pub class: TrafficClass,
    /// Message type, interpreted by the OS layer.
    pub kind: u16,
    /// Request/response correlation tag.
    pub tag: u64,
    /// Badge of the capability the sender used (stamped by the monitor).
    pub badge: u64,
    /// Payload bytes, held by refcounted handle: forwarding, retransmitting
    /// or keeping a message never copies the bytes.
    pub payload: Payload,
}

impl Message {
    /// Creates a message with empty metadata.
    pub fn new(
        src: NodeId,
        dst: NodeId,
        class: TrafficClass,
        payload: impl Into<Payload>,
    ) -> Message {
        Message {
            src,
            dst,
            class,
            kind: 0,
            tag: 0,
            badge: 0,
            payload: payload.into(),
        }
    }

    /// Total wire size in bytes, including the header.
    pub fn wire_bytes(&self, header_bytes: usize) -> usize {
        header_bytes + self.payload.len()
    }
}

/// What a flit carries.
#[derive(Debug, Clone)]
pub enum FlitKind {
    /// The head flit carries the full message (the simulator's stand-in for
    /// reassembly buffers).
    Head(Box<Message>),
    /// A body flit.
    Body,
}

/// One flit of a packet.
#[derive(Debug, Clone)]
pub struct Flit {
    /// Owning packet.
    pub packet: PacketId,
    /// Head or body.
    pub kind: FlitKind,
    /// `true` on the last flit of the packet (a single-flit packet's head is
    /// also its tail).
    pub is_tail: bool,
    /// Destination node (replicated so body flits can be audited).
    pub dst: NodeId,
    /// Virtual channel.
    pub vc: usize,
    /// Link-level checksum, set at packetisation. Fault injection flips it;
    /// the ejecting node verifies it so corruption is *detected* (and the
    /// packet dropped) rather than silently delivered.
    pub checksum: u32,
}

impl Flit {
    /// The checksum a pristine copy of this flit would carry.
    pub fn expected_checksum(&self) -> u32 {
        let head = matches!(self.kind, FlitKind::Head(_)) as u64;
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for word in [
            self.packet.0,
            head,
            self.is_tail as u64,
            self.dst.0 as u64,
            self.vc as u64,
        ] {
            h ^= word;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        (h >> 32) as u32 ^ h as u32
    }

    /// Whether the flit survived transit intact.
    pub fn checksum_ok(&self) -> bool {
        self.checksum == self.expected_checksum()
    }

    /// Marks the flit as damaged in transit (checksum no longer matches).
    /// Idempotent: crossing several faulty links stays detectable.
    pub fn corrupt(&mut self) {
        self.checksum = self.expected_checksum() ^ 0x5A5A_5A5A;
    }
}

/// Segments a message into flits.
///
/// A flit carries `flit_bytes` of data; the header occupies `header_bytes`
/// at the front. Every packet has at least one flit.
pub fn packetize(
    msg: Message,
    packet: PacketId,
    flit_bytes: usize,
    header_bytes: usize,
) -> Vec<Flit> {
    assert!(flit_bytes > 0, "flit size must be positive");
    let total = msg.wire_bytes(header_bytes);
    let nflits = total.div_ceil(flit_bytes).max(1);
    let dst = msg.dst;
    let vc = msg.class.vc();
    let mut flits = Vec::with_capacity(nflits);
    flits.push(Flit {
        packet,
        kind: FlitKind::Head(Box::new(msg)),
        is_tail: nflits == 1,
        dst,
        vc,
        checksum: 0,
    });
    for i in 1..nflits {
        flits.push(Flit {
            packet,
            kind: FlitKind::Body,
            is_tail: i == nflits - 1,
            dst,
            vc,
            checksum: 0,
        });
    }
    for f in &mut flits {
        f.checksum = f.expected_checksum();
    }
    flits
}

/// A message delivered at its destination's local port, with timing.
#[derive(Debug, Clone)]
pub struct Delivered {
    /// The message.
    pub msg: Message,
    /// Cycle the head flit entered the network.
    pub injected_at: Cycle,
    /// Cycle the tail flit left the network.
    pub delivered_at: Cycle,
}

impl Delivered {
    /// Network latency in cycles (inject to eject, inclusive of queueing).
    pub fn latency(&self) -> u64 {
        self.delivered_at - self.injected_at
    }
}

impl fmt::Display for Delivered {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} -> {} ({} B, {} cyc)",
            self.msg.src,
            self.msg.dst,
            self.msg.payload.len(),
            self.latency()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn msg(bytes: usize) -> Message {
        Message::new(NodeId(0), NodeId(1), TrafficClass::Request, vec![0; bytes])
    }

    #[test]
    fn single_flit_message() {
        let flits = packetize(msg(0), PacketId(1), 16, 8);
        assert_eq!(flits.len(), 1);
        assert!(flits[0].is_tail);
        assert!(matches!(flits[0].kind, FlitKind::Head(_)));
    }

    #[test]
    fn flit_count_matches_wire_size() {
        // 8-byte header + 100-byte payload = 108 bytes = 7 x 16 B flits.
        let flits = packetize(msg(100), PacketId(2), 16, 8);
        assert_eq!(flits.len(), 7);
        assert!(flits[6].is_tail);
        assert!(!flits[0].is_tail);
        assert!(flits[1..].iter().all(|f| matches!(f.kind, FlitKind::Body)));
    }

    #[test]
    fn exact_multiple_has_no_extra_flit() {
        // 8 + 24 = 32 bytes = exactly 2 x 16.
        let flits = packetize(msg(24), PacketId(3), 16, 8);
        assert_eq!(flits.len(), 2);
    }

    #[test]
    fn class_maps_to_vc() {
        assert_eq!(TrafficClass::Control.vc(), 0);
        assert_eq!(TrafficClass::Request.vc(), 1);
        assert_eq!(TrafficClass::Bulk.vc(), 2);
        let mut m = msg(0);
        m.class = TrafficClass::Bulk;
        let flits = packetize(m, PacketId(4), 16, 8);
        assert_eq!(flits[0].vc, 2);
    }

    #[test]
    fn checksums_verify_and_detect_corruption() {
        let mut flits = packetize(msg(100), PacketId(9), 16, 8);
        assert!(flits.iter().all(|f| f.checksum_ok()));
        flits[3].corrupt();
        assert!(!flits[3].checksum_ok());
        flits[3].corrupt();
        assert!(!flits[3].checksum_ok(), "double corruption stays detected");
        // Head and body of the same packet have distinct checksums.
        assert_ne!(flits[0].checksum, flits[1].checksum);
    }

    #[test]
    fn delivered_latency() {
        let d = Delivered {
            msg: msg(1),
            injected_at: Cycle(10),
            delivered_at: Cycle(35),
        };
        assert_eq!(d.latency(), 25);
    }
}
