//! The NoC engine: wiring, cycle advancement, switching, injection and
//! ejection.

use crate::config::NocConfig;
use crate::packet::{packetize, Delivered, Flit, FlitKind, Message, PacketId};
use crate::router::{LockOwner, Router, PORTS};
use crate::topology::{Direction, Mesh, NodeId, Port};
use apiary_sim::{Cycle, Histogram};
use std::collections::{HashMap, VecDeque};

/// Why an injection was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InjectError {
    /// The per-class injection queue at this node is full (backpressure).
    QueueFull,
    /// The destination is not a node of this mesh.
    BadDestination,
    /// The message's `src` field does not match the injecting node.
    SrcMismatch,
}

impl core::fmt::Display for InjectError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            InjectError::QueueFull => write!(f, "injection queue full"),
            InjectError::BadDestination => write!(f, "destination outside mesh"),
            InjectError::SrcMismatch => write!(f, "message src does not match injecting node"),
        }
    }
}

impl std::error::Error for InjectError {}

/// Aggregate network statistics.
#[derive(Debug, Clone, Default)]
pub struct NocStats {
    /// Messages accepted for injection.
    pub injected: u64,
    /// Messages delivered at their destination.
    pub delivered: u64,
    /// Injection attempts refused with [`InjectError::QueueFull`].
    pub rejected: u64,
    /// End-to-end message latency (inject call to tail ejection), cycles.
    pub latency: Histogram,
    /// Total flit-link traversals (a flit crossing one link counts once).
    pub flit_hops: u64,
    /// Flits ejected at local ports.
    pub flits_ejected: u64,
    /// Cycles simulated.
    pub cycles: u64,
}

impl NocStats {
    /// Mean delivered throughput in flits per cycle (ejection side).
    pub fn throughput_flits_per_cycle(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.flits_ejected as f64 / self.cycles as f64
        }
    }
}

/// One switch decision: move the head flit of `(node, in_port, vc)` to
/// `out_port`.
#[derive(Debug, Clone, Copy)]
struct Move {
    node: usize,
    in_port: usize,
    vc: usize,
    out_port: usize,
}

const DIRS: [Direction; 4] = [
    Direction::North,
    Direction::South,
    Direction::East,
    Direction::West,
];

fn dir_index(d: Direction) -> usize {
    match d {
        Direction::North => 0,
        Direction::South => 1,
        Direction::East => 2,
        Direction::West => 3,
    }
}

/// The cycle-level mesh NoC.
///
/// # Examples
///
/// ```
/// use apiary_noc::{Message, Noc, NocConfig, NodeId, TrafficClass};
///
/// let mut noc = Noc::new(NocConfig::soft(4, 4));
/// let msg = Message::new(NodeId(0), NodeId(15), TrafficClass::Request, vec![1, 2, 3]);
/// noc.try_inject(NodeId(0), msg).expect("queue space");
/// for _ in 0..100 {
///     noc.tick();
/// }
/// let got = noc.poll_eject(NodeId(15)).expect("delivered");
/// assert_eq!(got.msg.payload, vec![1, 2, 3]);
/// ```
#[derive(Debug)]
pub struct Noc {
    cfg: NocConfig,
    mesh: Mesh,
    now: Cycle,
    routers: Vec<Router>,
    /// `links[node][dir]`: flits in flight toward `neighbor(node, dir)`,
    /// as (arrival cycle, flit) in FIFO order.
    links: Vec<[VecDeque<(Cycle, Flit)>; 4]>,
    /// Injection queues: `nic[node][vc]` holds packetised messages.
    nic: Vec<Vec<VecDeque<VecDeque<Flit>>>>,
    /// Inject timestamp per in-flight packet.
    inject_time: HashMap<u64, Cycle>,
    /// Head-flit messages awaiting their tail at the destination.
    reassembly: HashMap<u64, Box<Message>>,
    /// Delivered messages awaiting pickup, per node.
    eject_q: Vec<VecDeque<Delivered>>,
    next_packet: u64,
    in_flight: usize,
    stats: NocStats,
    /// Flits sent per outgoing link, indexed `[node][dir]` — the raw data
    /// behind [`Noc::link_utilization`].
    link_flits: Vec<[u64; 4]>,
}

impl Noc {
    /// Builds a NoC from a validated configuration.
    pub fn new(cfg: NocConfig) -> Noc {
        cfg.validate();
        let mesh = Mesh::new(cfg.width, cfg.height);
        let n = mesh.nodes();
        Noc {
            mesh,
            now: Cycle::ZERO,
            routers: (0..n).map(|_| Router::new(cfg.vcs)).collect(),
            links: (0..n)
                .map(|_| std::array::from_fn(|_| VecDeque::new()))
                .collect(),
            nic: (0..n)
                .map(|_| (0..cfg.vcs).map(|_| VecDeque::new()).collect())
                .collect(),
            inject_time: HashMap::new(),
            reassembly: HashMap::new(),
            eject_q: (0..n).map(|_| VecDeque::new()).collect(),
            next_packet: 0,
            in_flight: 0,
            stats: NocStats::default(),
            link_flits: (0..n).map(|_| [0; 4]).collect(),
            cfg,
        }
    }

    /// The mesh geometry.
    pub fn mesh(&self) -> Mesh {
        self.mesh
    }

    /// The configuration.
    pub fn config(&self) -> &NocConfig {
        &self.cfg
    }

    /// Current simulated time.
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// Messages injected but not yet delivered.
    pub fn pending(&self) -> usize {
        self.in_flight
    }

    /// Statistics so far.
    pub fn stats(&self) -> &NocStats {
        &self.stats
    }

    /// Free message slots in `node`'s injection queue for `class`.
    pub fn inject_space(&self, node: NodeId, class: crate::packet::TrafficClass) -> usize {
        self.cfg.inject_queue - self.nic[node.index()][class.vc()].len()
    }

    /// Offers a message for injection at `from`.
    ///
    /// On success the message is queued at the local network interface and
    /// will be streamed into the mesh one flit per cycle; the returned
    /// [`PacketId`] can be used to correlate trace events.
    ///
    /// # Errors
    ///
    /// [`InjectError`] when the queue is full, the destination invalid, or
    /// the source field forged.
    pub fn try_inject(&mut self, from: NodeId, msg: Message) -> Result<PacketId, InjectError> {
        if !self.mesh.contains(msg.dst) {
            return Err(InjectError::BadDestination);
        }
        if msg.src != from || !self.mesh.contains(from) {
            return Err(InjectError::SrcMismatch);
        }
        let vc = msg.class.vc();
        if self.nic[from.index()][vc].len() >= self.cfg.inject_queue {
            self.stats.rejected += 1;
            return Err(InjectError::QueueFull);
        }
        let pid = PacketId(self.next_packet);
        self.next_packet += 1;
        let flits = packetize(msg, pid, self.cfg.flit_bytes, self.cfg.header_bytes);
        self.nic[from.index()][vc].push_back(flits.into());
        self.inject_time.insert(pid.0, self.now);
        self.in_flight += 1;
        self.stats.injected += 1;
        Ok(pid)
    }

    /// Takes one delivered message at `node`, if any.
    pub fn poll_eject(&mut self, node: NodeId) -> Option<Delivered> {
        self.eject_q[node.index()].pop_front()
    }

    /// Takes all delivered messages currently waiting at `node`.
    pub fn drain_eject(&mut self, node: NodeId) -> Vec<Delivered> {
        self.eject_q[node.index()].drain(..).collect()
    }

    /// Utilisation of every physical link as (source node, direction,
    /// flits sent / cycles elapsed), hottest first. A link at 1.0 is
    /// saturated (one flit per cycle).
    pub fn link_utilization(&self) -> Vec<(NodeId, Direction, f64)> {
        let cycles = self.stats.cycles.max(1) as f64;
        let mut out = Vec::new();
        for (node, dirs) in self.link_flits.iter().enumerate() {
            for (di, &flits) in dirs.iter().enumerate() {
                if self.mesh.neighbor(NodeId(node as u16), DIRS[di]).is_some() {
                    out.push((NodeId(node as u16), DIRS[di], flits as f64 / cycles));
                }
            }
        }
        out.sort_by(|a, b| b.2.partial_cmp(&a.2).expect("utilisations are finite"));
        out
    }

    /// Renders a per-node congestion heat map: each cell shows the busiest
    /// outgoing link's utilisation in percent.
    pub fn render_congestion(&self) -> String {
        use core::fmt::Write;
        let cycles = self.stats.cycles.max(1) as f64;
        let mut out = String::new();
        for y in (0..self.mesh.height).rev() {
            for x in 0..self.mesh.width {
                let n = self.mesh.node(crate::topology::Coord::new(x, y));
                let hottest = self.link_flits[n.index()]
                    .iter()
                    .copied()
                    .max()
                    .unwrap_or(0) as f64
                    / cycles;
                let _ = write!(out, "{:>5.1}% ", hottest * 100.0);
            }
            let _ = writeln!(out);
        }
        out
    }

    /// Free buffer slots at the input `(node, port, vc)`, accounting for
    /// flits already in flight on the feeding link.
    fn credit(&self, node: usize, in_port_dir: Direction, vc: usize) -> usize {
        let port = Port::Dir(in_port_dir).index();
        let occupied = self.routers[node].inputs[port].fifos[vc].len();
        // The feeding link is the neighbour's link toward us.
        let nb = self
            .mesh
            .neighbor(NodeId(node as u16), in_port_dir)
            .expect("credit only queried for existing links");
        let inflight = self.links[nb.index()][dir_index(in_port_dir.opposite())]
            .iter()
            .filter(|(_, f)| f.vc == vc)
            .count();
        self.cfg.vc_buffer.saturating_sub(occupied + inflight)
    }

    /// Advances the network by one cycle.
    pub fn tick(&mut self) {
        self.now += 1;
        self.stats.cycles += 1;
        self.phase_link_arrivals();
        let moves = self.phase_allocate();
        self.phase_apply(&moves);
        self.phase_inject();
    }

    /// Runs until no messages are in flight or `max_cycles` elapse; returns
    /// `true` on quiescence.
    pub fn run_until_quiescent(&mut self, max_cycles: u64) -> bool {
        for _ in 0..max_cycles {
            if self.in_flight == 0 {
                return true;
            }
            self.tick();
        }
        self.in_flight == 0
    }

    fn phase_link_arrivals(&mut self) {
        for node in 0..self.mesh.nodes() {
            for (di, d) in DIRS.iter().enumerate() {
                let Some(nb) = self.mesh.neighbor(NodeId(node as u16), *d) else {
                    continue;
                };
                let in_port = Port::Dir(d.opposite()).index();
                while let Some(&(at, _)) = self.links[node][di].front() {
                    if at > self.now {
                        break;
                    }
                    let (_, flit) = self.links[node][di].pop_front().expect("peeked");
                    let fifo = &mut self.routers[nb.index()].inputs[in_port].fifos[flit.vc];
                    debug_assert!(
                        fifo.len() < self.cfg.vc_buffer,
                        "credit accounting must guarantee buffer space"
                    );
                    fifo.push_back(flit);
                }
            }
        }
    }

    /// Switch allocation: per output port, strict priority across VCs
    /// (lower class first), round-robin across input ports, wormhole lock
    /// and credit checks. At most one flit per output port per cycle.
    fn phase_allocate(&self) -> Vec<Move> {
        let mut moves = Vec::new();
        for node in 0..self.mesh.nodes() {
            let router = &self.routers[node];
            for out_port in 0..PORTS {
                // Output link existence check for mesh edges.
                let out_dir = match out_port {
                    0 => None,
                    i => Some(DIRS[i - 1]),
                };
                if let Some(d) = out_dir {
                    if self.mesh.neighbor(NodeId(node as u16), d).is_none() {
                        continue;
                    }
                }
                'found: for vc in 0..self.cfg.vcs {
                    // Credit check once per (out, vc).
                    if let Some(d) = out_dir {
                        let nb = self
                            .mesh
                            .neighbor(NodeId(node as u16), d)
                            .expect("checked above");
                        if self.credit(nb.index(), d.opposite(), vc) == 0 {
                            continue;
                        }
                    }
                    let lock = router.out_lock[out_port][vc];
                    for k in 1..=PORTS {
                        let in_port = (router.rr[out_port] + k) % PORTS;
                        let Some(head) = router.inputs[in_port].fifos[vc].front() else {
                            continue;
                        };
                        if self.mesh.route(NodeId(node as u16), head.dst).index() != out_port {
                            continue;
                        }
                        let eligible = match lock {
                            None => matches!(head.kind, FlitKind::Head(_)),
                            Some(owner) => owner.in_port == in_port,
                        };
                        if !eligible {
                            continue;
                        }
                        moves.push(Move {
                            node,
                            in_port,
                            vc,
                            out_port,
                        });
                        break 'found;
                    }
                }
            }
        }
        moves
    }

    fn phase_apply(&mut self, moves: &[Move]) {
        for m in moves {
            let flit = self.routers[m.node].inputs[m.in_port].fifos[m.vc]
                .pop_front()
                .expect("move references a buffered flit");
            // Wormhole lock maintenance.
            let lock = &mut self.routers[m.node].out_lock[m.out_port][m.vc];
            if flit.is_tail {
                *lock = None;
            } else if matches!(flit.kind, FlitKind::Head(_)) {
                *lock = Some(LockOwner { in_port: m.in_port });
            }
            self.routers[m.node].rr[m.out_port] = m.in_port;

            if m.out_port == Port::Local.index() {
                self.eject(m.node, flit);
            } else {
                let arrive = self.now + 1 + self.cfg.hop_latency;
                self.links[m.node][m.out_port - 1].push_back((arrive, flit));
                self.link_flits[m.node][m.out_port - 1] += 1;
                self.stats.flit_hops += 1;
            }
        }
    }

    fn eject(&mut self, node: usize, flit: Flit) {
        self.stats.flits_ejected += 1;
        let is_tail = flit.is_tail;
        let pid = flit.packet;
        match flit.kind {
            FlitKind::Head(msg) => {
                debug_assert_eq!(msg.dst.index(), node, "misrouted flit");
                if is_tail {
                    self.deliver(node, pid, *msg);
                } else {
                    self.reassembly.insert(pid.0, msg);
                }
            }
            FlitKind::Body => {
                if is_tail {
                    let msg = self
                        .reassembly
                        .remove(&pid.0)
                        .expect("head always precedes tail on a VC");
                    self.deliver(node, pid, *msg);
                }
            }
        }
    }

    fn deliver(&mut self, node: usize, pid: PacketId, msg: Message) {
        let injected_at = self
            .inject_time
            .remove(&pid.0)
            .expect("every packet has an inject timestamp");
        let d = Delivered {
            msg,
            injected_at,
            delivered_at: self.now,
        };
        self.stats.latency.record(d.latency());
        self.stats.delivered += 1;
        self.in_flight -= 1;
        self.eject_q[node].push_back(d);
    }

    /// NIC: stream queued flits into the router's local input port, one flit
    /// per node per cycle, highest-priority class first.
    fn phase_inject(&mut self) {
        let local = Port::Local.index();
        for node in 0..self.mesh.nodes() {
            for vc in 0..self.cfg.vcs {
                if self.routers[node].inputs[local].fifos[vc].len() >= self.cfg.vc_buffer {
                    continue;
                }
                let Some(pkt) = self.nic[node][vc].front_mut() else {
                    continue;
                };
                let flit = pkt.pop_front().expect("queued packets are never empty");
                if pkt.is_empty() {
                    self.nic[node][vc].pop_front();
                }
                self.routers[node].inputs[local].fifos[vc].push_back(flit);
                break; // One flit per node per cycle.
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::TrafficClass;

    fn msg(src: u16, dst: u16, bytes: usize) -> Message {
        Message::new(
            NodeId(src),
            NodeId(dst),
            TrafficClass::Request,
            vec![0xAB; bytes],
        )
    }

    #[test]
    fn single_message_crosses_mesh() {
        let mut noc = Noc::new(NocConfig::soft(4, 4));
        noc.try_inject(NodeId(0), msg(0, 15, 32)).expect("space");
        assert!(noc.run_until_quiescent(10_000));
        let d = noc.poll_eject(NodeId(15)).expect("delivered");
        assert_eq!(d.msg.src, NodeId(0));
        assert_eq!(d.msg.payload.len(), 32);
        assert!(d.latency() > 0);
    }

    #[test]
    fn loopback_delivery() {
        let mut noc = Noc::new(NocConfig::soft(2, 2));
        noc.try_inject(NodeId(3), msg(3, 3, 8)).expect("space");
        assert!(noc.run_until_quiescent(1_000));
        assert!(noc.poll_eject(NodeId(3)).is_some());
    }

    #[test]
    fn src_forgery_rejected() {
        let mut noc = Noc::new(NocConfig::soft(2, 2));
        assert_eq!(
            noc.try_inject(NodeId(0), msg(1, 2, 8)),
            Err(InjectError::SrcMismatch)
        );
    }

    #[test]
    fn bad_destination_rejected() {
        let mut noc = Noc::new(NocConfig::soft(2, 2));
        assert_eq!(
            noc.try_inject(NodeId(0), msg(0, 99, 8)),
            Err(InjectError::BadDestination)
        );
    }

    #[test]
    fn queue_fills_and_backpressures() {
        let mut noc = Noc::new(NocConfig::soft(2, 2));
        let q = noc.config().inject_queue;
        for _ in 0..q {
            noc.try_inject(NodeId(0), msg(0, 3, 8)).expect("space");
        }
        assert_eq!(
            noc.try_inject(NodeId(0), msg(0, 3, 8)),
            Err(InjectError::QueueFull)
        );
        assert_eq!(noc.stats().rejected, 1);
    }

    #[test]
    fn latency_grows_with_distance() {
        let cfg = NocConfig::soft(8, 1);
        let mut near = Noc::new(cfg);
        near.try_inject(NodeId(0), msg(0, 1, 8)).expect("space");
        near.run_until_quiescent(1_000);
        let near_lat = near.poll_eject(NodeId(1)).expect("delivered").latency();

        let mut far = Noc::new(cfg);
        far.try_inject(NodeId(0), msg(0, 7, 8)).expect("space");
        far.run_until_quiescent(1_000);
        let far_lat = far.poll_eject(NodeId(7)).expect("delivered").latency();
        assert!(far_lat > near_lat, "{far_lat} !> {near_lat}");
    }

    #[test]
    fn large_message_latency_scales_with_flits() {
        let cfg = NocConfig::soft(4, 4);
        let mut a = Noc::new(cfg);
        a.try_inject(NodeId(0), msg(0, 15, 16)).expect("space");
        a.run_until_quiescent(10_000);
        let small = a.poll_eject(NodeId(15)).expect("delivered").latency();

        let mut b = Noc::new(cfg);
        b.try_inject(NodeId(0), msg(0, 15, 1024)).expect("space");
        b.run_until_quiescent(10_000);
        let big = b.poll_eject(NodeId(15)).expect("delivered").latency();
        // 1024 B at 16 B/flit is ~64 more flits of serialisation.
        assert!(big >= small + 60, "big={big} small={small}");
    }

    #[test]
    fn many_messages_all_deliver_exactly_once() {
        let mut noc = Noc::new(NocConfig::soft(4, 4));
        let n = noc.mesh().nodes() as u16;
        let mut sent = 0u64;
        // Every node sends to every other node, paced by queue capacity.
        for round in 0..4 {
            for s in 0..n {
                let d = (s + 1 + round) % n;
                if noc.try_inject(NodeId(s), msg(s, d, 40)).is_ok() {
                    sent += 1;
                }
            }
            for _ in 0..50 {
                noc.tick();
            }
        }
        assert!(noc.run_until_quiescent(100_000));
        let total: u64 = (0..n)
            .map(|i| noc.drain_eject(NodeId(i)).len() as u64)
            .sum();
        assert_eq!(total, sent);
        assert_eq!(noc.stats().delivered, sent);
    }

    #[test]
    fn per_source_fifo_order_within_class() {
        let mut noc = Noc::new(NocConfig::soft(4, 1));
        // Tag messages with a sequence number in the payload.
        for i in 0..6u8 {
            let mut m = msg(0, 3, 24);
            m.payload[0] = i;
            m.tag = i as u64;
            noc.try_inject(NodeId(0), m).expect("space");
        }
        assert!(noc.run_until_quiescent(10_000));
        let got = noc.drain_eject(NodeId(3));
        let tags: Vec<u64> = got.iter().map(|d| d.msg.tag).collect();
        assert_eq!(tags, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn control_class_beats_bulk_under_load() {
        let mut noc = Noc::new(NocConfig::soft(8, 1));
        // Saturate the path 0 -> 7 with bulk traffic.
        for _ in 0..8 {
            let mut m = msg(0, 7, 512);
            m.class = TrafficClass::Bulk;
            let _ = noc.try_inject(NodeId(0), m);
        }
        // Let bulk get going.
        for _ in 0..20 {
            noc.tick();
        }
        // Now a control message on the same path.
        let mut c = msg(0, 7, 16);
        c.class = TrafficClass::Control;
        c.tag = 777;
        noc.try_inject(NodeId(0), c).expect("space");
        assert!(noc.run_until_quiescent(100_000));
        let got = noc.drain_eject(NodeId(7));
        let ctrl = got.iter().find(|d| d.msg.tag == 777).expect("delivered");
        let bulk_max = got
            .iter()
            .filter(|d| d.msg.class == TrafficClass::Bulk)
            .map(|d| d.delivered_at)
            .max()
            .expect("bulk delivered");
        // Control overtakes at least the tail of the bulk burst.
        assert!(ctrl.delivered_at < bulk_max);
    }

    #[test]
    fn hardened_noc_is_faster() {
        let mut soft = Noc::new(NocConfig::soft(8, 8));
        soft.try_inject(NodeId(0), msg(0, 63, 256)).expect("space");
        soft.run_until_quiescent(100_000);
        let s = soft.poll_eject(NodeId(63)).expect("delivered").latency();

        let mut hard = Noc::new(NocConfig::hardened(8, 8));
        hard.try_inject(NodeId(0), msg(0, 63, 256)).expect("space");
        hard.run_until_quiescent(100_000);
        let h = hard.poll_eject(NodeId(63)).expect("delivered").latency();
        assert!(h < s, "hardened {h} !< soft {s}");
    }

    #[test]
    fn stats_counters_consistent() {
        let mut noc = Noc::new(NocConfig::soft(3, 3));
        for s in 0..9u16 {
            let _ = noc.try_inject(NodeId(s), msg(s, (s + 4) % 9, 64));
        }
        assert!(noc.run_until_quiescent(50_000));
        let st = noc.stats();
        assert_eq!(st.injected, st.delivered);
        assert_eq!(st.latency.count(), st.delivered);
        assert!(st.flits_ejected >= st.delivered);
        assert_eq!(noc.pending(), 0);
    }
}

#[cfg(test)]
mod link_stats_tests {
    use super::*;
    use crate::packet::TrafficClass;

    #[test]
    fn link_utilization_sums_to_flit_hops() {
        let mut noc = Noc::new(NocConfig::soft(4, 4));
        for s in 0..16u16 {
            let d = (s + 5) % 16;
            if s == d {
                continue;
            }
            let _ = noc.try_inject(
                NodeId(s),
                Message::new(NodeId(s), NodeId(d), TrafficClass::Request, vec![0; 100]),
            );
        }
        assert!(noc.run_until_quiescent(100_000));
        let cycles = noc.stats().cycles as f64;
        let total: f64 = noc
            .link_utilization()
            .iter()
            .map(|(_, _, u)| u * cycles)
            .sum();
        assert_eq!(total.round() as u64, noc.stats().flit_hops);
    }

    #[test]
    fn hot_path_shows_up_in_utilization() {
        let mut noc = Noc::new(NocConfig::soft(4, 1));
        // Stream 0 -> 3 along the row.
        for _ in 0..8 {
            let _ = noc.try_inject(
                NodeId(0),
                Message::new(NodeId(0), NodeId(3), TrafficClass::Bulk, vec![0; 512]),
            );
        }
        assert!(noc.run_until_quiescent(100_000));
        let hot = noc.link_utilization();
        // The hottest links are the eastward hops of the stream.
        let (node, dir, util) = hot[0];
        assert_eq!(dir, Direction::East);
        assert!(node == NodeId(0) || node == NodeId(1) || node == NodeId(2));
        assert!(util > 0.1, "{util}");
        // Edge links (mesh boundary) never appear.
        assert!(hot
            .iter()
            .all(|(n, d, _)| noc.mesh().neighbor(*n, *d).is_some()));
    }

    #[test]
    fn congestion_render_has_grid_shape() {
        let mut noc = Noc::new(NocConfig::soft(3, 2));
        let _ = noc.try_inject(
            NodeId(0),
            Message::new(NodeId(0), NodeId(5), TrafficClass::Request, vec![0; 64]),
        );
        noc.run_until_quiescent(10_000);
        let s = noc.render_congestion();
        assert_eq!(s.lines().count(), 2);
        assert!(s.contains('%'));
    }
}
