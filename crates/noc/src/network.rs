//! The NoC engine: wiring, cycle advancement, switching, injection and
//! ejection.

use crate::config::NocConfig;
use crate::fault::{FaultEvent, FaultPlane};
use crate::packet::{packetize, Delivered, Flit, FlitKind, Message, PacketId};
use crate::router::{LockOwner, Router, PORTS};
use crate::topology::{Direction, Mesh, NodeId, Port};
use apiary_sim::{Cycle, FxHashMap, FxHashSet, Histogram, Schedulable, Wakeup};
use std::collections::VecDeque;

/// Why an injection was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InjectError {
    /// The per-class injection queue at this node is full (backpressure).
    QueueFull,
    /// The destination is not a node of this mesh.
    BadDestination,
    /// The message's `src` field does not match the injecting node.
    SrcMismatch,
    /// Permanently dead links leave no live route to the destination.
    Unreachable,
}

impl core::fmt::Display for InjectError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            InjectError::QueueFull => write!(f, "injection queue full"),
            InjectError::BadDestination => write!(f, "destination outside mesh"),
            InjectError::SrcMismatch => write!(f, "message src does not match injecting node"),
            InjectError::Unreachable => write!(f, "no live route to destination"),
        }
    }
}

impl std::error::Error for InjectError {}

/// Aggregate network statistics.
#[derive(Debug, Clone, Default)]
pub struct NocStats {
    /// Messages accepted for injection.
    pub injected: u64,
    /// Messages delivered at their destination.
    pub delivered: u64,
    /// Injection attempts refused with [`InjectError::QueueFull`].
    pub rejected: u64,
    /// End-to-end message latency (inject call to tail ejection), cycles.
    pub latency: Histogram,
    /// Total flit-link traversals (a flit crossing one link counts once).
    pub flit_hops: u64,
    /// Flits ejected at local ports.
    pub flits_ejected: u64,
    /// Cycles simulated.
    pub cycles: u64,
    /// Flits whose checksum failed verification at the ejecting node.
    pub corrupted_flits: u64,
    /// Packets dropped because at least one of their flits arrived corrupt.
    pub dropped_corrupt: u64,
    /// Packets dropped or refused because no live route to the destination
    /// exists (after permanent link deaths).
    pub dropped_unreachable: u64,
    /// Packets flushed by fault handling: rerouted mid-stream after a link
    /// death, or purged by the no-progress valve.
    pub dropped_flushed: u64,
    /// Link fault events applied (transient and permanent).
    pub link_faults: u64,
    /// Router stall events applied.
    pub router_stalls: u64,
}

impl NocStats {
    /// Mean delivered throughput in flits per cycle (ejection side).
    pub fn throughput_flits_per_cycle(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.flits_ejected as f64 / self.cycles as f64
        }
    }

    /// Packets lost to faults, all causes.
    pub fn dropped(&self) -> u64 {
        self.dropped_corrupt + self.dropped_unreachable + self.dropped_flushed
    }
}

/// One switch decision: move the head flit of `(node, in_port, vc)` to
/// `out_port`.
#[derive(Debug, Clone, Copy)]
struct Move {
    node: usize,
    in_port: usize,
    vc: usize,
    out_port: usize,
}

pub(crate) const DIRS: [Direction; 4] = [
    Direction::North,
    Direction::South,
    Direction::East,
    Direction::West,
];

fn dir_index(d: Direction) -> usize {
    match d {
        Direction::North => 0,
        Direction::South => 1,
        Direction::East => 2,
        Direction::West => 3,
    }
}

/// The cycle-level mesh NoC.
///
/// # Examples
///
/// ```
/// use apiary_noc::{Message, Noc, NocConfig, NodeId, TrafficClass};
///
/// let mut noc = Noc::new(NocConfig::soft(4, 4));
/// let msg = Message::new(NodeId(0), NodeId(15), TrafficClass::Request, vec![1, 2, 3]);
/// noc.try_inject(NodeId(0), msg).expect("queue space");
/// for _ in 0..100 {
///     noc.step();
/// }
/// let got = noc.poll_eject(NodeId(15)).expect("delivered");
/// assert_eq!(got.msg.payload, vec![1, 2, 3]);
/// ```
#[derive(Debug)]
pub struct Noc {
    cfg: NocConfig,
    mesh: Mesh,
    now: Cycle,
    routers: Vec<Router>,
    /// `links[node][dir]`: flits in flight toward `neighbor(node, dir)`,
    /// as (arrival cycle, flit) in FIFO order.
    links: Vec<[VecDeque<(Cycle, Flit)>; 4]>,
    /// Injection queues: `nic[node][vc]` holds packetised messages.
    nic: Vec<Vec<VecDeque<VecDeque<Flit>>>>,
    /// Inject timestamp per in-flight packet.
    inject_time: FxHashMap<u64, Cycle>,
    /// Head-flit messages awaiting their tail at the destination.
    reassembly: FxHashMap<u64, Box<Message>>,
    /// Delivered messages awaiting pickup, per node.
    eject_q: Vec<VecDeque<Delivered>>,
    /// Total messages across all eject queues — lets the event clock ask
    /// "does any tile have mail?" without scanning every node.
    rx_pending: usize,
    next_packet: u64,
    in_flight: usize,
    stats: NocStats,
    /// Flits sent per outgoing link, indexed `[node][dir]` — the raw data
    /// behind [`Noc::link_utilization`].
    link_flits: Vec<[u64; 4]>,
    /// Routing table, flat with stride `nodes`: `routes[node * nodes + dst]`
    /// is the output port index, or [`UNREACHABLE`]. Starts as pure XY and
    /// is recomputed (BFS detours, XY preferred where still live) when a
    /// link dies permanently.
    routes: Vec<u8>,
    /// Permanently dead outgoing links, `[node][dir]`.
    dead_links: Vec<[bool; 4]>,
    /// Transient outages: the cycle (exclusive) until which the link
    /// `[node][dir]` corrupts crossing flits.
    link_down_until: Vec<[u64; 4]>,
    /// Router stalls: the cycle (exclusive) until which node `i` allocates
    /// no flits.
    stall_until: Vec<u64>,
    /// Packets detected corrupt at the destination, awaiting their tail so
    /// the whole packet can be dropped.
    rx_poisoned: FxHashSet<u64>,
    /// Optional chaos plane driving random fault injection.
    fault_plane: Option<FaultPlane>,
    /// `stats.cycles` value at which a flit last moved anywhere; feeds the
    /// no-progress valve that guarantees injected faults never deadlock the
    /// network.
    last_progress: u64,
    /// Active-set scheduling: when true (the default) the per-cycle phases
    /// skip nodes with no buffered work. A node whose router FIFOs, incoming
    /// links and NIC are all empty cannot produce a move, an arrival or an
    /// injection, so skipping it is exactly behaviour-preserving; the toggle
    /// exists so the speedup can be measured against the dense scan.
    active_set: bool,
    /// Flits buffered in each node's router input FIFOs (all ports, VCs).
    router_occ: Vec<usize>,
    /// Flits in flight on each node's outgoing links (all four directions).
    link_occ: Vec<usize>,
    /// Packets queued in each node's NIC (all VCs).
    nic_occ: Vec<usize>,
    // ------------------------------------------------------------------
    // Flat shadow state for the switch-allocation fast path. The router
    // FIFOs above stay the source of truth; these mirrors are maintained
    // at every push/pop so the per-cycle allocator reads only small,
    // cache-resident arrays instead of chasing VecDeque heads. Profiling
    // put `phase_allocate` at ~73% of NoC time before this.
    // ------------------------------------------------------------------
    /// Per-node neighbour table, `nbr[node * 4 + dir]`, `u16::MAX` at mesh
    /// edges. Mesh geometry is static, so this never changes.
    nbr: Vec<u16>,
    /// Head-of-FIFO summary, `heads[(node * 5 + port) * vcs + vc]`: packed
    /// presence/head-flit flags and destination (see `H_PRESENT`). The
    /// arrays are sized exactly (stride `vcs`, not a power of two) so the
    /// whole shadow state stays L1-resident.
    heads: Vec<u16>,
    /// Per-node bitset over `(port << 3) | vc` of non-empty input FIFOs.
    head_mask: Vec<u64>,
    /// Input FIFO depths, same indexing as `heads` — O(1) credit checks.
    fifo_len: Vec<u8>,
    /// In-flight flits per `(node, dir, vc)`, `[(node * 4 + dir) * vcs + vc]`
    /// — the link half of the credit computation.
    link_vc: Vec<u8>,
    /// Wormhole lock shadow, same indexing as `heads` over *output* ports:
    /// the owning input port, or `NO_LOCK`.
    lock_shadow: Vec<u8>,
    /// Round-robin pointer shadow, `[node * 5 + out_port]`.
    rr_shadow: Vec<u8>,
    /// Reused per-step move list (avoids a per-cycle allocation).
    moves_buf: Vec<Move>,
}

/// `heads` encoding: entry is valid (FIFO non-empty).
const H_PRESENT: u16 = 1 << 15;
/// `heads` encoding: the front flit is a head flit.
const H_HEADFLIT: u16 = 1 << 14;
/// `heads` encoding: destination node id (14 bits).
const H_DST: u16 = (1 << 14) - 1;
/// `lock_shadow` sentinel for "no lock held".
const NO_LOCK: u8 = u8::MAX;
/// Most VCs the shadow bitsets support (`5 * 8 = 40` mask bits).
const MAX_VCS: usize = 8;
/// Input-port index a flit arrives on after crossing a link in `DIRS[di]`:
/// `Port::Dir(DIRS[di].opposite()).index()`.
const OPP_PORT: [usize; 4] = [2, 1, 4, 3];

/// Marker in [`Noc::routes`] for "no live path".
const UNREACHABLE: u8 = u8::MAX;

/// Cycles without any flit movement (while packets are in flight) after
/// which the no-progress valve purges the network. Detour routing after a
/// permanent link death is not provably deadlock-free, so this valve bounds
/// the damage: stuck packets are dropped and counted instead of hanging the
/// simulation. Fault-free XY routing never triggers it.
const DEADLOCK_WINDOW: u64 = 4096;

impl Noc {
    /// Builds a NoC from a validated configuration.
    pub fn new(cfg: NocConfig) -> Noc {
        cfg.validate();
        assert!(
            cfg.vcs <= MAX_VCS,
            "shadow arrays support at most {MAX_VCS} virtual channels"
        );
        let mesh = Mesh::new(cfg.width, cfg.height);
        let n = mesh.nodes();
        assert!(
            n <= H_DST as usize + 1,
            "node ids must fit the head encoding"
        );
        let routes = (0..n)
            .flat_map(|src| {
                (0..n).map(move |dst| {
                    mesh.route(NodeId(src as u16), NodeId(dst as u16)).index() as u8
                })
            })
            .collect();
        let nbr = (0..n)
            .flat_map(|node| {
                DIRS.map(|d| {
                    mesh.neighbor(NodeId(node as u16), d)
                        .map_or(u16::MAX, |nb| nb.0)
                })
            })
            .collect();
        Noc {
            mesh,
            now: Cycle::ZERO,
            routers: (0..n).map(|_| Router::new(cfg.vcs)).collect(),
            links: (0..n)
                .map(|_| std::array::from_fn(|_| VecDeque::new()))
                .collect(),
            nic: (0..n)
                .map(|_| (0..cfg.vcs).map(|_| VecDeque::new()).collect())
                .collect(),
            inject_time: FxHashMap::default(),
            reassembly: FxHashMap::default(),
            eject_q: (0..n).map(|_| VecDeque::new()).collect(),
            rx_pending: 0,
            next_packet: 0,
            in_flight: 0,
            stats: NocStats::default(),
            link_flits: (0..n).map(|_| [0; 4]).collect(),
            routes,
            dead_links: vec![[false; 4]; n],
            link_down_until: vec![[0; 4]; n],
            stall_until: vec![0; n],
            rx_poisoned: FxHashSet::default(),
            fault_plane: None,
            last_progress: 0,
            active_set: true,
            router_occ: vec![0; n],
            link_occ: vec![0; n],
            nic_occ: vec![0; n],
            nbr,
            heads: vec![0; n * PORTS * cfg.vcs],
            head_mask: vec![0; n],
            fifo_len: vec![0; n * PORTS * cfg.vcs],
            link_vc: vec![0; n * 4 * cfg.vcs],
            lock_shadow: vec![NO_LOCK; n * PORTS * cfg.vcs],
            rr_shadow: vec![0; n * PORTS],
            moves_buf: Vec::new(),
            cfg,
        }
    }

    /// The mesh geometry.
    pub fn mesh(&self) -> Mesh {
        self.mesh
    }

    /// The configuration.
    pub fn config(&self) -> &NocConfig {
        &self.cfg
    }

    /// Current simulated time.
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// Messages injected but not yet delivered.
    pub fn pending(&self) -> usize {
        self.in_flight
    }

    /// Statistics so far.
    pub fn stats(&self) -> &NocStats {
        &self.stats
    }

    /// Free message slots in `node`'s injection queue for `class`.
    pub fn inject_space(&self, node: NodeId, class: crate::packet::TrafficClass) -> usize {
        self.cfg.inject_queue - self.nic[node.index()][class.vc()].len()
    }

    /// Offers a message for injection at `from`.
    ///
    /// On success the message is queued at the local network interface and
    /// will be streamed into the mesh one flit per cycle; the returned
    /// [`PacketId`] can be used to correlate trace events.
    ///
    /// # Errors
    ///
    /// [`InjectError`] when the queue is full, the destination invalid, or
    /// the source field forged.
    pub fn try_inject(&mut self, from: NodeId, msg: Message) -> Result<PacketId, InjectError> {
        if !self.mesh.contains(msg.dst) {
            return Err(InjectError::BadDestination);
        }
        if msg.src != from || !self.mesh.contains(from) {
            return Err(InjectError::SrcMismatch);
        }
        if self.routes[from.index() * self.mesh.nodes() + msg.dst.index()] == UNREACHABLE {
            self.stats.dropped_unreachable += 1;
            return Err(InjectError::Unreachable);
        }
        let vc = msg.class.vc();
        if self.nic[from.index()][vc].len() >= self.cfg.inject_queue {
            self.stats.rejected += 1;
            return Err(InjectError::QueueFull);
        }
        let pid = PacketId(self.next_packet);
        self.next_packet += 1;
        let flits = packetize(msg, pid, self.cfg.flit_bytes, self.cfg.header_bytes);
        self.nic[from.index()][vc].push_back(flits.into());
        self.nic_occ[from.index()] += 1;
        self.inject_time.insert(pid.0, self.now);
        self.in_flight += 1;
        self.stats.injected += 1;
        Ok(pid)
    }

    /// Takes one delivered message at `node`, if any.
    pub fn poll_eject(&mut self, node: NodeId) -> Option<Delivered> {
        let d = self.eject_q[node.index()].pop_front();
        if d.is_some() {
            self.rx_pending -= 1;
        }
        d
    }

    /// Delivered messages waiting at `node`, without taking any.
    pub fn eject_pending(&self, node: NodeId) -> usize {
        self.eject_q[node.index()].len()
    }

    /// Enables or disables active-set scheduling. On by default; results
    /// are bit-identical either way (quiescent nodes can contribute no
    /// work) — the switch exists so the speedup can be measured.
    pub fn set_active_set(&mut self, on: bool) {
        self.active_set = on;
    }

    /// Takes all delivered messages currently waiting at `node`.
    pub fn drain_eject(&mut self, node: NodeId) -> Vec<Delivered> {
        let v: Vec<Delivered> = self.eject_q[node.index()].drain(..).collect();
        self.rx_pending -= v.len();
        v
    }

    /// Delivered-but-unfetched messages across *all* nodes. The event
    /// clock runs kernel phases whenever this is non-zero, so a delivery
    /// implicitly re-arms every `OnMessage` sleeper on the same cycle it
    /// would have been pumped in under dense ticking.
    pub fn rx_pending_total(&self) -> usize {
        self.rx_pending
    }

    /// Utilisation of every physical link as (source node, direction,
    /// flits sent / cycles elapsed), hottest first. A link at 1.0 is
    /// saturated (one flit per cycle).
    pub fn link_utilization(&self) -> Vec<(NodeId, Direction, f64)> {
        let cycles = self.stats.cycles.max(1) as f64;
        let mut out = Vec::new();
        for (node, dirs) in self.link_flits.iter().enumerate() {
            for (di, &flits) in dirs.iter().enumerate() {
                if self.mesh.neighbor(NodeId(node as u16), DIRS[di]).is_some() {
                    out.push((NodeId(node as u16), DIRS[di], flits as f64 / cycles));
                }
            }
        }
        out.sort_by(|a, b| b.2.partial_cmp(&a.2).expect("utilisations are finite"));
        out
    }

    /// Renders a per-node congestion heat map: each cell shows the busiest
    /// outgoing link's utilisation in percent.
    pub fn render_congestion(&self) -> String {
        use core::fmt::Write;
        let cycles = self.stats.cycles.max(1) as f64;
        let mut out = String::new();
        for y in (0..self.mesh.height).rev() {
            for x in 0..self.mesh.width {
                let n = self.mesh.node(crate::topology::Coord::new(x, y));
                let hottest = self.link_flits[n.index()]
                    .iter()
                    .copied()
                    .max()
                    .unwrap_or(0) as f64
                    / cycles;
                let _ = write!(out, "{:>5.1}% ", hottest * 100.0);
            }
            let _ = writeln!(out);
        }
        out
    }

    /// Refreshes the head summary for input `(node, port, vc)` after a
    /// FIFO mutation.
    #[inline]
    fn refresh_head(&mut self, node: usize, port: usize, vc: usize) {
        let vcs = self.cfg.vcs;
        let idx = (node * PORTS + port) * vcs + vc;
        let entry = match self.routers[node].inputs[port].fifos[vc].front() {
            Some(f) => {
                H_PRESENT
                    | if matches!(f.kind, FlitKind::Head(_)) {
                        H_HEADFLIT
                    } else {
                        0
                    }
                    | f.dst.0
            }
            None => 0,
        };
        self.heads[idx] = entry;
        let bit = 1u64 << (port << 3 | vc);
        if entry == 0 {
            self.head_mask[node] &= !bit;
        } else {
            self.head_mask[node] |= bit;
        }
    }

    // ------------------------------------------------------------------
    // Fault injection (the chaos plane's levers, also usable directly).
    // ------------------------------------------------------------------

    /// Installs a chaos plane; its schedule and random draws are applied
    /// at the start of every [`Noc::tick`].
    pub fn install_fault_plane(&mut self, plane: FaultPlane) {
        self.fault_plane = Some(plane);
    }

    /// The installed chaos plane, if any.
    pub fn fault_plane(&self) -> Option<&FaultPlane> {
        self.fault_plane.as_ref()
    }

    /// Whether a live route from `from` to `to` exists.
    pub fn reachable(&self, from: NodeId, to: NodeId) -> bool {
        self.mesh.contains(from)
            && self.mesh.contains(to)
            && self.routes[from.index() * self.mesh.nodes() + to.index()] != UNREACHABLE
    }

    /// Permanently kills the outgoing link `node -> dir`: flits currently
    /// crossing it are corrupted, routing detours around it, and packets
    /// whose path change would split them mid-stream are flushed (counted
    /// in [`NocStats::dropped_flushed`] / `dropped_unreachable`). Returns
    /// `false` if no such link exists (mesh edge).
    pub fn kill_link(&mut self, node: NodeId, dir: Direction) -> bool {
        if self.mesh.neighbor(node, dir).is_none() {
            return false;
        }
        let di = dir_index(dir);
        if self.dead_links[node.index()][di] {
            return true;
        }
        self.dead_links[node.index()][di] = true;
        self.stats.link_faults += 1;
        for (_, flit) in self.links[node.index()][di].iter_mut() {
            flit.corrupt();
        }
        let old = std::mem::take(&mut self.routes);
        self.recompute_routes();
        self.flush_rerouted(&old);
        true
    }

    /// Starts a transient outage on the outgoing link `node -> dir`: flits
    /// entering it during the next `cycles` cycles are corrupted (and the
    /// packets dropped at the destination). Routing is unchanged. Returns
    /// `false` if no such link exists.
    pub fn fail_link_for(&mut self, node: NodeId, dir: Direction, cycles: u64) -> bool {
        if self.mesh.neighbor(node, dir).is_none() {
            return false;
        }
        let di = dir_index(dir);
        let until = self.now.as_u64() + cycles;
        let slot = &mut self.link_down_until[node.index()][di];
        *slot = (*slot).max(until);
        self.stats.link_faults += 1;
        for (_, flit) in self.links[node.index()][di].iter_mut() {
            flit.corrupt();
        }
        true
    }

    /// Freezes `node`'s switch allocator for `cycles` cycles: buffered
    /// flits stay put, arrivals still buffer (pure added delay).
    pub fn stall_router(&mut self, node: NodeId, cycles: u64) {
        let until = self.now.as_u64() + cycles;
        let slot = &mut self.stall_until[node.index()];
        *slot = (*slot).max(until);
        self.stats.router_stalls += 1;
    }

    fn apply_fault_event(&mut self, ev: FaultEvent) {
        match ev {
            FaultEvent::LinkDown {
                node,
                dir,
                heal_after: None,
            } => {
                self.kill_link(node, dir);
            }
            FaultEvent::LinkDown {
                node,
                dir,
                heal_after: Some(cycles),
            } => {
                self.fail_link_for(node, dir, cycles);
            }
            FaultEvent::RouterStall { node, cycles } => self.stall_router(node, cycles),
        }
    }

    /// Rebuilds `routes` around `dead_links`: BFS shortest paths, keeping
    /// the XY next hop wherever it still lies on a shortest live path so
    /// fault-free pairs keep their original routes.
    fn recompute_routes(&mut self) {
        let n = self.mesh.nodes();
        self.routes = vec![UNREACHABLE; n * n];
        for dst in 0..n {
            // BFS from the destination over *reversed* live links.
            let mut dist = vec![u32::MAX; n];
            dist[dst] = 0;
            let mut q = VecDeque::from([dst]);
            while let Some(v) = q.pop_front() {
                for d in DIRS {
                    let Some(u) = self.mesh.neighbor(NodeId(v as u16), d) else {
                        continue;
                    };
                    let u = u.index();
                    // The link u -> v leaves u in the opposite direction.
                    if self.dead_links[u][dir_index(d.opposite())] || dist[u] != u32::MAX {
                        continue;
                    }
                    dist[u] = dist[v] + 1;
                    q.push_back(u);
                }
            }
            for src in 0..n {
                if src == dst {
                    self.routes[src * n + dst] = Port::Local.index() as u8;
                    continue;
                }
                if dist[src] == u32::MAX {
                    continue; // Stays UNREACHABLE.
                }
                let mut chosen: Option<Port> = None;
                let xy = self.mesh.route(NodeId(src as u16), NodeId(dst as u16));
                if let Port::Dir(d) = xy {
                    let nb = self
                        .mesh
                        .neighbor(NodeId(src as u16), d)
                        .expect("XY routes along existing links");
                    if !self.dead_links[src][dir_index(d)] && dist[nb.index()] == dist[src] - 1 {
                        chosen = Some(xy);
                    }
                }
                if chosen.is_none() {
                    for d in DIRS {
                        let Some(nb) = self.mesh.neighbor(NodeId(src as u16), d) else {
                            continue;
                        };
                        if !self.dead_links[src][dir_index(d)] && dist[nb.index()] == dist[src] - 1
                        {
                            chosen = Some(Port::Dir(d));
                            break;
                        }
                    }
                }
                self.routes[src * n + dst] = chosen
                    .expect("a reachable node has a live next hop")
                    .index() as u8;
            }
        }
    }

    /// After a routing change, flushes packets the change would tear in
    /// half: any packet with a flit buffered (or in flight toward) a node
    /// whose next hop for that destination changed, and partially streamed
    /// NIC packets at sources whose route changed.
    fn flush_rerouted(&mut self, old_routes: &[u8]) {
        let n = self.mesh.nodes();
        // (packet, destination now unreachable?) for every affected flit.
        let mut doomed: Vec<(u64, bool)> = Vec::new();
        let note = |routes: &[u8], at: usize, flit: &Flit, doomed: &mut Vec<(u64, bool)>| {
            let new = routes[at * n + flit.dst.index()];
            if new != old_routes[at * n + flit.dst.index()] {
                doomed.push((flit.packet.0, new == UNREACHABLE));
            }
        };
        for (node, router) in self.routers.iter().enumerate() {
            for port in &router.inputs {
                for fifo in &port.fifos {
                    for flit in fifo {
                        note(&self.routes, node, flit, &mut doomed);
                    }
                }
            }
        }
        for (node, dirs) in self.links.iter().enumerate() {
            for (di, link) in dirs.iter().enumerate() {
                let Some(nb) = self.mesh.neighbor(NodeId(node as u16), DIRS[di]) else {
                    continue;
                };
                for (_, flit) in link {
                    // The flit will route next at the receiving neighbour.
                    note(&self.routes, nb.index(), flit, &mut doomed);
                }
            }
        }
        for (node, vcs) in self.nic.iter().enumerate() {
            for q in vcs {
                for pkt in q {
                    let Some(first) = pkt.front() else { continue };
                    // A sub-queue whose first flit is no longer the head has
                    // already started streaming; a route change splits it.
                    // Unstarted packets survive any reroute except losing
                    // their destination entirely.
                    let started = !matches!(first.kind, FlitKind::Head(_));
                    if started {
                        note(&self.routes, node, first, &mut doomed);
                    } else if self.routes[node * n + first.dst.index()] == UNREACHABLE {
                        doomed.push((first.packet.0, true));
                    }
                }
            }
        }
        doomed.sort_unstable_by_key(|&(pid, unreachable)| (pid, !unreachable));
        doomed.dedup_by_key(|&mut (pid, _)| pid);
        for (pid, unreachable) in doomed {
            self.purge_packet(pid);
            if unreachable {
                self.stats.dropped_unreachable += 1;
            } else {
                self.stats.dropped_flushed += 1;
            }
        }
    }

    /// Removes every trace of packet `pid` from the network: buffered
    /// flits, wormhole locks it owns, NIC sub-queues, reassembly state and
    /// the in-flight count. Counters are the caller's responsibility.
    fn purge_packet(&mut self, pid: u64) {
        for router in &mut self.routers {
            for port in &mut router.inputs {
                for fifo in &mut port.fifos {
                    fifo.retain(|f| f.packet.0 != pid);
                }
            }
            for port in &mut router.out_lock {
                for lock in port.iter_mut() {
                    if lock.is_some_and(|o| o.packet.0 == pid) {
                        *lock = None;
                    }
                }
            }
        }
        for dirs in &mut self.links {
            for link in dirs.iter_mut() {
                link.retain(|(_, f)| f.packet.0 != pid);
            }
        }
        for vcs in &mut self.nic {
            for q in vcs.iter_mut() {
                q.retain(|pkt| pkt.front().is_some_and(|f| f.packet.0 != pid));
            }
        }
        self.reassembly.remove(&pid);
        self.rx_poisoned.remove(&pid);
        if self.inject_time.remove(&pid).is_some() {
            self.in_flight -= 1;
        }
        self.recount_occupancy();
    }

    /// Rebuilds the active-set occupancy counters and the allocator's flat
    /// shadow state from scratch. Only needed after bulk removals
    /// ([`Noc::purge_packet`]'s retains); the per-flit paths maintain
    /// everything incrementally.
    fn recount_occupancy(&mut self) {
        for n in 0..self.mesh.nodes() {
            self.router_occ[n] = self.routers[n].buffered();
            self.link_occ[n] = self.links[n].iter().map(|l| l.len()).sum();
            self.nic_occ[n] = self.nic[n].iter().map(|q| q.len()).sum();
            self.head_mask[n] = 0;
            for port in 0..PORTS {
                for vc in 0..self.cfg.vcs {
                    let idx = (n * PORTS + port) * self.cfg.vcs + vc;
                    self.fifo_len[idx] = self.routers[n].inputs[port].fifos[vc].len() as u8;
                    self.refresh_head(n, port, vc);
                    self.lock_shadow[idx] =
                        self.routers[n].out_lock[port][vc].map_or(NO_LOCK, |o| o.in_port as u8);
                }
                self.rr_shadow[n * PORTS + port] = self.routers[n].rr[port] as u8;
            }
            for di in 0..4 {
                for vc in 0..self.cfg.vcs {
                    self.link_vc[(n * 4 + di) * self.cfg.vcs + vc] =
                        self.links[n][di].iter().filter(|(_, f)| f.vc == vc).count() as u8;
                }
            }
        }
    }

    /// All packets currently anywhere in the network, deduplicated and
    /// sorted (deterministic).
    fn buffered_packets(&self) -> Vec<u64> {
        let mut pids: Vec<u64> = self
            .routers
            .iter()
            .flat_map(|r| r.inputs.iter())
            .flat_map(|p| p.fifos.iter())
            .flatten()
            .map(|f| f.packet.0)
            .chain(
                self.links
                    .iter()
                    .flatten()
                    .flatten()
                    .map(|(_, f)| f.packet.0),
            )
            .chain(
                self.nic
                    .iter()
                    .flatten()
                    .flatten()
                    .filter_map(|pkt| pkt.front())
                    .map(|f| f.packet.0),
            )
            .collect();
        pids.sort_unstable();
        pids.dedup();
        pids
    }

    /// The no-progress valve: if packets are in flight but nothing has
    /// moved for [`DEADLOCK_WINDOW`] cycles, purge everything buffered.
    /// This converts a (detour-induced) routing deadlock into bounded,
    /// counted packet loss — an injected fault can never hang the NoC.
    fn check_progress_valve(&mut self) {
        if self.in_flight == 0 {
            self.last_progress = self.stats.cycles;
            return;
        }
        if self.stats.cycles - self.last_progress <= DEADLOCK_WINDOW {
            return;
        }
        for pid in self.buffered_packets() {
            self.purge_packet(pid);
            self.stats.dropped_flushed += 1;
        }
        // Anything still "in flight" now has no flits anywhere (should not
        // happen, but the valve must leave the network consistent).
        self.last_progress = self.stats.cycles;
    }

    fn link_is_down(&self, node: usize, di: usize) -> bool {
        self.dead_links[node][di] || self.link_down_until[node][di] > self.now.as_u64()
    }

    /// Advances the network by one cycle.
    pub fn step(&mut self) {
        self.now += 1;
        self.stats.cycles += 1;
        // Chaos first: this cycle's faults land before traffic moves.
        let mut plane = self.fault_plane.take();
        if let Some(p) = plane.as_mut() {
            for ev in p.step(self.now, &self.mesh) {
                self.apply_fault_event(ev);
            }
        }
        self.phase_link_arrivals();
        self.phase_allocate();
        let moves = std::mem::take(&mut self.moves_buf);
        self.phase_apply(&moves, plane.as_mut());
        self.moves_buf = moves;
        self.phase_inject();
        self.fault_plane = plane;
        self.check_progress_valve();
    }

    /// Advances the network by one cycle.
    #[deprecated(note = "use `Noc::step` (or drive via `Schedulable::wake`)")]
    pub fn tick(&mut self) {
        self.step();
    }

    /// Skips ahead through provably idle cycles, up to and including
    /// `target`. While no packet is in flight every phase of
    /// [`Noc::step`] is a no-op, so the clock and cycle counter can jump
    /// in one go; an installed chaos plane is still stepped cycle-by-cycle
    /// (its RNG draws are part of the deterministic timeline) and its fault
    /// events land exactly when they would under dense ticking. Returns
    /// the cycle actually reached — always `target` unless traffic appears
    /// (it cannot, mid-skip, but the guard keeps the contract obvious).
    pub fn skip_idle_to(&mut self, target: Cycle) -> Cycle {
        if self.in_flight > 0 {
            return self.now;
        }
        match self.fault_plane.take() {
            None => {
                if target > self.now {
                    self.stats.cycles += target - self.now;
                    self.now = target;
                    self.last_progress = self.stats.cycles;
                }
            }
            Some(mut plane) => {
                while self.now < target {
                    self.now += 1;
                    self.stats.cycles += 1;
                    for ev in plane.step(self.now, &self.mesh) {
                        self.apply_fault_event(ev);
                    }
                    self.last_progress = self.stats.cycles;
                }
                self.fault_plane = Some(plane);
            }
        }
        self.now
    }

    /// The next cycle at which stepping this NoC could change state, or
    /// `None` when it is empty (nothing buffered, nothing in flight). An
    /// empty NoC only becomes busy through [`Noc::try_inject`] — message
    /// arrival, in scheduling terms.
    pub fn next_activity(&self) -> Option<Cycle> {
        if self.in_flight > 0 {
            Some(self.now + 1)
        } else {
            None
        }
    }

    /// Runs until no messages are in flight or `max_cycles` elapse; returns
    /// `true` on quiescence.
    pub fn run_until_quiescent(&mut self, max_cycles: u64) -> bool {
        for _ in 0..max_cycles {
            if self.in_flight == 0 {
                return true;
            }
            self.step();
        }
        self.in_flight == 0
    }

    fn phase_link_arrivals(&mut self) {
        for node in 0..self.mesh.nodes() {
            if self.active_set && self.link_occ[node] == 0 {
                continue;
            }
            for (di, &in_port) in OPP_PORT.iter().enumerate() {
                let nb = self.nbr[node * 4 + di] as usize;
                if nb == u16::MAX as usize {
                    continue;
                }
                while let Some(&(at, _)) = self.links[node][di].front() {
                    if at > self.now {
                        break;
                    }
                    let (_, flit) = self.links[node][di].pop_front().expect("peeked");
                    self.link_occ[node] -= 1;
                    let vc = flit.vc;
                    self.link_vc[(node * 4 + di) * self.cfg.vcs + vc] -= 1;
                    let fifo = &mut self.routers[nb].inputs[in_port].fifos[vc];
                    debug_assert!(
                        fifo.len() < self.cfg.vc_buffer,
                        "credit accounting must guarantee buffer space"
                    );
                    let was_empty = fifo.is_empty();
                    fifo.push_back(flit);
                    self.fifo_len[(nb * PORTS + in_port) * self.cfg.vcs + vc] += 1;
                    if was_empty {
                        self.refresh_head(nb, in_port, vc);
                    }
                    self.router_occ[nb] += 1;
                    self.last_progress = self.stats.cycles;
                }
            }
        }
    }

    /// Switch allocation: per output port, strict priority across VCs
    /// (lower class first), round-robin across input ports, wormhole lock
    /// and credit checks. At most one flit per output port per cycle.
    ///
    /// Candidate-driven: instead of scanning every `(out, vc, in)` triple,
    /// iterate the non-empty FIFO heads (the `head_mask` bitset), bucket
    /// them by the output port their destination routes to, and arbitrate
    /// only the demanded `(out, vc)` pairs. An `(out, vc)` with no buffered
    /// head routed to it can never produce a move, and the dense scan's
    /// skipped checks (credit, lock) have no side effects — so this visits
    /// exactly the triples that matter, in the same deterministic order.
    /// Fills `self.moves_buf`.
    fn phase_allocate(&mut self) {
        let mut moves = std::mem::take(&mut self.moves_buf);
        moves.clear();
        let n = self.mesh.nodes();
        let vcs = self.cfg.vcs;
        let vc_buffer = self.cfg.vc_buffer as u32;
        let now = self.now.as_u64();
        // `cand` entries are only read for `(out, vc)` pairs whose `demand`
        // bit was set this node, and setting that bit overwrites the entry —
        // so stale values from earlier nodes are never observed and the
        // buckets need no per-node clear.
        let mut cand = [[0u8; MAX_VCS]; PORTS];
        for node in 0..n {
            // A router with no buffered flits cannot source a move: every
            // move pops an input-FIFO head. Skipping it leaves `rr` and
            // locks untouched, which is what the dense scan does too.
            // (`head_mask == 0` iff every input FIFO is empty.)
            let mask = self.head_mask[node];
            if mask == 0 {
                continue;
            }
            if self.stall_until[node] > now {
                continue;
            }
            let hbase = node * PORTS * vcs;
            let rbase = node * n;
            // Fast path: one buffered head means at most one candidate move,
            // so the arbitration below (bucket, vc priority, round-robin)
            // degenerates to a single eligibility check.
            if mask & (mask - 1) == 0 {
                let bit = mask.trailing_zeros() as usize;
                let (port, vc) = (bit >> 3, bit & 7);
                let head = self.heads[hbase + port * vcs + vc];
                let out = self.routes[rbase + (head & H_DST) as usize];
                if out == UNREACHABLE {
                    continue;
                }
                let out_port = out as usize;
                if out_port != 0 {
                    let di = out_port - 1;
                    let nb = self.nbr[node * 4 + di] as usize;
                    let occupied = self.fifo_len[(nb * PORTS + OPP_PORT[di]) * vcs + vc] as u32;
                    let inflight = self.link_vc[(node * 4 + di) * vcs + vc] as u32;
                    if occupied + inflight >= vc_buffer {
                        continue;
                    }
                }
                let lock = self.lock_shadow[hbase + out_port * vcs + vc];
                let eligible = if lock == NO_LOCK {
                    head & H_HEADFLIT != 0
                } else {
                    lock as usize == port
                };
                if eligible {
                    moves.push(Move {
                        node,
                        in_port: port,
                        vc,
                        out_port,
                    });
                }
                continue;
            }
            // Bucket buffered heads by demanded output port. Routes only
            // ever point at existing links (XY and the BFS rebuild both
            // route over live topology), so no edge-existence check is
            // needed; `UNREACHABLE` heads match no output, as in the dense
            // scan where no `out_port` equals 255.
            let mut demand = [0u8; PORTS];
            let mut m = mask;
            while m != 0 {
                let bit = m.trailing_zeros() as usize;
                m &= m - 1;
                let (port, vc) = (bit >> 3, bit & 7);
                let dst = (self.heads[hbase + port * vcs + vc] & H_DST) as usize;
                let out = self.routes[rbase + dst];
                if out == UNREACHABLE {
                    continue;
                }
                let out = out as usize;
                let vbit = 1u8 << vc;
                if demand[out] & vbit == 0 {
                    demand[out] |= vbit;
                    cand[out][vc] = 1 << port;
                } else {
                    cand[out][vc] |= 1 << port;
                }
            }
            for (out_port, &dvc) in demand.iter().enumerate() {
                if dvc == 0 {
                    continue;
                }
                let rr = self.rr_shadow[node * PORTS + out_port] as usize;
                #[allow(clippy::needless_range_loop)] // `vc` indexes heads/fifo_len/link_vc too
                'found: for vc in 0..vcs {
                    if dvc & (1 << vc) == 0 {
                        continue;
                    }
                    // Credit check once per (out, vc).
                    if out_port != 0 {
                        let di = out_port - 1;
                        let nb = self.nbr[node * 4 + di] as usize;
                        let occupied = self.fifo_len[(nb * PORTS + OPP_PORT[di]) * vcs + vc] as u32;
                        let inflight = self.link_vc[(node * 4 + di) * vcs + vc] as u32;
                        if occupied + inflight >= vc_buffer {
                            continue;
                        }
                    }
                    let lock = self.lock_shadow[hbase + out_port * vcs + vc];
                    let cbits = cand[out_port][vc];
                    for k in 1..=PORTS {
                        let in_port = (rr + k) % PORTS;
                        if cbits & (1 << in_port) == 0 {
                            continue;
                        }
                        let eligible = if lock == NO_LOCK {
                            self.heads[hbase + in_port * vcs + vc] & H_HEADFLIT != 0
                        } else {
                            lock as usize == in_port
                        };
                        if !eligible {
                            continue;
                        }
                        moves.push(Move {
                            node,
                            in_port,
                            vc,
                            out_port,
                        });
                        break 'found;
                    }
                }
            }
        }
        self.moves_buf = moves;
    }

    fn phase_apply(&mut self, moves: &[Move], mut plane: Option<&mut FaultPlane>) {
        if !moves.is_empty() {
            self.last_progress = self.stats.cycles;
        }
        for m in moves {
            let mut flit = self.routers[m.node].inputs[m.in_port].fifos[m.vc]
                .pop_front()
                .expect("move references a buffered flit");
            self.router_occ[m.node] -= 1;
            self.fifo_len[(m.node * PORTS + m.in_port) * self.cfg.vcs + m.vc] -= 1;
            self.refresh_head(m.node, m.in_port, m.vc);
            // Wormhole lock maintenance.
            let lock = &mut self.routers[m.node].out_lock[m.out_port][m.vc];
            let shadow = &mut self.lock_shadow[(m.node * PORTS + m.out_port) * self.cfg.vcs + m.vc];
            if flit.is_tail {
                *lock = None;
                *shadow = NO_LOCK;
            } else if matches!(flit.kind, FlitKind::Head(_)) {
                *lock = Some(LockOwner {
                    in_port: m.in_port,
                    packet: flit.packet,
                });
                *shadow = m.in_port as u8;
            }
            self.routers[m.node].rr[m.out_port] = m.in_port;
            self.rr_shadow[m.node * PORTS + m.out_port] = m.in_port as u8;

            if m.out_port == Port::Local.index() {
                self.eject(m.node, flit);
            } else {
                let di = m.out_port - 1;
                // One corruption roll per link traversal (fixed RNG
                // consumption), plus deterministic corruption on downed
                // links. `corrupt` is idempotent, so a doubly-faulted hop
                // is still detected.
                let rolled = plane.as_deref_mut().is_some_and(|p| p.corrupt_roll());
                if rolled || self.link_is_down(m.node, di) {
                    flit.corrupt();
                }
                let arrive = self.now + 1 + self.cfg.hop_latency;
                self.link_vc[(m.node * 4 + di) * self.cfg.vcs + m.vc] += 1;
                self.links[m.node][di].push_back((arrive, flit));
                self.link_occ[m.node] += 1;
                self.link_flits[m.node][di] += 1;
                self.stats.flit_hops += 1;
            }
        }
    }

    fn eject(&mut self, node: usize, flit: Flit) {
        self.stats.flits_ejected += 1;
        let intact = flit.checksum_ok();
        if !intact {
            self.stats.corrupted_flits += 1;
        }
        let is_tail = flit.is_tail;
        let pid = flit.packet;
        // A single damaged flit poisons the whole packet: nothing of it is
        // delivered, and the drop is accounted once the tail arrives.
        let poisoned = !intact || self.rx_poisoned.contains(&pid.0);
        match flit.kind {
            FlitKind::Head(msg) => {
                debug_assert_eq!(msg.dst.index(), node, "misrouted flit");
                match (is_tail, poisoned) {
                    (true, false) => self.deliver(node, pid, *msg),
                    (true, true) => self.drop_at_rx(pid),
                    (false, false) => {
                        self.reassembly.insert(pid.0, msg);
                    }
                    (false, true) => {
                        self.rx_poisoned.insert(pid.0);
                    }
                }
            }
            FlitKind::Body => {
                if poisoned {
                    self.reassembly.remove(&pid.0);
                    if is_tail {
                        self.rx_poisoned.remove(&pid.0);
                        self.drop_at_rx(pid);
                    } else {
                        self.rx_poisoned.insert(pid.0);
                    }
                } else if is_tail {
                    let msg = self
                        .reassembly
                        .remove(&pid.0)
                        .expect("head always precedes tail on a VC");
                    self.deliver(node, pid, *msg);
                }
            }
        }
    }

    /// Accounts a packet dropped at the destination for corruption.
    fn drop_at_rx(&mut self, pid: PacketId) {
        self.inject_time
            .remove(&pid.0)
            .expect("every packet has an inject timestamp");
        self.in_flight -= 1;
        self.stats.dropped_corrupt += 1;
    }

    fn deliver(&mut self, node: usize, pid: PacketId, msg: Message) {
        let injected_at = self
            .inject_time
            .remove(&pid.0)
            .expect("every packet has an inject timestamp");
        let d = Delivered {
            msg,
            injected_at,
            delivered_at: self.now,
        };
        self.stats.latency.record(d.latency());
        self.stats.delivered += 1;
        self.in_flight -= 1;
        self.rx_pending += 1;
        self.eject_q[node].push_back(d);
    }

    /// NIC: stream queued flits into the router's local input port, one flit
    /// per node per cycle, highest-priority class first.
    fn phase_inject(&mut self) {
        let local = Port::Local.index();
        for node in 0..self.mesh.nodes() {
            if self.active_set && self.nic_occ[node] == 0 {
                continue;
            }
            for vc in 0..self.cfg.vcs {
                let len_idx = (node * PORTS + local) * self.cfg.vcs + vc;
                if self.fifo_len[len_idx] as usize >= self.cfg.vc_buffer {
                    continue;
                }
                let Some(pkt) = self.nic[node][vc].front_mut() else {
                    continue;
                };
                let flit = pkt.pop_front().expect("queued packets are never empty");
                if pkt.is_empty() {
                    self.nic[node][vc].pop_front();
                    self.nic_occ[node] -= 1;
                }
                let fifo = &mut self.routers[node].inputs[local].fifos[vc];
                let was_empty = fifo.is_empty();
                fifo.push_back(flit);
                self.fifo_len[len_idx] += 1;
                if was_empty {
                    self.refresh_head(node, local, vc);
                }
                self.router_occ[node] += 1;
                self.last_progress = self.stats.cycles;
                break; // One flit per node per cycle.
            }
        }
    }
}

/// The NoC under the unified wakeup contract: one `wake` advances the
/// network one cycle and reports when it next needs to run. The NoC keeps
/// its own clock (`Noc::now`); drivers are expected to call `wake` once per
/// elapsed simulated cycle while the network is busy, and may park it on
/// the returned `OnMessage` when it drains (re-arming on `try_inject`).
impl Schedulable for Noc {
    fn wake(&mut self, _now: Cycle, _ctx: &mut ()) -> Wakeup {
        self.step();
        match self.next_activity() {
            Some(t) => Wakeup::AtOrMessage(t),
            None => Wakeup::OnMessage,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::TrafficClass;

    fn msg(src: u16, dst: u16, bytes: usize) -> Message {
        Message::new(
            NodeId(src),
            NodeId(dst),
            TrafficClass::Request,
            vec![0xAB; bytes],
        )
    }

    #[test]
    fn single_message_crosses_mesh() {
        let mut noc = Noc::new(NocConfig::soft(4, 4));
        noc.try_inject(NodeId(0), msg(0, 15, 32)).expect("space");
        assert!(noc.run_until_quiescent(10_000));
        let d = noc.poll_eject(NodeId(15)).expect("delivered");
        assert_eq!(d.msg.src, NodeId(0));
        assert_eq!(d.msg.payload.len(), 32);
        assert!(d.latency() > 0);
    }

    #[test]
    fn loopback_delivery() {
        let mut noc = Noc::new(NocConfig::soft(2, 2));
        noc.try_inject(NodeId(3), msg(3, 3, 8)).expect("space");
        assert!(noc.run_until_quiescent(1_000));
        assert!(noc.poll_eject(NodeId(3)).is_some());
    }

    #[test]
    fn src_forgery_rejected() {
        let mut noc = Noc::new(NocConfig::soft(2, 2));
        assert_eq!(
            noc.try_inject(NodeId(0), msg(1, 2, 8)),
            Err(InjectError::SrcMismatch)
        );
    }

    #[test]
    fn bad_destination_rejected() {
        let mut noc = Noc::new(NocConfig::soft(2, 2));
        assert_eq!(
            noc.try_inject(NodeId(0), msg(0, 99, 8)),
            Err(InjectError::BadDestination)
        );
    }

    #[test]
    fn queue_fills_and_backpressures() {
        let mut noc = Noc::new(NocConfig::soft(2, 2));
        let q = noc.config().inject_queue;
        for _ in 0..q {
            noc.try_inject(NodeId(0), msg(0, 3, 8)).expect("space");
        }
        assert_eq!(
            noc.try_inject(NodeId(0), msg(0, 3, 8)),
            Err(InjectError::QueueFull)
        );
        assert_eq!(noc.stats().rejected, 1);
    }

    #[test]
    fn latency_grows_with_distance() {
        let cfg = NocConfig::soft(8, 1);
        let mut near = Noc::new(cfg);
        near.try_inject(NodeId(0), msg(0, 1, 8)).expect("space");
        near.run_until_quiescent(1_000);
        let near_lat = near.poll_eject(NodeId(1)).expect("delivered").latency();

        let mut far = Noc::new(cfg);
        far.try_inject(NodeId(0), msg(0, 7, 8)).expect("space");
        far.run_until_quiescent(1_000);
        let far_lat = far.poll_eject(NodeId(7)).expect("delivered").latency();
        assert!(far_lat > near_lat, "{far_lat} !> {near_lat}");
    }

    #[test]
    fn large_message_latency_scales_with_flits() {
        let cfg = NocConfig::soft(4, 4);
        let mut a = Noc::new(cfg);
        a.try_inject(NodeId(0), msg(0, 15, 16)).expect("space");
        a.run_until_quiescent(10_000);
        let small = a.poll_eject(NodeId(15)).expect("delivered").latency();

        let mut b = Noc::new(cfg);
        b.try_inject(NodeId(0), msg(0, 15, 1024)).expect("space");
        b.run_until_quiescent(10_000);
        let big = b.poll_eject(NodeId(15)).expect("delivered").latency();
        // 1024 B at 16 B/flit is ~64 more flits of serialisation.
        assert!(big >= small + 60, "big={big} small={small}");
    }

    #[test]
    fn many_messages_all_deliver_exactly_once() {
        let mut noc = Noc::new(NocConfig::soft(4, 4));
        let n = noc.mesh().nodes() as u16;
        let mut sent = 0u64;
        // Every node sends to every other node, paced by queue capacity.
        for round in 0..4 {
            for s in 0..n {
                let d = (s + 1 + round) % n;
                if noc.try_inject(NodeId(s), msg(s, d, 40)).is_ok() {
                    sent += 1;
                }
            }
            for _ in 0..50 {
                noc.step();
            }
        }
        assert!(noc.run_until_quiescent(100_000));
        let total: u64 = (0..n)
            .map(|i| noc.drain_eject(NodeId(i)).len() as u64)
            .sum();
        assert_eq!(total, sent);
        assert_eq!(noc.stats().delivered, sent);
    }

    #[test]
    fn per_source_fifo_order_within_class() {
        let mut noc = Noc::new(NocConfig::soft(4, 1));
        // Tag messages with a sequence number in the payload.
        for i in 0..6u8 {
            let mut m = msg(0, 3, 24);
            m.payload.make_mut()[0] = i;
            m.tag = i as u64;
            noc.try_inject(NodeId(0), m).expect("space");
        }
        assert!(noc.run_until_quiescent(10_000));
        let got = noc.drain_eject(NodeId(3));
        let tags: Vec<u64> = got.iter().map(|d| d.msg.tag).collect();
        assert_eq!(tags, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn control_class_beats_bulk_under_load() {
        let mut noc = Noc::new(NocConfig::soft(8, 1));
        // Saturate the path 0 -> 7 with bulk traffic.
        for _ in 0..8 {
            let mut m = msg(0, 7, 512);
            m.class = TrafficClass::Bulk;
            let _ = noc.try_inject(NodeId(0), m);
        }
        // Let bulk get going.
        for _ in 0..20 {
            noc.step();
        }
        // Now a control message on the same path.
        let mut c = msg(0, 7, 16);
        c.class = TrafficClass::Control;
        c.tag = 777;
        noc.try_inject(NodeId(0), c).expect("space");
        assert!(noc.run_until_quiescent(100_000));
        let got = noc.drain_eject(NodeId(7));
        let ctrl = got.iter().find(|d| d.msg.tag == 777).expect("delivered");
        let bulk_max = got
            .iter()
            .filter(|d| d.msg.class == TrafficClass::Bulk)
            .map(|d| d.delivered_at)
            .max()
            .expect("bulk delivered");
        // Control overtakes at least the tail of the bulk burst.
        assert!(ctrl.delivered_at < bulk_max);
    }

    #[test]
    fn hardened_noc_is_faster() {
        let mut soft = Noc::new(NocConfig::soft(8, 8));
        soft.try_inject(NodeId(0), msg(0, 63, 256)).expect("space");
        soft.run_until_quiescent(100_000);
        let s = soft.poll_eject(NodeId(63)).expect("delivered").latency();

        let mut hard = Noc::new(NocConfig::hardened(8, 8));
        hard.try_inject(NodeId(0), msg(0, 63, 256)).expect("space");
        hard.run_until_quiescent(100_000);
        let h = hard.poll_eject(NodeId(63)).expect("delivered").latency();
        assert!(h < s, "hardened {h} !< soft {s}");
    }

    #[test]
    fn stats_counters_consistent() {
        let mut noc = Noc::new(NocConfig::soft(3, 3));
        for s in 0..9u16 {
            let _ = noc.try_inject(NodeId(s), msg(s, (s + 4) % 9, 64));
        }
        assert!(noc.run_until_quiescent(50_000));
        let st = noc.stats();
        assert_eq!(st.injected, st.delivered);
        assert_eq!(st.latency.count(), st.delivered);
        assert!(st.flits_ejected >= st.delivered);
        assert_eq!(noc.pending(), 0);
    }
}

#[cfg(test)]
mod fault_tests {
    use super::*;
    use crate::fault::{FaultPlane, FaultPlaneConfig};
    use crate::packet::TrafficClass;

    fn msg(src: u16, dst: u16, bytes: usize) -> Message {
        Message::new(
            NodeId(src),
            NodeId(dst),
            TrafficClass::Request,
            vec![0xAB; bytes],
        )
    }

    #[test]
    fn transient_outage_drops_and_counts_instead_of_delivering() {
        let mut noc = Noc::new(NocConfig::soft(4, 1));
        // Take the 0->1 link down for longer than the whole transfer.
        noc.fail_link_for(NodeId(0), Direction::East, 10_000);
        noc.try_inject(NodeId(0), msg(0, 3, 64)).expect("space");
        assert!(noc.run_until_quiescent(100_000));
        assert!(noc.poll_eject(NodeId(3)).is_none(), "must not deliver");
        let st = noc.stats();
        assert_eq!(st.dropped_corrupt, 1);
        assert!(st.corrupted_flits > 0);
        assert_eq!(st.delivered, 0);
        assert_eq!(noc.pending(), 0);
    }

    #[test]
    fn outage_heals_and_traffic_resumes() {
        let mut noc = Noc::new(NocConfig::soft(4, 1));
        noc.fail_link_for(NodeId(0), Direction::East, 50);
        for _ in 0..60 {
            noc.step();
        }
        noc.try_inject(NodeId(0), msg(0, 3, 64)).expect("space");
        assert!(noc.run_until_quiescent(100_000));
        assert!(noc.poll_eject(NodeId(3)).is_some(), "healed link delivers");
        assert_eq!(noc.stats().dropped(), 0);
    }

    #[test]
    fn permanent_kill_detours_around_the_dead_link() {
        // 4x4 mesh: kill 0->East; XY route 0->3 would use it. A detour
        // through row 1 must deliver intact (checksum passes: the packet
        // never touches the dead link).
        let mut noc = Noc::new(NocConfig::soft(4, 4));
        assert!(noc.kill_link(NodeId(0), Direction::East));
        assert!(noc.reachable(NodeId(0), NodeId(3)));
        noc.try_inject(NodeId(0), msg(0, 3, 64)).expect("space");
        assert!(noc.run_until_quiescent(100_000));
        let d = noc.poll_eject(NodeId(3)).expect("detoured delivery");
        assert_eq!(d.msg.payload.len(), 64);
        assert_eq!(noc.stats().dropped(), 0);
    }

    #[test]
    fn cut_off_node_reports_unreachable() {
        // 2x1 mesh: killing both directions of the only link partitions it.
        let mut noc = Noc::new(NocConfig::soft(2, 1));
        assert!(noc.kill_link(NodeId(0), Direction::East));
        assert!(noc.kill_link(NodeId(1), Direction::West));
        assert!(!noc.reachable(NodeId(0), NodeId(1)));
        assert_eq!(
            noc.try_inject(NodeId(0), msg(0, 1, 8)),
            Err(InjectError::Unreachable)
        );
        // Loopback still works.
        assert!(noc.reachable(NodeId(0), NodeId(0)));
        noc.try_inject(NodeId(0), msg(0, 0, 8)).expect("loopback");
        assert!(noc.run_until_quiescent(1_000));
    }

    #[test]
    fn kill_mid_flight_never_hangs() {
        let mut noc = Noc::new(NocConfig::soft(4, 4));
        for s in 0..16u16 {
            let _ = noc.try_inject(NodeId(s), msg(s, (s + 7) % 16, 400));
        }
        for _ in 0..10 {
            noc.step();
        }
        // Sever several links while packets are streaming.
        noc.kill_link(NodeId(1), Direction::East);
        noc.kill_link(NodeId(2), Direction::West);
        noc.kill_link(NodeId(5), Direction::North);
        assert!(
            noc.run_until_quiescent(1_000_000),
            "network must always drain"
        );
        let st = noc.stats();
        assert_eq!(st.delivered + st.dropped(), st.injected);
    }

    #[test]
    fn router_stall_delays_but_delivers() {
        let mut base = Noc::new(NocConfig::soft(4, 1));
        base.try_inject(NodeId(0), msg(0, 3, 64)).expect("space");
        base.run_until_quiescent(10_000);
        let unstalled = base.poll_eject(NodeId(3)).expect("delivered").latency();

        let mut noc = Noc::new(NocConfig::soft(4, 1));
        noc.stall_router(NodeId(1), 300);
        noc.try_inject(NodeId(0), msg(0, 3, 64)).expect("space");
        assert!(noc.run_until_quiescent(100_000));
        let stalled = noc.poll_eject(NodeId(3)).expect("delivered").latency();
        assert!(
            stalled >= unstalled + 250,
            "stalled={stalled} unstalled={unstalled}"
        );
        assert_eq!(noc.stats().dropped(), 0);
    }

    #[test]
    fn chaos_plane_runs_are_deterministic() {
        let run = |seed: u64| {
            let mut noc = Noc::new(NocConfig::soft(4, 4));
            noc.install_fault_plane(FaultPlane::new(FaultPlaneConfig::with_rate(seed, 0.02)));
            let mut delivered_tags = Vec::new();
            for round in 0..400u64 {
                for s in 0..16u16 {
                    let mut m = msg(s, ((s as u64 + round) % 16) as u16, 48);
                    m.tag = round << 16 | s as u64;
                    let _ = noc.try_inject(NodeId(s), m);
                }
                for _ in 0..8 {
                    noc.step();
                }
                for n in 0..16u16 {
                    for d in noc.drain_eject(NodeId(n)) {
                        delivered_tags.push(d.msg.tag);
                    }
                }
            }
            assert!(noc.run_until_quiescent(2_000_000), "chaos must not hang");
            for n in 0..16u16 {
                for d in noc.drain_eject(NodeId(n)) {
                    delivered_tags.push(d.msg.tag);
                }
            }
            let st = noc.stats().clone();
            assert_eq!(st.delivered + st.dropped(), st.injected);
            (
                delivered_tags,
                st.delivered,
                st.dropped(),
                st.corrupted_flits,
            )
        };
        let a = run(11);
        let b = run(11);
        assert_eq!(a, b, "same seed, same chaos run");
        let c = run(12);
        assert_ne!(a.0, c.0, "different seed, different run");
        assert!(a.2 > 0, "a 2% plane must actually drop something");
        assert!(a.1 > 0, "most traffic still gets through");
    }

    #[test]
    fn active_set_is_bit_identical_to_dense_scan() {
        // Same chaotic workload with the active-set optimisation on and
        // off: the delivered tag stream, delivery timestamps and every
        // counter must agree exactly (the skipped nodes had no work).
        let run = |active: bool| {
            let mut noc = Noc::new(NocConfig::soft(4, 4));
            noc.set_active_set(active);
            noc.install_fault_plane(FaultPlane::new(FaultPlaneConfig::with_rate(77, 0.02)));
            let mut delivered = Vec::new();
            for round in 0..300u64 {
                for s in 0..16u16 {
                    // Leave most nodes idle most rounds so skipping matters.
                    if (round + s as u64).is_multiple_of(5) {
                        let mut m = msg(s, ((s as u64 + round) % 16) as u16, 48);
                        m.tag = round << 16 | s as u64;
                        let _ = noc.try_inject(NodeId(s), m);
                    }
                }
                for _ in 0..8 {
                    noc.step();
                }
                for n in 0..16u16 {
                    for d in noc.drain_eject(NodeId(n)) {
                        delivered.push((d.msg.tag, d.delivered_at.as_u64()));
                    }
                }
            }
            assert!(noc.run_until_quiescent(2_000_000));
            for n in 0..16u16 {
                for d in noc.drain_eject(NodeId(n)) {
                    delivered.push((d.msg.tag, d.delivered_at.as_u64()));
                }
            }
            let st = noc.stats().clone();
            (
                delivered,
                st.delivered,
                st.dropped(),
                st.corrupted_flits,
                st.flit_hops,
                st.latency.p50(),
                st.latency.p99(),
            )
        };
        let on = run(true);
        let off = run(false);
        assert_eq!(on, off, "active-set scheduling must not change behaviour");
    }

    #[test]
    fn active_set_survives_purges_and_reroutes() {
        // purge_packet rebuilds the occupancy counters; a kill mid-flight
        // exercises that path. The run must still drain and stay accounted.
        let run = |active: bool| {
            let mut noc = Noc::new(NocConfig::soft(4, 4));
            noc.set_active_set(active);
            for s in 0..16u16 {
                let _ = noc.try_inject(NodeId(s), msg(s, (s + 7) % 16, 400));
            }
            for _ in 0..10 {
                noc.step();
            }
            noc.kill_link(NodeId(1), Direction::East);
            noc.kill_link(NodeId(5), Direction::North);
            assert!(noc.run_until_quiescent(1_000_000));
            let st = noc.stats().clone();
            assert_eq!(st.delivered + st.dropped(), st.injected);
            let tags: Vec<u64> = (0..16u16)
                .flat_map(|n| noc.drain_eject(NodeId(n)))
                .map(|d| d.msg.tag)
                .collect();
            (tags, st.delivered, st.dropped(), st.flit_hops)
        };
        assert_eq!(run(true), run(false));
    }
}

#[cfg(test)]
mod link_stats_tests {
    use super::*;
    use crate::packet::TrafficClass;

    #[test]
    fn link_utilization_sums_to_flit_hops() {
        let mut noc = Noc::new(NocConfig::soft(4, 4));
        for s in 0..16u16 {
            let d = (s + 5) % 16;
            if s == d {
                continue;
            }
            let _ = noc.try_inject(
                NodeId(s),
                Message::new(NodeId(s), NodeId(d), TrafficClass::Request, vec![0; 100]),
            );
        }
        assert!(noc.run_until_quiescent(100_000));
        let cycles = noc.stats().cycles as f64;
        let total: f64 = noc
            .link_utilization()
            .iter()
            .map(|(_, _, u)| u * cycles)
            .sum();
        assert_eq!(total.round() as u64, noc.stats().flit_hops);
    }

    #[test]
    fn hot_path_shows_up_in_utilization() {
        let mut noc = Noc::new(NocConfig::soft(4, 1));
        // Stream 0 -> 3 along the row.
        for _ in 0..8 {
            let _ = noc.try_inject(
                NodeId(0),
                Message::new(NodeId(0), NodeId(3), TrafficClass::Bulk, vec![0; 512]),
            );
        }
        assert!(noc.run_until_quiescent(100_000));
        let hot = noc.link_utilization();
        // The hottest links are the eastward hops of the stream.
        let (node, dir, util) = hot[0];
        assert_eq!(dir, Direction::East);
        assert!(node == NodeId(0) || node == NodeId(1) || node == NodeId(2));
        assert!(util > 0.1, "{util}");
        // Edge links (mesh boundary) never appear.
        assert!(hot
            .iter()
            .all(|(n, d, _)| noc.mesh().neighbor(*n, *d).is_some()));
    }

    #[test]
    fn congestion_render_has_grid_shape() {
        let mut noc = Noc::new(NocConfig::soft(3, 2));
        let _ = noc.try_inject(
            NodeId(0),
            Message::new(NodeId(0), NodeId(5), TrafficClass::Request, vec![0; 64]),
        );
        noc.run_until_quiescent(10_000);
        let s = noc.render_congestion();
        assert_eq!(s.lines().count(), 2);
        assert!(s.contains('%'));
    }
}
