//! NoC configuration.

/// Parameters of the mesh NoC.
#[derive(Debug, Clone, Copy)]
pub struct NocConfig {
    /// Mesh columns.
    pub width: u8,
    /// Mesh rows.
    pub height: u8,
    /// Virtual channels per link. Must be at least
    /// [`crate::TrafficClass::ALL`]`.len()` (3) because traffic classes map
    /// onto VCs.
    pub vcs: usize,
    /// Input-buffer depth per VC, in flits.
    pub vc_buffer: usize,
    /// Data bytes carried per flit (link width).
    pub flit_bytes: usize,
    /// Packet header size in bytes (routing + kind + tag + badge).
    pub header_bytes: usize,
    /// Extra pipeline cycles per hop beyond the buffer write (soft routers
    /// typically add 1–2; a hardened NoC hides them).
    pub hop_latency: u64,
    /// Injection-queue depth at each local port, in messages.
    pub inject_queue: usize,
}

impl Default for NocConfig {
    fn default() -> Self {
        // A conservative soft (fabric-logic) NoC on a 250 MHz clock.
        NocConfig {
            width: 4,
            height: 4,
            vcs: 3,
            vc_buffer: 4,
            flit_bytes: 16,
            header_bytes: 16,
            hop_latency: 1,
            inject_queue: 8,
        }
    }
}

impl NocConfig {
    /// A soft NoC with the given geometry and defaults elsewhere.
    pub fn soft(width: u8, height: u8) -> NocConfig {
        NocConfig {
            width,
            height,
            ..NocConfig::default()
        }
    }

    /// A hardened NoC (Versal/Agilex class): 128-bit-per-cycle equivalent
    /// links modelled as wider flits, deeper buffers, and no per-hop bubble.
    pub fn hardened(width: u8, height: u8) -> NocConfig {
        NocConfig {
            width,
            height,
            vcs: 3,
            vc_buffer: 8,
            flit_bytes: 32,
            header_bytes: 16,
            hop_latency: 0,
            inject_queue: 16,
        }
    }

    /// Validates internal consistency.
    ///
    /// # Panics
    ///
    /// Panics on zero dimensions, fewer VCs than traffic classes, zero
    /// buffers, or zero-size flits.
    pub fn validate(&self) {
        assert!(self.width > 0 && self.height > 0, "empty mesh");
        assert!(
            self.vcs >= crate::packet::TrafficClass::ALL.len(),
            "need one VC per traffic class"
        );
        assert!(self.vc_buffer > 0, "VC buffers must hold at least one flit");
        assert!(self.flit_bytes > 0, "flits must carry data");
        assert!(self.inject_queue > 0, "injection queue must exist");
    }

    /// Number of nodes.
    pub fn nodes(&self) -> usize {
        self.width as usize * self.height as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_validate() {
        NocConfig::default().validate();
        NocConfig::soft(8, 8).validate();
        NocConfig::hardened(6, 5).validate();
    }

    #[test]
    fn hardened_is_wider_and_faster() {
        let s = NocConfig::soft(4, 4);
        let h = NocConfig::hardened(4, 4);
        assert!(h.flit_bytes > s.flit_bytes);
        assert!(h.hop_latency < s.hop_latency);
    }

    #[test]
    #[should_panic(expected = "VC")]
    fn too_few_vcs_rejected() {
        let c = NocConfig {
            vcs: 2,
            ..NocConfig::default()
        };
        c.validate();
    }
}
