//! Per-node router state: input-buffered virtual channels, wormhole locks
//! and round-robin arbitration pointers.
//!
//! The switching logic itself lives in [`crate::network`], which has the
//! global view needed for credit computation; this module owns the state one
//! router instance carries.

use crate::packet::Flit;
use std::collections::VecDeque;

/// Number of ports on a mesh router (4 links + local).
pub const PORTS: usize = 5;

/// The input side of one port: a FIFO per virtual channel.
#[derive(Debug, Clone, Default)]
pub struct InputPort {
    /// `fifos[vc]` buffers flits awaiting switch allocation.
    pub fifos: Vec<VecDeque<Flit>>,
}

impl InputPort {
    fn new(vcs: usize) -> InputPort {
        InputPort {
            fifos: (0..vcs).map(|_| VecDeque::new()).collect(),
        }
    }

    /// Occupancy of one VC FIFO.
    pub fn occupancy(&self, vc: usize) -> usize {
        self.fifos[vc].len()
    }
}

/// Who currently owns an output VC (wormhole: a packet holds its output VC
/// from head to tail so its flits stay contiguous on the link).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LockOwner {
    /// The input port the owning packet is arriving through.
    pub in_port: usize,
    /// The owning packet, so fault handling can release locks whose owner
    /// was dropped mid-stream.
    pub packet: crate::packet::PacketId,
}

/// One mesh router.
#[derive(Debug, Clone)]
pub struct Router {
    /// Input buffers, indexed `[port][vc]`.
    pub inputs: Vec<InputPort>,
    /// Wormhole ownership, indexed `[out_port][vc]`.
    pub out_lock: Vec<Vec<Option<LockOwner>>>,
    /// Round-robin pointer per output port (last input port granted).
    pub rr: [usize; PORTS],
}

impl Router {
    /// Creates a router with `vcs` virtual channels per port.
    pub fn new(vcs: usize) -> Router {
        Router {
            inputs: (0..PORTS).map(|_| InputPort::new(vcs)).collect(),
            out_lock: (0..PORTS)
                .map(|_| (0..vcs).map(|_| None).collect())
                .collect(),
            rr: [0; PORTS],
        }
    }

    /// Total flits buffered in this router.
    pub fn buffered(&self) -> usize {
        self.inputs
            .iter()
            .flat_map(|p| p.fifos.iter())
            .map(|f| f.len())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{FlitKind, PacketId};
    use crate::topology::NodeId;

    fn flit(vc: usize) -> Flit {
        Flit {
            packet: PacketId(1),
            kind: FlitKind::Body,
            is_tail: false,
            dst: NodeId(0),
            vc,
            checksum: 0,
        }
    }

    #[test]
    fn fresh_router_is_empty() {
        let r = Router::new(3);
        assert_eq!(r.buffered(), 0);
        assert_eq!(r.inputs.len(), PORTS);
        assert!(r.out_lock.iter().all(|p| p.iter().all(|l| l.is_none())));
    }

    #[test]
    fn buffering_counts() {
        let mut r = Router::new(3);
        r.inputs[0].fifos[1].push_back(flit(1));
        r.inputs[3].fifos[2].push_back(flit(2));
        r.inputs[3].fifos[2].push_back(flit(2));
        assert_eq!(r.buffered(), 3);
        assert_eq!(r.inputs[3].occupancy(2), 2);
        assert_eq!(r.inputs[0].occupancy(0), 0);
    }
}
