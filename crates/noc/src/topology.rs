//! Mesh topology: coordinates, node ids, ports and XY routing.

use core::fmt;

/// A node's position in the mesh.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Coord {
    /// Column, `0..width`.
    pub x: u8,
    /// Row, `0..height`.
    pub y: u8,
}

impl Coord {
    /// Creates a coordinate.
    pub const fn new(x: u8, y: u8) -> Coord {
        Coord { x, y }
    }
}

impl fmt::Display for Coord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({},{})", self.x, self.y)
    }
}

/// A flat node identifier: `id = y * width + x`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u16);

impl NodeId {
    /// Converts to a flat index.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// A link direction out of a router.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    /// Toward larger `y`.
    North,
    /// Toward smaller `y`.
    South,
    /// Toward larger `x`.
    East,
    /// Toward smaller `x`.
    West,
}

impl Direction {
    /// The opposite direction (the input port a flit arrives on after
    /// traversing a link in this direction).
    pub const fn opposite(self) -> Direction {
        match self {
            Direction::North => Direction::South,
            Direction::South => Direction::North,
            Direction::East => Direction::West,
            Direction::West => Direction::East,
        }
    }
}

/// A router port: four mesh links plus the local (tile) port.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Port {
    /// Mesh link.
    Dir(Direction),
    /// The tile's network interface.
    Local,
}

impl Port {
    /// All five ports, in a fixed arbitration order.
    pub const ALL: [Port; 5] = [
        Port::Local,
        Port::Dir(Direction::North),
        Port::Dir(Direction::South),
        Port::Dir(Direction::East),
        Port::Dir(Direction::West),
    ];

    /// A dense index in `0..5` for table lookups.
    pub const fn index(self) -> usize {
        match self {
            Port::Local => 0,
            Port::Dir(Direction::North) => 1,
            Port::Dir(Direction::South) => 2,
            Port::Dir(Direction::East) => 3,
            Port::Dir(Direction::West) => 4,
        }
    }
}

/// Mesh geometry and routing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Mesh {
    /// Columns.
    pub width: u8,
    /// Rows.
    pub height: u8,
}

impl Mesh {
    /// Creates a mesh.
    ///
    /// # Panics
    ///
    /// Panics on zero dimensions.
    pub fn new(width: u8, height: u8) -> Mesh {
        assert!(width > 0 && height > 0, "mesh dimensions must be positive");
        Mesh { width, height }
    }

    /// Number of nodes.
    pub const fn nodes(&self) -> usize {
        self.width as usize * self.height as usize
    }

    /// Maps a coordinate to a node id.
    pub const fn node(&self, c: Coord) -> NodeId {
        NodeId(c.y as u16 * self.width as u16 + c.x as u16)
    }

    /// Maps a node id back to a coordinate.
    pub const fn coord(&self, n: NodeId) -> Coord {
        Coord {
            x: (n.0 % self.width as u16) as u8,
            y: (n.0 / self.width as u16) as u8,
        }
    }

    /// Returns `true` if `n` is a valid node id for this mesh.
    pub const fn contains(&self, n: NodeId) -> bool {
        (n.0 as usize) < self.nodes()
    }

    /// The neighbour of `n` in direction `d`, if any (mesh edges have none).
    pub fn neighbor(&self, n: NodeId, d: Direction) -> Option<NodeId> {
        let c = self.coord(n);
        let (x, y) = match d {
            Direction::North => (c.x as i16, c.y as i16 + 1),
            Direction::South => (c.x as i16, c.y as i16 - 1),
            Direction::East => (c.x as i16 + 1, c.y as i16),
            Direction::West => (c.x as i16 - 1, c.y as i16),
        };
        if x < 0 || y < 0 || x >= self.width as i16 || y >= self.height as i16 {
            None
        } else {
            Some(self.node(Coord::new(x as u8, y as u8)))
        }
    }

    /// Dimension-order (XY) routing: the output port a flit at `here` takes
    /// toward `dst`. Returns [`Port::Local`] when `here == dst`.
    ///
    /// XY routing resolves X first, then Y; because no packet ever turns
    /// from a Y link back onto an X link, the channel-dependency graph is
    /// acyclic and the mesh is deadlock-free.
    pub fn route(&self, here: NodeId, dst: NodeId) -> Port {
        let h = self.coord(here);
        let d = self.coord(dst);
        if h.x < d.x {
            Port::Dir(Direction::East)
        } else if h.x > d.x {
            Port::Dir(Direction::West)
        } else if h.y < d.y {
            Port::Dir(Direction::North)
        } else if h.y > d.y {
            Port::Dir(Direction::South)
        } else {
            Port::Local
        }
    }

    /// Manhattan hop distance between two nodes.
    pub fn hops(&self, a: NodeId, b: NodeId) -> u32 {
        let ca = self.coord(a);
        let cb = self.coord(b);
        (ca.x.abs_diff(cb.x) as u32) + (ca.y.abs_diff(cb.y) as u32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coord_node_roundtrip() {
        let m = Mesh::new(4, 3);
        for y in 0..3 {
            for x in 0..4 {
                let c = Coord::new(x, y);
                assert_eq!(m.coord(m.node(c)), c);
            }
        }
        assert_eq!(m.nodes(), 12);
    }

    #[test]
    fn neighbors_respect_edges() {
        let m = Mesh::new(3, 3);
        let corner = m.node(Coord::new(0, 0));
        assert_eq!(m.neighbor(corner, Direction::West), None);
        assert_eq!(m.neighbor(corner, Direction::South), None);
        assert_eq!(
            m.neighbor(corner, Direction::East),
            Some(m.node(Coord::new(1, 0)))
        );
        assert_eq!(
            m.neighbor(corner, Direction::North),
            Some(m.node(Coord::new(0, 1)))
        );
    }

    #[test]
    fn neighbor_is_symmetric() {
        let m = Mesh::new(5, 4);
        for n in 0..m.nodes() {
            let n = NodeId(n as u16);
            for d in [
                Direction::North,
                Direction::South,
                Direction::East,
                Direction::West,
            ] {
                if let Some(nb) = m.neighbor(n, d) {
                    assert_eq!(m.neighbor(nb, d.opposite()), Some(n));
                }
            }
        }
    }

    #[test]
    fn xy_route_reaches_destination() {
        let m = Mesh::new(6, 6);
        for a in 0..m.nodes() {
            for b in 0..m.nodes() {
                let (src, dst) = (NodeId(a as u16), NodeId(b as u16));
                let mut here = src;
                let mut steps = 0;
                loop {
                    match m.route(here, dst) {
                        Port::Local => break,
                        Port::Dir(d) => {
                            here = m.neighbor(here, d).expect("route never leaves mesh");
                            steps += 1;
                            assert!(steps <= 12, "routing loop {src}->{dst}");
                        }
                    }
                }
                assert_eq!(here, dst);
                assert_eq!(steps, m.hops(src, dst));
            }
        }
    }

    #[test]
    fn xy_resolves_x_first() {
        let m = Mesh::new(4, 4);
        let src = m.node(Coord::new(0, 0));
        let dst = m.node(Coord::new(3, 3));
        assert_eq!(m.route(src, dst), Port::Dir(Direction::East));
        let mid = m.node(Coord::new(3, 0));
        assert_eq!(m.route(mid, dst), Port::Dir(Direction::North));
    }

    #[test]
    fn port_indices_are_dense_and_unique() {
        let mut seen = [false; 5];
        for p in Port::ALL {
            assert!(!seen[p.index()]);
            seen[p.index()] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_mesh_rejected() {
        Mesh::new(0, 3);
    }
}
