//! Apiary's Network-on-Chip (§4.3 of the paper).
//!
//! The NoC is Apiary's *single physical interface*: every tile talks to
//! every service over the same local port, and service naming happens at the
//! API layer (a destination field in the message) instead of in wiring. This
//! crate implements a cycle-level 2D-mesh NoC with the properties the paper
//! leans on:
//!
//! - **wormhole switching** with per-virtual-channel input buffers,
//! - **credit-based flow control** (no flit is ever dropped),
//! - **dimension-order (XY) routing**, which is deadlock-free on a mesh,
//! - **virtual channels doubling as traffic classes**, giving weighted
//!   priority between OS/control traffic, latency-sensitive requests and
//!   bulk data (the QoS hook §4.5 cites prior NoC work for),
//! - **per-message latency and per-link utilisation statistics**.
//!
//! The model is flit-accurate: messages are segmented into flits, flits
//! contend for links, and congestion propagates backwards through credit
//! exhaustion exactly as in hardware. A `hardened` configuration models the
//! hard NoCs of Versal-class parts (wider links, faster clock) by widening
//! flits and removing the per-hop pipeline bubble.

pub mod config;
pub mod fault;
pub mod network;
pub mod packet;
pub mod router;
pub mod topology;

pub use apiary_sim::Payload;
pub use config::NocConfig;
pub use fault::{FaultEvent, FaultPlane, FaultPlaneConfig, FaultPlaneStats};
pub use network::{InjectError, Noc, NocStats};
pub use packet::{Delivered, Message, PacketId, TrafficClass};
pub use topology::{Coord, Direction, NodeId, Port};
