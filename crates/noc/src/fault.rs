//! The chaos plane: seeded fault injection for the NoC.
//!
//! A [`FaultPlane`] is installed on a [`crate::Noc`] and, each cycle,
//! produces [`FaultEvent`]s from two sources:
//!
//! - an explicit **schedule** (`schedule()`), replayed at exact cycles, and
//! - **rate-based random draws** from a [`apiary_sim::SimRng`] seeded at
//!   construction, so a given `(seed, config)` pair always injects the same
//!   fault sequence — chaos runs are exactly reproducible.
//!
//! Three fault classes model what fails underneath an FPGA OS:
//!
//! | Fault              | Effect in the NoC model                          |
//! |--------------------|--------------------------------------------------|
//! | transient link down| flits crossing the link are corrupted until it heals |
//! | permanent link down| as transient, forever; routing detours around it |
//! | router stall       | the router allocates no flits for N cycles       |
//! | flit corruption    | one link traversal flips the flit checksum       |
//!
//! Corruption is *detected* at the ejecting node via the flit checksum and
//! the packet is dropped and counted — never silently delivered — modelling
//! CRC-protected links with drop-on-error semantics.

use crate::topology::{Direction, Mesh, NodeId};
use apiary_sim::{Cycle, SimRng};

/// One concrete fault, applied by the NoC when its cycle comes up.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultEvent {
    /// The outgoing link `node -> dir` fails. `heal_after: Some(n)` is a
    /// transient outage of `n` cycles; `None` is permanent (routing will
    /// detour around it).
    LinkDown {
        node: NodeId,
        dir: Direction,
        heal_after: Option<u64>,
    },
    /// The router at `node` freezes its switch allocator for `cycles`.
    RouterStall { node: NodeId, cycles: u64 },
}

/// Rates and magnitudes for random fault generation. All rates are
/// per-cycle probabilities of one event being drawn somewhere in the mesh.
#[derive(Debug, Clone, Copy)]
pub struct FaultPlaneConfig {
    /// RNG seed; same seed, same fault sequence.
    pub seed: u64,
    /// Probability that any given flit is corrupted while crossing a link.
    pub corrupt_per_hop: f64,
    /// Per-cycle probability that some link starts a transient outage.
    pub transient_link_rate: f64,
    /// Length of a transient outage, cycles.
    pub transient_cycles: u64,
    /// Per-cycle probability that some router stalls.
    pub stall_rate: f64,
    /// Length of a router stall, cycles.
    pub stall_cycles: u64,
    /// Per-cycle probability that some link dies permanently.
    pub permanent_link_rate: f64,
    /// Upper bound on permanently killed links (so a long run cannot
    /// partition the whole mesh).
    pub max_permanent_links: usize,
}

impl FaultPlaneConfig {
    /// A plane that only replays its explicit schedule.
    pub fn scripted(seed: u64) -> FaultPlaneConfig {
        FaultPlaneConfig {
            seed,
            corrupt_per_hop: 0.0,
            transient_link_rate: 0.0,
            transient_cycles: 0,
            stall_rate: 0.0,
            stall_cycles: 0,
            permanent_link_rate: 0.0,
            max_permanent_links: 0,
        }
    }

    /// A preset whose aggression scales with a single knob `rate`
    /// (used by the E16 sweep). `rate` is roughly the per-cycle
    /// probability of *some* disruptive event.
    pub fn with_rate(seed: u64, rate: f64) -> FaultPlaneConfig {
        FaultPlaneConfig {
            seed,
            corrupt_per_hop: rate / 50.0,
            transient_link_rate: rate,
            transient_cycles: 200,
            stall_rate: rate / 2.0,
            stall_cycles: 100,
            permanent_link_rate: rate / 100.0,
            max_permanent_links: 3,
        }
    }
}

/// Counters for what the plane injected (as opposed to what the NoC
/// *detected*, which lands in [`crate::NocStats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultPlaneStats {
    /// Transient link outages started.
    pub transient_links: u64,
    /// Links permanently killed.
    pub permanent_links: u64,
    /// Router stalls started.
    pub router_stalls: u64,
    /// Flits corrupted by the random corruption roll.
    pub corrupted_flits: u64,
    /// Scheduled events replayed.
    pub scheduled_replayed: u64,
}

/// Deterministic fault injector. See the module docs.
#[derive(Debug, Clone)]
pub struct FaultPlane {
    cfg: FaultPlaneConfig,
    rng: SimRng,
    /// Explicit schedule, kept sorted by cycle (stable for equal cycles).
    scheduled: Vec<(Cycle, FaultEvent)>,
    /// Cursor into `scheduled`.
    next_scheduled: usize,
    permanent_killed: usize,
    stats: FaultPlaneStats,
}

impl FaultPlane {
    /// Builds a plane; random draws come from `cfg.seed`.
    pub fn new(cfg: FaultPlaneConfig) -> FaultPlane {
        FaultPlane {
            rng: SimRng::new(cfg.seed),
            cfg,
            scheduled: Vec::new(),
            next_scheduled: 0,
            permanent_killed: 0,
            stats: FaultPlaneStats::default(),
        }
    }

    /// Adds an event to the explicit schedule. Events may be added in any
    /// order but only before the plane reaches their cycle.
    pub fn schedule(&mut self, at: Cycle, event: FaultEvent) {
        let pos = self.scheduled.partition_point(|(c, _)| *c <= at);
        assert!(
            pos >= self.next_scheduled,
            "cannot schedule a fault in the past"
        );
        self.scheduled.insert(pos, (at, event));
    }

    /// Injection counters.
    pub fn stats(&self) -> &FaultPlaneStats {
        &self.stats
    }

    /// The configuration.
    pub fn config(&self) -> &FaultPlaneConfig {
        &self.cfg
    }

    /// Draws a random existing link `(node, dir)` of `mesh`, if the draw
    /// lands on one (mesh-edge draws yield `None`, keeping the number of
    /// RNG consumptions per call fixed).
    fn draw_link(&mut self, mesh: &Mesh) -> Option<(NodeId, Direction)> {
        let raw = self.rng.gen_range(mesh.nodes() as u64 * 4);
        let node = NodeId((raw / 4) as u16);
        let dir = crate::network::DIRS[(raw % 4) as usize];
        mesh.neighbor(node, dir).map(|_| (node, dir))
    }

    /// Produces this cycle's events: due scheduled events plus random
    /// draws. Called by `Noc::tick` exactly once per cycle.
    pub(crate) fn step(&mut self, now: Cycle, mesh: &Mesh) -> Vec<FaultEvent> {
        let mut events = Vec::new();
        while let Some((at, ev)) = self.scheduled.get(self.next_scheduled) {
            if *at > now {
                break;
            }
            events.push(*ev);
            self.next_scheduled += 1;
            self.stats.scheduled_replayed += 1;
        }
        // Random draws, in a fixed order so the stream is reproducible.
        if self.cfg.transient_link_rate > 0.0 && self.rng.gen_bool(self.cfg.transient_link_rate) {
            if let Some((node, dir)) = self.draw_link(mesh) {
                events.push(FaultEvent::LinkDown {
                    node,
                    dir,
                    heal_after: Some(self.cfg.transient_cycles),
                });
            }
        }
        if self.cfg.stall_rate > 0.0 && self.rng.gen_bool(self.cfg.stall_rate) {
            let node = NodeId(self.rng.gen_range(mesh.nodes() as u64) as u16);
            events.push(FaultEvent::RouterStall {
                node,
                cycles: self.cfg.stall_cycles,
            });
        }
        if self.cfg.permanent_link_rate > 0.0
            && self.permanent_killed < self.cfg.max_permanent_links
            && self.rng.gen_bool(self.cfg.permanent_link_rate)
        {
            if let Some((node, dir)) = self.draw_link(mesh) {
                events.push(FaultEvent::LinkDown {
                    node,
                    dir,
                    heal_after: None,
                });
            }
        }
        for ev in &events {
            match ev {
                FaultEvent::LinkDown {
                    heal_after: Some(_),
                    ..
                } => self.stats.transient_links += 1,
                FaultEvent::LinkDown {
                    heal_after: None, ..
                } => {
                    self.stats.permanent_links += 1;
                    self.permanent_killed += 1;
                }
                FaultEvent::RouterStall { .. } => self.stats.router_stalls += 1,
            }
        }
        events
    }

    /// One corruption roll for a flit entering a link.
    pub(crate) fn corrupt_roll(&mut self) -> bool {
        if self.cfg.corrupt_per_hop <= 0.0 {
            return false;
        }
        let hit = self.rng.gen_bool(self.cfg.corrupt_per_hop);
        if hit {
            self.stats.corrupted_flits += 1;
        }
        hit
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mesh() -> Mesh {
        Mesh::new(4, 4)
    }

    #[test]
    fn scripted_plane_replays_in_order() {
        let mut p = FaultPlane::new(FaultPlaneConfig::scripted(1));
        let stall = FaultEvent::RouterStall {
            node: NodeId(3),
            cycles: 10,
        };
        let kill = FaultEvent::LinkDown {
            node: NodeId(5),
            dir: Direction::East,
            heal_after: None,
        };
        p.schedule(Cycle(20), kill);
        p.schedule(Cycle(10), stall);
        assert!(p.step(Cycle(5), &mesh()).is_empty());
        assert_eq!(p.step(Cycle(10), &mesh()), vec![stall]);
        assert!(p.step(Cycle(15), &mesh()).is_empty());
        assert_eq!(p.step(Cycle(20), &mesh()), vec![kill]);
        assert_eq!(p.stats().scheduled_replayed, 2);
    }

    #[test]
    fn same_seed_same_fault_sequence() {
        let run = || {
            let mut p = FaultPlane::new(FaultPlaneConfig::with_rate(42, 0.05));
            let mut all = Vec::new();
            for c in 0..5_000u64 {
                all.extend(p.step(Cycle(c), &mesh()));
            }
            (all, *p.stats())
        };
        let (a, sa) = run();
        let (b, sb) = run();
        assert_eq!(a, b);
        assert_eq!(sa, sb);
        assert!(!a.is_empty(), "a 5%/cycle plane must fire within 5k cycles");
    }

    #[test]
    fn permanent_kills_respect_the_cap() {
        let mut cfg = FaultPlaneConfig::with_rate(7, 0.5);
        cfg.max_permanent_links = 2;
        let mut p = FaultPlane::new(cfg);
        for c in 0..20_000u64 {
            p.step(Cycle(c), &mesh());
        }
        assert_eq!(p.stats().permanent_links, 2);
    }

    #[test]
    fn corruption_rolls_follow_the_configured_rate() {
        let mut p = FaultPlane::new(FaultPlaneConfig {
            corrupt_per_hop: 0.25,
            ..FaultPlaneConfig::scripted(3)
        });
        let hits = (0..10_000).filter(|_| p.corrupt_roll()).count();
        assert!((1_500..3_500).contains(&hits), "hits={hits}");
    }
}
