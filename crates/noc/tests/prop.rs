//! Property-based tests for the NoC.
//!
//! Invariants:
//!
//! 1. Every accepted message is delivered exactly once, intact, to the right
//!    node (no loss, no duplication, no misrouting).
//! 2. Messages between the same (src, dst) pair in the same traffic class
//!    arrive in injection order (per-VC FIFO + deterministic XY path).
//! 3. The network always drains (deadlock-freedom of XY + credit flow
//!    control) within a generous cycle bound.

use apiary_noc::{Message, Noc, NocConfig, NodeId, TrafficClass};
use proptest::prelude::*;
use std::collections::HashMap;

#[derive(Debug, Clone)]
struct Send {
    src: u16,
    dst: u16,
    class: u8,
    bytes: u16,
    /// Cycles to tick between this send and the next.
    gap: u8,
}

fn arb_sends(nodes: u16) -> impl Strategy<Value = Vec<Send>> {
    prop::collection::vec(
        (0..nodes, 0..nodes, 0u8..3, 0u16..600, 0u8..6).prop_map(
            |(src, dst, class, bytes, gap)| Send {
                src,
                dst,
                class,
                bytes,
                gap,
            },
        ),
        1..120,
    )
}

fn class_of(i: u8) -> TrafficClass {
    match i {
        0 => TrafficClass::Control,
        1 => TrafficClass::Request,
        _ => TrafficClass::Bulk,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn exactly_once_in_order_and_drains(
        sends in arb_sends(16),
        hardened in any::<bool>(),
    ) {
        let cfg = if hardened {
            NocConfig::hardened(4, 4)
        } else {
            NocConfig::soft(4, 4)
        };
        let mut noc = Noc::new(cfg);
        let mut accepted: Vec<(u16, u16, u8, u64)> = Vec::new(); // src,dst,class,seq
        let mut seq = 0u64;

        for s in &sends {
            let mut m = Message::new(
                NodeId(s.src),
                NodeId(s.dst),
                class_of(s.class),
                vec![s.class; s.bytes as usize],
            );
            m.tag = seq;
            if noc.try_inject(NodeId(s.src), m).is_ok() {
                accepted.push((s.src, s.dst, s.class, seq));
                seq += 1;
            }
            for _ in 0..s.gap {
                noc.step();
            }
        }

        // Deadlock-freedom: generous bound, then hard assert.
        prop_assert!(noc.run_until_quiescent(2_000_000), "network failed to drain");

        // Collect all deliveries.
        let mut got: Vec<(u16, u16, u8, u64)> = Vec::new();
        let mut per_node: HashMap<u16, usize> = HashMap::new();
        for n in 0..16u16 {
            for d in noc.drain_eject(NodeId(n)) {
                prop_assert_eq!(d.msg.dst, NodeId(n), "misrouted message");
                // Payload intact.
                prop_assert!(d.msg.payload.iter().all(|&b| b == d.msg.class as u8));
                got.push((d.msg.src.0, d.msg.dst.0, d.msg.class as u8, d.msg.tag));
                *per_node.entry(n).or_default() += 1;
            }
        }

        // Exactly once: same multiset.
        let mut a = accepted.clone();
        let mut g = got.clone();
        a.sort_unstable();
        g.sort_unstable();
        prop_assert_eq!(a, g);

        // In-order per (src, dst, class).
        let mut last: HashMap<(u16, u16, u8), u64> = HashMap::new();
        // Deliveries per flow must be checked in delivery order; rebuild per
        // node in ejection order (drain_eject preserved it in `got`).
        for (src, dst, class, tag) in &got {
            if let Some(prev) = last.insert((*src, *dst, *class), *tag) {
                prop_assert!(
                    prev < *tag,
                    "flow ({src},{dst},{class}) delivered {tag} after {prev}"
                );
            }
        }
    }
}
