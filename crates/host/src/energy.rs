//! The activity-weighted energy proxy for E4.
//!
//! We do not model joules; we model *relative* energy between the direct
//! and host-mediated paths using activity counts times per-component power
//! weights. The weights encode the well-known order-of-magnitude gap
//! between a server CPU core and FPGA fabric logic:
//!
//! - A busy server core burns ~10 W; at 250 M fabric-cycles/s that is
//!   ~40 nJ per fabric cycle of CPU work.
//! - An FPGA region serving one accelerator burns ~2-5 W; call it 12 nJ
//!   per cycle.
//! - Moving a byte over PCIe costs ~1 nJ; over the NoC, ~0.1 nJ.
//!
//! Only the ratios matter for the experiment's conclusion; the absolute
//! scale is arbitrary ("units").

/// Per-activity energy weights (energy units per cycle or per byte).
#[derive(Debug, Clone, Copy)]
pub struct PowerWeights {
    /// Per CPU-core busy cycle.
    pub cpu_cycle: f64,
    /// Per FPGA accelerator busy cycle.
    pub fpga_cycle: f64,
    /// Per byte crossing PCIe.
    pub pcie_byte: f64,
    /// Per byte crossing the on-chip NoC.
    pub noc_byte: f64,
}

impl Default for PowerWeights {
    fn default() -> Self {
        PowerWeights {
            cpu_cycle: 40.0,
            fpga_cycle: 12.0,
            pcie_byte: 1.0,
            noc_byte: 0.1,
        }
    }
}

/// Computes energy for a measured run.
#[derive(Debug, Clone, Copy, Default)]
pub struct EnergyModel {
    /// The weights in use.
    pub weights: PowerWeights,
}

impl EnergyModel {
    /// Creates a model with default weights.
    pub fn new() -> EnergyModel {
        EnergyModel::default()
    }

    /// Energy of a host-mediated run.
    pub fn host_energy(&self, cpu_busy: u64, fpga_busy: u64, pcie_bytes: u64) -> f64 {
        cpu_busy as f64 * self.weights.cpu_cycle
            + fpga_busy as f64 * self.weights.fpga_cycle
            + pcie_bytes as f64 * self.weights.pcie_byte
    }

    /// Energy of a direct-attached run (no CPU, no PCIe).
    pub fn direct_energy(&self, fpga_busy: u64, noc_bytes: u64) -> f64 {
        fpga_busy as f64 * self.weights.fpga_cycle + noc_bytes as f64 * self.weights.noc_byte
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_useful_work_direct_wins() {
        let m = EnergyModel::new();
        // 1000 cycles of accelerator work either way; host adds 850 CPU
        // cycles and 128 PCIe bytes; direct adds 128 NoC bytes.
        let host = m.host_energy(850, 1000, 128);
        let direct = m.direct_energy(1000, 128);
        assert!(host > direct * 2.0, "host {host} vs direct {direct}");
    }

    #[test]
    fn energy_is_monotone_in_activity() {
        let m = EnergyModel::new();
        assert!(m.host_energy(2, 1, 1) > m.host_energy(1, 1, 1));
        assert!(m.direct_energy(2, 1) > m.direct_energy(1, 1));
        assert_eq!(m.direct_energy(0, 0), 0.0);
    }
}
