//! Host-mediated FPGA baselines.
//!
//! The paper's motivation (§1) is that direct-attached FPGAs beat
//! CPU-mediated ones on latency, latency variability, resource overhead and
//! energy. This crate implements the *other* side of that comparison — the
//! hosted model of AmorphOS and Coyote (§5) — as an event-driven queueing
//! simulation:
//!
//! ```text
//! client --wire--> host NIC --CPU(rx)--> PCIe --> FPGA compute
//!        <--wire-- host NIC <--CPU(tx)-- PCIe <--/
//! ```
//!
//! Every request costs CPU time (interrupt + network stack + dispatch +
//! completion) on a finite pool of cores, plus two PCIe crossings; the
//! direct-attached Apiary path replaces all of that with a MAC-to-NoC hop.
//! Cost constants are expressed in 250 MHz fabric cycles (4 ns each) and
//! documented on [`HostConfig`].
//!
//! [`energy`] provides the activity-weighted energy proxy used by E4.

pub mod energy;
pub mod hostsim;
pub mod resource;

pub use energy::{EnergyModel, PowerWeights};
pub use hostsim::{HostConfig, HostMode, HostSim, HostStats};
pub use resource::Resource;
