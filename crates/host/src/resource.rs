//! A pool of identical servers with earliest-free scheduling.

use apiary_sim::Cycle;

/// `n` identical units (CPU cores, DMA engines, accelerator replicas);
/// work is placed on the unit that frees up first.
///
/// # Examples
///
/// ```
/// use apiary_host::Resource;
/// use apiary_sim::Cycle;
///
/// let mut cores = Resource::new(2);
/// assert_eq!(cores.acquire(Cycle(0), 10), Cycle(10));
/// assert_eq!(cores.acquire(Cycle(0), 10), Cycle(10)); // Second core.
/// assert_eq!(cores.acquire(Cycle(0), 10), Cycle(20)); // Queues.
/// ```
#[derive(Debug, Clone)]
pub struct Resource {
    free_at: Vec<Cycle>,
    /// Total busy time accumulated across units.
    pub busy_cycles: u64,
}

impl Resource {
    /// Creates a pool of `n` units.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Resource {
        assert!(n > 0, "a resource pool needs at least one unit");
        Resource {
            free_at: vec![Cycle::ZERO; n],
            busy_cycles: 0,
        }
    }

    /// Schedules `work` cycles starting no earlier than `now` on the
    /// earliest-free unit; returns the completion time.
    pub fn acquire(&mut self, now: Cycle, work: u64) -> Cycle {
        let idx = self
            .free_at
            .iter()
            .enumerate()
            .min_by_key(|(_, c)| **c)
            .map(|(i, _)| i)
            .expect("pool is non-empty");
        let start = now.max(self.free_at[idx]);
        let done = start + work;
        self.free_at[idx] = done;
        self.busy_cycles += work;
        done
    }

    /// Units in the pool.
    pub fn units(&self) -> usize {
        self.free_at.len()
    }

    /// The earliest time any unit is free.
    pub fn earliest_free(&self) -> Cycle {
        *self.free_at.iter().min().expect("pool is non-empty")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_unit_serialises() {
        let mut r = Resource::new(1);
        assert_eq!(r.acquire(Cycle(0), 5), Cycle(5));
        assert_eq!(r.acquire(Cycle(0), 5), Cycle(10));
        assert_eq!(r.acquire(Cycle(100), 5), Cycle(105));
        assert_eq!(r.busy_cycles, 15);
    }

    #[test]
    fn multiple_units_parallelise() {
        let mut r = Resource::new(3);
        let d: Vec<Cycle> = (0..3).map(|_| r.acquire(Cycle(0), 10)).collect();
        assert!(d.iter().all(|&c| c == Cycle(10)));
        assert_eq!(r.acquire(Cycle(0), 10), Cycle(20));
    }

    #[test]
    fn zero_work_is_free() {
        let mut r = Resource::new(1);
        assert_eq!(r.acquire(Cycle(7), 0), Cycle(7));
    }

    #[test]
    #[should_panic(expected = "at least one unit")]
    fn empty_pool_rejected() {
        Resource::new(0);
    }
}
