//! Watchdog tests: silently hung accelerators are detected and contained.

use apiary_accel::apps::faulty::HangAccel;
use apiary_accel::apps::idle::idle;
use apiary_core::fault::{FaultAction, WATCHDOG_FAULT};
use apiary_core::{AppId, FaultPolicy, System, SystemConfig};
use apiary_monitor::{wire, Monitor, MonitorConfig, TileState};
use apiary_noc::{NodeId, TrafficClass};

fn watchdog_system(policy: FaultPolicy) -> (System, apiary_cap::CapRef, NodeId) {
    let client = NodeId(0);
    let server = NodeId(5);
    let mut sys = System::new(SystemConfig::default());
    sys.install(client, Box::new(idle()), AppId(1), FaultPolicy::FailStop)
        .expect("free");
    // Hangs silently on its 3rd request.
    sys.install(server, Box::new(HangAccel::new(3)), AppId(1), policy)
        .expect("free");
    // Arm the watchdog on the server tile before wiring.
    sys.tile_mut(server).monitor = Monitor::new(
        server,
        MonitorConfig {
            watchdog_cycles: Some(500),
            ..MonitorConfig::default()
        },
    );
    let cap = sys.connect(client, server, false).expect("same app");
    sys.connect(server, client, false).expect("reply path");
    (sys, cap, server)
}

fn send(sys: &mut System, cap: apiary_cap::CapRef, tag: u64) {
    let now = sys.now();
    sys.tile_mut(NodeId(0))
        .monitor
        .send(
            cap,
            wire::KIND_REQUEST,
            tag,
            TrafficClass::Request,
            vec![1],
            now,
        )
        .expect("send accepted");
}

#[test]
fn silent_hang_is_detected_and_fail_stopped() {
    let (mut sys, cap, server) = watchdog_system(FaultPolicy::FailStop);
    // Two good requests.
    for tag in 0..2 {
        send(&mut sys, cap, tag);
        sys.run_until_idle(100_000);
        assert!(sys.tile_mut(NodeId(0)).monitor.recv().is_some());
    }
    // The third wedges the accelerator; it never recvs, never faults.
    send(&mut sys, cap, 2);
    sys.run(5_000);
    assert_eq!(sys.tile(server).monitor.state(), TileState::FailStopped);
    let rec = sys.tile(server).faults[0];
    assert_eq!(rec.code, WATCHDOG_FAULT);
    assert_eq!(rec.action, FaultAction::FailStopped);

    // Subsequent traffic gets the standard error reply.
    send(&mut sys, cap, 3);
    sys.run_until_idle(100_000);
    let d = sys.tile_mut(NodeId(0)).monitor.recv().expect("error reply");
    assert_eq!(d.msg.kind, wire::KIND_ERROR);
    assert_eq!(d.msg.payload[0], wire::err::TARGET_FAILED);
}

#[test]
fn preempt_policy_falls_back_to_fail_stop_for_non_preemptible_hang() {
    // HangAccel externalizes no state (`save()` is None), so the Preempt
    // policy cannot swap its context out: the kernel must fall back to
    // fail-stop rather than leave the wedged tile running.
    let (mut sys, cap, server) = watchdog_system(FaultPolicy::Preempt);
    for tag in 0..2 {
        send(&mut sys, cap, tag);
        sys.run_until_idle(100_000);
        assert!(sys.tile_mut(NodeId(0)).monitor.recv().is_some());
    }
    send(&mut sys, cap, 2);
    sys.run(5_000);
    assert_eq!(sys.tile(server).monitor.state(), TileState::FailStopped);
    let rec = sys.tile(server).faults[0];
    assert_eq!(rec.code, WATCHDOG_FAULT);
    assert_eq!(
        rec.action,
        FaultAction::FailStopped,
        "non-preemptible hang must degrade to fail-stop, not stay wedged"
    );
    // And the failure is visible to clients, exactly as under FailStop.
    send(&mut sys, cap, 3);
    sys.run_until_idle(100_000);
    let d = sys.tile_mut(NodeId(0)).monitor.recv().expect("error reply");
    assert_eq!(d.msg.kind, wire::KIND_ERROR);
    assert_eq!(d.msg.payload[0], wire::err::TARGET_FAILED);
}

#[test]
fn watchdog_does_not_fire_on_healthy_tiles() {
    let client = NodeId(0);
    let server = NodeId(5);
    let mut sys = System::new(SystemConfig::default());
    sys.install(client, Box::new(idle()), AppId(1), FaultPolicy::FailStop)
        .expect("free");
    sys.install(
        server,
        Box::new(apiary_accel::apps::echo::echo(4)),
        AppId(1),
        FaultPolicy::FailStop,
    )
    .expect("free");
    sys.tile_mut(server).monitor = Monitor::new(
        server,
        MonitorConfig {
            watchdog_cycles: Some(500),
            ..MonitorConfig::default()
        },
    );
    let cap = sys.connect(client, server, false).expect("same app");
    sys.connect(server, client, false).expect("reply path");
    for tag in 0..20 {
        send(&mut sys, cap, tag);
        sys.run_until_idle(100_000);
        assert!(sys.tile_mut(NodeId(0)).monitor.recv().is_some());
    }
    assert_eq!(sys.tile(server).monitor.state(), TileState::Running);
    assert!(sys.tile(server).faults.is_empty());
}

#[test]
fn watchdog_ignores_failstopped_tiles() {
    let (mut sys, cap, server) = watchdog_system(FaultPolicy::FailStop);
    sys.fail_stop(server);
    send(&mut sys, cap, 0);
    sys.run(5_000);
    // Exactly the manual record; the watchdog added nothing (NACKed
    // messages never sit in the inbox).
    assert_eq!(sys.tile(server).faults.len(), 1);
}
