//! Kernel-level integration tests: full systems on a real NoC.

use apiary_accel::apps::echo::{echo, EchoAccel};
use apiary_accel::apps::faulty::faulty;
use apiary_accel::apps::idle::idle;
use apiary_accel::apps::kv::{self, KvStoreAccel};
use apiary_core::memsvc::MemoryService;
use apiary_core::{AppId, FaultPolicy, System, SystemConfig};
use apiary_monitor::{wire, TileState};
use apiary_noc::{NodeId, TrafficClass};

fn small_system() -> System {
    System::new(SystemConfig::default()) // 4x4, memory service at n15.
}

/// Drives a request from a bare client tile by poking its monitor directly.
fn client_send(
    sys: &mut System,
    from: NodeId,
    cap: apiary_cap::CapRef,
    tag: u64,
    payload: Vec<u8>,
) {
    let now = sys.now();
    sys.tile_mut(from)
        .monitor
        .send(
            cap,
            wire::KIND_REQUEST,
            tag,
            TrafficClass::Request,
            payload,
            now,
        )
        .expect("send accepted");
}

fn client_recv(sys: &mut System, at: NodeId) -> Option<apiary_noc::Delivered> {
    sys.tile_mut(at).monitor.recv()
}

#[test]
fn echo_request_response_end_to_end() {
    let mut sys = small_system();
    let client = NodeId(0);
    let server = NodeId(5);
    sys.install(client, Box::new(idle()), AppId(1), FaultPolicy::FailStop)
        .expect("free");
    sys.install(server, Box::new(echo(3)), AppId(1), FaultPolicy::FailStop)
        .expect("free");
    let cap = sys.connect(client, server, false).expect("same app");
    // Reply path.
    sys.connect(server, client, false).expect("same app");

    client_send(&mut sys, client, cap, 77, vec![1, 2, 3]);
    assert!(sys.run_until_idle(10_000));
    let d = client_recv(&mut sys, client).expect("response came back");
    assert_eq!(d.msg.kind, wire::KIND_RESPONSE);
    assert_eq!(d.msg.tag, 77);
    assert_eq!(d.msg.payload, vec![1, 2, 3]);
    assert_eq!(d.msg.src, server);
}

#[test]
fn cross_app_connect_requires_explicit_allow() {
    let mut sys = small_system();
    sys.install(
        NodeId(0),
        Box::new(echo(1)),
        AppId(1),
        FaultPolicy::FailStop,
    )
    .expect("free");
    sys.install(
        NodeId(1),
        Box::new(echo(1)),
        AppId(2),
        FaultPolicy::FailStop,
    )
    .expect("free");
    assert!(matches!(
        sys.connect(NodeId(0), NodeId(1), false),
        Err(apiary_core::SystemError::CrossAppConnect { .. })
    ));
    sys.connect(NodeId(0), NodeId(1), true).expect("explicit");
}

#[test]
fn unconnected_tiles_cannot_communicate() {
    let mut sys = small_system();
    sys.install(
        NodeId(0),
        Box::new(echo(1)),
        AppId(1),
        FaultPolicy::FailStop,
    )
    .expect("free");
    sys.install(
        NodeId(1),
        Box::new(echo(1)),
        AppId(2),
        FaultPolicy::FailStop,
    )
    .expect("free");
    // No connect: nothing to send through. The only authority tile 0 holds
    // is none at all.
    assert_eq!(sys.tile(NodeId(0)).monitor.caps().live(), 0);
}

#[test]
fn connecting_to_os_service_is_implicitly_allowed() {
    let mut sys = small_system();
    sys.install(
        NodeId(0),
        Box::new(echo(1)),
        AppId(7),
        FaultPolicy::FailStop,
    )
    .expect("free");
    // The memory tile belongs to OS_APP; no allow_cross_app needed.
    sys.connect(NodeId(0), sys.mem_node(), false)
        .expect("OS services are reachable");
}

#[test]
fn memory_read_write_through_the_service() {
    let mut sys = small_system();
    let client = NodeId(2);
    sys.install(client, Box::new(idle()), AppId(1), FaultPolicy::FailStop)
        .expect("free");
    let mem_cap = sys.grant_memory(client, 4096).expect("memory available");

    // Drive the monitor directly as a stand-in for accelerator logic.
    let svc = sys.tile(client).env.get("mem-service").expect("wired");
    let now = sys.now();
    sys.tile_mut(client)
        .monitor
        .send_mem(
            mem_cap,
            svc,
            apiary_mem::AccessKind::Write,
            64,
            4,
            &[0xAA, 0xBB, 0xCC, 0xDD],
            1,
            now,
        )
        .expect("in bounds");
    assert!(sys.run_until_idle(10_000));
    let ack = client_recv(&mut sys, client).expect("write ack");
    assert_eq!(ack.msg.kind, wire::KIND_MEM_REPLY);

    let now = sys.now();
    sys.tile_mut(client)
        .monitor
        .send_mem(
            mem_cap,
            svc,
            apiary_mem::AccessKind::Read,
            64,
            4,
            &[],
            2,
            now,
        )
        .expect("in bounds");
    assert!(sys.run_until_idle(10_000));
    let data = client_recv(&mut sys, client).expect("read completion");
    assert_eq!(data.msg.payload, vec![0xAA, 0xBB, 0xCC, 0xDD]);

    // Out-of-segment access is refused locally.
    let now = sys.now();
    let err = sys
        .tile_mut(client)
        .monitor
        .send_mem(
            mem_cap,
            svc,
            apiary_mem::AccessKind::Read,
            4090,
            16,
            &[],
            3,
            now,
        )
        .expect_err("out of bounds");
    assert!(matches!(err, apiary_monitor::SendError::Protect(_)));
}

#[test]
fn memory_isolation_between_tiles() {
    let mut sys = small_system();
    let a = NodeId(1);
    let b = NodeId(2);
    sys.install(a, Box::new(idle()), AppId(1), FaultPolicy::FailStop)
        .expect("free");
    sys.install(b, Box::new(idle()), AppId(2), FaultPolicy::FailStop)
        .expect("free");
    let cap_a = sys.grant_memory(a, 1024).expect("space");
    let cap_b = sys.grant_memory(b, 1024).expect("space");
    // The two segments are disjoint physical ranges.
    let seg_a = match sys.tile(a).monitor.caps().lookup(cap_a).expect("live").kind {
        apiary_cap::CapKind::Memory(r) => r,
        _ => panic!("memory cap"),
    };
    let seg_b = match sys.tile(b).monitor.caps().lookup(cap_b).expect("live").kind {
        apiary_cap::CapKind::Memory(r) => r,
        _ => panic!("memory cap"),
    };
    assert!(!seg_a.overlaps(&seg_b));
    // Tile B's capability handle is meaningless at tile A (different table),
    // and A cannot address outside its own segment at all: offsets are
    // segment-relative and bounds-checked.
    let svc = sys.tile(a).env.get("mem-service").expect("wired");
    let now = sys.now();
    let err = sys
        .tile_mut(a)
        .monitor
        .send_mem(
            cap_a,
            svc,
            apiary_mem::AccessKind::Read,
            1024,
            8,
            &[],
            1,
            now,
        )
        .expect_err("offset beyond own segment");
    assert!(matches!(err, apiary_monitor::SendError::Protect(_)));
}

#[test]
fn release_memory_returns_segment() {
    let mut sys = small_system();
    sys.install(NodeId(1), Box::new(idle()), AppId(1), FaultPolicy::FailStop)
        .expect("free");
    let before = sys.mem_stats().free;
    let cap = sys.grant_memory(NodeId(1), 1 << 20).expect("space");
    assert_eq!(sys.mem_stats().free, before - (1 << 20));
    sys.release_memory(NodeId(1), cap).expect("live grant");
    assert_eq!(sys.mem_stats().free, before);
    // The handle is dead now.
    assert!(sys.release_memory(NodeId(1), cap).is_err());
}

#[test]
fn fail_stop_contains_fault_and_isolates() {
    let mut sys = small_system();
    let client = NodeId(0);
    let victim = NodeId(5);
    let bystander = NodeId(6);
    sys.install(client, Box::new(idle()), AppId(1), FaultPolicy::FailStop)
        .expect("free");
    sys.install(victim, Box::new(faulty(2)), AppId(1), FaultPolicy::FailStop)
        .expect("free");
    sys.install(
        bystander,
        Box::new(echo(1)),
        AppId(2),
        FaultPolicy::FailStop,
    )
    .expect("free");
    let cap = sys.connect(client, victim, false).expect("same app");
    sys.connect(victim, client, false).expect("reply path");

    // First request is served; the second faults the accelerator.
    client_send(&mut sys, client, cap, 1, vec![1]);
    assert!(sys.run_until_idle(10_000));
    assert!(client_recv(&mut sys, client).is_some());

    client_send(&mut sys, client, cap, 2, vec![2]);
    assert!(sys.run_until_idle(10_000));
    assert_eq!(sys.tile(victim).monitor.state(), TileState::FailStopped);
    assert_eq!(sys.tile(victim).faults.len(), 1);

    // Requests to the dead tile now come back as errors.
    client_send(&mut sys, client, cap, 3, vec![3]);
    assert!(sys.run_until_idle(10_000));
    let d = client_recv(&mut sys, client).expect("error reply");
    assert_eq!(d.msg.kind, wire::KIND_ERROR);
    assert_eq!(d.msg.payload[0], wire::err::TARGET_FAILED);
    assert_eq!(d.msg.tag, 3);

    // The bystander tile is untouched.
    assert_eq!(sys.tile(bystander).monitor.state(), TileState::Running);
    assert!(sys.tile(bystander).faults.is_empty());
}

#[test]
fn preempt_policy_survives_fault_with_downtime() {
    let mut sys = small_system();
    let client = NodeId(0);
    let server = NodeId(5);
    sys.install(client, Box::new(idle()), AppId(1), FaultPolicy::FailStop)
        .expect("free");
    // KV store is preemptible; run it under the Preempt policy with a
    // faulty companion? Use faulty() which is also preemptible.
    sys.install(server, Box::new(faulty(2)), AppId(1), FaultPolicy::Preempt)
        .expect("free");
    let cap = sys.connect(client, server, false).expect("same app");
    sys.connect(server, client, false).expect("reply path");

    client_send(&mut sys, client, cap, 1, vec![1]);
    assert!(sys.run_until_idle(20_000));
    assert!(client_recv(&mut sys, client).is_some());

    client_send(&mut sys, client, cap, 2, vec![2]);
    assert!(sys.run_until_idle(20_000));
    // Preempted, not fail-stopped.
    assert_eq!(sys.tile(server).monitor.state(), TileState::Running);
    let rec = sys.tile(server).faults[0];
    assert!(matches!(
        rec.action,
        apiary_core::fault::FaultAction::Preempted { downtime } if downtime > 0
    ));

    // The tile keeps serving after its downtime. (FaultyService::served is
    // preserved across the swap, so it no longer faults at 2: served=2 >=
    // fault_after=2 means it would fault again... send request and expect
    // another preemption rather than death — the tile stays alive.)
    client_send(&mut sys, client, cap, 3, vec![3]);
    assert!(sys.run_until_idle(50_000));
    assert_eq!(sys.tile(server).monitor.state(), TileState::Running);
}

#[test]
fn kv_store_multi_tenant_over_the_noc() {
    let mut sys = small_system();
    let tenant_a = NodeId(0);
    let tenant_b = NodeId(3);
    let store = NodeId(9);
    sys.install(tenant_a, Box::new(idle()), AppId(1), FaultPolicy::FailStop)
        .expect("free");
    sys.install(tenant_b, Box::new(idle()), AppId(2), FaultPolicy::FailStop)
        .expect("free");
    sys.install(
        store,
        Box::new(kv::kv_store()),
        AppId(3),
        FaultPolicy::FailStop,
    )
    .expect("free");
    let cap_a = sys
        .connect_badged(tenant_a, store, 0xA, true)
        .expect("explicit cross-app");
    let cap_b = sys
        .connect_badged(tenant_b, store, 0xB, true)
        .expect("explicit cross-app");
    sys.connect(store, tenant_a, true).expect("reply path");
    sys.connect(store, tenant_b, true).expect("reply path");

    // Both tenants put under the same key.
    client_send(&mut sys, tenant_a, cap_a, 1, kv::put_req(b"k", b"A"));
    client_send(&mut sys, tenant_b, cap_b, 1, kv::put_req(b"k", b"B"));
    assert!(sys.run_until_idle(20_000));
    client_recv(&mut sys, tenant_a).expect("ack");
    client_recv(&mut sys, tenant_b).expect("ack");

    // Each reads back its own value.
    client_send(&mut sys, tenant_a, cap_a, 2, kv::get_req(b"k"));
    client_send(&mut sys, tenant_b, cap_b, 2, kv::get_req(b"k"));
    assert!(sys.run_until_idle(20_000));
    let ra = client_recv(&mut sys, tenant_a).expect("value");
    let rb = client_recv(&mut sys, tenant_b).expect("value");
    assert_eq!(
        kv::parse_resp(&ra.msg.payload),
        Some((kv::status::OK, Some(b"A".as_slice())))
    );
    assert_eq!(
        kv::parse_resp(&rb.msg.payload),
        Some((kv::status::OK, Some(b"B".as_slice())))
    );
    let store_accel = sys.accel_as::<KvStoreAccel>(store).expect("installed");
    assert_eq!(store_accel.service().len(), 2);
}

#[test]
fn reconfigure_swaps_accelerator_and_revokes_authority() {
    let mut sys = small_system();
    let node = NodeId(4);
    sys.install(node, Box::new(faulty(1)), AppId(1), FaultPolicy::FailStop)
        .expect("free");
    sys.grant_memory(node, 1024).expect("space");
    assert!(sys.tile(node).monitor.caps().live() > 0);

    let done = sys
        .reconfigure(
            node,
            Box::new(echo(1)),
            AppId(2),
            FaultPolicy::FailStop,
            4096,
        )
        .expect("not already reconfiguring");
    assert!(done > sys.now());
    // Mid-reconfig: offline.
    sys.run(10);
    assert_eq!(sys.tile(node).monitor.state(), TileState::FailStopped);
    assert!(matches!(
        sys.reconfigure(node, Box::new(echo(1)), AppId(2), FaultPolicy::FailStop, 1),
        Err(apiary_core::SystemError::ReconfigInProgress(_))
    ));
    // After completion: fresh accelerator, empty capability table.
    let wait = done - sys.now();
    sys.run(wait + 2);
    assert_eq!(sys.tile(node).monitor.state(), TileState::Running);
    assert_eq!(sys.tile(node).accel_name(), "echo");
    assert_eq!(sys.tile(node).app, Some(AppId(2)));
    assert_eq!(
        sys.tile(node).monitor.caps().live(),
        0,
        "reconfiguration revokes all prior authority"
    );
}

#[test]
fn manual_preempt_roundtrips_state() {
    let mut sys = small_system();
    let node = NodeId(3);
    sys.install(node, Box::new(echo(1)), AppId(1), FaultPolicy::Preempt)
        .expect("free");
    let bytes = sys.preempt(node).expect("echo is preemptible");
    assert_eq!(bytes, 0, "echo has no state");
    assert!(sys.tile(node).busy_until > sys.now());

    // Non-preemptible accelerators refuse. (The video encoder used to be
    // the example here, but it externalizes its state now; the flooder
    // remains genuinely non-preemptible.)
    let node2 = NodeId(7);
    sys.install(
        node2,
        Box::new(apiary_accel::apps::flood::flooder(8)),
        AppId(1),
        FaultPolicy::Preempt,
    )
    .expect("free");
    assert!(matches!(
        sys.preempt(node2),
        Err(apiary_core::SystemError::NotPreemptible(_))
    ));
}

#[test]
fn render_map_shows_configuration() {
    let mut sys = small_system();
    sys.install(
        NodeId(0),
        Box::new(echo(1)),
        AppId(1),
        FaultPolicy::FailStop,
    )
    .expect("free");
    let map = sys.render_map();
    assert!(map.contains("echo"));
    assert!(map.contains("memory-service"));
    assert!(map.contains("app1"));
    assert!(map.contains("free"));
    assert!(map.contains("[mon+rtr]"), "every tile shows monitor+router");
}

#[test]
fn install_rejects_occupied_and_bad_nodes() {
    let mut sys = small_system();
    assert!(matches!(
        sys.install(
            NodeId(99),
            Box::new(echo(1)),
            AppId(1),
            FaultPolicy::FailStop
        ),
        Err(apiary_core::SystemError::BadNode(_))
    ));
    let mem = sys.mem_node();
    assert!(matches!(
        sys.install(mem, Box::new(echo(1)), AppId(1), FaultPolicy::FailStop),
        Err(apiary_core::SystemError::SlotOccupied(_))
    ));
}

#[test]
fn memory_service_stats_reachable_via_downcast() {
    let sys = small_system();
    let svc = sys
        .accel_as::<MemoryService>(sys.mem_node())
        .expect("memory service installed at boot");
    assert_eq!(svc.capacity(), SystemConfig::default().mem_capacity);
}

#[test]
fn echo_accel_type_is_downcastable() {
    let mut sys = small_system();
    sys.install(
        NodeId(0),
        Box::new(echo(1)),
        AppId(1),
        FaultPolicy::FailStop,
    )
    .expect("free");
    assert!(sys.accel_as::<EchoAccel>(NodeId(0)).is_some());
    assert!(sys.accel_as::<KvStoreAccel>(NodeId(0)).is_none());
}

#[test]
fn shared_memory_segment_between_tiles() {
    let mut sys = small_system();
    let producer = NodeId(1);
    let consumer = NodeId(2);
    sys.install(producer, Box::new(idle()), AppId(1), FaultPolicy::FailStop)
        .expect("free");
    sys.install(consumer, Box::new(idle()), AppId(1), FaultPolicy::FailStop)
        .expect("free");
    let owner_cap = sys.grant_memory(producer, 4096).expect("space");
    // Share the first 256 bytes read-only with the consumer.
    let shared = sys
        .share_memory(
            producer,
            owner_cap,
            consumer,
            apiary_cap::Rights::READ,
            Some(apiary_cap::MemRange::new(
                match sys
                    .tile(producer)
                    .monitor
                    .caps()
                    .lookup(owner_cap)
                    .expect("live")
                    .kind
                {
                    apiary_cap::CapKind::Memory(r) => r.base,
                    _ => unreachable!(),
                },
                256,
            )),
        )
        .expect("sharable");

    // Producer writes; consumer reads the same bytes back.
    let svc_p = sys.tile(producer).env.get("mem-service").expect("wired");
    let now = sys.now();
    sys.tile_mut(producer)
        .monitor
        .send_mem(
            owner_cap,
            svc_p,
            apiary_mem::AccessKind::Write,
            0,
            4,
            &[9, 9, 9, 9],
            1,
            now,
        )
        .expect("in bounds");
    assert!(sys.run_until_idle(100_000));
    client_recv(&mut sys, producer).expect("ack");

    let svc_c = sys.tile(consumer).env.get("mem-service").expect("wired");
    let now = sys.now();
    sys.tile_mut(consumer)
        .monitor
        .send_mem(
            shared,
            svc_c,
            apiary_mem::AccessKind::Read,
            0,
            4,
            &[],
            2,
            now,
        )
        .expect("in bounds");
    assert!(sys.run_until_idle(100_000));
    let d = client_recv(&mut sys, consumer).expect("data");
    assert_eq!(d.msg.payload, vec![9, 9, 9, 9], "shared bytes visible");

    // The consumer's view is read-only and bounded.
    let now = sys.now();
    assert!(sys
        .tile_mut(consumer)
        .monitor
        .send_mem(
            shared,
            svc_c,
            apiary_mem::AccessKind::Write,
            0,
            1,
            &[1],
            3,
            now
        )
        .is_err());
    let now = sys.now();
    assert!(sys
        .tile_mut(consumer)
        .monitor
        .send_mem(
            shared,
            svc_c,
            apiary_mem::AccessKind::Read,
            250,
            16,
            &[],
            4,
            now
        )
        .is_err());
}

#[test]
fn share_memory_cannot_amplify_rights_or_widen() {
    let mut sys = small_system();
    sys.install(NodeId(1), Box::new(idle()), AppId(1), FaultPolicy::FailStop)
        .expect("free");
    sys.install(NodeId(2), Box::new(idle()), AppId(1), FaultPolicy::FailStop)
        .expect("free");
    let cap = sys.grant_memory(NodeId(1), 1024).expect("space");
    let base = match sys
        .tile(NodeId(1))
        .monitor
        .caps()
        .lookup(cap)
        .expect("live")
        .kind
    {
        apiary_cap::CapKind::Memory(r) => r.base,
        _ => unreachable!(),
    };
    // GRANT was never given to the owner cap, so sharing more rights than
    // READ|WRITE is refused; widening the range is refused too.
    assert!(sys
        .share_memory(
            NodeId(1),
            cap,
            NodeId(2),
            apiary_cap::Rights::READ | apiary_cap::Rights::MANAGE,
            None
        )
        .is_err());
    assert!(sys
        .share_memory(
            NodeId(1),
            cap,
            NodeId(2),
            apiary_cap::Rights::READ,
            Some(apiary_cap::MemRange::new(base, 2048))
        )
        .is_err());
}

// ---------------------------------------------------------------------
// Preemptive tile sharing (§4.4): two tenants time-multiplex one tile.
// ---------------------------------------------------------------------

#[test]
fn shared_tile_time_multiplexes_two_tenants() {
    use apiary_core::fault::preemption_downtime;
    let mut sys = small_system();
    let n = NodeId(4);
    sys.install(n, Box::new(kv::kv_store()), AppId(1), FaultPolicy::Preempt)
        .expect("free tile");
    sys.accel_as_mut::<KvStoreAccel>(n)
        .expect("installed")
        .service_mut()
        .insert(1, b"a", b"alpha");
    sys.install_shared(n, Box::new(kv::kv_store()), AppId(2), FaultPolicy::Preempt)
        .expect("second tenant parks");

    // Swap 1: tenant A parks with its snapshot; B starts cold.
    let start = sys.now();
    let (out_a, in_b) = sys.swap_context(n).expect("both tenants preemptible");
    assert!(out_a > 0, "A externalized state");
    assert_eq!(in_b, 0, "B's first swap-in is cold");
    assert_eq!(
        sys.tile(n).busy_until,
        start + preemption_downtime(out_a),
        "swap charges the partial-reconfig time model"
    );
    assert_eq!(sys.tile(n).app, Some(AppId(2)));

    // Tenant B accumulates its own state while A is parked.
    sys.accel_as_mut::<KvStoreAccel>(n)
        .expect("B active")
        .service_mut()
        .insert(2, b"b", b"beta-with-more-bytes");

    // Swap 2: B parks, A restores from its swap-out snapshot.
    let (out_b, in_a) = sys.swap_context(n).expect("swap back");
    assert!(out_b > out_a, "B's snapshot includes its new entry");
    assert_eq!(in_a, out_a, "A restores exactly what it saved");
    let kv_a = sys.accel_as::<KvStoreAccel>(n).expect("A active");
    assert_eq!(kv_a.service().get(1, b"a"), Some(&b"alpha"[..]));
    assert!(
        kv_a.service().get(2, b"b").is_none(),
        "tenant isolation: B's entries are not visible to A"
    );
    let parked_b = sys.parked_as::<KvStoreAccel>(n).expect("B parked");
    assert_eq!(
        parked_b.service().get(2, b"b"),
        Some(&b"beta-with-more-bytes"[..])
    );
    // Two swaps traced on the tile.
    use apiary_trace::EventKind;
    assert_eq!(
        sys.tile(n)
            .monitor
            .tracer()
            .count(&EventKind::Preempt { context: 0 }),
        2
    );
}

#[test]
fn shared_tile_guards_slots_and_preemptibility() {
    use apiary_core::SystemError;
    let mut sys = small_system();
    let n = NodeId(4);
    // No active tenant: nothing to share with.
    assert!(matches!(
        sys.install_shared(n, Box::new(kv::kv_store()), AppId(2), FaultPolicy::Preempt),
        Err(SystemError::SlotEmpty(_))
    ));
    // Swap without a parked tenant.
    sys.install(n, Box::new(kv::kv_store()), AppId(1), FaultPolicy::Preempt)
        .expect("free tile");
    assert!(matches!(
        sys.swap_context(n),
        Err(SystemError::NoParkedTenant(_))
    ));
    // Only one tenant can be parked.
    sys.install_shared(n, Box::new(kv::kv_store()), AppId(2), FaultPolicy::Preempt)
        .expect("parks");
    assert!(matches!(
        sys.install_shared(n, Box::new(kv::kv_store()), AppId(3), FaultPolicy::Preempt),
        Err(SystemError::SlotOccupied(_))
    ));
    // A non-preemptible active tenant refuses the swap (and nothing moves).
    let m = NodeId(6);
    sys.install(
        m,
        Box::new(apiary_accel::apps::flood::flooder(8)),
        AppId(1),
        FaultPolicy::FailStop,
    )
    .expect("free tile");
    sys.install_shared(m, Box::new(kv::kv_store()), AppId(2), FaultPolicy::Preempt)
        .expect("parks");
    assert!(matches!(
        sys.swap_context(m),
        Err(SystemError::NotPreemptible(_))
    ));
    assert_eq!(sys.tile(m).accel_name(), "flooder");
    assert!(sys.tile(m).parked.is_some(), "parked tenant untouched");
}
