//! Supervisor tests: failed services restart, migrate, and rewire.

use apiary_accel::apps::echo::echo;
use apiary_accel::apps::idle::idle;
use apiary_cap::ServiceId;
use apiary_core::supervisor::RecoveryTarget;
use apiary_core::{AppId, FaultPolicy, SupervisorConfig, System, SystemConfig};
use apiary_monitor::{wire, TileState};
use apiary_noc::{NodeId, TrafficClass};

const SVC: ServiceId = ServiceId(42);
const CLIENT: NodeId = NodeId(0);
const HOME: NodeId = NodeId(5);
const SPARE: NodeId = NodeId(9);
const BITSTREAM: u64 = 4096; // 1024 cycles at the default 4 B/cycle ICAP.

fn supervised_system(sup: SupervisorConfig) -> (System, apiary_cap::CapRef) {
    let mut sys = System::new(SystemConfig {
        supervisor: sup,
        ..SystemConfig::default()
    });
    sys.install(CLIENT, Box::new(idle()), AppId(1), FaultPolicy::FailStop)
        .expect("free");
    sys.deploy_service(
        SVC,
        HOME,
        AppId(1),
        FaultPolicy::FailStop,
        BITSTREAM,
        Box::new(|| Box::new(echo(1))),
    )
    .expect("free");
    let cap = sys.attach_client(CLIENT, SVC).expect("wired");
    (sys, cap)
}

fn request(sys: &mut System, cap: apiary_cap::CapRef, tag: u64) {
    let now = sys.now();
    sys.tile_mut(CLIENT)
        .monitor
        .send(
            cap,
            wire::KIND_REQUEST,
            tag,
            TrafficClass::Request,
            vec![7],
            now,
        )
        .expect("send accepted");
}

fn response(sys: &mut System) -> Option<apiary_noc::Delivered> {
    sys.tile_mut(CLIENT).monitor.recv()
}

#[test]
fn fault_triggers_in_place_restart_with_mttr() {
    let (mut sys, cap) = supervised_system(SupervisorConfig {
        enabled: true,
        ..SupervisorConfig::default()
    });
    request(&mut sys, cap, 1);
    assert!(sys.run_until_idle(50_000));
    assert_eq!(
        response(&mut sys).expect("served").msg.kind,
        wire::KIND_RESPONSE
    );

    sys.inject_fault(HOME, 0xBEEF);
    assert_eq!(sys.tile(HOME).monitor.state(), TileState::FailStopped);
    // Backoff (256) + bitstream (1024) + detection slack.
    sys.run(5_000);
    assert_eq!(sys.tile(HOME).monitor.state(), TileState::Running);
    assert_eq!(sys.tile(HOME).accel_name(), "echo");

    let incidents = sys.incidents();
    assert_eq!(incidents.len(), 1);
    let inc = &incidents[0];
    assert_eq!(inc.code, 0xBEEF);
    assert_eq!(inc.target, RecoveryTarget::InPlace(HOME));
    let mttr = inc.mttr().expect("recovered");
    assert!(
        (1_280..5_000).contains(&mttr),
        "MTTR covers backoff + bitstream, got {mttr}"
    );

    // The client's original capability still reaches the reborn service.
    request(&mut sys, cap, 2);
    assert!(sys.run_until_idle(50_000));
    let d = response(&mut sys).expect("served after recovery");
    assert_eq!(d.msg.kind, wire::KIND_RESPONSE);
    assert_eq!(d.msg.tag, 2);
}

#[test]
fn requests_during_outage_fail_then_heal() {
    let (mut sys, cap) = supervised_system(SupervisorConfig {
        enabled: true,
        ..SupervisorConfig::default()
    });
    sys.inject_fault(HOME, 1);
    // Mid-outage request: the sealed monitor answers with an error.
    sys.run(10);
    request(&mut sys, cap, 1);
    assert!(sys.run_until_idle(50_000));
    let d = response(&mut sys).expect("error reply");
    assert_eq!(d.msg.kind, wire::KIND_ERROR);
    // After recovery the same capability works again.
    request(&mut sys, cap, 2);
    assert!(sys.run_until_idle(50_000));
    assert_eq!(
        response(&mut sys).expect("served").msg.kind,
        wire::KIND_RESPONSE
    );
}

#[test]
fn exhausted_restarts_escalate_to_spare_migration() {
    let (mut sys, cap) = supervised_system(SupervisorConfig {
        enabled: true,
        max_restarts: 1,
        spare_nodes: vec![SPARE],
        ..SupervisorConfig::default()
    });
    // First fault: in-place restart.
    sys.inject_fault(HOME, 1);
    sys.run(5_000);
    assert_eq!(sys.service_home(SVC), Some(HOME));

    // Second fault: restarts exhausted, migrate to the spare.
    sys.inject_fault(HOME, 2);
    sys.run(10_000);
    assert_eq!(sys.service_home(SVC), Some(SPARE));
    assert_eq!(sys.tile(SPARE).accel_name(), "echo");
    assert_eq!(sys.tile(SPARE).monitor.state(), TileState::Running);
    let incidents = sys.incidents();
    assert_eq!(incidents.len(), 2);
    assert_eq!(incidents[1].target, RecoveryTarget::Migrate(SPARE));
    assert!(incidents[1].mttr().is_some());

    // The dead home tile is decommissioned: sealed, empty, no authority.
    assert_eq!(sys.tile(HOME).monitor.state(), TileState::FailStopped);
    assert!(sys.tile(HOME).accel.is_none());
    assert_eq!(sys.tile(HOME).monitor.caps().live(), 0);

    // The client's capability follows the service to its new home.
    request(&mut sys, cap, 9);
    assert!(sys.run_until_idle(50_000));
    let d = response(&mut sys).expect("served from the spare");
    assert_eq!(d.msg.kind, wire::KIND_RESPONSE);
    assert_eq!(d.msg.src, SPARE);
}

#[test]
fn no_spares_abandons_the_service() {
    let (mut sys, cap) = supervised_system(SupervisorConfig {
        enabled: true,
        max_restarts: 0,
        spare_nodes: vec![],
        ..SupervisorConfig::default()
    });
    sys.inject_fault(HOME, 3);
    sys.run(10_000);
    assert_eq!(sys.tile(HOME).monitor.state(), TileState::FailStopped);
    let incidents = sys.incidents();
    assert_eq!(incidents.len(), 1);
    assert!(incidents[0].abandoned());
    assert!(sys.mttr_samples().is_empty());
    // Requests keep failing; nothing ever hangs.
    request(&mut sys, cap, 1);
    assert!(sys.run_until_idle(50_000));
    assert_eq!(
        response(&mut sys).expect("error").msg.kind,
        wire::KIND_ERROR
    );
}

#[test]
fn supervisor_disabled_leaves_failures_alone() {
    let (mut sys, _cap) = supervised_system(SupervisorConfig::default());
    sys.inject_fault(HOME, 1);
    sys.run(20_000);
    assert_eq!(sys.tile(HOME).monitor.state(), TileState::FailStopped);
    assert!(sys.incidents().is_empty());
}

// ---------------------------------------------------------------------
// Checkpoint plane: periodic snapshots make the restart ladder warm.
// ---------------------------------------------------------------------

use apiary_accel::apps::kv::{kv_store, KvStoreAccel};

const TENANT: u64 = 3;

fn supervised_kv(interval: u64) -> System {
    let mut sys = System::new(SystemConfig {
        supervisor: SupervisorConfig {
            enabled: true,
            checkpoint_interval: interval,
            ..SupervisorConfig::default()
        },
        ..SystemConfig::default()
    });
    sys.deploy_service(
        SVC,
        HOME,
        AppId(1),
        FaultPolicy::FailStop,
        BITSTREAM,
        Box::new(|| Box::new(kv_store())),
    )
    .expect("free");
    sys
}

fn put(sys: &mut System, key: &[u8], val: &[u8]) {
    sys.accel_as_mut::<KvStoreAccel>(HOME)
        .expect("kv installed")
        .service_mut()
        .insert(TENANT, key, val);
}

fn got(sys: &System, key: &[u8]) -> bool {
    sys.accel_as::<KvStoreAccel>(HOME)
        .is_some_and(|a| a.service().get(TENANT, key).is_some())
}

#[test]
fn periodic_checkpoints_make_restart_warm_with_bounded_staleness() {
    let mut sys = supervised_kv(1_000);
    put(&mut sys, b"early", b"survives");
    // A few intervals elapse; the supervisor snapshots the service.
    sys.run(3_500);
    assert!(sys.checkpoint_store().taken >= 2, "checkpoints were taken");
    // A write after the last checkpoint is inside the staleness window.
    put(&mut sys, b"late", b"lost");
    sys.inject_fault(HOME, 0xDEAD);
    sys.run(6_000);

    let incidents = sys.incidents();
    assert_eq!(incidents.len(), 1);
    assert!(incidents[0].mttr().is_some(), "recovered");
    assert!(incidents[0].warm, "restart restored the checkpoint");
    assert_eq!(sys.checkpoint_store().warm_restores, 1);
    assert!(got(&sys, b"early"), "pre-checkpoint writes survive");
    assert!(
        !got(&sys, b"late"),
        "at most one interval of writes is lost — never resurrected"
    );
}

#[test]
fn without_checkpoints_restart_is_cold() {
    let mut sys = supervised_kv(0);
    put(&mut sys, b"early", b"gone");
    sys.run(3_500);
    assert_eq!(sys.checkpoint_store().taken, 0);
    sys.inject_fault(HOME, 0xDEAD);
    sys.run(6_000);
    let incidents = sys.incidents();
    assert!(incidents[0].mttr().is_some(), "recovered");
    assert!(!incidents[0].warm, "factory-fresh restart");
    assert!(!got(&sys, b"early"), "cold restart loses everything");
}

#[test]
fn migration_to_spare_restores_the_checkpoint() {
    let mut sys = System::new(SystemConfig {
        supervisor: SupervisorConfig {
            enabled: true,
            max_restarts: 0,
            spare_nodes: vec![SPARE],
            checkpoint_interval: 1_000,
            ..SupervisorConfig::default()
        },
        ..SystemConfig::default()
    });
    sys.deploy_service(
        SVC,
        HOME,
        AppId(1),
        FaultPolicy::FailStop,
        BITSTREAM,
        Box::new(|| Box::new(kv_store())),
    )
    .expect("free");
    put(&mut sys, b"k", b"v");
    sys.run(2_500);
    sys.inject_fault(HOME, 7);
    sys.run(10_000);
    assert_eq!(sys.service_home(SVC), Some(SPARE));
    let incidents = sys.incidents();
    assert_eq!(incidents[0].target, RecoveryTarget::Migrate(SPARE));
    assert!(incidents[0].warm, "spare migration restored the checkpoint");
    let kv = sys.accel_as::<KvStoreAccel>(SPARE).expect("on the spare");
    assert_eq!(kv.service().get(TENANT, b"k"), Some(&b"v"[..]));
}

#[test]
fn non_preemptible_service_is_excused_from_checkpoints() {
    let mut sys = System::new(SystemConfig {
        supervisor: SupervisorConfig {
            enabled: true,
            checkpoint_interval: 500,
            ..SupervisorConfig::default()
        },
        ..SystemConfig::default()
    });
    sys.deploy_service(
        SVC,
        HOME,
        AppId(1),
        FaultPolicy::FailStop,
        BITSTREAM,
        Box::new(|| Box::new(apiary_accel::apps::flood::flooder(64))),
    )
    .expect("free");
    sys.run(5_000);
    assert_eq!(
        sys.checkpoint_store().taken,
        0,
        "a service that cannot externalize state is excused"
    );
    assert!(sys.checkpoint_store().is_empty());
}
