//! Supervisor tests: failed services restart, migrate, and rewire.

use apiary_accel::apps::echo::echo;
use apiary_accel::apps::idle::idle;
use apiary_cap::ServiceId;
use apiary_core::supervisor::RecoveryTarget;
use apiary_core::{AppId, FaultPolicy, SupervisorConfig, System, SystemConfig};
use apiary_monitor::{wire, TileState};
use apiary_noc::{NodeId, TrafficClass};

const SVC: ServiceId = ServiceId(42);
const CLIENT: NodeId = NodeId(0);
const HOME: NodeId = NodeId(5);
const SPARE: NodeId = NodeId(9);
const BITSTREAM: u64 = 4096; // 1024 cycles at the default 4 B/cycle ICAP.

fn supervised_system(sup: SupervisorConfig) -> (System, apiary_cap::CapRef) {
    let mut sys = System::new(SystemConfig {
        supervisor: sup,
        ..SystemConfig::default()
    });
    sys.install(CLIENT, Box::new(idle()), AppId(1), FaultPolicy::FailStop)
        .expect("free");
    sys.deploy_service(
        SVC,
        HOME,
        AppId(1),
        FaultPolicy::FailStop,
        BITSTREAM,
        Box::new(|| Box::new(echo(1))),
    )
    .expect("free");
    let cap = sys.attach_client(CLIENT, SVC).expect("wired");
    (sys, cap)
}

fn request(sys: &mut System, cap: apiary_cap::CapRef, tag: u64) {
    let now = sys.now();
    sys.tile_mut(CLIENT)
        .monitor
        .send(
            cap,
            wire::KIND_REQUEST,
            tag,
            TrafficClass::Request,
            vec![7],
            now,
        )
        .expect("send accepted");
}

fn response(sys: &mut System) -> Option<apiary_noc::Delivered> {
    sys.tile_mut(CLIENT).monitor.recv()
}

#[test]
fn fault_triggers_in_place_restart_with_mttr() {
    let (mut sys, cap) = supervised_system(SupervisorConfig {
        enabled: true,
        ..SupervisorConfig::default()
    });
    request(&mut sys, cap, 1);
    assert!(sys.run_until_idle(50_000));
    assert_eq!(
        response(&mut sys).expect("served").msg.kind,
        wire::KIND_RESPONSE
    );

    sys.inject_fault(HOME, 0xBEEF);
    assert_eq!(sys.tile(HOME).monitor.state(), TileState::FailStopped);
    // Backoff (256) + bitstream (1024) + detection slack.
    sys.run(5_000);
    assert_eq!(sys.tile(HOME).monitor.state(), TileState::Running);
    assert_eq!(sys.tile(HOME).accel_name(), "echo");

    let incidents = sys.incidents();
    assert_eq!(incidents.len(), 1);
    let inc = &incidents[0];
    assert_eq!(inc.code, 0xBEEF);
    assert_eq!(inc.target, RecoveryTarget::InPlace(HOME));
    let mttr = inc.mttr().expect("recovered");
    assert!(
        (1_280..5_000).contains(&mttr),
        "MTTR covers backoff + bitstream, got {mttr}"
    );

    // The client's original capability still reaches the reborn service.
    request(&mut sys, cap, 2);
    assert!(sys.run_until_idle(50_000));
    let d = response(&mut sys).expect("served after recovery");
    assert_eq!(d.msg.kind, wire::KIND_RESPONSE);
    assert_eq!(d.msg.tag, 2);
}

#[test]
fn requests_during_outage_fail_then_heal() {
    let (mut sys, cap) = supervised_system(SupervisorConfig {
        enabled: true,
        ..SupervisorConfig::default()
    });
    sys.inject_fault(HOME, 1);
    // Mid-outage request: the sealed monitor answers with an error.
    sys.run(10);
    request(&mut sys, cap, 1);
    assert!(sys.run_until_idle(50_000));
    let d = response(&mut sys).expect("error reply");
    assert_eq!(d.msg.kind, wire::KIND_ERROR);
    // After recovery the same capability works again.
    request(&mut sys, cap, 2);
    assert!(sys.run_until_idle(50_000));
    assert_eq!(
        response(&mut sys).expect("served").msg.kind,
        wire::KIND_RESPONSE
    );
}

#[test]
fn exhausted_restarts_escalate_to_spare_migration() {
    let (mut sys, cap) = supervised_system(SupervisorConfig {
        enabled: true,
        max_restarts: 1,
        spare_nodes: vec![SPARE],
        ..SupervisorConfig::default()
    });
    // First fault: in-place restart.
    sys.inject_fault(HOME, 1);
    sys.run(5_000);
    assert_eq!(sys.service_home(SVC), Some(HOME));

    // Second fault: restarts exhausted, migrate to the spare.
    sys.inject_fault(HOME, 2);
    sys.run(10_000);
    assert_eq!(sys.service_home(SVC), Some(SPARE));
    assert_eq!(sys.tile(SPARE).accel_name(), "echo");
    assert_eq!(sys.tile(SPARE).monitor.state(), TileState::Running);
    let incidents = sys.incidents();
    assert_eq!(incidents.len(), 2);
    assert_eq!(incidents[1].target, RecoveryTarget::Migrate(SPARE));
    assert!(incidents[1].mttr().is_some());

    // The dead home tile is decommissioned: sealed, empty, no authority.
    assert_eq!(sys.tile(HOME).monitor.state(), TileState::FailStopped);
    assert!(sys.tile(HOME).accel.is_none());
    assert_eq!(sys.tile(HOME).monitor.caps().live(), 0);

    // The client's capability follows the service to its new home.
    request(&mut sys, cap, 9);
    assert!(sys.run_until_idle(50_000));
    let d = response(&mut sys).expect("served from the spare");
    assert_eq!(d.msg.kind, wire::KIND_RESPONSE);
    assert_eq!(d.msg.src, SPARE);
}

#[test]
fn no_spares_abandons_the_service() {
    let (mut sys, cap) = supervised_system(SupervisorConfig {
        enabled: true,
        max_restarts: 0,
        spare_nodes: vec![],
        ..SupervisorConfig::default()
    });
    sys.inject_fault(HOME, 3);
    sys.run(10_000);
    assert_eq!(sys.tile(HOME).monitor.state(), TileState::FailStopped);
    let incidents = sys.incidents();
    assert_eq!(incidents.len(), 1);
    assert!(incidents[0].abandoned());
    assert!(sys.mttr_samples().is_empty());
    // Requests keep failing; nothing ever hangs.
    request(&mut sys, cap, 1);
    assert!(sys.run_until_idle(50_000));
    assert_eq!(
        response(&mut sys).expect("error").msg.kind,
        wire::KIND_ERROR
    );
}

#[test]
fn supervisor_disabled_leaves_failures_alone() {
    let (mut sys, _cap) = supervised_system(SupervisorConfig::default());
    sys.inject_fault(HOME, 1);
    sys.run(20_000);
    assert_eq!(sys.tile(HOME).monitor.state(), TileState::FailStopped);
    assert!(sys.incidents().is_empty());
}
