//! The Apiary microkernel (§4 of the paper).
//!
//! Apiary is a NoC-based hardware microkernel: each tile pairs a trusted
//! monitor with an untrusted accelerator slot, and everything — user logic
//! and OS services alike — communicates by message passing over the mesh
//! (Figure 1). This crate is the kernel tying the substrates together:
//!
//! - [`tile::Tile`] — a monitor plus an accelerator slot plus the tile's
//!   fault policy and capability environment,
//! - [`system::System`] — the machine: NoC + tiles + clock, with the
//!   management API (install accelerators, connect processes, grant memory,
//!   bind services) and the cycle loop,
//! - [`process`] — application/process identity and the trust rules of
//!   §4.1–§4.2 (distrusting applications never share a tile; IPC must be
//!   explicitly established),
//! - [`fault`] — the two §4.4 execution models: fail-stop for merely
//!   concurrent accelerators, context swap for preemptible ones,
//! - [`reconfig`] — the partial-reconfiguration controller (timed by
//!   bitstream size over ICAP bandwidth),
//! - [`memsvc`] — the memory service tile: segment-allocated, DRAM-timed,
//!   capability-checked memory shared by all applications.
//!
//! The kernel in Apiary is *hardware*: nothing here models a CPU. Every
//! kernel object in this crate corresponds to logic the paper places in the
//! static region of the FPGA.

pub mod checkpoint;
pub mod fault;
pub mod memsvc;
pub mod process;
pub mod reconfig;
pub mod registry;
pub mod supervisor;
pub mod system;
pub mod tile;

pub use checkpoint::{CheckpointStore, Snapshot};
pub use fault::FaultPolicy;
pub use process::AppId;
pub use supervisor::{AccelFactory, Incident, RecoveryTarget, Supervisor, SupervisorConfig};
pub use system::{System, SystemConfig, SystemError};
pub use tile::Tile;
