//! The self-healing supervisor (§4.4 taken to its conclusion).
//!
//! Fail-stop answers *what* happens when a tile dies: the monitor seals it
//! and correspondents get errors. The supervisor answers *what happens
//! next*. Services registered with [`crate::System::deploy_service`] are
//! watched; when their tile fail-stops (accelerator fault, watchdog hang,
//! or an operator/chaos [`crate::System::inject_fault`]), the supervisor
//! walks an escalation ladder:
//!
//! 1. **restart in place** — after a backoff that doubles per attempt, the
//!    tile is partially reconfigured with a fresh instance from the
//!    service's factory;
//! 2. **migrate** — once `max_restarts` in-place attempts are exhausted,
//!    the next incident re-instantiates the service on a spare node from
//!    [`SupervisorConfig::spare_nodes`];
//! 3. **give up** — with no spares left the incident is recorded as
//!    abandoned and the service stays down.
//!
//! Recovery is only complete once the kernel has **rewired** the service:
//! every registered client's name table is rebound to the new home (their
//! existing service capabilities keep working — naming is late-bound,
//! §4.3), and the new home is granted reply endpoints to each client. The
//! dead tile's own capability table was already cleared by fail-stop/reset,
//! so no stale authority survives the move.
//!
//! Rewiring also keeps the monitors' flow-verdict caches honest: every
//! client rebind lands in `Monitor::bind_service`, and the failed tile's
//! teardown lands in `Monitor::fail_stop`/`reset` — each of which clears
//! the tile's cached (capability, destination) verdicts. A batched verdict
//! therefore never survives the reconfiguration that could invalidate it.
//!
//! Each incident records detection and recovery cycles; the difference is
//! the incident's MTTR, the metric experiment E16 sweeps.

use crate::checkpoint::CheckpointStore;
use crate::fault::FaultPolicy;
use crate::process::AppId;
use apiary_accel::Accelerator;
use apiary_cap::ServiceId;
use apiary_noc::NodeId;
use apiary_sim::Cycle;
use std::collections::VecDeque;

/// Builds a fresh instance of a supervised service's accelerator.
pub type AccelFactory = Box<dyn Fn() -> Box<dyn Accelerator>>;

/// Supervisor policy knobs, part of [`crate::SystemConfig`].
#[derive(Debug, Clone)]
pub struct SupervisorConfig {
    /// Master switch. Off by default: systems that never call
    /// [`crate::System::deploy_service`] behave exactly as before.
    pub enabled: bool,
    /// In-place restarts per service before escalating to migration.
    pub max_restarts: u32,
    /// Base restart delay in cycles; doubles with each restart of the same
    /// service (exponential backoff).
    pub restart_backoff: u64,
    /// Nodes kept empty as migration targets.
    pub spare_nodes: Vec<NodeId>,
    /// Cycles between periodic checkpoints of preemptible services
    /// (0 disables checkpointing; recovery is then always cold). Each
    /// checkpoint stalls the service for
    /// [`crate::fault::checkpoint_downtime`] of its state size, so the
    /// interval trades recovery staleness against steady-state overhead.
    pub checkpoint_interval: u64,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        SupervisorConfig {
            enabled: false,
            max_restarts: 2,
            restart_backoff: 256,
            spare_nodes: Vec::new(),
            checkpoint_interval: 0,
        }
    }
}

/// A service under supervision.
pub struct ServiceSpec {
    /// Logical name clients bind to.
    pub service: ServiceId,
    /// Current home node (updated on migration).
    pub node: NodeId,
    /// Owning application.
    pub app: AppId,
    /// Fault policy for (re)installed instances.
    pub policy: FaultPolicy,
    /// Bitstream size, which prices every restart via the ICAP.
    pub bitstream_bytes: u64,
    /// Fresh-instance factory.
    pub factory: AccelFactory,
    /// Clients whose name tables must be rebound after a move.
    pub clients: Vec<NodeId>,
    /// In-place restarts consumed so far.
    pub restarts_used: u32,
    /// Cached terminal state: `true` once an incident for this service was
    /// abandoned, so the per-tick detection scan never walks the incident
    /// log.
    pub abandoned: bool,
    /// Next cycle at which a periodic checkpoint is due. `Cycle::MAX`
    /// once the service proves non-preemptible (or checkpointing is off).
    pub next_checkpoint_at: Cycle,
}

/// Where an incident's recovery is pointed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoveryTarget {
    /// Restart on the same tile.
    InPlace(NodeId),
    /// Migrate to a spare.
    Migrate(NodeId),
    /// No recovery possible (restarts and spares exhausted).
    Abandoned,
}

/// Phase of an open incident.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Phase {
    /// Waiting out the restart backoff.
    Backoff { restart_at: Cycle },
    /// Bitstream in flight.
    Reconfiguring,
    /// Terminal (recovered or abandoned).
    Closed,
}

/// One detected failure of a supervised service, with its recovery timing.
#[derive(Debug, Clone)]
pub struct Incident {
    /// The service that failed.
    pub service: ServiceId,
    /// The node it was on when it failed.
    pub node: NodeId,
    /// Fault code from the tile's fault record (0 if none).
    pub code: u32,
    /// Cycle the supervisor noticed the fail-stop.
    pub detected_at: Cycle,
    /// Cycle service was back up and rewired; `None` while recovery is in
    /// flight or if abandoned.
    pub recovered_at: Option<Cycle>,
    /// What the supervisor decided to do.
    pub target: RecoveryTarget,
    /// `true` if recovery restored a checkpoint (warm) rather than
    /// deploying factory-fresh (cold).
    pub warm: bool,
    pub(crate) phase: Phase,
}

impl Incident {
    /// Mean-time-to-repair contribution: cycles from detection to rewired
    /// recovery. `None` until recovered.
    pub fn mttr(&self) -> Option<u64> {
        self.recovered_at.map(|r| r - self.detected_at)
    }

    /// `true` once the incident is resolved (recovered or abandoned).
    pub fn closed(&self) -> bool {
        self.phase == Phase::Closed
    }

    /// `true` if the supervisor gave up on this incident.
    pub fn abandoned(&self) -> bool {
        self.phase == Phase::Closed && self.recovered_at.is_none()
    }
}

/// The supervisor: specs, incident log, and the escalation state machine.
/// Stepped by [`crate::System::tick`]; holds no reference to the system
/// (it is taken out, stepped against it, and put back).
#[derive(Default)]
pub struct Supervisor {
    /// Supervised services.
    pub(crate) specs: Vec<ServiceSpec>,
    /// All incidents ever opened, in detection order.
    pub(crate) incidents: Vec<Incident>,
    /// Spares not yet consumed by a migration (FIFO: O(1) pop_front).
    pub(crate) free_spares: VecDeque<NodeId>,
    /// Latest checkpoint per supervised service.
    pub(crate) checkpoints: CheckpointStore,
}

impl Supervisor {
    /// The incident log.
    pub fn incidents(&self) -> &[Incident] {
        &self.incidents
    }

    /// MTTR samples (cycles) of every recovered incident.
    pub fn mttr_samples(&self) -> Vec<u64> {
        self.incidents.iter().filter_map(|i| i.mttr()).collect()
    }

    /// The current home node of a supervised service.
    pub fn service_home(&self, service: ServiceId) -> Option<NodeId> {
        self.specs
            .iter()
            .find(|s| s.service == service)
            .map(|s| s.node)
    }

    /// Open (unresolved) incident index for a service, if any.
    pub(crate) fn open_incident(&self, service: ServiceId) -> Option<usize> {
        self.incidents
            .iter()
            .position(|i| i.service == service && !i.closed())
    }

    /// The checkpoint store (inspection and replication).
    pub fn checkpoints(&self) -> &CheckpointStore {
        &self.checkpoints
    }

    /// Mutable checkpoint store (fabric replication adopts snapshots).
    pub fn checkpoints_mut(&mut self) -> &mut CheckpointStore {
        &mut self.checkpoints
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_off() {
        let cfg = SupervisorConfig::default();
        assert!(!cfg.enabled);
        assert!(cfg.spare_nodes.is_empty());
        assert!(cfg.max_restarts > 0);
    }

    #[test]
    fn incident_mttr() {
        let mut i = Incident {
            service: ServiceId(1),
            node: NodeId(2),
            code: 7,
            detected_at: Cycle(100),
            recovered_at: None,
            target: RecoveryTarget::InPlace(NodeId(2)),
            warm: false,
            phase: Phase::Backoff {
                restart_at: Cycle(200),
            },
        };
        assert_eq!(i.mttr(), None);
        assert!(!i.closed());
        i.recovered_at = Some(Cycle(850));
        i.phase = Phase::Closed;
        assert_eq!(i.mttr(), Some(750));
        assert!(i.closed());
        assert!(!i.abandoned());
    }
}
