//! The memory service tile.
//!
//! On-card DRAM is fronted by a service tile: accelerators send
//! monitor-checked, monitor-translated read/write requests over the NoC and
//! receive timed completions. Timing comes from the banked
//! [`apiary_mem::DramModel`], so memory experiments see row locality and
//! bank contention.
//!
//! Security model: the *sending* monitor performs the capability bounds
//! check and writes the physical address into the request (§4.6); the
//! memory tile additionally range-checks against its backing store as
//! defence in depth. Only monitors can produce well-formed requests, so a
//! compromised accelerator cannot reach memory it holds no capability for.

use apiary_accel::{Accelerator, TileOs};
use apiary_mem::{DramConfig, DramModel};
use apiary_monitor::monitor::wire_mem;
use apiary_monitor::wire;
use apiary_noc::{Delivered, TrafficClass};
use apiary_sim::{Cycle, Payload, Wakeup};
use std::collections::VecDeque;

/// A completed-at-`done` reply waiting to leave.
struct PendingReply {
    done: Cycle,
    to: Delivered,
    payload: Payload,
    kind: u16,
}

/// The memory service accelerator.
///
/// Unlike request/response services, the memory tile keeps many operations
/// in flight (DRAM banks are parallel), so it implements [`Accelerator`]
/// directly rather than through `ServerAccel`.
pub struct MemoryService {
    dram: DramModel,
    store: Vec<u8>,
    pending: VecDeque<PendingReply>,
    /// Reads served.
    pub reads: u64,
    /// Writes served.
    pub writes: u64,
    /// Requests rejected (malformed or out of backing range).
    pub rejected: u64,
}

impl MemoryService {
    /// Creates a memory service with `capacity` bytes of backing DRAM.
    pub fn new(capacity: u64, dram: DramConfig) -> MemoryService {
        MemoryService {
            dram: DramModel::new(dram),
            store: vec![0; capacity as usize],
            pending: VecDeque::new(),
            reads: 0,
            writes: 0,
            rejected: 0,
        }
    }

    /// Backing capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.store.len() as u64
    }

    /// Direct store access for tests and for kernel-side bootstrapping
    /// (e.g. preloading a dataset).
    pub fn store_mut(&mut self) -> &mut [u8] {
        &mut self.store
    }

    /// DRAM row-buffer statistics: (hits, misses, conflicts).
    pub fn dram_stats(&self) -> (u64, u64, u64) {
        self.dram.stats()
    }

    fn handle(&mut self, req: Delivered, now: Cycle) {
        let Some((addr, len, data)) = wire_mem::decode(&req.msg.payload) else {
            self.rejected += 1;
            return;
        };
        let end = addr.saturating_add(len);
        if end > self.store.len() as u64
            || (req.msg.kind == wire::KIND_MEM_WRITE && data.len() as u64 != len)
        {
            self.rejected += 1;
            return;
        }
        let done = self.dram.access(now, addr, len);
        let payload = match req.msg.kind {
            wire::KIND_MEM_READ => {
                self.reads += 1;
                self.store[addr as usize..end as usize].to_vec()
            }
            wire::KIND_MEM_WRITE => {
                self.writes += 1;
                self.store[addr as usize..end as usize].copy_from_slice(data);
                Vec::new()
            }
            _ => {
                self.rejected += 1;
                return;
            }
        };
        self.pending.push_back(PendingReply {
            done,
            to: req,
            payload: payload.into(),
            kind: wire::KIND_MEM_REPLY,
        });
    }
}

impl Accelerator for MemoryService {
    fn name(&self) -> &'static str {
        "memory-service"
    }

    fn as_any(&self) -> &dyn core::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn core::any::Any {
        self
    }

    fn wake(&mut self, now: Cycle, os: &mut dyn TileOs) -> Wakeup {
        // Flush due replies (keep order; the queue is roughly time-sorted
        // because DRAM completion times are near-monotonic per bank).
        let mut remaining = VecDeque::with_capacity(self.pending.len());
        while let Some(p) = self.pending.pop_front() {
            if p.done <= now {
                let class = if p.payload.len() > 256 {
                    TrafficClass::Bulk
                } else {
                    TrafficClass::Request
                };
                let _ = os.reply(&p.to, p.kind, class, p.payload);
            } else {
                remaining.push_back(p);
            }
        }
        self.pending = remaining;
        // Accept all new requests this cycle (the DRAM model serialises
        // per-bank internally).
        while let Some(req) = os.recv() {
            if req.msg.kind == wire::KIND_ERROR {
                continue;
            }
            self.handle(req, now);
        }
        // Sleep until the earliest in-flight DRAM completion; new requests
        // re-arm the tile on arrival. DRAM bank state only advances when a
        // request lands, so skipped cycles cannot change timing.
        match self.pending.iter().map(|p| p.done).min() {
            Some(done) => Wakeup::AtOrMessage(done.max(now.saturating_add(1))),
            None => Wakeup::OnMessage,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apiary_accel::os::test_os::MockOs;
    use apiary_noc::{Message, NodeId};

    fn mem_req(kind: u16, addr: u64, len: u64, data: &[u8], tag: u64) -> Delivered {
        let mut msg = Message::new(
            NodeId(1),
            NodeId(0),
            TrafficClass::Request,
            wire_mem::encode(addr, len, data),
        );
        msg.kind = kind;
        msg.tag = tag;
        Delivered {
            msg,
            injected_at: Cycle(0),
            delivered_at: Cycle(0),
        }
    }

    fn pump(svc: &mut MemoryService, os: &mut MockOs, cycles: u64) {
        for _ in 0..cycles {
            svc.wake(os.now(), os);
            os.advance(1);
        }
    }

    #[test]
    fn write_then_read_roundtrip() {
        let mut os = MockOs::new();
        let mut svc = MemoryService::new(4096, DramConfig::default());
        os.deliver(mem_req(wire::KIND_MEM_WRITE, 128, 4, &[9, 8, 7, 6], 1));
        os.deliver(mem_req(wire::KIND_MEM_READ, 128, 4, &[], 2));
        pump(&mut svc, &mut os, 100);
        assert_eq!(svc.writes, 1);
        assert_eq!(svc.reads, 1);
        assert_eq!(os.sent.len(), 2);
        // Write ack is empty; read returns the data.
        assert!(os.sent[0].3.is_empty());
        assert_eq!(os.sent[1].3, vec![9, 8, 7, 6]);
    }

    #[test]
    fn replies_take_dram_time() {
        let mut os = MockOs::new();
        let mut svc = MemoryService::new(4096, DramConfig::default());
        os.deliver(mem_req(wire::KIND_MEM_READ, 0, 64, &[], 1));
        let w = svc.wake(os.now(), &mut os);
        assert!(os.sent.is_empty(), "completion is not instantaneous");
        assert!(
            matches!(w, Wakeup::AtOrMessage(t) if t > Cycle(0)),
            "memory tile sleeps until the DRAM completion: {w:?}"
        );
        pump(&mut svc, &mut os, 50);
        assert_eq!(os.sent.len(), 1);
    }

    #[test]
    fn out_of_range_rejected() {
        let mut os = MockOs::new();
        let mut svc = MemoryService::new(256, DramConfig::default());
        os.deliver(mem_req(wire::KIND_MEM_READ, 250, 16, &[], 1));
        os.deliver(mem_req(wire::KIND_MEM_READ, u64::MAX - 4, 16, &[], 2));
        pump(&mut svc, &mut os, 50);
        assert_eq!(svc.rejected, 2);
        assert!(os.sent.is_empty());
    }

    #[test]
    fn malformed_and_mismatched_rejected() {
        let mut os = MockOs::new();
        let mut svc = MemoryService::new(256, DramConfig::default());
        // Too short to decode.
        let mut msg = Message::new(NodeId(1), NodeId(0), TrafficClass::Request, vec![1, 2]);
        msg.kind = wire::KIND_MEM_READ;
        os.deliver(Delivered {
            msg,
            injected_at: Cycle(0),
            delivered_at: Cycle(0),
        });
        // Write whose data length disagrees with len field.
        os.deliver(mem_req(wire::KIND_MEM_WRITE, 0, 8, &[1, 2, 3], 1));
        pump(&mut svc, &mut os, 20);
        assert_eq!(svc.rejected, 2);
    }

    #[test]
    fn many_outstanding_ops_complete() {
        let mut os = MockOs::new();
        let mut svc = MemoryService::new(1 << 20, DramConfig::default());
        for i in 0..32u64 {
            os.deliver(mem_req(wire::KIND_MEM_READ, i * 8192, 64, &[], i));
        }
        pump(&mut svc, &mut os, 500);
        assert_eq!(os.sent.len(), 32);
        assert_eq!(svc.reads, 32);
    }
}
