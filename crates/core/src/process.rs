//! Application and process identity (§4.1–§4.2).

use apiary_noc::NodeId;
use core::fmt;

/// An application: one or more cooperating processes (accelerators) under a
/// single trust domain. Distinct applications are mutually distrusting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AppId(pub u32);

impl fmt::Display for AppId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "app{}", self.0)
    }
}

/// The OS's own pseudo-application, owning service tiles (memory, network).
/// Services are trusted infrastructure; every application may be connected
/// to them.
pub const OS_APP: AppId = AppId(0);

/// A process: one user context running on one accelerator (§4.2). The
/// kernel-level unit of isolation is the tile; contexts within a tile are
/// mutually trusting and distinguished by capability badges.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ProcessId {
    /// The tile the process occupies.
    pub node: NodeId,
    /// Context index within the tile.
    pub context: u16,
}

impl ProcessId {
    /// The zeroth (default) context on a tile.
    pub fn main(node: NodeId) -> ProcessId {
        ProcessId { node, context: 0 }
    }
}

impl fmt::Display for ProcessId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}#{}", self.node, self.context)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_semantics() {
        assert_eq!(AppId(3), AppId(3));
        assert_ne!(AppId(3), AppId(4));
        let p = ProcessId::main(NodeId(5));
        assert_eq!(p.context, 0);
        assert_eq!(format!("{p}"), "n5#0");
        assert_eq!(format!("{}", AppId(2)), "app2");
    }
}
