//! The checkpoint plane: versioned, checksummed snapshots of preemptible
//! accelerator state (§4.4, after SYNERGY's compiler-driven checkpointing).
//!
//! The supervisor periodically asks every preemptible service for its
//! architectural state ([`apiary_accel::Accelerator::save_state`]) and
//! stores the bytes here. The restart/migrate ladder then restores the
//! latest snapshot instead of rebuilding the service factory-fresh, so a
//! recovered KV store retains its contents up to the checkpoint horizon
//! (bounded staleness: at most one checkpoint interval of writes is lost).
//!
//! Snapshots carry a format version and an FNV-1a checksum; a snapshot
//! that fails verification is *rejected* and recovery falls back to the
//! cold (factory-fresh) path rather than half-restoring corrupt state.

use apiary_accel::StateError;
use apiary_sim::Cycle;
use std::collections::BTreeMap;

/// Current snapshot wire-format version.
pub const SNAPSHOT_VERSION: u16 = 1;

/// FNV-1a 64-bit, the integrity check on stored state. Not cryptographic —
/// it guards against torn or bit-flipped snapshots, the same failure class
/// the NoC's flit checksum covers.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// One checkpoint of one service's architectural state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Snapshot {
    /// Format version ([`SNAPSHOT_VERSION`] when taken by this kernel).
    pub version: u16,
    /// Monotonic sequence number per service (replication ordering).
    pub seq: u64,
    /// Cycle at which the state was captured.
    pub taken_at: Cycle,
    /// FNV-1a over `state`.
    pub checksum: u64,
    /// The serialized architectural state.
    pub state: Vec<u8>,
}

impl Snapshot {
    /// Captures `state` at `now` with the given sequence number.
    pub fn capture(seq: u64, now: Cycle, state: Vec<u8>) -> Snapshot {
        Snapshot {
            version: SNAPSHOT_VERSION,
            seq,
            taken_at: now,
            checksum: fnv1a(&state),
            state,
        }
    }

    /// Integrity check: version understood and checksum intact.
    pub fn verify(&self) -> bool {
        self.version == SNAPSHOT_VERSION && self.checksum == fnv1a(&self.state)
    }

    /// Serializes the snapshot for transfer over the fabric:
    /// `[version: u16][seq: u64][taken_at: u64][checksum: u64]
    /// [len: u32][state]`, all little-endian.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(30 + self.state.len());
        out.extend_from_slice(&self.version.to_le_bytes());
        out.extend_from_slice(&self.seq.to_le_bytes());
        out.extend_from_slice(&self.taken_at.0.to_le_bytes());
        out.extend_from_slice(&self.checksum.to_le_bytes());
        out.extend_from_slice(&(self.state.len() as u32).to_le_bytes());
        out.extend_from_slice(&self.state);
        out
    }

    /// Parses and verifies an encoded snapshot.
    ///
    /// # Errors
    ///
    /// [`StateError::Corrupt`] on truncation, trailing bytes, an unknown
    /// version, or a checksum mismatch — never a partial snapshot.
    pub fn decode(bytes: &[u8]) -> Result<Snapshot, StateError> {
        fn take<'a>(b: &mut &'a [u8], n: usize) -> Result<&'a [u8], StateError> {
            if b.len() < n {
                return Err(StateError::Corrupt);
            }
            let (head, tail) = b.split_at(n);
            *b = tail;
            Ok(head)
        }
        let mut b = bytes;
        let version = u16::from_le_bytes(take(&mut b, 2)?.try_into().expect("sized"));
        let seq = u64::from_le_bytes(take(&mut b, 8)?.try_into().expect("sized"));
        let taken_at = u64::from_le_bytes(take(&mut b, 8)?.try_into().expect("sized"));
        let checksum = u64::from_le_bytes(take(&mut b, 8)?.try_into().expect("sized"));
        let len = u32::from_le_bytes(take(&mut b, 4)?.try_into().expect("sized")) as usize;
        let state = take(&mut b, len)?.to_vec();
        if !b.is_empty() {
            return Err(StateError::Corrupt);
        }
        let snap = Snapshot {
            version,
            seq,
            taken_at: Cycle(taken_at),
            checksum,
            state,
        };
        if !snap.verify() {
            return Err(StateError::Corrupt);
        }
        Ok(snap)
    }
}

/// Per-board store of the latest snapshot per supervised service.
///
/// Keyed by the service's registry id; keeps only the newest snapshot per
/// service (bounded staleness is one checkpoint interval, so history buys
/// nothing). BTreeMap keeps iteration deterministic.
#[derive(Debug, Clone, Default)]
pub struct CheckpointStore {
    snaps: BTreeMap<u32, Snapshot>,
    /// Checkpoints captured.
    pub taken: u64,
    /// Recoveries that restored from a snapshot (warm path).
    pub warm_restores: u64,
    /// Snapshots that failed verification and were discarded.
    pub rejected: u64,
}

impl CheckpointStore {
    /// An empty store.
    pub fn new() -> CheckpointStore {
        CheckpointStore::default()
    }

    /// Stores a new checkpoint for `service`, superseding any older one.
    /// Returns the sequence number assigned.
    pub fn put(&mut self, service: u32, now: Cycle, state: Vec<u8>) -> u64 {
        let seq = self.snaps.get(&service).map_or(1, |s| s.seq + 1);
        self.snaps
            .insert(service, Snapshot::capture(seq, now, state));
        self.taken += 1;
        seq
    }

    /// Adopts an already-built snapshot (fabric replication) if it is newer
    /// than what is held and verifies. Returns `true` if adopted.
    pub fn adopt(&mut self, service: u32, snap: Snapshot) -> bool {
        if !snap.verify() {
            self.rejected += 1;
            return false;
        }
        if self.snaps.get(&service).is_some_and(|s| s.seq >= snap.seq) {
            return false;
        }
        self.snaps.insert(service, snap);
        true
    }

    /// The latest verified snapshot for `service`, if any. A stored
    /// snapshot that no longer verifies is dropped (and counted) rather
    /// than returned.
    pub fn latest(&mut self, service: u32) -> Option<&Snapshot> {
        if let Some(snap) = self.snaps.get(&service) {
            if !snap.verify() {
                self.snaps.remove(&service);
                self.rejected += 1;
                return None;
            }
        }
        self.snaps.get(&service)
    }

    /// Drops the snapshot for `service` (service undeployed or migrated
    /// away), returning it if present.
    pub fn remove(&mut self, service: u32) -> Option<Snapshot> {
        self.snaps.remove(&service)
    }

    /// Number of services with a stored snapshot.
    pub fn len(&self) -> usize {
        self.snaps.len()
    }

    /// Returns `true` when no snapshots are held.
    pub fn is_empty(&self) -> bool {
        self.snaps.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capture_verifies_and_roundtrips() {
        let snap = Snapshot::capture(3, Cycle(1000), vec![1, 2, 3, 4]);
        assert!(snap.verify());
        let decoded = Snapshot::decode(&snap.encode()).expect("well formed");
        assert_eq!(decoded, snap);
    }

    #[test]
    fn truncated_and_trailing_bytes_rejected() {
        let enc = Snapshot::capture(1, Cycle(5), vec![9; 32]).encode();
        for cut in [0, 1, 2, 10, enc.len() - 1] {
            assert_eq!(Snapshot::decode(&enc[..cut]), Err(StateError::Corrupt));
        }
        let mut trailing = enc.clone();
        trailing.push(0);
        assert_eq!(Snapshot::decode(&trailing), Err(StateError::Corrupt));
    }

    #[test]
    fn wrong_version_rejected() {
        let mut snap = Snapshot::capture(1, Cycle(5), vec![7; 8]);
        snap.version = SNAPSHOT_VERSION + 1;
        assert!(!snap.verify());
        assert_eq!(Snapshot::decode(&snap.encode()), Err(StateError::Corrupt));
    }

    #[test]
    fn bitflip_rejected() {
        let snap = Snapshot::capture(1, Cycle(5), vec![0xAB; 64]);
        let mut enc = snap.encode();
        // Flip a bit inside the state payload: checksum must catch it.
        let n = enc.len();
        enc[n - 1] ^= 0x40;
        assert_eq!(Snapshot::decode(&enc), Err(StateError::Corrupt));
    }

    #[test]
    fn store_sequences_and_supersedes() {
        let mut store = CheckpointStore::new();
        assert_eq!(store.put(7, Cycle(10), vec![1]), 1);
        assert_eq!(store.put(7, Cycle(20), vec![2]), 2);
        assert_eq!(store.put(9, Cycle(20), vec![3]), 1);
        assert_eq!(store.taken, 3);
        assert_eq!(store.len(), 2);
        let latest = store.latest(7).expect("stored");
        assert_eq!((latest.seq, latest.taken_at), (2, Cycle(20)));
        assert!(store.latest(8).is_none());
        assert!(store.remove(7).is_some());
        assert!(store.latest(7).is_none());
    }

    #[test]
    fn adopt_keeps_newest_and_rejects_corrupt() {
        let mut store = CheckpointStore::new();
        let newer = Snapshot::capture(5, Cycle(50), vec![5]);
        let older = Snapshot::capture(4, Cycle(40), vec![4]);
        assert!(store.adopt(1, newer.clone()));
        assert!(!store.adopt(1, older), "stale replica ignored");
        assert_eq!(store.latest(1).expect("held").seq, 5);
        let mut bad = Snapshot::capture(9, Cycle(60), vec![6]);
        bad.checksum ^= 1;
        assert!(!store.adopt(1, bad));
        assert_eq!(store.rejected, 1);
        assert_eq!(store.latest(1).expect("held").seq, 5);
    }

    #[test]
    fn latest_drops_in_place_corruption() {
        let mut store = CheckpointStore::new();
        store.put(3, Cycle(1), vec![1, 2, 3]);
        // Simulate in-storage corruption by adopting-then-mutating via the
        // public clone (the store itself has no mutable state access, so
        // rebuild it with a tampered snapshot).
        let mut tampered = store.latest(3).expect("held").clone();
        tampered.state[0] ^= 0xFF;
        let mut store2 = CheckpointStore::new();
        store2.snaps.insert(3, tampered);
        assert!(store2.latest(3).is_none());
        assert_eq!(store2.rejected, 1);
    }
}
