//! Partial reconfiguration (§4.1: dynamic tile regions).
//!
//! Loading a new accelerator into a tile's dynamic region takes real time:
//! the bitstream streams through the configuration port (ICAP) at a fixed
//! bandwidth. While a tile reconfigures it is offline; its monitor answers
//! correspondents with errors exactly as for a fail-stopped tile, and is
//! reset (all capabilities revoked) when the new accelerator comes up.

use apiary_accel::Accelerator;
use apiary_noc::NodeId;
use apiary_sim::Cycle;

use crate::fault::FaultPolicy;
use crate::process::AppId;

/// An in-progress reconfiguration.
pub struct ReconfigJob {
    /// The tile being rewritten.
    pub node: NodeId,
    /// When the bitstream finishes loading.
    pub done_at: Cycle,
    /// The accelerator to install on completion.
    pub accel: Box<dyn Accelerator>,
    /// Owning application of the new configuration.
    pub app: AppId,
    /// Fault policy for the new configuration.
    pub policy: FaultPolicy,
}

/// The reconfiguration controller: one ICAP, jobs serialised through it.
pub struct ReconfigController {
    /// Configuration-port bandwidth in bytes per fabric cycle. The Xilinx
    /// ICAP moves 4 bytes/cycle at 100–200 MHz; ~4 B/cycle at a 250 MHz
    /// fabric clock is the right order.
    pub bytes_per_cycle: u64,
    /// The port is busy until this cycle (jobs queue behind one another).
    port_free_at: Cycle,
    jobs: Vec<ReconfigJob>,
    /// Completed reconfigurations.
    pub completed: u64,
}

impl ReconfigController {
    /// Creates a controller with the given ICAP bandwidth.
    pub fn new(bytes_per_cycle: u64) -> ReconfigController {
        ReconfigController {
            bytes_per_cycle: bytes_per_cycle.max(1),
            port_free_at: Cycle::ZERO,
            jobs: Vec::new(),
            completed: 0,
        }
    }

    /// Queues a reconfiguration; returns the completion time.
    pub fn start(
        &mut self,
        now: Cycle,
        node: NodeId,
        accel: Box<dyn Accelerator>,
        app: AppId,
        policy: FaultPolicy,
        bitstream_bytes: u64,
    ) -> Cycle {
        let begin = now.max(self.port_free_at);
        let done_at = begin + bitstream_bytes.div_ceil(self.bytes_per_cycle);
        self.port_free_at = done_at;
        self.jobs.push(ReconfigJob {
            node,
            done_at,
            accel,
            app,
            policy,
        });
        done_at
    }

    /// Returns `true` if `node` has a reconfiguration in flight.
    pub fn in_progress(&self, node: NodeId) -> bool {
        self.jobs.iter().any(|j| j.node == node)
    }

    /// Removes and returns jobs that completed by `now`.
    pub fn take_completed(&mut self, now: Cycle) -> Vec<ReconfigJob> {
        let mut done = Vec::new();
        let mut i = 0;
        while i < self.jobs.len() {
            if self.jobs[i].done_at <= now {
                done.push(self.jobs.swap_remove(i));
                self.completed += 1;
            } else {
                i += 1;
            }
        }
        done
    }

    /// Jobs still in flight.
    pub fn pending(&self) -> usize {
        self.jobs.len()
    }

    /// The earliest in-flight completion time, if any. The event clock
    /// schedules a wakeup here so reconfigurations finish on the exact
    /// cycle they would under dense ticking.
    pub fn next_completion(&self) -> Option<Cycle> {
        self.jobs.iter().map(|j| j.done_at).min()
    }

    /// Completion time of the in-flight job on `node`, if one exists.
    pub fn completion_of(&self, node: NodeId) -> Option<Cycle> {
        self.jobs
            .iter()
            .filter(|j| j.node == node)
            .map(|j| j.done_at)
            .min()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apiary_accel::apps::echo::echo;

    #[test]
    fn reconfig_takes_bitstream_time() {
        let mut rc = ReconfigController::new(4);
        let done = rc.start(
            Cycle(100),
            NodeId(1),
            Box::new(echo(1)),
            AppId(1),
            FaultPolicy::FailStop,
            4000,
        );
        assert_eq!(done, Cycle(1100));
        assert!(rc.in_progress(NodeId(1)));
        assert!(rc.take_completed(Cycle(1099)).is_empty());
        let finished = rc.take_completed(Cycle(1100));
        assert_eq!(finished.len(), 1);
        assert!(!rc.in_progress(NodeId(1)));
        assert_eq!(rc.completed, 1);
    }

    #[test]
    fn jobs_serialise_through_the_port() {
        let mut rc = ReconfigController::new(10);
        let d1 = rc.start(
            Cycle(0),
            NodeId(1),
            Box::new(echo(1)),
            AppId(1),
            FaultPolicy::FailStop,
            1000,
        );
        let d2 = rc.start(
            Cycle(0),
            NodeId(2),
            Box::new(echo(1)),
            AppId(1),
            FaultPolicy::FailStop,
            1000,
        );
        assert_eq!(d1, Cycle(100));
        assert_eq!(d2, Cycle(200), "second job queues behind the first");
        assert_eq!(rc.pending(), 2);
    }

    #[test]
    fn zero_bandwidth_clamped() {
        let rc = ReconfigController::new(0);
        assert_eq!(rc.bytes_per_cycle, 1);
    }
}
